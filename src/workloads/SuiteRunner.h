//===- workloads/SuiteRunner.h - Batched multi-config suite runs *- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the analyzer over a whole suite of programs under many
/// configurations at once — every column of the paper's Tables 2 and 3
/// as one batch — fanning the independent (program × configuration)
/// pipeline runs across a thread pool. Each cell writes only its own
/// result slot, so the aggregated output is deterministic for any job
/// count; the per-cell and batch wall-clock numbers feed the
/// serial-vs-parallel speedup benches.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_SUITERUNNER_H
#define IPCP_WORKLOADS_SUITERUNNER_H

#include "ipcp/AnalysisSession.h"
#include "ipcp/Pipeline.h"
#include "workloads/Suite.h"

#include <string>
#include <vector>

namespace ipcp {

/// One named analyzer configuration (a table column).
struct SuiteConfig {
  std::string Name;
  PipelineOptions Opts;
};

/// The Table 2 columns: {poly, pass, intra, literal} with return jump
/// functions, {poly, pass} without, plus the precision tier —
/// {poly-fsa} (flow-sensitive aliasing) and {poly-ogvn} (optimistic
/// value numbering) — and the copy tier — {copy} (pass-through + the
/// copy lattice) and {poly-copy} (polynomial + the copy lattice) — with
/// UseMod on throughout.
std::vector<SuiteConfig> table2Configs();

/// The Table 3 columns beyond Table 2's default: polynomial without
/// MOD, complete propagation, and intraprocedural-only.
std::vector<SuiteConfig> table3Configs();

/// Table 2 and Table 3 columns concatenated (thirteen distinct configs).
std::vector<SuiteConfig> allConfigs();

/// Looks up a config set by name: "all", "table2", or "table3".
/// Returns an empty vector for unknown names.
std::vector<SuiteConfig> configsByName(const std::string &Name);

/// One (program × configuration) outcome.
struct SuiteCell {
  std::string Program;
  std::string Config;
  bool Ok = false;
  unsigned SubstitutedConstants = 0;
  unsigned ConstantPrints = 0;
  double Millis = 0; ///< This cell's own wall clock.
  /// Per-phase breakdown of this cell's run (FrontendMs is zero for
  /// shared-frontend cells; see SuiteRunResult::FrontendMs).
  PhaseTimings Timings;
  /// Solver value-context memo counters of this cell's run. 64-bit and
  /// warmth/interleaving-dependent in Shared mode (cells share one memo,
  /// so which cell records a context first depends on scheduling) —
  /// like Timings, never part of determinism comparisons.
  uint64_t SolverMemoHits = 0;
  uint64_t SolverMemoMisses = 0;
  /// Precision-tier deltas (zero under non-precision configs): alias
  /// points the flow-sensitive analysis recovered and phi merges the
  /// optimistic numbering won (see PipelineResult).
  size_t AliasPointsRefined = 0;
  size_t GvnPhiMerges = 0;
  /// Copy-tier delta (zero without CopyPropagation): array loads the
  /// copy lattice resolved program-wide (see PipelineResult).
  size_t CopyLoadsResolved = 0;
};

/// The aggregated batch.
struct SuiteRunResult {
  /// Program-major: Cells[p * NumConfigs + c]. Deterministic for any
  /// job count.
  std::vector<SuiteCell> Cells;
  size_t NumPrograms = 0;
  size_t NumConfigs = 0;
  double WallMs = 0;  ///< Wall clock of the whole batch.
  double CellMs = 0;  ///< Sum of per-cell times (~ serial cost).
  unsigned TotalSubstituted = 0;
  /// Shared mode only: wall clock of the one-per-program parse+sema
  /// phase (per-cell frontend cost is zero there).
  double FrontendMs = 0;
  /// Shared mode only: cache counters summed over the per-program
  /// sessions (the private clones complete-propagation cells analyze
  /// are not included).
  SessionStats Cache;

  const SuiteCell &cell(size_t Program, size_t Config) const {
    return Cells.at(Program * NumConfigs + Config);
  }
};

/// How much analysis state the batch's cells share.
enum class SuiteSharing : uint8_t {
  /// Every cell re-parses its program from source and analyzes it cold —
  /// the baseline the incremental_speedup bench measures against.
  PerCell,
  /// One frontend pass and one AnalysisSession per program; the
  /// program's cells share the session's lowered IR, SSA, and
  /// jump-function bases. Complete-propagation cells, which mutate the
  /// AST, analyze a private resolved clone of the checked program
  /// instead (lang/AstClone.h) — never the shared snapshot. Results are
  /// byte-identical to PerCell.
  Shared,
};

/// Runs every program under every config. \p Jobs is the number of
/// worker threads fanning out whole pipeline runs (1 = serial, 0 = one
/// per hardware thread); \p ThreadsPerRun is forwarded to
/// PipelineOptions::Threads of each run. When Jobs != 1 the per-cell
/// thread count is clamped to 1 — batch-level fan-out already saturates
/// the cores, and nesting pools would oversubscribe them; when Jobs == 1
/// all cells share a single injected pool (PipelineOptions::Pool), so
/// the batch creates at most one pool either way.
SuiteRunResult runSuite(const std::vector<WorkloadProgram> &Programs,
                        const std::vector<SuiteConfig> &Configs,
                        unsigned Jobs = 1, unsigned ThreadsPerRun = 1,
                        SuiteSharing Sharing = SuiteSharing::Shared);

} // namespace ipcp

#endif // IPCP_WORKLOADS_SUITERUNNER_H
