//===- workloads/SuiteRunner.cpp - Batched multi-config suite runs --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SuiteRunner.h"

#include "support/ThreadPool.h"

#include <chrono>

using namespace ipcp;

namespace {

SuiteConfig makeConfig(std::string Name,
                       JumpFunctionKind Kind = JumpFunctionKind::Polynomial,
                       bool Rjf = true, bool Mod = true) {
  SuiteConfig C;
  C.Name = std::move(Name);
  C.Opts.Kind = Kind;
  C.Opts.UseReturnJumpFunctions = Rjf;
  C.Opts.UseMod = Mod;
  return C;
}

} // namespace

std::vector<SuiteConfig> ipcp::table2Configs() {
  return {
      makeConfig("poly", JumpFunctionKind::Polynomial),
      makeConfig("pass", JumpFunctionKind::PassThrough),
      makeConfig("intra", JumpFunctionKind::IntraConst),
      makeConfig("literal", JumpFunctionKind::Literal),
      makeConfig("poly-norjf", JumpFunctionKind::Polynomial, /*Rjf=*/false),
      makeConfig("pass-norjf", JumpFunctionKind::PassThrough, /*Rjf=*/false),
  };
}

std::vector<SuiteConfig> ipcp::table3Configs() {
  std::vector<SuiteConfig> Configs;
  Configs.push_back(makeConfig("poly-nomod", JumpFunctionKind::Polynomial,
                               /*Rjf=*/true, /*Mod=*/false));
  SuiteConfig Complete = makeConfig("complete");
  Complete.Opts.CompletePropagation = true;
  Configs.push_back(std::move(Complete));
  SuiteConfig IntraOnly = makeConfig("intra-only");
  IntraOnly.Opts.IntraproceduralOnly = true;
  Configs.push_back(std::move(IntraOnly));
  return Configs;
}

std::vector<SuiteConfig> ipcp::allConfigs() {
  std::vector<SuiteConfig> Configs = table2Configs();
  for (SuiteConfig &C : table3Configs())
    Configs.push_back(std::move(C));
  return Configs;
}

std::vector<SuiteConfig> ipcp::configsByName(const std::string &Name) {
  if (Name == "all")
    return allConfigs();
  if (Name == "table2")
    return table2Configs();
  if (Name == "table3")
    return table3Configs();
  return {};
}

SuiteRunResult ipcp::runSuite(const std::vector<WorkloadProgram> &Programs,
                              const std::vector<SuiteConfig> &Configs,
                              unsigned Jobs, unsigned ThreadsPerRun) {
  using Clock = std::chrono::steady_clock;

  SuiteRunResult Result;
  Result.NumPrograms = Programs.size();
  Result.NumConfigs = Configs.size();
  Result.Cells.resize(Programs.size() * Configs.size());

  // Complete propagation mutates the analyzed AST, so every cell
  // re-parses from source inside runPipeline: cells share nothing and
  // can fan out freely.
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs != 1)
    Pool = std::make_unique<ThreadPool>(Jobs);

  Clock::time_point BatchStart = Clock::now();
  parallelFor(Pool.get(), Result.Cells.size(), [&](size_t I) {
    size_t P = I / Configs.size();
    size_t C = I % Configs.size();
    SuiteCell &Cell = Result.Cells[I];
    Cell.Program = Programs[P].Name;
    Cell.Config = Configs[C].Name;

    PipelineOptions Opts = Configs[C].Opts;
    Opts.Threads = ThreadsPerRun;
    Clock::time_point CellStart = Clock::now();
    PipelineResult R = runPipeline(Programs[P].Source, Opts);
    Cell.Millis = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            CellStart)
                      .count();
    Cell.Ok = R.Ok;
    Cell.SubstitutedConstants = R.SubstitutedConstants;
    Cell.ConstantPrints = R.ConstantPrints;
  });
  Result.WallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - BatchStart)
          .count();

  for (const SuiteCell &Cell : Result.Cells) {
    Result.CellMs += Cell.Millis;
    Result.TotalSubstituted += Cell.SubstitutedConstants;
  }
  return Result;
}
