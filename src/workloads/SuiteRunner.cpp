//===- workloads/SuiteRunner.cpp - Batched multi-config suite runs --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SuiteRunner.h"

#include "lang/AstClone.h"
#include "lang/Parser.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <memory>

using namespace ipcp;

namespace {

SuiteConfig makeConfig(std::string Name,
                       JumpFunctionKind Kind = JumpFunctionKind::Polynomial,
                       bool Rjf = true, bool Mod = true) {
  SuiteConfig C;
  C.Name = std::move(Name);
  C.Opts.Kind = Kind;
  C.Opts.UseReturnJumpFunctions = Rjf;
  C.Opts.UseMod = Mod;
  return C;
}

} // namespace

std::vector<SuiteConfig> ipcp::table2Configs() {
  std::vector<SuiteConfig> Configs = {
      makeConfig("poly", JumpFunctionKind::Polynomial),
      makeConfig("pass", JumpFunctionKind::PassThrough),
      makeConfig("intra", JumpFunctionKind::IntraConst),
      makeConfig("literal", JumpFunctionKind::Literal),
      makeConfig("poly-norjf", JumpFunctionKind::Polynomial, /*Rjf=*/false),
      makeConfig("pass-norjf", JumpFunctionKind::PassThrough, /*Rjf=*/false),
  };
  // The precision tier: polynomial with flow-sensitive aliasing, and
  // with optimistic value numbering. Each refines the plain "poly"
  // column, never below it (the precision-differential wall pins this).
  SuiteConfig Fsa = makeConfig("poly-fsa");
  Fsa.Opts.FlowSensitiveAlias = true;
  Configs.push_back(std::move(Fsa));
  SuiteConfig Ogvn = makeConfig("poly-ogvn");
  Ogvn.Opts.OptimisticVn = true;
  Configs.push_back(std::move(Ogvn));
  // The copy tier: pass-through and polynomial with the copy lattice
  // (--copy). Each refines its base column — loads the lattice resolves
  // stop reading as unknown — never below it (check-copy pins this).
  SuiteConfig Copy = makeConfig("copy", JumpFunctionKind::PassThrough);
  Copy.Opts.CopyPropagation = true;
  Configs.push_back(std::move(Copy));
  SuiteConfig PolyCopy = makeConfig("poly-copy");
  PolyCopy.Opts.CopyPropagation = true;
  Configs.push_back(std::move(PolyCopy));
  return Configs;
}

std::vector<SuiteConfig> ipcp::table3Configs() {
  std::vector<SuiteConfig> Configs;
  Configs.push_back(makeConfig("poly-nomod", JumpFunctionKind::Polynomial,
                               /*Rjf=*/true, /*Mod=*/false));
  SuiteConfig Complete = makeConfig("complete");
  Complete.Opts.CompletePropagation = true;
  Configs.push_back(std::move(Complete));
  SuiteConfig IntraOnly = makeConfig("intra-only");
  IntraOnly.Opts.IntraproceduralOnly = true;
  Configs.push_back(std::move(IntraOnly));
  return Configs;
}

std::vector<SuiteConfig> ipcp::allConfigs() {
  std::vector<SuiteConfig> Configs = table2Configs();
  for (SuiteConfig &C : table3Configs())
    Configs.push_back(std::move(C));
  return Configs;
}

std::vector<SuiteConfig> ipcp::configsByName(const std::string &Name) {
  if (Name == "all")
    return allConfigs();
  if (Name == "table2")
    return table2Configs();
  if (Name == "table3")
    return table3Configs();
  return {};
}

namespace {

/// Shared-mode per-program state: one frontend, one session.
struct ProgState {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  std::unique_ptr<AnalysisSession> Session;
  bool Ok = false;
  std::string Error;
};

} // namespace

SuiteRunResult ipcp::runSuite(const std::vector<WorkloadProgram> &Programs,
                              const std::vector<SuiteConfig> &Configs,
                              unsigned Jobs, unsigned ThreadsPerRun,
                              SuiteSharing Sharing) {
  using Clock = std::chrono::steady_clock;

  SuiteRunResult Result;
  Result.NumPrograms = Programs.size();
  Result.NumConfigs = Configs.size();
  Result.Cells.resize(Programs.size() * Configs.size());

  // Sharing contract: in Shared mode every program is parsed and checked
  // once; cells of configurations that never mutate the AST analyze the
  // program's one AnalysisSession concurrently (its read accessors are
  // thread-safe), while complete-propagation cells — whose DCE rounds
  // rewrite statements — get a private resolved clone of the checked
  // program plus their own session, so the shared snapshot stays
  // immutable for the whole batch. In PerCell mode every cell re-parses
  // from source inside runPipeline and shares nothing.
  //
  // Threading: at most one pool exists. With batch-level fan-out
  // (Jobs != 1) the cells run serially inside themselves; with serial
  // cells (Jobs == 1) they all share one injected per-cell pool.
  unsigned CellThreads = Jobs != 1 ? 1 : ThreadsPerRun;
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs != 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
  std::unique_ptr<ThreadPool> CellPool;
  if (Jobs == 1 && CellThreads != 1)
    CellPool = std::make_unique<ThreadPool>(CellThreads);

  Clock::time_point BatchStart = Clock::now();

  std::vector<ProgState> States;
  if (Sharing == SuiteSharing::Shared) {
    States.resize(Programs.size());
    parallelFor(Pool.get(), Programs.size(), [&](size_t P) {
      ProgState &PS = States[P];
      DiagnosticEngine Diags;
      PS.Ctx = parseProgram(Programs[P].Source, Diags);
      if (!Diags.hasErrors())
        PS.Symbols = Sema::run(*PS.Ctx, Diags);
      if (Diags.hasErrors()) {
        PS.Error = Diags.str();
        return;
      }
      PS.Session = std::make_unique<AnalysisSession>(*PS.Ctx, PS.Symbols);
      PS.Ok = true;
    });
    Result.FrontendMs =
        std::chrono::duration<double, std::milli>(Clock::now() - BatchStart)
            .count();
  }

  parallelFor(Pool.get(), Result.Cells.size(), [&](size_t I) {
    size_t P = I / Configs.size();
    size_t C = I % Configs.size();
    SuiteCell &Cell = Result.Cells[I];
    Cell.Program = Programs[P].Name;
    Cell.Config = Configs[C].Name;

    PipelineOptions Opts = Configs[C].Opts;
    Opts.Threads = CellThreads;
    Opts.Pool = CellPool.get();
    Clock::time_point CellStart = Clock::now();
    PipelineResult R;
    if (Sharing == SuiteSharing::PerCell) {
      R = runPipeline(Programs[P].Source, Opts);
    } else if (ProgState &PS = States[P]; !PS.Ok) {
      R.Error = PS.Error;
    } else if (Opts.CompletePropagation) {
      auto Clone = cloneProgramResolved(*PS.Ctx);
      AnalysisSession Private(*Clone, PS.Symbols);
      R = runPipelineOnSession(Private, Opts);
    } else {
      R = runPipelineOnSession(*PS.Session, Opts);
    }
    Cell.Millis = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            CellStart)
                      .count();
    Cell.Ok = R.Ok;
    Cell.SubstitutedConstants = R.SubstitutedConstants;
    Cell.ConstantPrints = R.ConstantPrints;
    Cell.Timings = R.Timings;
    Cell.SolverMemoHits = R.SolverMemoHits;
    Cell.SolverMemoMisses = R.SolverMemoMisses;
    Cell.AliasPointsRefined = R.AliasPointsRefined;
    Cell.GvnPhiMerges = R.GvnPhiMerges;
    Cell.CopyLoadsResolved = R.CopyLoadsResolved;
  });
  Result.WallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - BatchStart)
          .count();

  for (const SuiteCell &Cell : Result.Cells) {
    Result.CellMs += Cell.Millis;
    Result.TotalSubstituted += Cell.SubstitutedConstants;
  }
  for (const ProgState &PS : States) {
    if (!PS.Session)
      continue;
    SessionStats S = PS.Session->stats();
    Result.Cache.ProcsLowered += S.ProcsLowered;
    Result.Cache.ProcsRelowered += S.ProcsRelowered;
    Result.Cache.SsaBuilt += S.SsaBuilt;
    Result.Cache.SsaReused += S.SsaReused;
    Result.Cache.VnBuilt += S.VnBuilt;
    Result.Cache.VnReused += S.VnReused;
    Result.Cache.JfBasesBuilt += S.JfBasesBuilt;
    Result.Cache.JfBasesReused += S.JfBasesReused;
    Result.Cache.SolverMemoHits += S.SolverMemoHits;
    Result.Cache.SolverMemoMisses += S.SolverMemoMisses;
  }
  return Result;
}
