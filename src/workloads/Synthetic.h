//===- workloads/Synthetic.h - Scalable synthetic programs ------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, size-parameterized MiniFort programs for the timing
/// and scaling benches (the §3.1.5 cost study and the solver ablation).
/// Unlike the fixed suite, these scale the number of procedures, call
/// sites, and expression depth independently.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_SYNTHETIC_H
#define IPCP_WORKLOADS_SYNTHETIC_H

#include <string>

namespace ipcp {

/// Parameters of one synthetic program.
struct SyntheticSpec {
  /// Number of worker procedures (beyond main).
  int Procs = 16;
  /// Call sites per procedure (each calls this many later procedures,
  /// wrapping around, so the call graph is a dense DAG).
  int CallsPerProc = 3;
  /// Arguments per call: a mix of literals, pass-through formals, and
  /// polynomial expressions of formals.
  int ArgsPerCall = 3;
  /// Lines of constant-free filler per procedure.
  int FillerLines = 10;
  /// Depth of the polynomial argument expressions.
  int PolyDepth = 2;
};

/// Generates the program deterministically from \p Spec.
std::string generateSynthetic(const SyntheticSpec &Spec);

} // namespace ipcp

#endif // IPCP_WORKLOADS_SYNTHETIC_H
