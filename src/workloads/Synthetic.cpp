//===- workloads/Synthetic.cpp - Scalable synthetic programs --------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Synthetic.h"

#include <sstream>

using namespace ipcp;

/// Builds a polynomial expression of the formals "a" and "b" with
/// \p Depth operator layers, e.g. "((a * 2 + b) * 2 + a)".
static std::string polyExpr(int Depth, int Seed) {
  std::string E = Seed % 2 ? "a" : "b";
  for (int D = 0; D < Depth; ++D) {
    const char *Other = (Seed + D) % 2 ? "b" : "a";
    E = "(" + E + " * 2 + " + Other + " - " +
        std::to_string((Seed + D) % 5) + ")";
  }
  return E;
}

std::string ipcp::generateSynthetic(const SyntheticSpec &Spec) {
  std::ostringstream OS;
  OS << "program synthetic\n";
  OS << "global gtotal\n\n";

  OS << "proc main()\n";
  OS << "  gtotal = 1\n";
  // Several roots so the call-graph frontier is wide from the start.
  for (int R = 0; R < Spec.Procs && R < 4; ++R)
    OS << "  call w_" << R << "(" << R * 10 + 1 << ", " << R * 10 + 2
       << ", " << R * 10 + 3 << ")\n";
  OS << "end\n\n";

  for (int I = 0; I < Spec.Procs; ++I) {
    OS << "proc w_" << I << "(a, b, c)\n";
    OS << "  integer t, k\n";
    // Uses of the formals (countable when constants arrive).
    OS << "  print a + b\n";
    OS << "  print c * 2\n";
    // Constant-free filler.
    OS << "  read t\n";
    OS << "  k = t\n";
    for (int L = 0; L < Spec.FillerLines; L += 3) {
      OS << "  do k = 1, t\n";
      OS << "    t = t - 1\n";
      OS << "  end do\n";
    }
    // Calls to later procedures only: the call graph is a dense DAG.
    for (int J = 1; J <= Spec.CallsPerProc; ++J) {
      int Callee = I + J;
      if (Callee >= Spec.Procs)
        break;
      OS << "  call w_" << Callee << "(";
      int NArgs = Spec.ArgsPerCall < 3 ? Spec.ArgsPerCall : 3;
      for (int A = 0; A < NArgs; ++A) {
        if (A)
          OS << ", ";
        switch (A % 3) {
        case 0: // Literal argument.
          OS << (I * 7 + J);
          break;
        case 1: // Pass-through argument.
          OS << (J % 2 ? "a" : "b");
          break;
        case 2: // Polynomial argument.
          OS << polyExpr(Spec.PolyDepth, I + J);
          break;
        }
      }
      // Pad missing formals (every worker takes exactly three).
      for (int A = NArgs; A < 3; ++A)
        OS << (A ? ", " : "") << 0;
      OS << ")\n";
    }
    OS << "end\n\n";
  }
  return OS.str();
}
