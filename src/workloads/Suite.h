//===- workloads/Suite.h - The benchmark program suite ----------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 12 MiniFort programs standing in for the paper's SPEC/PERFECT
/// FORTRAN suite (adm, doduc, fpppp, linpackd, matrix300, mdg, ocean,
/// qcd, simple, snasa7, spec77, trfd). Each program is generated
/// deterministically from the constant-flow idioms that produced its row
/// in the paper's Tables 2 and 3; DESIGN.md §2 documents the
/// substitution. The paper's reported numbers ride along for the
/// benches' paper-vs-measured output.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_SUITE_H
#define IPCP_WORKLOADS_SUITE_H

#include <string>
#include <vector>

namespace ipcp {

/// The paper's measured values for one program (Tables 2 and 3).
/// -1 marks a value the OCR of the paper lost.
struct PaperNumbers {
  int Polynomial;       ///< Table 2, polynomial + return JFs.
  int PassThrough;      ///< Table 2, pass-through + return JFs.
  int IntraConst;       ///< Table 2, intraprocedural + return JFs.
  int Literal;          ///< Table 2, literal + return JFs.
  int PolynomialNoRjf;  ///< Table 2, polynomial, no return JFs.
  int PassThroughNoRjf; ///< Table 2, pass-through, no return JFs.
  int PolyNoMod;        ///< Table 3, polynomial without MOD.
  int Complete;         ///< Table 3, complete propagation.
  int IntraOnly;        ///< Table 3, intraprocedural propagation.
};

/// Paper Table 1 characteristics (what the OCR preserved; -1 = lost).
struct PaperCharacteristics {
  int Lines;
  int Procs;
  int MeanLinesPerProc;
  int MedianLinesPerProc;
};

/// One suite member.
struct WorkloadProgram {
  std::string Name;
  std::string Source;
  PaperNumbers Paper;
  PaperCharacteristics PaperTable1;
};

/// Returns the suite, generated once and cached. Order matches the
/// paper's tables.
const std::vector<WorkloadProgram> &benchmarkSuite();

/// The three copy-stressing families (copychains, deepdiameter,
/// widefanout): scalar values relayed through array cells that the
/// classic framework declares opaque, so the copy lattice (--copy) has
/// something to recover. No paper rows — every Paper number is -1.
const std::vector<WorkloadProgram> &copyStressPrograms();

/// The 12 paper programs followed by the 3 copy-stress families: the
/// 15-program grid the golden tables, the driver's --suite lookup, and
/// the full-grid benches run. benchmarkSuite() stays the paper-faithful
/// 12 for the paper-vs-measured outputs.
const std::vector<WorkloadProgram> &extendedSuite();

/// Measured characteristics of a MiniFort source (Table 1 analogue).
/// Lines exclude comments and blanks, like the paper's counts.
struct ProgramCharacteristics {
  unsigned Lines = 0;
  unsigned Procs = 0;
  double MeanLinesPerProc = 0.0;
  double MedianLinesPerProc = 0.0;
};

/// Computes characteristics by scanning \p Source textually.
ProgramCharacteristics measureCharacteristics(const std::string &Source);

} // namespace ipcp

#endif // IPCP_WORKLOADS_SUITE_H
