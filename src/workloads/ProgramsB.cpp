//===- workloads/ProgramsB.cpp - matrix300, mdg, ocean, qcd ---------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGen.h"
#include "workloads/Programs.h"

using namespace ipcp;
using namespace ipcp::workloads;

template <typename EmitFn>
static void spread(int Total, int Chunk, int64_t BaseVal, EmitFn Emit) {
  int64_t Val = BaseVal;
  while (Total > 0) {
    int N = Total < Chunk ? Total : Chunk;
    Emit(N, Val);
    Total -= N;
    Val += 3;
  }
}

// matrix300: a large pass-through-only component (138 vs 122 intra) —
// the matrix dimension forwarded through the call chain — plus heavy
// gcp-found globals (122 vs 71 literal).
//   a=1, b=1, c=68, d=51, one literal chain (depth 2) with 16 inner uses.
WorkloadProgram workloads::makeMatrix300() {
  ProgramGen G("matrix300");
  G.setMinProcLines(14);
  G.litDirect(300, 1);
  G.localConstInMain(300, 1);
  spread(68, 10, 300, [&](int N, int64_t V) { G.globalAcrossCall(V, N); });
  spread(51, 9, 64, [&](int N, int64_t V) { G.globalImplicit(V, N); });
  G.passChain(300, 2, 16);
  G.polyShapedArg();
  G.fillerProc(50);
  G.fillerInMain(12);
  WorkloadProgram P;
  P.Name = "matrix300";
  P.Source = G.render();
  P.Paper = {138, 138, 122, 71, 138, 138, 18, 138, 69};
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}

// mdg: nearly flat across the kinds (41/41/40/31) with a one-constant
// return-jump-function effect and a one-edge pass-through separation.
//   b=30, d=7, rjfGlobalInit [1], global chain (depth 3, 0 inner uses);
//   the alias pair (2+1 reads) counts only under the fsa tier.
WorkloadProgram workloads::makeMdg() {
  ProgramGen G("mdg");
  G.setMinProcLines(16);
  G.aliasRecoverable(46, 2);
  G.localConstInMain(3, 5);
  spread(25, 9, 27, [&](int N, int64_t V) { G.localConstHost(V, N); });
  spread(7, 7, 125, [&](int N, int64_t V) { G.globalImplicit(V, N); });
  G.rjfGlobalInit(298, {1});
  G.passChainGlobal(216, 3, 0);
  G.polyShapedArg();
  G.fillerProc(90);
  G.fillerChain(3, 35);
  G.fillerInMain(18);
  WorkloadProgram P;
  P.Name = "mdg";
  P.Source = G.render();
  P.Paper = {41, 41, 40, 31, 40, 40, 31, 41, 31};
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}

// ocean: the return-jump-function showcase. A leaf initialization
// routine assigns constants to many globals; phase routines called from
// a flat main consume them (194 with return JFs, 62 without, literal
// sees only 57). Complete propagation exposes more uses behind a debug
// branch (204).
//   a=1, b=56, d=3, rjfGlobalInit phases [21,29,30,27,25] (U=132),
//   deadBranchExposed(11 uses; the folded guard gives back one).
WorkloadProgram workloads::makeOcean() {
  ProgramGen G("ocean");
  G.setMinProcLines(30);
  G.litDirect(360, 1);
  G.localConstInMain(128, 8);
  spread(48, 8, 60, [&](int N, int64_t V) { G.localConstHost(V, N); });
  G.globalImplicit(512, 3);
  G.rjfGlobalInit(100, {21, 29, 30, 27, 25});
  G.deadBranchExposed(44, 11);
  G.polyShapedArg();
  G.fillerProc(200);
  G.fillerProc(120);
  G.fillerProc(130);
  G.fillerChain(4, 60);
  G.fillerChain(3, 55);
  G.fillerInMain(70);
  WorkloadProgram P;
  P.Name = "ocean";
  P.Source = G.render();
  P.Paper = {194, 194, 194, 57, 62, 62, 79, 204, 56};
  P.PaperTable1 = {1728, -1, -1, -1};
  return P;
}

// qcd: essentially everything is already visible to the literal kind
// (180 across the board); intraprocedural propagation nearly ties (179).
//   a=1, b=168, c=11.
WorkloadProgram workloads::makeQcd() {
  ProgramGen G("qcd");
  G.setMinProcLines(14);
  G.litDirect(4, 1);
  G.localConstInMain(16, 10);
  spread(158, 11, 8, [&](int N, int64_t V) { G.localConstHost(V, N); });
  spread(11, 6, 73, [&](int N, int64_t V) { G.globalAcrossCall(V, N); });
  G.polyShapedArg();
  G.fillerProc(75);
  G.fillerChain(2, 35);
  G.fillerInMain(20);
  WorkloadProgram P;
  P.Name = "qcd";
  P.Source = G.render();
  P.Paper = {180, 180, 180, 180, 180, 180, 169, 180, 179};
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}
