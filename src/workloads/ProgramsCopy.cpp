//===- workloads/ProgramsCopy.cpp - copychains, deepdiameter, widefanout --===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The copy-stressing workload families. Unlike the twelve paper
/// programs these have no Tables 2/3 rows (every Paper number is -1);
/// they exist to exercise the copy lattice: scalar values relayed
/// through array cells that the classic framework declares permanently
/// opaque (docs/LANGUAGE.md, limitation 2). Each family plants both
/// copy-only idioms and classic-visible baselines, so every
/// configuration column is non-zero and the copy columns strictly
/// dominate their base columns (the golden table pins the exact cells).
///
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGen.h"
#include "workloads/Programs.h"

#include <sstream>
#include <string>
#include <vector>

using namespace ipcp;
using namespace ipcp::workloads;

namespace {

PaperNumbers noPaperRow() { return {-1, -1, -1, -1, -1, -1, -1, -1, -1}; }

/// A leaf consumer procedure using its formal \p Uses times.
std::string consumer(ProgramGen &G, int Uses) {
  std::string P = G.fresh("use");
  std::ostringstream OS;
  OS << "proc " << P << "(p)\n";
  std::vector<std::string> Lines;
  ProgramGen::emitUses(Lines, "p", Uses);
  for (const auto &L : Lines)
    OS << L << '\n';
  OS << "end\n";
  G.addProc(OS.str());
  return P;
}

/// A relay chain of \p Depth procedures, each stashing its formal into a
/// local array cell and forwarding the *cell*:
///
///   proc relay_d(x)        ! d < Depth
///     array buf(8)
///     buf(1) = x
///     print x + d          ! countable wherever x is constant
///     call relay_{d+1}(buf(1))
///   end
///
/// The buf(1) actual is an opaque load classically, so every
/// configuration without the copy lattice loses the constant at the
/// first hop; with it the whole chain folds to the root literal \p Val
/// and the innermost procedure's \p UsesInner uses count.
void cellRelayChain(ProgramGen &G, int64_t Val, int Depth, int UsesInner) {
  std::string Base = G.fresh("relay");
  for (int D = 1; D <= Depth; ++D) {
    std::ostringstream OS;
    OS << "proc " << Base << "_" << D << "(x)\n";
    if (D < Depth) {
      OS << "  array buf(8)\n"
         << "  buf(1) = x\n"
         << "  print x + " << D << "\n"
         << "  call " << Base << "_" << D + 1 << "(buf(1))\n";
    } else {
      std::vector<std::string> Lines;
      ProgramGen::emitUses(Lines, "x", UsesInner);
      for (const auto &L : Lines)
        OS << L << '\n';
    }
    OS << "end\n";
    G.addProc(OS.str());
  }
  G.addMainStmt("call " + Base + "_1(" + std::to_string(Val) + ")");
}

/// A literal stashed into a local cell, used in-procedure, and handed to
/// a consumer — the pure Const(c) cell fact, independent of any scalar's
/// stability. Counts \p Uses + 1 only under the copy lattice.
void constCellHandoff(ProgramGen &G, int64_t Val, int Uses) {
  std::string Use = consumer(G, Uses);
  std::string Host = G.fresh("cch");
  std::ostringstream OS;
  OS << "proc " << Host << "()\n"
     << "  array c(4)\n"
     << "  c(2) = " << Val << "\n"
     << "  print c(2) + 1\n"
     << "  call " << Use << "(c(2))\n"
     << "end\n";
  G.addProc(OS.str());
  G.addMainStmt("call " + Host + "()");
}

/// A chain of \p Depth procedures alternating direct formal forwarding
/// (even levels — classic pass-through sees through these) with
/// cell-mediated relays (odd levels — copy lattice only). Classic
/// configurations lose the root constant at the first odd hop; the copy
/// tier carries it the whole way down.
void mixedDepthChain(ProgramGen &G, int64_t Val, int Depth, int UsesInner) {
  std::string Base = G.fresh("deep");
  for (int D = 1; D <= Depth; ++D) {
    std::ostringstream OS;
    OS << "proc " << Base << "_" << D << "(x)\n";
    if (D < Depth) {
      if (D % 2) {
        OS << "  array t(4)\n"
           << "  t(1) = x\n"
           << "  call " << Base << "_" << D + 1 << "(t(1))\n";
      } else {
        OS << "  print x - " << D << "\n"
           << "  call " << Base << "_" << D + 1 << "(x)\n";
      }
    } else {
      std::vector<std::string> Lines;
      ProgramGen::emitUses(Lines, "x", UsesInner);
      for (const auto &L : Lines)
        OS << L << '\n';
    }
    OS << "end\n";
    G.addProc(OS.str());
  }
  G.addMainStmt("call " + Base + "_1(" + std::to_string(Val) + ")");
}

/// A hub bound to a literal, fanning out to \p Leaves consumers with a
/// rotation of actual shapes: a copy-of-x cell, a constant cell, the
/// formal itself, and a fresh literal. The two cell shapes count only
/// under the copy lattice; the other two are classic baselines, so the
/// fan-out mixes constant and copy actuals the way the issue asks.
void fanoutHub(ProgramGen &G, int64_t Val, int Leaves, int UsesEach) {
  std::string Hub = G.fresh("hub");
  std::ostringstream OS;
  OS << "proc " << Hub << "(x)\n"
     << "  array h(8)\n"
     << "  h(1) = x\n"
     << "  h(2) = " << Val + 100 << "\n";
  for (int L = 0; L < Leaves; ++L) {
    std::string Leaf = consumer(G, UsesEach);
    switch (L % 4) {
    case 0:
      OS << "  call " << Leaf << "(h(1))\n";
      break;
    case 1:
      OS << "  call " << Leaf << "(h(2))\n";
      break;
    case 2:
      OS << "  call " << Leaf << "(x)\n";
      break;
    case 3:
      OS << "  call " << Leaf << "(" << Val + L << ")\n";
      break;
    }
  }
  OS << "end\n";
  G.addProc(OS.str());
  G.addMainStmt("call " + Hub + "(" + std::to_string(Val) + ")");
}

} // namespace

// copychains: k-deep scalar copy relays through array cells. Two relay
// chains (depths 6 and 4), two const-cell handoffs, plus classic
// baselines so the non-copy columns stay non-zero.
WorkloadProgram workloads::makeCopyChains() {
  ProgramGen G("copychains");
  G.setMinProcLines(8);
  G.localConstInMain(31, 3);
  G.litDirect(12, 4);
  cellRelayChain(G, 42, 6, 8);
  cellRelayChain(G, 97, 4, 5);
  constCellHandoff(G, 9, 5);
  constCellHandoff(G, 21, 3);
  G.polyShapedArg();
  G.fillerProc(40);
  G.fillerInMain(12);
  WorkloadProgram P;
  P.Name = "copychains";
  P.Source = G.render();
  P.Paper = noPaperRow();
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}

// deepdiameter: call-graph diameter >= 14 with the constant injected at
// the root of a mixed direct/cell chain; a filler chain adds more
// constant-free depth and a classic pass chain keeps the pass-through
// column honest.
WorkloadProgram workloads::makeDeepDiameter() {
  ProgramGen G("deepdiameter");
  G.setMinProcLines(6);
  G.localConstInMain(5, 2);
  G.passChain(64, 4, 3);
  mixedDepthChain(G, 123, 14, 10);
  constCellHandoff(G, 55, 4);
  G.fillerChain(12, 4);
  G.fillerProc(30);
  WorkloadProgram P;
  P.Name = "deepdiameter";
  P.Source = G.render();
  P.Paper = noPaperRow();
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}

// widefanout: one hub calling 24 leaves with a mix of constant and copy
// actuals (the rotation in fanoutHub), plus a global-across-call group
// and filler bulk.
WorkloadProgram workloads::makeWideFanout() {
  ProgramGen G("widefanout");
  G.setMinProcLines(6);
  G.localConstInMain(3, 2);
  fanoutHub(G, 11, 24, 3);
  G.globalAcrossCall(17, 4);
  G.polyShapedArg();
  G.fillerProc(36);
  G.fillerInMain(10);
  WorkloadProgram P;
  P.Name = "widefanout";
  P.Source = G.render();
  P.Paper = noPaperRow();
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}
