//===- workloads/RandomProgram.h - Seeded random programs -------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random MiniFort program generator for property
/// testing: every generated program is semantically valid (names
/// declared, arities correct, call graph acyclic unless requested), and
/// the same spec always yields the same text. The fuzz tests sweep seeds
/// and assert the analyzer's structural invariants — kind-hierarchy
/// monotonicity, strategy agreement, transform validity — on each.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_RANDOMPROGRAM_H
#define IPCP_WORKLOADS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace ipcp {

/// Parameters of one random program.
struct RandomSpec {
  uint64_t Seed = 1;
  int Procs = 6;           ///< Worker procedures beyond main.
  int Globals = 3;         ///< Global scalars (first one initialized).
  int MaxStmtsPerProc = 10;///< Top-level statements per body.
  int MaxExprDepth = 3;    ///< Operator nesting in expressions.
  bool AllowRecursion = false; ///< Permit self-calls (guarded).
};

/// Generates the program deterministically from \p Spec.
std::string generateRandomProgram(const RandomSpec &Spec);

} // namespace ipcp

#endif // IPCP_WORKLOADS_RANDOMPROGRAM_H
