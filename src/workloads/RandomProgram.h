//===- workloads/RandomProgram.h - Seeded random programs -------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random MiniFort program generator for property
/// testing: every generated program is semantically valid (names
/// declared, arities correct, call graph acyclic unless requested), and
/// the same spec always yields the same text. The fuzz tests sweep seeds
/// and assert the analyzer's structural invariants — kind-hierarchy
/// monotonicity, strategy agreement, transform validity — on each.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_RANDOMPROGRAM_H
#define IPCP_WORKLOADS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace ipcp {

/// Parameters of one random program.
struct RandomSpec {
  uint64_t Seed = 1;
  int Procs = 6;           ///< Worker procedures beyond main.
  int Globals = 3;         ///< Global scalars (first one initialized).
  int MaxStmtsPerProc = 10;///< Top-level statements per body.
  int MaxExprDepth = 3;    ///< Operator nesting in expressions.
  bool AllowRecursion = false; ///< Permit self-calls (guarded).
  /// Emit bounded pre-tested WHILE loops (counter initialized before the
  /// loop, incremented inside, so the common case terminates without
  /// leaning on the interpreter's step budget).
  bool AllowWhile = true;
  /// Declare arrays (one global, occasional locals) and emit element
  /// reads and writes. Indices are usually in-bounds literals; a
  /// variable index occasionally traps, which the oracle treats as
  /// observable behavior like any other.
  bool AllowArrays = true;
  /// Let READ target any visible scalar — globals and by-reference
  /// formals, not just locals — so BOTTOM enters through every binding
  /// class.
  bool ReadAnyScalar = true;
  /// Deliberately emit the aliasing call shapes (the same variable bound
  /// to two reference formals; a global passed bare into a formal) that
  /// exercise the RefAlias unstable-symbol machinery.
  bool AllowAliasingCalls = true;
  /// Deliberately emit copy-relay shapes: a literal or scalar stashed
  /// into a constant-index array cell immediately before a call that
  /// passes the cell, so classically-opaque loads the copy lattice
  /// resolves appear as call actuals. Off by default so every pre-copy
  /// seed generates byte-identical text; check-copy sweeps turn it on.
  bool CopyRelayStores = false;
};

/// Generates the program deterministically from \p Spec.
std::string generateRandomProgram(const RandomSpec &Spec);

} // namespace ipcp

#endif // IPCP_WORKLOADS_RANDOMPROGRAM_H
