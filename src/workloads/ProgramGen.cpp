//===- workloads/ProgramGen.cpp - Workload generator toolkit --------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGen.h"

#include <sstream>

using namespace ipcp;

void ProgramGen::emitUses(std::vector<std::string> &Out,
                          const std::string &Var, int Uses,
                          const std::string &Indent) {
  // Each statement reads Var exactly once; the multiplier varies so the
  // generated code is not a wall of identical lines.
  for (int I = 0; I < Uses; ++I)
    Out.push_back(Indent + "print " + Var + " * " +
                  std::to_string(I % 7 + 2));
}

/// Appends roughly \p Lines lines of constant-free, call-free work over a
/// READ-initialized scalar \p T.
static void emitPadding(std::vector<std::string> &Out, const std::string &T,
                        int Lines) {
  int Block = 0;
  for (int Emitted = 0; Emitted < Lines; ++Block) {
    switch (Block % 3) {
    case 0:
      Out.push_back("  if (" + T + " > 0) then");
      Out.push_back("    " + T + " = " + T + " - 3");
      Out.push_back("  end if");
      Emitted += 3;
      break;
    case 1:
      Out.push_back("  while (" + T + " > 16)");
      Out.push_back("    " + T + " = " + T + " / 2");
      Out.push_back("  end while");
      Emitted += 3;
      break;
    case 2:
      Out.push_back("  " + T + " = " + T + " * 5 + 1");
      Out.push_back("  print " + T + " - 2");
      Emitted += 2;
      break;
    }
  }
}

void ProgramGen::addGroupProc(const std::string &ProcName,
                              const std::string &FormalList,
                              std::vector<std::string> Decls,
                              std::vector<std::string> Stmts,
                              bool PadBeforeTrailingCall) {
  // Pad short procedures to the program's target size. The padding
  // variable is READ-initialized, so nothing it computes is constant.
  int Have = static_cast<int>(Decls.size() + Stmts.size()) + 2;
  if (Have < MinProcLines) {
    std::string T = "pad";
    Decls.push_back("  integer " + T);
    std::vector<std::string> Pad;
    Pad.push_back("  read " + T);
    emitPadding(Pad, T, MinProcLines - Have - 1);
    // Keep a trailing call (e.g. a phase's helper call) the last
    // statement so leaf/non-leaf structure is preserved either way.
    if (PadBeforeTrailingCall && !Stmts.empty()) {
      Stmts.insert(Stmts.end() - 1, Pad.begin(), Pad.end());
    } else {
      Stmts.insert(Stmts.end(), Pad.begin(), Pad.end());
    }
  }

  std::ostringstream OS;
  OS << "proc " << ProcName << "(" << FormalList << ")\n";
  for (const auto &D : Decls)
    OS << D << '\n';
  for (const auto &S : Stmts)
    OS << S << '\n';
  OS << "end\n";
  addProc(OS.str());
}

const std::string &ProgramGen::spacerProc() {
  if (!Spacer.empty())
    return Spacer;
  Spacer = fresh("spacer");
  std::string Leaf = Spacer + "_leaf";
  addGroupProc(Leaf, "", {"  integer q"}, {"  read q", "  print q"});
  addGroupProc(Spacer, "", {"  integer s"},
               {"  read s", "  print s + 1", "  call " + Leaf + "()"},
               /*PadBeforeTrailingCall=*/true);
  return Spacer;
}

void ProgramGen::litDirect(int64_t Val, int Uses) {
  std::string P = fresh("ld");
  std::vector<std::string> Stmts;
  emitUses(Stmts, "p", Uses);
  addGroupProc(P, "p", {}, std::move(Stmts));
  addMainStmt("call " + P + "(" + std::to_string(Val) + ")");
}

void ProgramGen::localConstHost(int64_t Val, int Uses) {
  std::string P = fresh("lc");
  std::vector<std::string> Stmts = {"  v = " + std::to_string(Val)};
  emitUses(Stmts, "v", Uses);
  addGroupProc(P, "", {"  integer v"}, std::move(Stmts));
  addMainStmt("call " + P + "()");
}

void ProgramGen::localConstInMain(int64_t Val, int Uses) {
  std::string V = fresh("mv");
  addMainDecl(V);
  addMainStmt(V + " = " + std::to_string(Val));
  std::vector<std::string> Lines;
  emitUses(Lines, V, Uses, "");
  for (const auto &L : Lines)
    addMainStmt(L);
}

void ProgramGen::globalAcrossCall(int64_t Val, int Uses) {
  std::string G = fresh("gac");
  addGlobalLine("global " + G);
  addMainStmt(G + " = " + std::to_string(Val));
  addMainStmt("call " + spacerProc() + "()");
  std::vector<std::string> Lines;
  emitUses(Lines, G, Uses, "");
  for (const auto &L : Lines)
    addMainStmt(L);
}

void ProgramGen::globalImplicit(int64_t Val, int Uses) {
  std::string G = fresh("gi");
  addGlobalLine("global " + G);
  std::string P = fresh("giu");
  std::vector<std::string> Stmts;
  emitUses(Stmts, G, Uses);
  addGroupProc(P, "", {}, std::move(Stmts));
  addMainStmt(G + " = " + std::to_string(Val));
  addMainStmt("call " + spacerProc() + "()");
  addMainStmt("call " + P + "()");
}

void ProgramGen::globalImplicitDirect(int64_t Val, int Uses) {
  std::string G = fresh("gd");
  addGlobalLine("global " + G);
  std::string P = fresh("gdu");
  std::vector<std::string> Stmts;
  emitUses(Stmts, G, Uses);
  addGroupProc(P, "", {}, std::move(Stmts));
  addMainStmt(G + " = " + std::to_string(Val));
  addMainStmt("call " + P + "()");
}

void ProgramGen::passChain(int64_t Val, int Depth, int UsesInner) {
  std::string Base = fresh("pc");
  for (int D = 1; D <= Depth; ++D) {
    std::string P = Base + "_" + std::to_string(D);
    std::vector<std::string> Stmts;
    bool Trailing = false;
    if (D < Depth) {
      Stmts.push_back("  call " + Base + "_" + std::to_string(D + 1) +
                      "(x)");
      Trailing = true;
    } else {
      emitUses(Stmts, "x", UsesInner);
    }
    addGroupProc(P, "x", {}, std::move(Stmts), Trailing);
  }
  addMainStmt("call " + Base + "_1(" + std::to_string(Val) + ")");
}

void ProgramGen::passChainGlobal(int64_t Val, int Depth, int UsesInner) {
  std::string G = fresh("gk");
  addGlobalLine("global " + G);
  std::string Base = fresh("gc");
  for (int D = 1; D <= Depth; ++D) {
    std::string P = Base + "_" + std::to_string(D);
    std::vector<std::string> Stmts;
    bool Trailing = false;
    if (D < Depth) {
      Stmts.push_back("  call " + Base + "_" + std::to_string(D + 1) +
                      "(x)");
      Trailing = true;
    } else {
      emitUses(Stmts, "x", UsesInner);
    }
    addGroupProc(P, "x", {}, std::move(Stmts), Trailing);
  }
  addMainStmt(G + " = " + std::to_string(Val));
  addMainStmt("call " + spacerProc() + "()");
  addMainStmt("call " + Base + "_1(" + G + ")");
}

void ProgramGen::rjfCallerUse(int64_t Val, int Uses) {
  std::string Set = fresh("rset");
  addGroupProc(Set, "o", {}, {"  o = " + std::to_string(Val)});
  std::string V = fresh("rv");
  addMainDecl(V);
  addMainStmt("call " + Set + "(" + V + ")");
  std::vector<std::string> Lines;
  emitUses(Lines, V, Uses, "");
  for (const auto &L : Lines)
    addMainStmt(L);
}

void ProgramGen::rjfForwarded(int64_t Val, int Uses) {
  std::string Set = fresh("rset");
  addGroupProc(Set, "o", {}, {"  o = " + std::to_string(Val)});
  std::string Use = fresh("ruse");
  std::vector<std::string> Stmts;
  emitUses(Stmts, "p", Uses);
  addGroupProc(Use, "p", {}, std::move(Stmts));
  std::string V = fresh("rv");
  addMainDecl(V);
  addMainStmt("call " + Set + "(" + V + ")");
  addMainStmt("call " + Use + "(" + V + ")");
}

void ProgramGen::rjfGlobalInit(int64_t Val,
                               const std::vector<int> &PhaseUses) {
  std::string G = fresh("rg");
  addGlobalLine("global " + G);
  std::string Init = fresh("rginit");
  // The initializer must stay a leaf: its return jump function is what
  // carries the constant past the kill. No padding risk — padding never
  // adds calls.
  addGroupProc(Init, "", {}, {"  " + G + " = " + std::to_string(Val)});
  addMainStmt("call " + Init + "()");

  // Each phase uses the global, then does non-leaf helper work. The
  // helper call makes the phase's own return jump function for the
  // global imprecise under worst-case kill assumptions, so without MOD
  // only the first phase sees the constant.
  std::string Helper = fresh("rghelp");
  addGroupProc(Helper, "", {"  integer h"}, {"  read h", "  print h"});

  for (size_t Phase = 0; Phase != PhaseUses.size(); ++Phase) {
    std::string P = fresh("rgphase");
    std::vector<std::string> Stmts;
    emitUses(Stmts, G, PhaseUses[Phase]);
    Stmts.push_back("  call " + Helper + "()");
    addGroupProc(P, "", {}, std::move(Stmts),
                 /*PadBeforeTrailingCall=*/true);
    addMainStmt("call " + P + "()");
  }
}

void ProgramGen::deadBranchExposed(int64_t Val, int Uses) {
  std::string Prod = fresh("dbp");
  std::string Cons = fresh("dbu");
  std::vector<std::string> ConsStmts;
  emitUses(ConsStmts, "p", Uses);
  addGroupProc(Cons, "p", {}, std::move(ConsStmts));
  std::vector<std::string> ProdStmts = {
      "  v = " + std::to_string(Val),
      "  if (flag == 1) then",
      "    read v",
      "  end if",
      "  call " + Cons + "(v)",
  };
  addGroupProc(Prod, "flag", {"  integer v"}, std::move(ProdStmts),
               /*PadBeforeTrailingCall=*/true);
  // The flag argument is an expression, not a literal, so the literal
  // jump function never sees this group at all (the guard's condition
  // use would otherwise perturb the literal column).
  addMainStmt("call " + Prod + "(0 + 0)");
}

void ProgramGen::aliasRecoverable(int64_t Val, int Uses) {
  // The host binds one local to both by-reference formals; the callee
  // reads b \p Uses times and only then stores through a. The
  // flow-insensitive aliasing rule condemns the whole modified pair, so
  // every classic configuration counts zero here; the flow-sensitive
  // tier proves the reads precede the one store and recovers them (plus
  // the read of b feeding the store itself).
  std::string F = fresh("arf");
  std::vector<std::string> Stmts;
  emitUses(Stmts, "b", Uses);
  Stmts.push_back("  a = b + 1");
  addGroupProc(F, "a, b", {}, std::move(Stmts));
  std::string Host = fresh("arh");
  addGroupProc(Host, "", {"  integer v"},
               {"  v = " + std::to_string(Val), "  call " + F + "(v, v)"},
               /*PadBeforeTrailingCall=*/true);
  addMainStmt("call " + Host + "()");
}

void ProgramGen::optimisticSwapChain(int64_t Val, int Uses) {
  // The host copies its literal-bound formal into a pair of locals,
  // shuffles them around a loop, and forwards the survivor. Every load
  // inside the host is a plain SCCP constant — visible to each
  // interprocedural configuration, exactly litDirect's profile — but
  // the forwarded argument sits behind loop phis that a single-pass
  // pessimistic numbering pins opaque, so only the optimistic tier
  // carries \p Val into the leaf's \p Uses.
  std::string Leaf = fresh("osl");
  std::vector<std::string> LeafStmts;
  emitUses(LeafStmts, "p", Uses);
  addGroupProc(Leaf, "p", {}, std::move(LeafStmts));
  std::string Host = fresh("osh");
  std::vector<std::string> Stmts = {
      "  x = n",
      "  y = n",
      "  i = 0",
      "  while (i < 2)",
      "    t = x",
      "    x = y",
      "    y = t",
      "    i = i + 1",
      "  end while",
      "  call " + Leaf + "(x * 1)",
  };
  addGroupProc(Host, "n",
               {"  integer x", "  integer y", "  integer t", "  integer i"},
               std::move(Stmts), /*PadBeforeTrailingCall=*/true);
  addMainStmt("call " + Host + "(" + std::to_string(Val) + ")");
}

void ProgramGen::polyShapedArg() {
  std::string Use = fresh("ps");
  addGroupProc(Use, "q", {}, {"  print q"});
  std::string Host = fresh("psh");
  addGroupProc(Host, "a, b", {},
               {"  call " + Use + "(a * 2 + b - 1)"},
               /*PadBeforeTrailingCall=*/true);
  std::string A = fresh("pa"), B = fresh("pb");
  addMainDecl(A);
  addMainDecl(B);
  addMainStmt("read " + A);
  addMainStmt("read " + B);
  addMainStmt("call " + Host + "(" + A + ", " + B + ")");
}

/// Emits roughly \p Lines lines of constant-free computation over the
/// given (already-declared, READ-initialized) scalar names into \p Out.
static void emitFillerBody(std::vector<std::string> &Out,
                           const std::string &T1, const std::string &T2,
                           const std::string &Iv, const std::string &Arr,
                           int Lines, const std::string &Indent) {
  int Emitted = 0;
  int Block = 0;
  while (Emitted < Lines) {
    switch (Block % 3) {
    case 0:
      Out.push_back(Indent + "do " + Iv + " = 1, " + T1);
      Out.push_back(Indent + "  " + Arr + "(" + Iv + " % 64 + 1) = " + T2 +
                    " + " + Iv);
      Out.push_back(Indent + "  " + T2 + " = " + T2 + " + " + Arr + "(" +
                    Iv + " % 64 + 1)");
      Out.push_back(Indent + "end do");
      Emitted += 4;
      break;
    case 1:
      Out.push_back(Indent + "if (" + T1 + " > " + T2 + ") then");
      Out.push_back(Indent + "  " + T2 + " = " + T2 + " * 3 - " + T1);
      Out.push_back(Indent + "else");
      Out.push_back(Indent + "  " + T2 + " = " + T2 + " + 7");
      Out.push_back(Indent + "end if");
      Emitted += 5;
      break;
    case 2:
      Out.push_back(Indent + "while (" + T2 + " > " + T1 + ")");
      Out.push_back(Indent + "  " + T2 + " = " + T2 + " - " + T1 + " - 1");
      Out.push_back(Indent + "end while");
      Out.push_back(Indent + "print " + T2 + " + " + T1);
      Emitted += 4;
      break;
    }
    ++Block;
  }
}

void ProgramGen::fillerProc(int Lines) {
  std::string P = fresh("work");
  std::ostringstream Proc;
  Proc << "proc " << P << "()\n"
       << "  integer t1, t2, i\n"
       << "  array w_" << P << "(64)\n"
       << "  read t1\n"
       << "  read t2\n";
  std::vector<std::string> Body;
  emitFillerBody(Body, "t1", "t2", "i", "w_" + P, Lines, "  ");
  for (const auto &L : Body)
    Proc << L << '\n';
  Proc << "end\n";
  addProc(Proc.str());
  addMainStmt("call " + P + "()");
}

void ProgramGen::fillerInMain(int Lines) {
  std::string T1 = fresh("ft"), T2 = fresh("fu"), Iv = fresh("fi");
  std::string Arr = fresh("fw");
  addMainDecl(T1);
  addMainDecl(T2);
  addMainDecl(Iv);
  addGlobalLine("array " + Arr + "(64)");
  addMainStmt("read " + T1);
  addMainStmt("read " + T2);
  std::vector<std::string> Body;
  emitFillerBody(Body, T1, T2, Iv, Arr, Lines, "");
  for (const auto &L : Body)
    addMainStmt(L);
}

void ProgramGen::fillerChain(int Depth, int LinesEach) {
  std::string Base = fresh("fc");
  for (int D = Depth; D >= 1; --D) {
    std::ostringstream Proc;
    Proc << "proc " << Base << "_" << D << "(n)\n"
         << "  integer t1, t2, i\n"
         << "  array w(64)\n"
         << "  read t1\n"
         << "  t2 = n\n";
    std::vector<std::string> Body;
    emitFillerBody(Body, "t1", "t2", "i", "w", LinesEach, "  ");
    for (const auto &L : Body)
      Proc << L << '\n';
    if (D < Depth)
      Proc << "  call " << Base << "_" << D + 1 << "(t2)\n";
    Proc << "end\n";
    addProc(Proc.str());
  }
  std::string Seed = fresh("fs");
  addMainDecl(Seed);
  addMainStmt("read " + Seed);
  addMainStmt("call " + Base + "_1(" + Seed + ")");
}

std::string ProgramGen::render() const {
  std::ostringstream OS;
  OS << "program " << Name << '\n';
  for (const auto &G : GlobalLines)
    OS << G << '\n';
  OS << '\n';
  OS << "proc main()\n";
  for (const auto &D : MainDecls)
    OS << "  integer " << D << '\n';
  for (const auto &S : MainBody) {
    // Main statements are stored unindented (group emitters may already
    // contain their own nesting); re-indent uniformly by two spaces.
    OS << "  " << S << '\n';
  }
  OS << "end\n\n";
  for (const auto &P : Procs)
    OS << P << '\n';
  return OS.str();
}
