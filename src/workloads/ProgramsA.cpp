//===- workloads/ProgramsA.cpp - adm, doduc, fpppp, linpackd --------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Knob derivations (see DESIGN.md §4): each program's group sizes were
/// solved from its row of Tables 2 and 3; the comments on each generator
/// record the solution.
///
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGen.h"
#include "workloads/Programs.h"

using namespace ipcp;
using namespace ipcp::workloads;

/// Splits \p Total uses into chunks of at most \p Chunk, invoking
/// \p Emit(ChunkUses, Value) once per chunk. Distributing one logical
/// group over many procedures keeps the generated programs modular
/// (Table 1's "fairly high degree of modularity").
template <typename EmitFn>
static void spread(int Total, int Chunk, int64_t BaseVal, EmitFn Emit) {
  int64_t Val = BaseVal;
  while (Total > 0) {
    int N = Total < Chunk ? Total : Chunk;
    Emit(N, Val);
    Total -= N;
    Val += 3; // Vary the constants so the programs are not degenerate.
  }
}

// adm: all four kinds tie at 110; MOD removal collapses to 25;
// intraprocedural propagation reaches 105.
//   litDirect a=5, localConst b=20, globalAcrossCall c=85.
WorkloadProgram workloads::makeAdm() {
  ProgramGen G("adm");
  G.setMinProcLines(18);
  spread(5, 5, 11, [&](int N, int64_t V) { G.litDirect(V, N); });
  G.localConstInMain(64, 6);
  spread(14, 7, 100, [&](int N, int64_t V) { G.localConstHost(V, N); });
  spread(85, 9, 40, [&](int N, int64_t V) { G.globalAcrossCall(V, N); });
  G.polyShapedArg();
  G.fillerProc(60);
  G.fillerProc(45);
  G.fillerChain(3, 30);
  G.fillerInMain(24);
  WorkloadProgram P;
  P.Name = "adm";
  P.Source = G.render();
  P.Paper = {110, 110, 110, 110, 110, 110, 25, 110, 105};
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}

// doduc: almost everything is literal actuals consumed immediately
// (289/289/289/288, still 288 without MOD) while intraprocedural
// propagation finds only 3.
//   litDirect a=278, swap-chain host 6 (litDirect's profile, so
//   a + 6 = 284 keeps every classic column), localConst b=3,
//   rjfForwarded (1 inner use) x1; the precision tier adds the swap
//   chain's 5 leaf uses (ogvn) and the alias pair's 4+1 reads (fsa).
WorkloadProgram workloads::makeDoduc() {
  ProgramGen G("doduc");
  G.setMinProcLines(14);
  spread(278, 12, 5, [&](int N, int64_t V) { G.litDirect(V, N); });
  G.optimisticSwapChain(23, 5);
  G.aliasRecoverable(17, 4);
  G.localConstInMain(8, 3);
  G.rjfForwarded(31, 1);
  G.polyShapedArg();
  G.fillerProc(80);
  G.fillerProc(55);
  G.fillerChain(4, 25);
  G.fillerInMain(30);
  WorkloadProgram P;
  P.Name = "doduc";
  P.Source = G.render();
  P.Paper = {289, 289, 289, 288, 287, 287, 288, 289, 3};
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}

// fpppp: the kinds separate (60/60/54/49), return jump functions matter
// a little (56 without), and the bulk of the code sits in one large
// routine (the paper notes fpppp's skewed size distribution).
//   a=7, b=18, c=20, d=3, literal chains 2x(depth 2, 3 inner uses),
//   rjfCallerUse(1), rjfForwarded(2 inner uses).
WorkloadProgram workloads::makeFpppp() {
  ProgramGen G("fpppp");
  G.setMinProcLines(16);
  spread(7, 4, 9, [&](int N, int64_t V) { G.litDirect(V, N); });
  spread(18, 9, 21, [&](int N, int64_t V) { G.localConstHost(V, N); });
  spread(20, 10, 55, [&](int N, int64_t V) { G.globalAcrossCall(V, N); });
  G.globalImplicit(17, 3);
  G.passChain(33, 2, 3);
  G.passChain(35, 2, 3);
  G.rjfCallerUse(71, 1);
  G.rjfForwarded(73, 2);
  G.polyShapedArg();
  // One dominant routine: a single large filler proc.
  G.fillerProc(400);
  G.fillerProc(30);
  G.fillerInMain(20);
  WorkloadProgram P;
  P.Name = "fpppp";
  P.Source = G.render();
  P.Paper = {60, 60, 54, 49, 56, 56, 34, 60, 38};
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}

// linpackd: literal misses many constants that gcp finds (170 vs 94);
// MOD removal is devastating (33).
//   a=20, b=13, c=61, d=76.
WorkloadProgram workloads::makeLinpackd() {
  ProgramGen G("linpackd");
  G.setMinProcLines(16);
  spread(20, 10, 100, [&](int N, int64_t V) { G.litDirect(V, N); });
  spread(13, 7, 10, [&](int N, int64_t V) { G.localConstHost(V, N); });
  spread(61, 9, 200, [&](int N, int64_t V) { G.globalAcrossCall(V, N); });
  spread(76, 10, 500, [&](int N, int64_t V) { G.globalImplicit(V, N); });
  G.polyShapedArg();
  G.fillerProc(70);
  G.fillerChain(2, 40);
  G.fillerInMain(16);
  WorkloadProgram P;
  P.Name = "linpackd";
  P.Source = G.render();
  P.Paper = {170, 170, 170, 94, 170, 170, 33, 170, 74};
  P.PaperTable1 = {-1, -1, -1, -1};
  return P;
}
