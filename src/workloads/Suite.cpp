//===- workloads/Suite.cpp - The benchmark program suite ------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Suite.h"

#include "workloads/Programs.h"

#include <algorithm>
#include <sstream>

using namespace ipcp;

const std::vector<WorkloadProgram> &ipcp::benchmarkSuite() {
  static const std::vector<WorkloadProgram> Suite = [] {
    std::vector<WorkloadProgram> S;
    S.push_back(workloads::makeAdm());
    S.push_back(workloads::makeDoduc());
    S.push_back(workloads::makeFpppp());
    S.push_back(workloads::makeLinpackd());
    S.push_back(workloads::makeMatrix300());
    S.push_back(workloads::makeMdg());
    S.push_back(workloads::makeOcean());
    S.push_back(workloads::makeQcd());
    S.push_back(workloads::makeSimple());
    S.push_back(workloads::makeSnasa7());
    S.push_back(workloads::makeSpec77());
    S.push_back(workloads::makeTrfd());
    return S;
  }();
  return Suite;
}

const std::vector<WorkloadProgram> &ipcp::copyStressPrograms() {
  static const std::vector<WorkloadProgram> Programs = [] {
    std::vector<WorkloadProgram> S;
    S.push_back(workloads::makeCopyChains());
    S.push_back(workloads::makeDeepDiameter());
    S.push_back(workloads::makeWideFanout());
    return S;
  }();
  return Programs;
}

const std::vector<WorkloadProgram> &ipcp::extendedSuite() {
  static const std::vector<WorkloadProgram> Suite = [] {
    std::vector<WorkloadProgram> S = benchmarkSuite();
    for (const WorkloadProgram &P : copyStressPrograms())
      S.push_back(P);
    return S;
  }();
  return Suite;
}

ProgramCharacteristics
ipcp::measureCharacteristics(const std::string &Source) {
  ProgramCharacteristics C;
  std::vector<unsigned> ProcLines;
  bool InProc = false;
  unsigned CurProcLines = 0;

  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    // Strip comments, then decide blankness (the paper's line counts
    // "exclude comments and blank lines").
    size_t Bang = Line.find('!');
    std::string Code = Bang == std::string::npos ? Line
                                                 : Line.substr(0, Bang);
    size_t First = Code.find_first_not_of(" \t\r");
    if (First == std::string::npos)
      continue;
    ++C.Lines;

    std::string Trimmed = Code.substr(First);
    if (Trimmed.rfind("proc ", 0) == 0) {
      InProc = true;
      CurProcLines = 1;
      continue;
    }
    if (InProc) {
      ++CurProcLines;
      if (Trimmed == "end") {
        ProcLines.push_back(CurProcLines);
        InProc = false;
      }
    }
  }

  C.Procs = static_cast<unsigned>(ProcLines.size());
  if (!ProcLines.empty()) {
    unsigned Total = 0;
    for (unsigned N : ProcLines)
      Total += N;
    C.MeanLinesPerProc = double(Total) / double(ProcLines.size());
    std::sort(ProcLines.begin(), ProcLines.end());
    size_t Mid = ProcLines.size() / 2;
    C.MedianLinesPerProc =
        ProcLines.size() % 2 ? double(ProcLines[Mid])
                             : (double(ProcLines[Mid - 1]) +
                                double(ProcLines[Mid])) /
                                   2.0;
  }
  return C;
}
