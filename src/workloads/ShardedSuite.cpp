//===- workloads/ShardedSuite.cpp - Multi-process sharded runs ------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/ShardedSuite.h"

#include "ipcp/AnalysisSession.h"
#include "lang/Parser.h"
#include "serve/Json.h"
#include "support/Subprocess.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <unistd.h>
#include <utility>

using namespace ipcp;

namespace {

using Clock = std::chrono::steady_clock;

bool readFile(const std::string &Path, std::string &Out, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad()) {
    Error = "failed reading '" + Path + "'";
    return false;
  }
  Out = Buf.str();
  return true;
}

bool writeFile(const std::string &Path, const std::string &Content,
               std::string &Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    Error = "cannot write '" + Path + "'";
    return false;
  }
  Out << Content;
  Out.flush();
  if (!Out) {
    Error = "failed writing '" + Path + "'";
    return false;
  }
  return true;
}

/// Exact-key-set validation, same discipline as the summary format: an
/// unknown field is as loud a failure as a missing one.
bool checkKeys(const JsonValue &Obj,
               std::initializer_list<const char *> Keys, const char *What,
               std::string &Error) {
  for (const char *K : Keys)
    if (!Obj.find(K)) {
      Error = std::string(What) + " is missing field '" + K + "'";
      return false;
    }
  if (Obj.members().size() != Keys.size()) {
    for (const auto &[K, V] : Obj.members()) {
      bool Known = false;
      for (const char *Want : Keys)
        Known = Known || K == Want;
      if (!Known) {
        Error = std::string(What) + " has unknown field '" + K + "'";
        return false;
      }
    }
  }
  return true;
}

JsonValue configJson(const JumpFunctionOptions &O) {
  JsonValue Cfg = JsonValue::object();
  Cfg.set("jf", jumpFunctionKindToken(O.Kind));
  Cfg.set("rjf", O.UseReturnJumpFunctions);
  Cfg.set("mod", O.UseMod);
  Cfg.set("gsa", O.UseGatedSsa);
  // Elided at defaults, so pre-precision job files round-trip unchanged.
  if (O.FlowSensitiveAlias)
    Cfg.set("fsa", true);
  if (O.OptimisticVn)
    Cfg.set("ogvn", true);
  if (O.CopyPropagation)
    Cfg.set("copy", true);
  return Cfg;
}

bool parseConfigJson(const JsonValue &Cfg, JumpFunctionOptions &O,
                     std::string &Error) {
  if (!Cfg.isObject()) {
    Error = "shard job 'config' must be an object";
    return false;
  }
  // Same exact-key discipline as checkKeys, with the precision flags as
  // the only optional members (absent in pre-precision job files).
  for (const auto &[K, V] : Cfg.members()) {
    (void)V;
    bool Known = false;
    for (const char *Want : {"gsa", "jf", "mod", "rjf", "fsa", "ogvn", "copy"})
      Known = Known || K == Want;
    if (!Known) {
      Error = "shard job config has unknown field '" + K + "'";
      return false;
    }
  }
  for (const char *K : {"gsa", "jf", "mod", "rjf"})
    if (!Cfg.find(K)) {
      Error = std::string("shard job config is missing field '") + K + "'";
      return false;
    }
  const JsonValue *Jf = Cfg.find("jf");
  if (!Jf->isString() || !parseJumpFunctionKindToken(Jf->str(), O.Kind)) {
    Error = "shard job config.jf is not a jump-function kind";
    return false;
  }
  const std::pair<const char *, bool *> Flags[] = {
      {"rjf", &O.UseReturnJumpFunctions},
      {"mod", &O.UseMod},
      {"gsa", &O.UseGatedSsa}};
  for (auto [Key, Dst] : Flags) {
    const JsonValue *V = Cfg.find(Key);
    if (!V->isBool()) {
      Error = std::string("shard job config.") + Key + " must be a boolean";
      return false;
    }
    *Dst = V->boolean();
  }
  // Optional precision flags (absent in pre-precision job files).
  const std::pair<const char *, bool *> OptFlags[] = {
      {"fsa", &O.FlowSensitiveAlias},
      {"ogvn", &O.OptimisticVn},
      {"copy", &O.CopyPropagation}};
  for (auto [Key, Dst] : OptFlags) {
    const JsonValue *V = Cfg.find(Key);
    if (V && !V->isBool()) {
      Error = std::string("shard job config.") + Key + " must be a boolean";
      return false;
    }
    *Dst = V ? V->boolean() : false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Job and result files
//===----------------------------------------------------------------------===//

std::string ipcp::serializeShardJob(const ShardJob &Job) {
  JsonValue Doc = JsonValue::object();
  Doc.set("format", "ipcp-shard-job");
  Doc.set("version", 1);
  Doc.set("mode", Job.JobMode == ShardJob::Mode::Cells ? "cells" : "summary");
  Doc.set("config_set", Job.ConfigSet);
  Doc.set("emit_summaries", Job.EmitSummaries);
  Doc.set("config", configJson(Job.Config));
  JsonValue Procs = JsonValue::array();
  for (ProcId P : Job.Procs)
    Procs.push(JsonValue(static_cast<int64_t>(P)));
  Doc.set("procs", std::move(Procs));
  Doc.set("crash_after_cells", Job.CrashAfterCells);
  JsonValue Programs = JsonValue::array();
  for (const ShardJobProgram &P : Job.Programs) {
    JsonValue E = JsonValue::object();
    E.set("name", P.Name);
    E.set("source", P.Source);
    Programs.push(std::move(E));
  }
  Doc.set("programs", std::move(Programs));
  return Doc.dump();
}

bool ipcp::parseShardJob(std::string_view Text, ShardJob &Out,
                         std::string &Error) {
  std::optional<JsonValue> Doc = parseJson(Text, Error);
  if (!Doc) {
    Error = "shard job is not valid JSON: " + Error;
    return false;
  }
  if (!Doc->isObject()) {
    Error = "shard job must be a JSON object";
    return false;
  }
  if (!checkKeys(*Doc,
                 {"config", "config_set", "crash_after_cells",
                  "emit_summaries", "format", "mode", "procs", "programs",
                  "version"},
                 "shard job", Error))
    return false;
  if (Doc->strOr("format", "") != "ipcp-shard-job") {
    Error =
        "not a shard job file (format '" + Doc->strOr("format", "") + "')";
    return false;
  }
  if (Doc->intOr("version", -1) != 1) {
    Error = "shard job version mismatch (got " +
            std::to_string(Doc->intOr("version", -1)) +
            ", this build reads 1)";
    return false;
  }

  ShardJob Job;
  std::string Mode = Doc->strOr("mode", "");
  if (Mode == "cells")
    Job.JobMode = ShardJob::Mode::Cells;
  else if (Mode == "summary")
    Job.JobMode = ShardJob::Mode::Summary;
  else {
    Error = "shard job mode must be 'cells' or 'summary', got '" + Mode + "'";
    return false;
  }

  const JsonValue *Cs = Doc->find("config_set");
  if (!Cs->isString()) {
    Error = "shard job 'config_set' must be a string";
    return false;
  }
  Job.ConfigSet = Cs->str();

  const JsonValue *Es = Doc->find("emit_summaries");
  if (!Es->isBool()) {
    Error = "shard job 'emit_summaries' must be a boolean";
    return false;
  }
  Job.EmitSummaries = Es->boolean();

  if (!parseConfigJson(*Doc->find("config"), Job.Config, Error))
    return false;

  const JsonValue *Procs = Doc->find("procs");
  if (!Procs->isArray()) {
    Error = "shard job 'procs' must be an array";
    return false;
  }
  for (const JsonValue &P : Procs->elements()) {
    if (!P.isInt() || P.integer() < 0 ||
        P.integer() >= static_cast<int64_t>(UINT32_MAX)) {
      Error = "shard job procedure ids must be non-negative integers";
      return false;
    }
    ProcId Id = static_cast<ProcId>(P.integer());
    if (!Job.Procs.empty() && Id <= Job.Procs.back()) {
      Error = "shard job procedure ids must be strictly ascending";
      return false;
    }
    Job.Procs.push_back(Id);
  }

  const JsonValue *Crash = Doc->find("crash_after_cells");
  if (!Crash->isInt() || Crash->integer() < -1) {
    Error = "shard job 'crash_after_cells' must be an integer >= -1";
    return false;
  }
  Job.CrashAfterCells = static_cast<int>(Crash->integer());

  const JsonValue *Programs = Doc->find("programs");
  if (!Programs->isArray() || Programs->elements().empty()) {
    Error = "shard job 'programs' must be a non-empty array";
    return false;
  }
  for (const JsonValue &E : Programs->elements()) {
    if (!E.isObject()) {
      Error = "shard job program entries must be objects";
      return false;
    }
    if (!checkKeys(E, {"name", "source"}, "shard job program entry", Error))
      return false;
    const JsonValue *Name = E.find("name");
    const JsonValue *Source = E.find("source");
    if (!Name->isString() || Name->str().empty() || !Source->isString()) {
      Error = "shard job program entries need a non-empty 'name' and a "
              "'source' string";
      return false;
    }
    Job.Programs.push_back({Name->str(), Source->str()});
  }
  if (Job.JobMode == ShardJob::Mode::Summary && Job.Programs.size() != 1) {
    Error = "summary-mode shard jobs carry exactly one program";
    return false;
  }

  Out = std::move(Job);
  return true;
}

std::string ipcp::serializeShardResult(const ShardResult &R) {
  JsonValue Doc = JsonValue::object();
  Doc.set("format", "ipcp-shard-result");
  Doc.set("version", 1);
  JsonValue Cells = JsonValue::array();
  for (const ShardCellResult &C : R.Cells) {
    JsonValue E = JsonValue::object();
    E.set("program", C.Program);
    E.set("config", C.Config);
    E.set("ok", C.Ok);
    E.set("subst", C.SubstitutedConstants);
    E.set("prints", C.ConstantPrints);
    Cells.push(std::move(E));
  }
  Doc.set("cells", std::move(Cells));
  JsonValue Summaries = JsonValue::array();
  for (const std::string &S : R.Summaries)
    Summaries.push(JsonValue(S));
  Doc.set("summaries", std::move(Summaries));
  return Doc.dump();
}

bool ipcp::parseShardResult(std::string_view Text, ShardResult &Out,
                            std::string &Error) {
  std::optional<JsonValue> Doc = parseJson(Text, Error);
  if (!Doc) {
    Error = "shard result is not valid JSON: " + Error;
    return false;
  }
  if (!Doc->isObject()) {
    Error = "shard result must be a JSON object";
    return false;
  }
  if (!checkKeys(*Doc, {"cells", "format", "summaries", "version"},
                 "shard result", Error))
    return false;
  if (Doc->strOr("format", "") != "ipcp-shard-result") {
    Error = "not a shard result file (format '" + Doc->strOr("format", "") +
            "')";
    return false;
  }
  if (Doc->intOr("version", -1) != 1) {
    Error = "shard result version mismatch (got " +
            std::to_string(Doc->intOr("version", -1)) +
            ", this build reads 1)";
    return false;
  }

  ShardResult R;
  const JsonValue *Cells = Doc->find("cells");
  if (!Cells->isArray()) {
    Error = "shard result 'cells' must be an array";
    return false;
  }
  for (const JsonValue &E : Cells->elements()) {
    if (!E.isObject()) {
      Error = "shard result cells must be objects";
      return false;
    }
    if (!checkKeys(E, {"config", "ok", "prints", "program", "subst"},
                   "shard result cell", Error))
      return false;
    const JsonValue *Program = E.find("program");
    const JsonValue *Config = E.find("config");
    const JsonValue *Ok = E.find("ok");
    const JsonValue *Subst = E.find("subst");
    const JsonValue *Prints = E.find("prints");
    if (!Program->isString() || Program->str().empty() ||
        !Config->isString() || Config->str().empty() || !Ok->isBool() ||
        !Subst->isInt() || Subst->integer() < 0 || !Prints->isInt() ||
        Prints->integer() < 0) {
      Error = "shard result cell for '" + Program->strOr("program", "?") +
              "' is malformed";
      return false;
    }
    R.Cells.push_back({Program->str(), Config->str(), Ok->boolean(),
                       static_cast<unsigned>(Subst->integer()),
                       static_cast<unsigned>(Prints->integer())});
  }

  const JsonValue *Summaries = Doc->find("summaries");
  if (!Summaries->isArray()) {
    Error = "shard result 'summaries' must be an array";
    return false;
  }
  for (const JsonValue &S : Summaries->elements()) {
    if (!S.isString()) {
      Error = "shard result summaries must be strings";
      return false;
    }
    R.Summaries.push_back(S.str());
  }

  Out = std::move(R);
  return true;
}

//===----------------------------------------------------------------------===//
// The worker
//===----------------------------------------------------------------------===//

std::vector<JumpFunctionOptions>
ipcp::distinctSummaryOptions(const std::vector<SuiteConfig> &Configs) {
  std::vector<JumpFunctionOptions> Out;
  for (const SuiteConfig &C : Configs) {
    if (C.Opts.CompletePropagation || C.Opts.IntraproceduralOnly)
      continue;
    JumpFunctionOptions O;
    O.Kind = C.Opts.Kind;
    O.UseReturnJumpFunctions = C.Opts.UseReturnJumpFunctions;
    O.UseMod = C.Opts.UseMod;
    O.UseGatedSsa = C.Opts.UseGatedSsa;
    bool Seen = false;
    for (const JumpFunctionOptions &E : Out)
      Seen = Seen || sameJumpFunctionOptions(E, O);
    if (!Seen)
      Out.push_back(O);
  }
  return Out;
}

int ipcp::runShardWorker(const std::string &JobPath,
                         const std::string &OutPath) {
  std::string Text, Error;
  if (!readFile(JobPath, Text, Error)) {
    std::cerr << "shard-worker: " << Error << '\n';
    return 2;
  }
  ShardJob Job;
  if (!parseShardJob(Text, Job, Error)) {
    std::cerr << "shard-worker: " << Error << '\n';
    return 2;
  }

  ShardResult R;
  size_t CellsDone = 0;
  // Fault injection for the crash-recovery tests: die without writing a
  // result file, the way a real crash would.
  auto MaybeCrash = [&] {
    if (Job.CrashAfterCells >= 0 &&
        CellsDone >= static_cast<size_t>(Job.CrashAfterCells))
      ::_exit(57);
  };
  MaybeCrash();

  if (Job.JobMode == ShardJob::Mode::Cells) {
    std::vector<SuiteConfig> Configs = configsByName(Job.ConfigSet);
    if (Configs.empty()) {
      std::cerr << "shard-worker: unknown config set '" << Job.ConfigSet
                << "'\n";
      return 2;
    }
    std::vector<JumpFunctionOptions> SummaryOpts =
        distinctSummaryOptions(Configs);
    for (const ShardJobProgram &P : Job.Programs) {
      WorkloadProgram W{};
      W.Name = P.Name;
      W.Source = P.Source;
      // The ordinary suite runner, restricted to this worker's programs:
      // cells are per-program independent, so the deterministic fields
      // equal the same cells of a whole-suite single-process run.
      SuiteRunResult Batch = runSuite({W}, Configs, 1, 1, SuiteSharing::Shared);
      for (const SuiteCell &C : Batch.Cells)
        R.Cells.push_back({C.Program, C.Config, C.Ok, C.SubstitutedConstants,
                           C.ConstantPrints});
      if (Job.EmitSummaries) {
        DiagnosticEngine Diags;
        auto Ctx = parseProgram(P.Source, Diags);
        SymbolTable Symbols;
        if (!Diags.hasErrors())
          Symbols = Sema::run(*Ctx, Diags);
        if (Diags.hasErrors()) {
          std::cerr << "shard-worker: program '" << P.Name
                    << "' failed the frontend:\n"
                    << Diags.str();
          return 2;
        }
        AnalysisSession Session(*Ctx, Symbols);
        for (const JumpFunctionOptions &O : SummaryOpts)
          R.Summaries.push_back(serializeSummary(
              buildSummary(Session, O, P.Name, summarySourceHash(P.Source))));
      }
      CellsDone += Batch.Cells.size();
      MaybeCrash();
    }
  } else {
    const ShardJobProgram &P = Job.Programs.front();
    DiagnosticEngine Diags;
    auto Ctx = parseProgram(P.Source, Diags);
    SymbolTable Symbols;
    if (!Diags.hasErrors())
      Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors()) {
      std::cerr << "shard-worker: program '" << P.Name
                << "' failed the frontend:\n"
                << Diags.str();
      return 2;
    }
    AnalysisSession Session(*Ctx, Symbols);
    const Module &M = Session.module();
    const CallGraph &CG = Session.callGraph();
    for (ProcId Proc : Job.Procs)
      if (Proc >= CG.numProcs()) {
        std::cerr << "shard-worker: procedure id " << Proc
                  << " out of range (program has " << CG.numProcs() << ")\n";
        return 2;
      }
    const RefAliasInfo &Aliases = Session.refAlias(Job.Config.UseMod);
    ProgramJumpFunctions Jfs = buildJumpFunctions(
        M, Symbols, CG, Session.modRef(Job.Config.UseMod), Job.Config,
        &Aliases, nullptr, &Session);
    R.Summaries.push_back(serializeSummary(
        makeSummary(P.Name, summarySourceHash(P.Source), M, Symbols, CG, Jfs,
                    &Aliases, Job.Procs)));
    CellsDone += Job.Procs.size();
    MaybeCrash();
  }

  if (!writeFile(OutPath, serializeShardResult(R), Error)) {
    std::cerr << "shard-worker: " << Error << '\n';
    return 2;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// The coordinator
//===----------------------------------------------------------------------===//

namespace {

struct Partition {
  size_t Index = 0;
  ShardJob Job;
  Subprocess Child;
  unsigned Attempt = 0;
  bool Done = false;
  ShardResult Result;
  std::string OutPath;
  std::string ErrPath;
};

/// Scratch directory with cleanup-on-scope-exit (kept on request or when
/// the caller supplied the directory).
struct Scratch {
  std::string Dir;
  bool Owned = false;
  bool Keep = false;
  ~Scratch() {
    if (Owned && !Keep && !Dir.empty()) {
      std::error_code Ec;
      std::filesystem::remove_all(Dir, Ec);
    }
  }
};

bool prepareScratch(const ShardSpawnOptions &O, Scratch &S,
                    std::string &Error) {
  S.Keep = O.KeepTemps;
  if (!O.TempDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(O.TempDir, Ec);
    if (Ec) {
      Error = "cannot create temp dir '" + O.TempDir + "': " + Ec.message();
      return false;
    }
    S.Dir = O.TempDir;
    return true;
  }
  std::error_code Ec;
  std::string Tmpl =
      (std::filesystem::temp_directory_path(Ec) / "ipcp-shard-XXXXXX")
          .string();
  if (Ec) {
    Error = "no temp directory: " + Ec.message();
    return false;
  }
  std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
  Buf.push_back('\0');
  if (!::mkdtemp(Buf.data())) {
    Error = "mkdtemp failed for '" + Tmpl + "'";
    return false;
  }
  S.Dir = Buf.data();
  S.Owned = true;
  return true;
}

bool spawnPartition(Partition &P, const std::string &Binary,
                    const std::string &Dir, const ShardSpawnOptions &SO,
                    std::string &Error) {
  ShardJob Job = P.Job;
  // Fault injection arms only the first attempt, so recovery re-runs the
  // partition clean — the way a real transient crash behaves.
  Job.CrashAfterCells =
      (P.Attempt == 0 && static_cast<int>(P.Index) == SO.CrashPartitionIndex)
          ? SO.CrashAfterCells
          : -1;
  std::string Tag =
      "p" + std::to_string(P.Index) + "_a" + std::to_string(P.Attempt);
  std::string JobPath = Dir + "/job_" + Tag + ".json";
  P.OutPath = Dir + "/out_" + Tag + ".json";
  P.ErrPath = Dir + "/log_" + Tag + ".txt";
  if (!writeFile(JobPath, serializeShardJob(Job), Error))
    return false;
  return P.Child.spawn({Binary, "--shard-worker", "--shard-in=" + JobPath,
                        "--shard-out=" + P.OutPath},
                       "", P.ErrPath, Error);
}

/// Drives every partition to a parsed result, reassigning crashed (or
/// garbled-result) partitions to fresh workers up to the attempt bound.
bool drivePartitions(std::vector<Partition> &Parts,
                     const ShardSpawnOptions &SO, const std::string &Dir,
                     unsigned &Spawned, unsigned &Crashes,
                     unsigned &Reassigned, std::string &Error) {
  std::string Binary =
      SO.WorkerBinary.empty() ? currentExecutablePath() : SO.WorkerBinary;
  if (Binary.empty()) {
    Error = "no worker binary (ShardSpawnOptions::WorkerBinary is empty and "
            "/proc/self/exe is unreadable)";
    return false;
  }
  for (Partition &P : Parts) {
    if (!spawnPartition(P, Binary, Dir, SO, Error))
      return false;
    ++Spawned;
  }
  // Each pass waits on every live partition; failed ones are respawned
  // and picked up by the next pass. Terminates: a pass with no respawn
  // means all are done, and attempts are bounded.
  for (bool AnyRespawned = true; AnyRespawned;) {
    AnyRespawned = false;
    for (Partition &P : Parts) {
      if (P.Done)
        continue;
      ProcessExit E = P.Child.wait();
      std::string Failure;
      if (!E.ok()) {
        Failure = "worker died (" + E.str() + ")";
      } else {
        std::string ResultText, ReadError;
        if (!readFile(P.OutPath, ResultText, ReadError))
          Failure = "result file unreadable: " + ReadError;
        else if (!parseShardResult(ResultText, P.Result, ReadError))
          Failure = "result file rejected: " + ReadError;
      }
      if (Failure.empty()) {
        P.Done = true;
        continue;
      }
      ++Crashes;
      if (P.Attempt + 1 >= SO.MaxAttempts) {
        Error = "partition " + std::to_string(P.Index) + " failed " +
                std::to_string(P.Attempt + 1) + " attempt(s), giving up: " +
                Failure + " (worker log: " + P.ErrPath + ")";
        return false;
      }
      ++P.Attempt;
      ++Reassigned;
      if (!spawnPartition(P, Binary, Dir, SO, Error))
        return false;
      ++Spawned;
      AnyRespawned = true;
    }
  }
  return true;
}

} // namespace

ShardedSuiteResult
ipcp::runShardedSuite(const std::vector<WorkloadProgram> &Programs,
                      const ShardedSuiteOptions &Opts) {
  ShardedSuiteResult R;
  Clock::time_point Start = Clock::now();

  std::vector<SuiteConfig> Configs = configsByName(Opts.ConfigSet);
  if (Configs.empty()) {
    R.Error = "unknown config set '" + Opts.ConfigSet + "'";
    return R;
  }
  if (Programs.empty()) {
    R.Error = "no programs to shard";
    return R;
  }
  std::vector<JumpFunctionOptions> SummaryOpts =
      distinctSummaryOptions(Configs);

  Scratch S;
  if (!prepareScratch(Opts.Spawn, S, R.Error))
    return R;

  size_t N =
      std::max<size_t>(1, std::min<size_t>(Opts.NumWorkers, Programs.size()));
  std::vector<Partition> Parts(N);
  for (size_t I = 0; I != N; ++I) {
    Parts[I].Index = I;
    Parts[I].Job.JobMode = ShardJob::Mode::Cells;
    Parts[I].Job.ConfigSet = Opts.ConfigSet;
    Parts[I].Job.EmitSummaries = Opts.EmitSummaries;
  }
  for (size_t I = 0; I != Programs.size(); ++I)
    Parts[I % N].Job.Programs.push_back(
        {Programs[I].Name, Programs[I].Source});

  if (!drivePartitions(Parts, Opts.Spawn, S.Dir, R.WorkersSpawned,
                       R.WorkerCrashes, R.PartitionsReassigned, R.Error))
    return R;

  // Reassemble the grid in canonical order, insisting on exact coverage:
  // every (program, config) exactly once, no strays.
  std::map<std::pair<std::string, std::string>, ShardCellResult> ByKey;
  std::map<std::string, std::vector<std::string>> SummariesByProgram;
  size_t TotalCells = 0;
  for (const Partition &P : Parts) {
    for (const ShardCellResult &C : P.Result.Cells) {
      ++TotalCells;
      auto [It, Inserted] = ByKey.insert({{C.Program, C.Config}, C});
      if (!Inserted) {
        R.Error = "partition " + std::to_string(P.Index) +
                  " produced a duplicate cell for (" + C.Program + ", " +
                  C.Config + ")";
        return R;
      }
    }
    if (Opts.EmitSummaries) {
      size_t Expected = P.Job.Programs.size() * SummaryOpts.size();
      if (P.Result.Summaries.size() != Expected) {
        R.Error = "partition " + std::to_string(P.Index) + " shipped " +
                  std::to_string(P.Result.Summaries.size()) +
                  " summaries, expected " + std::to_string(Expected);
        return R;
      }
      for (size_t I = 0; I != P.Job.Programs.size(); ++I) {
        std::vector<std::string> &Dst =
            SummariesByProgram[P.Job.Programs[I].Name];
        for (size_t O = 0; O != SummaryOpts.size(); ++O)
          Dst.push_back(P.Result.Summaries[I * SummaryOpts.size() + O]);
      }
    }
  }

  R.NumPrograms = Programs.size();
  R.NumConfigs = Configs.size();
  for (const WorkloadProgram &P : Programs) {
    for (const SuiteConfig &C : Configs) {
      auto It = ByKey.find({P.Name, C.Name});
      if (It == ByKey.end()) {
        R.Error = "no worker covered cell (" + P.Name + ", " + C.Name + ")";
        R.Cells.clear();
        return R;
      }
      R.Cells.push_back(std::move(It->second));
    }
    if (Opts.EmitSummaries)
      for (std::string &Doc : SummariesByProgram[P.Name])
        R.Summaries.push_back(std::move(Doc));
  }
  if (TotalCells != R.Cells.size()) {
    R.Error = "workers produced " + std::to_string(TotalCells) +
              " cells for a " + std::to_string(R.Cells.size()) +
              "-cell grid (stray program or config names)";
    R.Cells.clear();
    return R;
  }

  R.Ok = true;
  R.WallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();
  return R;
}

ShardedAnalysisResult
ipcp::runShardedAnalysis(const std::string &Name, const std::string &Source,
                         const PipelineOptions &Opts,
                         const ShardedAnalysisOptions &SOpts) {
  ShardedAnalysisResult R;
  if (Opts.CompletePropagation || Opts.IntraproceduralOnly) {
    R.Error = Opts.CompletePropagation
                  ? "complete propagation cannot be sharded (its DCE rounds "
                    "rebuild jump functions from a mutated program)"
                  : "intraprocedural-only propagation has no jump functions "
                    "to shard";
    return R;
  }

  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols;
  if (!Diags.hasErrors())
    Symbols = Sema::run(*Ctx, Diags);
  if (Diags.hasErrors()) {
    R.Error = Diags.str();
    return R;
  }
  AnalysisSession Session(*Ctx, Symbols);
  const CallGraph &CG = Session.callGraph();

  JumpFunctionOptions JfOpts;
  JfOpts.Kind = Opts.Kind;
  JfOpts.UseReturnJumpFunctions = Opts.UseReturnJumpFunctions;
  JfOpts.UseMod = Opts.UseMod;
  JfOpts.UseGatedSsa = Opts.UseGatedSsa;

  Scratch S;
  if (!prepareScratch(SOpts.Spawn, S, R.Error))
    return R;

  size_t N =
      std::max<size_t>(1, std::min<size_t>(SOpts.NumShards, CG.numProcs()));
  std::vector<Partition> Parts(N);
  for (size_t I = 0; I != N; ++I) {
    Parts[I].Index = I;
    Parts[I].Job.JobMode = ShardJob::Mode::Summary;
    Parts[I].Job.Config = JfOpts;
    Parts[I].Job.Programs.push_back({Name, Source});
  }
  for (ProcId P = 0; P != CG.numProcs(); ++P)
    Parts[P % N].Job.Procs.push_back(P);

  if (!drivePartitions(Parts, SOpts.Spawn, S.Dir, R.WorkersSpawned,
                       R.WorkerCrashes, R.PartitionsReassigned, R.Error))
    return R;

  std::vector<ProgramSummary> Partials;
  for (const Partition &P : Parts) {
    if (P.Result.Summaries.size() != 1) {
      R.Error = "partition " + std::to_string(P.Index) + " shipped " +
                std::to_string(P.Result.Summaries.size()) +
                " summaries, expected exactly 1";
      return R;
    }
    ProgramSummary Partial;
    if (!parseSummary(P.Result.Summaries.front(), Partial, R.Error)) {
      R.Error = "partition " + std::to_string(P.Index) +
                " shipped a rejected summary: " + R.Error;
      return R;
    }
    Partials.push_back(std::move(Partial));
  }

  ProgramSummary Merged;
  if (!mergeSummaries(std::move(Partials), Merged, R.Error))
    return R;
  if (Merged.SourceHash != summarySourceHash(Source)) {
    R.Error = "merged summary hashes a different source than the one loaded";
    return R;
  }

  ProgramJumpFunctions Jfs;
  if (!reconstituteJumpFunctions(Merged, Session.module(), Symbols, CG, Jfs,
                                 R.Error))
    return R;

  R.Pipeline = runPipelineOnSession(Session, Opts, &Jfs);
  R.Ok = R.Pipeline.Ok;
  if (!R.Ok)
    R.Error = R.Pipeline.Error;
  return R;
}
