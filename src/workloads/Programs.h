//===- workloads/Programs.h - Per-program generators (internal) -*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal: one factory per suite program. Each factory composes the
/// ProgramGen idioms with the knob values derived in DESIGN.md §4 so the
/// program reproduces its row of the paper's Tables 2 and 3.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_PROGRAMS_H
#define IPCP_WORKLOADS_PROGRAMS_H

#include "workloads/Suite.h"

namespace ipcp {
namespace workloads {

WorkloadProgram makeAdm();
WorkloadProgram makeDoduc();
WorkloadProgram makeFpppp();
WorkloadProgram makeLinpackd();
WorkloadProgram makeMatrix300();
WorkloadProgram makeMdg();
WorkloadProgram makeOcean();
WorkloadProgram makeQcd();
WorkloadProgram makeSimple();
WorkloadProgram makeSnasa7();
WorkloadProgram makeSpec77();
WorkloadProgram makeTrfd();

// The copy-stressing families (no paper rows; see ProgramsCopy.cpp).
WorkloadProgram makeCopyChains();
WorkloadProgram makeDeepDiameter();
WorkloadProgram makeWideFanout();

} // namespace workloads
} // namespace ipcp

#endif // IPCP_WORKLOADS_PROGRAMS_H
