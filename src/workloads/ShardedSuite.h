//===- workloads/ShardedSuite.h - Multi-process sharded runs ----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process tier over the suite runner and the summary format:
/// a coordinator forks N `ipcp-driver --shard-worker` processes, hands
/// each a job file, and folds their result files back together. Two
/// partitionings exist, matching the two things worth distributing:
///
///   * runShardedSuite — the (program x configuration) grid, programs
///     round-robined across workers. Each worker runs its programs'
///     cells through the ordinary suite runner, so the reassembled grid
///     is byte-identical (deterministic fields) to a single-process
///     runSuite at any worker count. Workers optionally ship serialized
///     jump-function summaries back for the coordinator to
///     differential-check.
///
///   * runShardedAnalysis — one program's procedures round-robined
///     across workers, each of which writes the partial jump-function
///     summary of its slice (ipcp/SummaryIO.h); the coordinator merges
///     the partials and runs solve + substitution locally over the
///     merged functions. The report is byte-identical to a local run —
///     the libosuction shape: independent processes write summaries, one
///     merge step propagates.
///
/// Worker crashes are recovered, not propagated: a partition whose
/// worker dies (or writes a garbled result file) is reassigned to a
/// fresh worker up to a retry bound, and only then does the whole run
/// fail — loudly, naming the partition and the exit status. Job and
/// result files use the same strict parse-or-reject discipline as the
/// summary format.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_SHARDEDSUITE_H
#define IPCP_WORKLOADS_SHARDEDSUITE_H

#include "ipcp/Pipeline.h"
#include "ipcp/SummaryIO.h"
#include "workloads/SuiteRunner.h"

#include <string>
#include <vector>

namespace ipcp {

/// One program a job ships to a worker (name + full source: workers
/// never read the coordinator's memory, so a job file is self-contained
/// and a crashed partition can be re-run from the file alone).
struct ShardJobProgram {
  std::string Name;
  std::string Source;
};

/// What one worker is asked to do.
struct ShardJob {
  enum class Mode : uint8_t {
    /// Run every (program x config) cell of the job's programs.
    Cells,
    /// Build the partial jump-function summary of Procs for the job's
    /// single program under Config.
    Summary,
  };
  Mode JobMode = Mode::Cells;
  std::vector<ShardJobProgram> Programs;

  /// Cells mode: the named config set ("all"/"table2"/"table3") and
  /// whether to ship per-program jump-function summaries back.
  std::string ConfigSet = "all";
  bool EmitSummaries = false;

  /// Summary mode: the builder configuration and the procedure slice.
  JumpFunctionOptions Config;
  std::vector<ProcId> Procs;

  /// Fault injection for the crash-recovery tests: when >= 0, the worker
  /// _exit()s without writing its result once it has finished this many
  /// cells (0 = before any work). Never set on real runs.
  int CrashAfterCells = -1;
};

std::string serializeShardJob(const ShardJob &Job);
bool parseShardJob(std::string_view Text, ShardJob &Out, std::string &Error);

/// One (program x config) outcome a worker reports — exactly the
/// deterministic fields of a SuiteCell, nothing timing-dependent.
struct ShardCellResult {
  std::string Program;
  std::string Config;
  bool Ok = false;
  unsigned SubstitutedConstants = 0;
  unsigned ConstantPrints = 0;
};

/// A worker's result file.
struct ShardResult {
  std::vector<ShardCellResult> Cells;
  /// Serialized summary documents (ipcp/SummaryIO.h), embedded verbatim
  /// so the coordinator re-validates them through parseSummary.
  std::vector<std::string> Summaries;
};

std::string serializeShardResult(const ShardResult &R);
bool parseShardResult(std::string_view Text, ShardResult &Out,
                      std::string &Error);

/// The `ipcp-driver --shard-worker` entry: reads the job at \p JobPath,
/// runs it, writes the result to \p OutPath. Returns the process exit
/// code (0 = result written; diagnostics go to stderr).
int runShardWorker(const std::string &JobPath, const std::string &OutPath);

/// The distinct jump-function configurations among \p Configs that build
/// reusable summaries (first-seen order; complete-propagation and
/// intraprocedural-only columns are excluded — the former rebuilds its
/// functions per DCE round, the latter has none).
std::vector<JumpFunctionOptions>
distinctSummaryOptions(const std::vector<SuiteConfig> &Configs);

/// Coordinator knobs shared by both partitionings.
struct ShardSpawnOptions {
  /// Path to the worker binary (ipcp-driver). Empty = this executable
  /// (the driver sharding itself; tests pass IPCP_DRIVER_PATH).
  std::string WorkerBinary;
  /// Scratch directory for job/result/log files. Empty = a fresh
  /// mkdtemp under TMPDIR, removed on success.
  std::string TempDir;
  /// Keep the scratch directory for post-mortems.
  bool KeepTemps = false;
  /// Attempts per partition before the run fails (1 = no recovery).
  unsigned MaxAttempts = 3;
  /// Fault injection: the first attempt of this partition index gets
  /// ShardJob::CrashAfterCells = CrashAfterCells. -1 = off.
  int CrashPartitionIndex = -1;
  int CrashAfterCells = 0;
};

struct ShardedSuiteOptions {
  unsigned NumWorkers = 2;
  std::string ConfigSet = "all";
  /// Ship per-program summaries back (one per program per
  /// distinctSummaryOptions entry, in that order).
  bool EmitSummaries = false;
  ShardSpawnOptions Spawn;
};

struct ShardedSuiteResult {
  bool Ok = false;
  std::string Error;

  /// Program-major canonical order — Cells[p * NumConfigs + c] with p in
  /// the coordinator's program order and c in config-set order — however
  /// the partitions interleaved.
  std::vector<ShardCellResult> Cells;
  size_t NumPrograms = 0;
  size_t NumConfigs = 0;
  /// When EmitSummaries: program-major, distinctSummaryOptions-minor.
  std::vector<std::string> Summaries;

  unsigned WorkersSpawned = 0;
  unsigned WorkerCrashes = 0;
  unsigned PartitionsReassigned = 0;
  double WallMs = 0;

  const ShardCellResult &cell(size_t Program, size_t Config) const {
    return Cells.at(Program * NumConfigs + Config);
  }
};

/// Runs every program under every config of the named set across
/// NumWorkers forked workers and reassembles the grid.
ShardedSuiteResult runShardedSuite(const std::vector<WorkloadProgram> &Programs,
                                   const ShardedSuiteOptions &Opts);

struct ShardedAnalysisOptions {
  unsigned NumShards = 2;
  ShardSpawnOptions Spawn;
};

struct ShardedAnalysisResult {
  bool Ok = false;
  std::string Error;
  /// Byte-identical (deterministic fields) to a local runPipeline of the
  /// same source under the same options.
  PipelineResult Pipeline;
  unsigned WorkersSpawned = 0;
  unsigned WorkerCrashes = 0;
  unsigned PartitionsReassigned = 0;
};

/// Distributes one program's jump-function construction: procedures are
/// round-robined across NumShards workers, each worker ships the partial
/// summary of its slice, and the coordinator merges, reconstitutes, and
/// runs solve + substitution locally (runPipelineOnSession with
/// preloaded functions). Rejects CompletePropagation and
/// IntraproceduralOnly — neither has a shardable stage 2.
ShardedAnalysisResult runShardedAnalysis(const std::string &Name,
                                         const std::string &Source,
                                         const PipelineOptions &Opts,
                                         const ShardedAnalysisOptions &SOpts);

} // namespace ipcp

#endif // IPCP_WORKLOADS_SHARDEDSUITE_H
