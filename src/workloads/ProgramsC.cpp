//===- workloads/ProgramsC.cpp - simple, snasa7, spec77, trfd -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGen.h"
#include "workloads/Programs.h"

using namespace ipcp;
using namespace ipcp::workloads;

template <typename EmitFn>
static void spread(int Total, int Chunk, int64_t BaseVal, EmitFn Emit) {
  int64_t Val = BaseVal;
  while (Total > 0) {
    int N = Total < Chunk ? Total : Chunk;
    Emit(N, Val);
    Total -= N;
    Val += 3;
  }
}

// simple: almost every constant crosses a call boundary through globals,
// so removing MOD obliterates the result (183 -> 2); one large routine
// dominates the line count (the paper notes the skew).
//   b=2, c=170, d=3, two global chains (depth 2, 2 inner uses each).
WorkloadProgram workloads::makeSimple() {
  ProgramGen G("simple");
  G.setMinProcLines(10);
  G.localConstInMain(1024, 2);
  spread(170, 12, 30, [&](int N, int64_t V) { G.globalAcrossCall(V, N); });
  G.globalImplicit(7, 3);
  G.passChainGlobal(2048, 2, 2);
  G.passChainGlobal(4096, 2, 2);
  G.polyShapedArg();
  G.fillerProc(430); // The dominant routine.
  G.fillerInMain(18);
  WorkloadProgram P;
  P.Name = "simple";
  P.Source = G.render();
  P.Paper = {183, 183, 179, 174, 183, 183, 2, 183, 174};
  P.PaperTable1 = {805, -1, -1, -1};
  return P;
}

// snasa7: big intraprocedural base (254) plus many globals consumed one
// call away; about half of those survive without MOD because the
// defining assignment immediately precedes the consuming call.
//   b=254, d=33 (spacered), dd=49 (direct).
WorkloadProgram workloads::makeSnasa7() {
  ProgramGen G("snasa7");
  G.setMinProcLines(16);
  G.localConstInMain(7, 14);
  spread(240, 15, 50, [&](int N, int64_t V) { G.localConstHost(V, N); });
  spread(33, 11, 250, [&](int N, int64_t V) { G.globalImplicit(V, N); });
  spread(49, 10, 610, [&](int N, int64_t V) {
    G.globalImplicitDirect(V, N);
  });
  G.polyShapedArg();
  G.fillerProc(70);
  G.fillerInMain(20);
  WorkloadProgram P;
  P.Name = "snasa7";
  P.Source = G.render();
  P.Paper = {336, 336, 336, 254, 336, 336, 303, 336, 254};
  P.PaperTable1 = {696, -1, -1, -1};
  return P;
}

// spec77: the largest program (65 procedures in the paper); a mixed
// profile with a small complete-propagation payoff (137 -> 141).
//   a=21, b=34, c=49, d=11, dd=20, deadBranchExposed(5).
WorkloadProgram workloads::makeSpec77() {
  ProgramGen G("spec77");
  G.setMinProcLines(30);
  spread(21, 5, 77, [&](int N, int64_t V) { G.litDirect(V, N); });
  G.localConstInMain(12, 6);
  spread(28, 6, 360, [&](int N, int64_t V) { G.localConstHost(V, N); });
  spread(49, 8, 144, [&](int N, int64_t V) { G.globalAcrossCall(V, N); });
  spread(11, 7, 365, [&](int N, int64_t V) { G.globalImplicit(V, N); });
  spread(20, 7, 720, [&](int N, int64_t V) {
    G.globalImplicitDirect(V, N);
  });
  G.deadBranchExposed(19, 5);
  G.polyShapedArg();
  for (int I = 0; I < 36; ++I)
    G.fillerProc(24 + (I % 6) * 8);
  G.fillerChain(4, 45);
  G.fillerChain(3, 38);
  G.fillerInMain(40);
  WorkloadProgram P;
  P.Name = "spec77";
  P.Source = G.render();
  P.Paper = {137, 137, 137, 104, 137, 137, 76, 141, 83};
  P.PaperTable1 = {2904, 65, 45, 31};
  return P;
}

// trfd: the smallest member (8 procedures in the paper); a handful of
// constants, every kind finds all of them.
//   a=1, b=9, c=6.
WorkloadProgram workloads::makeTrfd() {
  ProgramGen G("trfd");
  G.setMinProcLines(40);
  G.litDirect(40, 1);
  G.localConstInMain(10, 4);
  G.localConstHost(35, 5);
  G.globalAcrossCall(70, 6);
  G.polyShapedArg();
  G.fillerProc(80);
  G.fillerInMain(30);
  WorkloadProgram P;
  P.Name = "trfd";
  P.Source = G.render();
  P.Paper = {16, 16, 16, 16, 16, 16, 10, 16, 15};
  P.PaperTable1 = {401, 8, 50, 40};
  return P;
}
