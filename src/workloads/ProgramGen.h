//===- workloads/ProgramGen.h - Workload generator toolkit ------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The building blocks the suite generators compose. Each "group"
/// emitter plants one constant-flow idiom with an exactly-known number
/// of countable variable uses, and each idiom is visible to a known
/// subset of analyzer configurations:
///
///   litDirect        literal actual -> leaf callee uses
///                    (all interprocedural configs; not intra-only)
///   localConstHost   local constant used in one procedure
///                    (every config, the intra-only floor)
///   globalAcrossCall global constant used after a call to a non-leaf
///                    (all MOD-aware configs incl. intra-only; dies
///                    without MOD)
///   globalImplicit   global constant consumed by a callee, behind a
///                    preceding non-leaf call (needs gcp + MOD: not
///                    literal, not no-MOD, not intra-only)
///   passChain        formal forwarded through a call chain
///                    (pass-through/polynomial only)
///   rjfCallerUse     out-parameter set by a leaf callee, used by caller
///                    (return-JF configs incl. no-MOD)
///   rjfForwarded     out-parameter forwarded to another callee
///                    (return-JF configs with gcp; not literal)
///   deadBranchExposed constant reaching a callee only after DCE removes
///                    a conflicting definition (complete propagation)
///   polyShapedArg    polynomial jump function over unknown inputs
///                    (exercises machinery, counts nowhere)
///
/// Filler emitters add realistic bulk (loops, array traffic, READ-driven
/// control flow) that is provably constant-free.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOADS_PROGRAMGEN_H
#define IPCP_WORKLOADS_PROGRAMGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace ipcp {

/// Accumulates globals, procedures, and a main body, then renders one
/// MiniFort program. All names are generated fresh, so emitters compose
/// without collisions.
class ProgramGen {
public:
  explicit ProgramGen(std::string Name) : Name(std::move(Name)) {}

  /// Renders the complete program text.
  std::string render() const;

  /// Pads every subsequently-emitted group procedure with constant-free
  /// lines up to roughly \p Lines lines, so the generated programs match
  /// the paper's Table 1 lines-per-procedure profile. Padding never adds
  /// calls or constants, so the substitution counts are unaffected.
  void setMinProcLines(int Lines) { MinProcLines = Lines; }

  //===--------------------------------------------------------------------===//
  // Group emitters (see file comment for config visibility)
  //===--------------------------------------------------------------------===//

  /// G1: main calls a leaf procedure with literal \p Val; the callee uses
  /// its formal \p Uses times before doing anything else.
  void litDirect(int64_t Val, int Uses);

  /// G2: a host procedure (called once, no arguments) assigns \p Val to a
  /// local and uses it \p Uses times. No calls intervene.
  void localConstHost(int64_t Val, int Uses);

  /// G2 variant: the local constant and its uses sit directly in main.
  void localConstInMain(int64_t Val, int Uses);

  /// G3: a global is set to \p Val, a *non-leaf* helper is called, then
  /// the global is used \p Uses times in the same procedure.
  void globalAcrossCall(int64_t Val, int Uses);

  /// G4: main sets a global to \p Val, calls a non-leaf spacer, then
  /// calls a consumer that uses the global \p Uses times.
  void globalImplicit(int64_t Val, int Uses);

  /// G4 variant: the assignment immediately precedes the consumer call
  /// (no spacer), so the constant survives even worst-case kill
  /// assumptions — visible to every gcp-based configuration including
  /// no-MOD, but not to literal or intra-only.
  void globalImplicitDirect(int64_t Val, int Uses);

  /// G5: main passes literal \p Val down a chain of \p Depth procedures
  /// (each forwarding its formal); the innermost uses it \p UsesInner
  /// times. Depth >= 2. The intermediate procedures do not use the value,
  /// so only the pass-through/polynomial kinds see these uses.
  void passChain(int64_t Val, int Depth, int UsesInner);

  /// G5 variant: the chain is fed from a global assigned in main with a
  /// non-leaf spacer call in between, so the whole chain dies without
  /// MOD information and the literal kind never sees the chain.
  void passChainGlobal(int64_t Val, int Depth, int UsesInner);

  /// G6a: a leaf setter assigns \p Val to an out-parameter; the caller
  /// uses the variable \p Uses times after the call.
  void rjfCallerUse(int64_t Val, int Uses);

  /// G6b: as G6a, but the variable is then forwarded to a consumer that
  /// uses it \p Uses times.
  void rjfForwarded(int64_t Val, int Uses);

  /// G6g: a leaf initializer assigns \p Val to a global; main then calls
  /// one consumer "phase" per entry of \p PhaseUses, each using the
  /// global that many times before doing non-leaf helper work. The
  /// "ocean" idiom — dies without return jump functions, and without MOD
  /// only the first phase survives.
  void rjfGlobalInit(int64_t Val, const std::vector<int> &PhaseUses);

  /// G7: a constant \p Val reaches a consumer (\p Uses uses) only after
  /// dead-code elimination removes a conflicting READ guarded by an
  /// always-false test. Counts only under complete propagation (plus one
  /// argument use in the producer under every seeded config).
  void deadBranchExposed(int64_t Val, int Uses);

  /// G8: a call whose argument is a polynomial of unknowable values;
  /// builds a polynomial jump function that evaluates to bottom.
  void polyShapedArg();

  /// G9: one local bound to both by-reference formals of a callee that
  /// reads the second formal \p Uses times before its only store through
  /// the first. Counts zero under every flow-insensitive configuration
  /// (the modified alias pair poisons the whole body); the flow-
  /// sensitive tier recovers Uses + 1 reads.
  void aliasRecoverable(int64_t Val, int Uses);

  /// G10: a literal-bound formal funneled through a loop-carried swap of
  /// two locals into a leaf consumer (\p Uses uses). The host's own
  /// loads are ordinary constants with litDirect's visibility profile;
  /// the forwarded argument hides behind loop phis, so the leaf's uses
  /// count only under the optimistic value numbering tier.
  void optimisticSwapChain(int64_t Val, int Uses);

  //===--------------------------------------------------------------------===//
  // Filler (never contributes constants)
  //===--------------------------------------------------------------------===//

  /// A procedure of roughly \p Lines lines doing READ-driven array and
  /// loop work, called once from main.
  void fillerProc(int Lines);

  /// READ-driven loop nest directly in main, roughly \p Lines lines.
  void fillerInMain(int Lines);

  /// A deeper call chain of filler procedures (adds call-graph depth).
  void fillerChain(int Depth, int LinesEach);

  //===--------------------------------------------------------------------===//
  // Low-level access (for bespoke program shapes)
  //===--------------------------------------------------------------------===//

  std::string fresh(const std::string &Base) {
    return Base + "_" + std::to_string(++Counter);
  }
  void addGlobalLine(const std::string &Line) {
    GlobalLines.push_back(Line);
  }
  void addProc(const std::string &Text) { Procs.push_back(Text); }
  void addMainDecl(const std::string &Decl) { MainDecls.push_back(Decl); }
  void addMainStmt(const std::string &Stmt) { MainBody.push_back(Stmt); }

  /// Emits \p Uses "print <Var> * k" statements into \p Out (each is one
  /// countable use when Var is constant).
  static void emitUses(std::vector<std::string> &Out, const std::string &Var,
                       int Uses, const std::string &Indent = "  ");

private:
  /// A non-leaf spacer procedure (its call kills everything under
  /// worst-case assumptions and nothing under MOD). Created on demand,
  /// shared per program.
  const std::string &spacerProc();

  /// Appends a finished procedure, padding it to MinProcLines first.
  void addGroupProc(const std::string &Name,
                    const std::string &FormalList,
                    std::vector<std::string> Decls,
                    std::vector<std::string> Stmts,
                    bool PadBeforeTrailingCall = false);

  int MinProcLines = 0;
  std::string Name;
  std::vector<std::string> GlobalLines;
  std::vector<std::string> Procs;
  std::vector<std::string> MainDecls;
  std::vector<std::string> MainBody;
  std::string Spacer;
  int Counter = 0;
};

} // namespace ipcp

#endif // IPCP_WORKLOADS_PROGRAMGEN_H
