//===- workloads/RandomProgram.cpp - Seeded random programs ---------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/RandomProgram.h"

#include <sstream>
#include <vector>

using namespace ipcp;

namespace {

/// Tiny deterministic PRNG (xorshift64*); independent of the C++ library
/// so generated programs are stable across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1D;
  }

  /// Uniform in [0, Bound).
  int below(int Bound) {
    return Bound <= 1 ? 0 : static_cast<int>(next() % uint64_t(Bound));
  }

  bool chance(int Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// Emits one procedure's statements.
class ProcEmitter {
public:
  ProcEmitter(Rng &R, const RandomSpec &Spec, int ProcIdx,
              const std::vector<int> &FormalCounts,
              const std::vector<std::string> &Globals,
              const std::vector<std::pair<std::string, int>> &GlobalArrays)
      : R(R), Spec(Spec), ProcIdx(ProcIdx), FormalCounts(FormalCounts),
        Globals(Globals) {
    int NumFormals = ProcIdx < 0 ? 0 : FormalCounts[ProcIdx];
    for (int I = 0; I != NumFormals; ++I)
      Scalars.push_back("p" + std::to_string(I));
    int NumLocals = 2 + R.below(3);
    for (int I = 0; I != NumLocals; ++I) {
      Locals.push_back("v" + std::to_string(I));
      Scalars.push_back(Locals.back());
    }
    for (const std::string &G : Globals)
      Scalars.push_back(G);
    for (const auto &[Name, Size] : GlobalArrays)
      Arrays.push_back({Name, Size});
    if (Spec.AllowArrays && R.chance(30)) {
      LocalArraySize = 4 + R.below(8);
      Arrays.push_back({"la", LocalArraySize});
    }
  }

  std::string emit() {
    std::ostringstream OS;
    OS << "proc " << (ProcIdx < 0 ? std::string("main")
                                  : "w" + std::to_string(ProcIdx))
       << "(";
    for (int I = 0; ProcIdx >= 0 && I != FormalCounts[ProcIdx]; ++I)
      OS << (I ? ", " : "") << "p" << I;
    OS << ")\n";
    OS << "  integer ";
    for (size_t I = 0; I != Locals.size(); ++I)
      OS << (I ? ", " : "") << Locals[I];
    OS << "\n";
    if (LocalArraySize > 0)
      OS << "  array la(" << LocalArraySize << ")\n";
    // Locals get defined before anything reads them.
    for (const std::string &L : Locals)
      OS << "  " << L << " = " << (R.below(40) - 10) << "\n";
    int N = 2 + R.below(Spec.MaxStmtsPerProc);
    for (int I = 0; I != N; ++I)
      statement(OS, 1, /*AllowLoops=*/true);
    OS << "end\n";
    return OS.str();
  }

private:
  std::string var() { return Scalars[R.below(int(Scalars.size()))]; }
  std::string local() { return Locals[R.below(int(Locals.size()))]; }
  std::string global() { return Globals[R.below(int(Globals.size()))]; }

  /// An element reference into a declared array, usually with an
  /// in-bounds literal index (a variable index may trap; that's
  /// observable behavior, just not the common case).
  std::string arrayElem() {
    const auto &[Name, Size] = Arrays[R.below(int(Arrays.size()))];
    std::string Index = R.chance(70) ? std::to_string(1 + R.below(Size))
                                     : var();
    return Name + "(" + Index + ")";
  }

  std::string expr(int Depth) {
    if (Depth <= 0 || R.chance(35)) {
      if (!Arrays.empty() && R.chance(12))
        return arrayElem();
      return R.chance(50) ? std::to_string(R.below(20)) : var();
    }
    static const char *Ops[] = {"+", "-", "*", "/", "%"};
    std::string L = expr(Depth - 1);
    std::string Rhs = expr(Depth - 1);
    return "(" + L + " " + Ops[R.below(5)] + " " + Rhs + ")";
  }

  std::string cond() {
    static const char *Rel[] = {"==", "!=", "<", "<=", ">", ">="};
    return expr(1) + " " + Rel[R.below(6)] + " " + expr(1);
  }

  void indent(std::ostringstream &OS, int Level) {
    for (int I = 0; I != Level; ++I)
      OS << "  ";
  }

  void statement(std::ostringstream &OS, int Level, bool AllowLoops) {
    int Kind = R.below(100);
    if (Kind < 33) {
      indent(OS, Level);
      std::string Target = !Arrays.empty() && R.chance(18) ? arrayElem()
                                                           : var();
      OS << Target << " = " << expr(Spec.MaxExprDepth) << "\n";
      return;
    }
    if (Kind < 47) {
      indent(OS, Level);
      OS << "print " << expr(2) << "\n";
      return;
    }
    if (Kind < 56) {
      // READ is the canonical BOTTOM source; letting it hit globals and
      // by-reference formals (not just locals) pushes unknowns through
      // every binding class.
      indent(OS, Level);
      OS << "read "
         << (Spec.ReadAnyScalar && R.chance(40) ? var() : local()) << "\n";
      return;
    }
    if (Kind < 72) {
      // A call: main calls anything; workers call strictly later workers
      // (DAG), or themselves when recursion is allowed.
      int Lo = ProcIdx < 0 ? 0 : ProcIdx + 1;
      if (Lo >= int(FormalCounts.size())) {
        if (!(Spec.AllowRecursion && ProcIdx >= 0)) {
          indent(OS, Level);
          OS << "print " << expr(1) << "\n";
          return;
        }
      }
      int Callee = Spec.AllowRecursion && ProcIdx >= 0 && R.chance(20)
                       ? ProcIdx
                       : (Lo < int(FormalCounts.size())
                              ? Lo + R.below(int(FormalCounts.size()) - Lo)
                              : -1);
      if (Callee < 0) {
        indent(OS, Level);
        OS << "print 0\n";
        return;
      }
      call(OS, Level, Callee);
      return;
    }
    if (Kind < 79 && AllowLoops && Spec.AllowWhile) {
      // A bounded pre-tested loop: the counter is initialized before the
      // loop and incremented inside it, so unless the body overwrites the
      // counter the loop terminates on its own.
      indent(OS, Level);
      std::string Iv = local();
      OS << Iv << " = 0\n";
      indent(OS, Level);
      OS << "while (" << Iv << " < " << (1 + R.below(4)) << ")\n";
      statement(OS, Level + 1, /*AllowLoops=*/false);
      indent(OS, Level + 1);
      OS << Iv << " = " << Iv << " + 1\n";
      indent(OS, Level);
      OS << "end while\n";
      return;
    }
    if (Kind < 86 && AllowLoops) {
      indent(OS, Level);
      std::string Iv = local();
      OS << "do " << Iv << " = 1, " << expr(1) << "\n";
      statement(OS, Level + 1, /*AllowLoops=*/false);
      indent(OS, Level);
      OS << "end do\n";
      return;
    }
    // Branch.
    indent(OS, Level);
    OS << "if (" << cond() << ") then\n";
    statement(OS, Level + 1, AllowLoops);
    if (R.chance(50)) {
      indent(OS, Level);
      OS << "else\n";
      statement(OS, Level + 1, AllowLoops);
    }
    indent(OS, Level);
    OS << "end if\n";
  }

  /// Emits one call to \p Callee. With AllowAliasingCalls the actuals
  /// sometimes take the two shapes that create by-reference alias pairs:
  /// the same variable bound to two formals, and a global passed bare.
  void call(std::ostringstream &OS, int Level, int Callee) {
    int NumArgs = FormalCounts[Callee];
    std::vector<std::string> Args;
    for (int A = 0; A != NumArgs; ++A) {
      int Pick = R.below(3);
      if (Pick == 0)
        Args.push_back(std::to_string(R.below(30)));
      else if (Pick == 1)
        Args.push_back(var());
      else
        Args.push_back(expr(1));
    }
    if (Spec.CopyRelayStores && !Arrays.empty() && NumArgs >= 1 &&
        R.chance(35)) {
      // A copy relay: stash a value into a constant-index cell just
      // before the call and pass the cell. Classically the actual is an
      // opaque load; the copy lattice resolves it to the stashed value.
      const auto &[Name, Size] = Arrays[R.below(int(Arrays.size()))];
      std::string Cell = Name + "(" + std::to_string(1 + R.below(Size)) +
                         ")";
      std::string Src =
          R.chance(50) ? std::to_string(R.below(50)) : var();
      indent(OS, Level);
      OS << Cell << " = " << Src << "\n";
      Args[R.below(NumArgs)] = Cell;
    }
    if (Spec.AllowAliasingCalls && NumArgs >= 1) {
      int Shape = R.below(100);
      if (Shape < 14 && NumArgs >= 2) {
        // Same variable into two reference formals.
        std::string V = var();
        int First = R.below(NumArgs);
        int Second = (First + 1 + R.below(NumArgs - 1)) % NumArgs;
        Args[First] = V;
        Args[Second] = V;
      } else if (Shape < 30 && !Globals.empty()) {
        // A global bound by reference; it aliases the formal wherever
        // the callee (transitively) modifies either name.
        Args[R.below(NumArgs)] = global();
      }
    }
    indent(OS, Level);
    OS << "call w" << Callee << "(";
    for (int A = 0; A != NumArgs; ++A)
      OS << (A ? ", " : "") << Args[A];
    OS << ")\n";
  }

  Rng &R;
  const RandomSpec &Spec;
  int ProcIdx; ///< -1 for main.
  const std::vector<int> &FormalCounts;
  const std::vector<std::string> &Globals;
  std::vector<std::string> Scalars;
  std::vector<std::string> Locals;
  /// Arrays visible here: the global arrays plus "la" when declared.
  std::vector<std::pair<std::string, int>> Arrays;
  int LocalArraySize = 0;
};

} // namespace

std::string ipcp::generateRandomProgram(const RandomSpec &Spec) {
  Rng R(Spec.Seed);
  std::ostringstream OS;
  OS << "program random" << Spec.Seed << "\n";
  std::vector<std::string> Globals;
  for (int I = 0; I != Spec.Globals; ++I) {
    Globals.push_back("g" + std::to_string(I));
    OS << "global " << Globals.back();
    if (I == 0)
      OS << " = " << R.below(100);
    OS << "\n";
  }
  std::vector<std::pair<std::string, int>> GlobalArrays;
  if (Spec.AllowArrays) {
    GlobalArrays.push_back({"ga", 6 + R.below(10)});
    OS << "array ga(" << GlobalArrays.back().second << ")\n";
  }
  OS << "\n";

  std::vector<int> FormalCounts;
  for (int I = 0; I != Spec.Procs; ++I)
    FormalCounts.push_back(R.below(4));

  {
    ProcEmitter Main(R, Spec, -1, FormalCounts, Globals, GlobalArrays);
    OS << Main.emit() << "\n";
  }
  for (int I = 0; I != Spec.Procs; ++I) {
    ProcEmitter P(R, Spec, I, FormalCounts, Globals, GlobalArrays);
    OS << P.emit() << "\n";
  }
  return OS.str();
}
