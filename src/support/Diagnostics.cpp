//===- support/Diagnostics.cpp - Diagnostic collection --------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <ostream>
#include <sstream>

using namespace ipcp;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.Loc.str() << ": " << kindName(D.Kind) << ": " << D.Message
       << '\n';
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
