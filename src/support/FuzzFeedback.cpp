//===- support/FuzzFeedback.cpp - Analyzer-behavior coverage map ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FuzzFeedback.h"

using namespace ipcp;

namespace {

/// Values below 8 map to themselves (categorical features like a
/// JumpFunction::Form stay distinct); larger ones to 8 + floor(log2):
/// the libFuzzer counter bucketing, where a counter lights a new bit
/// only when it crosses a power of two.
uint32_t bucket(uint64_t V) {
  if (V < 8)
    return static_cast<uint32_t>(V);
  uint32_t B = 0;
  while (V) {
    ++B;
    V >>= 1;
  }
  return 8 + B;
}

/// splitmix64 finalizer; a well-mixed stateless hash.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9;
  X = (X ^ (X >> 27)) * 0x94d049bb133111eb;
  return X ^ (X >> 31);
}

} // namespace

void FuzzFeedback::hit(FuzzFeature Id, uint64_t Value) {
  uint64_t H =
      mix((uint64_t(Id) << 32) | bucket(Value)) % uint64_t(MapBits);
  Words[H / 64] |= uint64_t(1) << (H % 64);
}

size_t FuzzFeedback::countBits() const {
  size_t N = 0;
  for (uint64_t W : Words)
    N += static_cast<size_t>(__builtin_popcountll(W));
  return N;
}

bool FuzzFeedback::mergeNovel(const FuzzFeedback &Other) {
  bool Novel = false;
  for (size_t I = 0; I != Words.size(); ++I) {
    if (Other.Words[I] & ~Words[I])
      Novel = true;
    Words[I] |= Other.Words[I];
  }
  return Novel;
}

bool FuzzFeedback::wouldAddNovel(const FuzzFeedback &Other) const {
  for (size_t I = 0; I != Words.size(); ++I)
    if (Other.Words[I] & ~Words[I])
      return true;
  return false;
}

void FuzzFeedback::clear() {
  for (uint64_t &W : Words)
    W = 0;
}
