//===- support/Cancellation.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation token shared between a requester (the
/// analysis server's deadline machinery, a test) and a long-running
/// analysis. The analysis phases poll expired() at phase boundaries and
/// inside the solver's fixpoint loops; the requester either sets the
/// flag explicitly (cancel()) or arms a wall-clock deadline that every
/// poll checks. Polling is cheap: the flag is a relaxed atomic load, and
/// deadline checks are rate-limited by the callers (every N iterations),
/// not by the token.
///
/// A cancelled run abandons its result — the pipeline reports
/// Cancelled=true and Ok=false — so the token never needs to carry
/// partial-result semantics.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_CANCELLATION_H
#define IPCP_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>

namespace ipcp {

/// Shared cancel/deadline state. Thread-safe: any thread may cancel()
/// or arm the deadline before handing the token to the analysis.
class CancelToken {
public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Requests cancellation. Irrevocable for this token's lifetime.
  void cancel() { Flag.store(true, std::memory_order_relaxed); }

  /// Arms a wall-clock deadline; expired() turns true once it passes.
  void setDeadline(Clock::time_point D) {
    Deadline = D;
    HasDeadline.store(true, std::memory_order_release);
  }

  /// Convenience: a deadline \p Ms milliseconds from now.
  void setDeadlineAfterMs(double Ms) {
    setDeadline(Clock::now() +
                std::chrono::microseconds(static_cast<int64_t>(Ms * 1000)));
  }

  /// True once the token is cancelled or its deadline has passed. The
  /// deadline branch reads the clock, so callers in tight loops should
  /// rate-limit their polls.
  bool expired() const {
    if (Flag.load(std::memory_order_relaxed))
      return true;
    if (HasDeadline.load(std::memory_order_acquire) &&
        Clock::now() >= Deadline)
      return true;
    return false;
  }

private:
  std::atomic<bool> Flag{false};
  std::atomic<bool> HasDeadline{false};
  Clock::time_point Deadline{};
};

/// Polls \p Token (which may be null) — the one-liner the analysis
/// phases use.
inline bool isCancelled(const CancelToken *Token) {
  return Token && Token->expired();
}

} // namespace ipcp

#endif // IPCP_SUPPORT_CANCELLATION_H
