//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Library code never prints or aborts on user
/// errors; it records diagnostics here and callers decide what to do.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_DIAGNOSTICS_H
#define IPCP_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace ipcp {

/// Severity of a diagnostic message.
enum class DiagKind { Error, Warning, Note };

/// One recorded diagnostic: severity, location, and message text.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics produced while processing one source buffer.
///
/// The engine is append-only; callers query \c hasErrors() after running a
/// phase and may render everything with \c print().
class DiagnosticEngine {
public:
  /// Records an error at \p Loc.
  void error(SourceLoc Loc, std::string Message);

  /// Records a warning at \p Loc.
  void warning(SourceLoc Loc, std::string Message);

  /// Records a note at \p Loc (typically attached to a preceding error).
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  /// Writes all diagnostics to \p OS, one per line, in the order they were
  /// recorded ("<line>:<col>: error: <message>").
  void print(std::ostream &OS) const;

  /// Renders all diagnostics into a string (convenience for tests).
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_DIAGNOSTICS_H
