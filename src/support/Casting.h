//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-style RTTI helpers. A class opts in by providing
/// \c static bool classof(const Base *).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_CASTING_H
#define IPCP_SUPPORT_CASTING_H

#include <cassert>

namespace ipcp {

/// Returns true if \p Val is an instance of \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace ipcp

#endif // IPCP_SUPPORT_CASTING_H
