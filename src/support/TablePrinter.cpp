//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

using namespace ipcp;

void TablePrinter::addHeader(std::vector<std::string> Cells) {
  assert(Rows.empty() && "header must be added before any row");
  HasHeader = true;
  Rows.push_back(std::move(Cells));
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::ostream &OS) const {
  if (Rows.empty())
    return;

  size_t NumCols = 0;
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != NumCols; ++I) {
      std::string Cell = I < Row.size() ? Row[I] : std::string();
      if (I != 0)
        OS << "  ";
      if (I == 0) {
        // Left-align the label column.
        OS << Cell << std::string(Widths[I] - Cell.size(), ' ');
      } else {
        OS << std::string(Widths[I] - Cell.size(), ' ') << Cell;
      }
    }
    OS << '\n';
  };

  size_t Start = 0;
  if (HasHeader) {
    printRow(Rows[0]);
    size_t Total = 0;
    for (size_t I = 0; I != NumCols; ++I)
      Total += Widths[I] + (I ? 2 : 0);
    OS << std::string(Total, '-') << '\n';
    Start = 1;
  }
  for (size_t I = Start, E = Rows.size(); I != E; ++I)
    printRow(Rows[I]);
}

std::string TablePrinter::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
