//===- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders simple column-aligned text tables. Used by the benchmark
/// harnesses to print the paper's tables side by side with measured values.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_TABLEPRINTER_H
#define IPCP_SUPPORT_TABLEPRINTER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace ipcp {

/// Accumulates rows of string cells and prints them with each column padded
/// to its widest cell. The first row added with \c addHeader() is separated
/// from the body by a dashed rule.
class TablePrinter {
public:
  /// Sets the header row. Must be called at most once, before any addRow().
  void addHeader(std::vector<std::string> Cells);

  /// Appends a body row. Rows may have fewer cells than the header; missing
  /// cells render empty.
  void addRow(std::vector<std::string> Cells);

  /// Writes the table to \p OS. The first column is left-aligned; all other
  /// columns are right-aligned (numeric convention).
  void print(std::ostream &OS) const;

  /// Renders the table into a string.
  std::string str() const;

private:
  bool HasHeader = false;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_TABLEPRINTER_H
