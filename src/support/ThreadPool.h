//===- support/ThreadPool.h - Reusable worker-thread pool -------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool plus a parallelFor helper, used by the
/// per-procedure analysis phases (jump-function generation, substitution
/// counting) and the batched suite runner. The design constraint is
/// determinism: callers hand parallelFor an index space where every index
/// writes only its own result slot, so the output is bit-identical to a
/// serial loop regardless of worker count or scheduling. Anything
/// order-sensitive (stats folding, map merging, the solver fixpoint)
/// stays on the calling thread.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_THREADPOOL_H
#define IPCP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ipcp {

/// A fixed pool of worker threads consuming a shared task queue.
///
/// Tasks must not throw: an escaping exception would terminate the
/// process. One thread orchestrates the pool at a time (post/wait are
/// mutually thread-safe, but wait() waits for *all* posted tasks, so
/// concurrent orchestrators would observe each other's work).
class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task to run on some worker.
  void post(std::function<void()> Task);

  /// Blocks until every posted task has finished.
  void wait();

  /// std::thread::hardware_concurrency, but never 0.
  static unsigned hardwareThreads();

  /// Process-lifetime count of ThreadPool constructions. The
  /// oversubscription regression tests assert that a nested orchestration
  /// (suite fan-out over multi-threaded pipeline runs) does not spawn a
  /// pool per inner run.
  static uint64_t poolsCreated();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable AllDone;
  size_t Outstanding = 0; ///< Queued + currently running tasks.
  bool Stopping = false;
};

/// Runs Fn(I) for every I in [0, N).
///
/// With a null \p Pool the loop runs serially on the calling thread;
/// otherwise indices are claimed dynamically by the workers and the
/// calling thread together, and the call returns once all N indices have
/// completed. Fn must be safe to invoke concurrently and must write only
/// per-index state; under that contract the result is identical to the
/// serial loop for any worker count.
void parallelFor(ThreadPool *Pool, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace ipcp

#endif // IPCP_SUPPORT_THREADPOOL_H
