//===- support/ThreadPool.cpp - Reusable worker-thread pool ---------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace ipcp;

static std::atomic<uint64_t> PoolsCreated{0};

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

uint64_t ThreadPool::poolsCreated() {
  return PoolsCreated.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned Threads) {
  PoolsCreated.fetch_add(1, std::memory_order_relaxed);
  if (Threads == 0)
    Threads = hardwareThreads();
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::post(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push(std::move(Task));
    ++Outstanding;
  }
  WorkReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Outstanding == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, queue drained.
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Outstanding == 0)
        AllDone.notify_all();
    }
  }
}

void ipcp::parallelFor(ThreadPool *Pool, size_t N,
                       const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (!Pool || Pool->size() == 0 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }

  // Dynamic index claiming: worker count and scheduling affect only who
  // runs an index, never which indices run or what they may observe
  // (per the parallelFor contract).
  struct SharedState {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Active{0};
    std::mutex Mutex;
    std::condition_variable Done;
  } State;

  auto Drain = [&State, &Fn, N] {
    for (size_t I; (I = State.Next.fetch_add(1)) < N;)
      Fn(I);
  };

  size_t Helpers = std::min<size_t>(Pool->size(), N);
  State.Active.store(Helpers);
  for (size_t T = 0; T != Helpers; ++T)
    Pool->post([&State, Drain] {
      Drain();
      if (State.Active.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> Lock(State.Mutex);
        State.Done.notify_one();
      }
    });

  Drain(); // The calling thread participates too.

  std::unique_lock<std::mutex> Lock(State.Mutex);
  State.Done.wait(Lock, [&State] { return State.Active.load() == 0; });
}
