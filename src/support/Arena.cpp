//===- support/Arena.cpp - Chunked bump allocator -------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <algorithm>

using namespace ipcp;

void *BumpArena::allocateSlow(size_t Size, size_t Align) {
  // Oversized requests get a dedicated chunk so they never poison the
  // growth schedule; Cur/End keep pointing into the current normal chunk.
  size_t Needed = Size + Align;
  if (Needed > NextChunkSize) {
    Chunks.push_back(std::make_unique<char[]>(Needed));
    char *Base = Chunks.back().get();
    uintptr_t Aligned =
        (reinterpret_cast<uintptr_t>(Base) + Align - 1) & ~uintptr_t(Align - 1);
    Allocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  size_t ChunkSize = NextChunkSize;
  NextChunkSize = std::min<size_t>(NextChunkSize * 2, size_t(256) << 10);
  Chunks.push_back(std::make_unique<char[]>(ChunkSize));
  Cur = Chunks.back().get();
  End = Cur + ChunkSize;

  uintptr_t Aligned =
      (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~uintptr_t(Align - 1);
  Cur = reinterpret_cast<char *>(Aligned + Size);
  Allocated += Size;
  return reinterpret_cast<void *>(Aligned);
}
