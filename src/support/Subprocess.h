//===- support/Subprocess.h - fork/exec child processes ---------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The minimal process-spawning layer the distributed tier needs: the
/// shard coordinator forks ipcp-driver workers and the serve router
/// forks ipcp-serve backends, both communicating through files or TCP —
/// never through inherited descriptors, so a child is fully described by
/// its argv. POSIX-only, like the TCP transport.
///
/// Waiting distinguishes clean exits from crashes (signals, nonzero
/// status): the coordinator's crash-recovery path keys off that
/// distinction, reassigning a dead worker's partition instead of
/// trusting partial output.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_SUBPROCESS_H
#define IPCP_SUPPORT_SUBPROCESS_H

#include <string>
#include <vector>

namespace ipcp {

/// Outcome of a finished child.
struct ProcessExit {
  bool Exited = false;   ///< Ran to _exit/return (vs. killed by a signal).
  int ExitCode = -1;     ///< Valid when Exited.
  int Signal = 0;        ///< Terminating signal when !Exited.

  bool ok() const { return Exited && ExitCode == 0; }
  /// "exit 3" / "signal 9" for diagnostics.
  std::string str() const;
};

/// A spawned child process. Move-only; the destructor asserts the child
/// was waited for or detached — silently leaking zombies is how crash
/// recovery bugs hide.
class Subprocess {
public:
  Subprocess() = default;
  ~Subprocess();

  Subprocess(Subprocess &&Other) noexcept;
  Subprocess &operator=(Subprocess &&Other) noexcept;
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Forks and execs \p Argv (Argv[0] is the binary path). The child's
  /// stdin reads /dev/null; stdout/stderr are redirected to the named
  /// files when non-empty, else inherited. Returns false with a
  /// diagnostic on failure (including an exec failure, reported by the
  /// child through its exit status on first wait).
  bool spawn(const std::vector<std::string> &Argv,
             const std::string &StdoutPath, const std::string &StderrPath,
             std::string &Error);

  bool running() const { return Pid > 0 && !Waited; }
  long pid() const { return Pid; }

  /// Blocks until the child exits and returns its outcome. Idempotent:
  /// later calls return the recorded outcome.
  ProcessExit wait();

  /// SIGKILLs the child (no-op if already waited). Callers still wait()
  /// to reap.
  void kill();

private:
  long Pid = -1;
  bool Waited = false;
  ProcessExit Exit;
};

/// Absolute path of the running executable (/proc/self/exe); empty on
/// failure. The shard worker re-execs itself through this, so tests and
/// benches never guess at install locations.
std::string currentExecutablePath();

} // namespace ipcp

#endif // IPCP_SUPPORT_SUBPROCESS_H
