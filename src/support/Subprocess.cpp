//===- support/Subprocess.cpp - fork/exec child processes -----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ipcp;

std::string ProcessExit::str() const {
  if (Exited)
    return "exit " + std::to_string(ExitCode);
  return "signal " + std::to_string(Signal);
}

Subprocess::~Subprocess() {
  // Reap rather than leak: an unwaited child would outlive its
  // coordinator as a zombie and make crash tests flaky.
  if (Pid > 0 && !Waited) {
    kill();
    wait();
  }
}

Subprocess::Subprocess(Subprocess &&Other) noexcept
    : Pid(Other.Pid), Waited(Other.Waited), Exit(Other.Exit) {
  Other.Pid = -1;
  Other.Waited = false;
}

Subprocess &Subprocess::operator=(Subprocess &&Other) noexcept {
  if (this != &Other) {
    if (Pid > 0 && !Waited) {
      kill();
      wait();
    }
    Pid = Other.Pid;
    Waited = Other.Waited;
    Exit = Other.Exit;
    Other.Pid = -1;
    Other.Waited = false;
  }
  return *this;
}

bool Subprocess::spawn(const std::vector<std::string> &Argv,
                       const std::string &StdoutPath,
                       const std::string &StderrPath, std::string &Error) {
  // A reaped child may be replaced — the shard coordinator reuses a
  // partition's slot when it reassigns a crashed worker. Only spawning
  // over a live (unreaped) child is a bug.
  assert((Pid <= 0 || Waited) && "spawn() on a live Subprocess");
  if (Argv.empty()) {
    Error = "empty argv";
    return false;
  }
  std::vector<char *> CArgv;
  CArgv.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    CArgv.push_back(const_cast<char *>(A.c_str()));
  CArgv.push_back(nullptr);

  pid_t Child = ::fork();
  if (Child < 0) {
    Error = std::string("fork failed: ") + std::strerror(errno);
    return false;
  }
  if (Child == 0) {
    // Child. Only async-signal-safe calls until exec.
    int DevNull = ::open("/dev/null", O_RDONLY);
    if (DevNull >= 0) {
      ::dup2(DevNull, STDIN_FILENO);
      ::close(DevNull);
    }
    auto Redirect = [](const std::string &Path, int Fd) {
      if (Path.empty())
        return true;
      int File = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (File < 0)
        return false;
      ::dup2(File, Fd);
      ::close(File);
      return true;
    };
    if (!Redirect(StdoutPath, STDOUT_FILENO) ||
        !Redirect(StderrPath, STDERR_FILENO))
      ::_exit(127);
    ::execv(CArgv[0], CArgv.data());
    ::_exit(127); // Exec failed; 127 is the shell's convention for it.
  }
  Pid = Child;
  Waited = false;
  return true;
}

ProcessExit Subprocess::wait() {
  if (Waited || Pid <= 0)
    return Exit;
  int Status = 0;
  pid_t R;
  do {
    R = ::waitpid(static_cast<pid_t>(Pid), &Status, 0);
  } while (R < 0 && errno == EINTR);
  Waited = true;
  if (R < 0) {
    Exit = {};
    return Exit;
  }
  if (WIFEXITED(Status)) {
    Exit.Exited = true;
    Exit.ExitCode = WEXITSTATUS(Status);
  } else if (WIFSIGNALED(Status)) {
    Exit.Exited = false;
    Exit.Signal = WTERMSIG(Status);
  }
  return Exit;
}

void Subprocess::kill() {
  if (Pid > 0 && !Waited)
    ::kill(static_cast<pid_t>(Pid), SIGKILL);
}

std::string ipcp::currentExecutablePath() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  return Buf;
}
