//===- support/SmallVec.h - Inline-storage vector ---------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the first \p N elements, restricted
/// to trivially copyable element types. The SSA overlay attaches a
/// handful of tiny arrays (operand values, phi inputs, kill sets) to
/// every instruction; with std::vector each of those is a separate
/// heap allocation built once and freed once per analyzed procedure,
/// and the malloc/free traffic dominates session construction and
/// teardown on the serve cold path. SmallVec keeps the common short
/// case (one or two elements) entirely inline and only spills to the
/// heap beyond \p N.
///
/// Deliberately minimal: exactly the operations the SSA structures use
/// (push_back, assign, indexing, iteration). Not a general-purpose
/// llvm::SmallVector replacement.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_SMALLVEC_H
#define IPCP_SUPPORT_SMALLVEC_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <type_traits>

namespace ipcp {

template <typename T, unsigned N> class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable elements");
  static_assert(N > 0, "inline capacity must be nonzero");

public:
  SmallVec() : Data(inlineData()) {}

  SmallVec(const SmallVec &Other) : Data(inlineData()) {
    assignRaw(Other.Data, Other.Count);
  }

  SmallVec(SmallVec &&Other) noexcept : Data(inlineData()) {
    if (Other.isHeap()) {
      Data = Other.Data;
      Cap = Other.Cap;
      Count = Other.Count;
      Other.Data = Other.inlineData();
      Other.Cap = N;
      Other.Count = 0;
    } else {
      assignRaw(Other.Data, Other.Count);
    }
  }

  SmallVec &operator=(const SmallVec &Other) {
    if (this != &Other)
      assignRaw(Other.Data, Other.Count);
    return *this;
  }

  SmallVec &operator=(SmallVec &&Other) noexcept {
    if (this == &Other)
      return *this;
    if (Other.isHeap()) {
      if (isHeap())
        std::free(Data);
      Data = Other.Data;
      Cap = Other.Cap;
      Count = Other.Count;
      Other.Data = Other.inlineData();
      Other.Cap = N;
      Other.Count = 0;
    } else {
      assignRaw(Other.Data, Other.Count);
    }
    return *this;
  }

  ~SmallVec() {
    if (isHeap())
      std::free(Data);
  }

  void push_back(const T &V) {
    if (Count == Cap)
      grow(Count + 1);
    Data[Count++] = V;
  }

  /// Replaces the contents with \p Num copies of \p V.
  void assign(size_t Num, const T &V) {
    if (Num > Cap)
      grow(Num);
    for (size_t I = 0; I != Num; ++I)
      Data[I] = V;
    Count = static_cast<uint32_t>(Num);
  }

  void clear() { Count = 0; }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](size_t I) {
    assert(I < Count && "SmallVec index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "SmallVec index out of range");
    return Data[I];
  }

  /// Bounds-checked access, matching std::vector::at.
  const T &at(size_t I) const {
    if (I >= Count)
      throw std::out_of_range("SmallVec::at");
    return Data[I];
  }

  T &back() {
    assert(Count && "back() on empty SmallVec");
    return Data[Count - 1];
  }
  const T &back() const {
    assert(Count && "back() on empty SmallVec");
    return Data[Count - 1];
  }

  T *begin() { return Data; }
  T *end() { return Data + Count; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Count; }

private:
  T *inlineData() { return reinterpret_cast<T *>(Inline); }
  const T *inlineData() const { return reinterpret_cast<const T *>(Inline); }
  bool isHeap() const { return Data != inlineData(); }

  void assignRaw(const T *Src, uint32_t Num) {
    if (Num > Cap)
      grow(Num);
    if (Num)
      std::memcpy(Data, Src, Num * sizeof(T));
    Count = Num;
  }

  void grow(size_t MinCap) {
    size_t NewCap = Cap * 2;
    if (NewCap < MinCap)
      NewCap = MinCap;
    T *Fresh = static_cast<T *>(std::malloc(NewCap * sizeof(T)));
    if (!Fresh)
      throw std::bad_alloc();
    if (Count)
      std::memcpy(Fresh, Data, Count * sizeof(T));
    if (isHeap())
      std::free(Data);
    Data = Fresh;
    Cap = static_cast<uint32_t>(NewCap);
  }

  T *Data;
  uint32_t Count = 0;
  uint32_t Cap = N;
  alignas(T) char Inline[N * sizeof(T)];
};

} // namespace ipcp

#endif // IPCP_SUPPORT_SMALLVEC_H
