//===- support/FuzzFeedback.h - Analyzer-behavior coverage map --*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A libFuzzer-style feature bitmap over cheap analyzer-behavior
/// observations. The analysis phases (Solver, Pipeline) record discrete
/// features — "a VAL cell was lowered by a pass-through jump function",
/// "the memo table hit ~2^k times", "DCE ran k rounds" — through an
/// optional FuzzFeedback hook; the coverage-guided fuzzer keeps a mutant
/// in its corpus exactly when the mutant's run lights feature bits the
/// accumulated global map has never seen.
///
/// Features are (id, value) pairs; the value is bucketed into its
/// floor(log2) so counters contribute a bounded number of bits, and the
/// pair is hashed into a fixed-size bitmap. The map is deliberately in
/// the lowest layer (support/) so both the analyzer and the fuzz harness
/// can use it without a dependency cycle.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_FUZZFEEDBACK_H
#define IPCP_SUPPORT_FUZZFEEDBACK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipcp {

/// Stable identifiers of the analyzer-behavior features. Values are part
/// of the corpus format only insofar as reordering them changes which
/// mutants a re-run retains — append, don't renumber.
enum class FuzzFeature : uint32_t {
  /// A VAL cell was lowered by a jump function of the given form
  /// (Solver). The value is the JumpFunction::Form; one extra bucket per
  /// form records the new lattice state (constant vs BOTTOM).
  LatticeLoweringByJfForm = 1,
  /// The lowered cell's new state: value 0 = constant, 1 = BOTTOM.
  LatticeLoweringState = 2,
  /// Solver effort counters, log2-bucketed (Pipeline).
  SolverProcVisits = 3,
  SolverJfEvaluations = 4,
  SolverCellLowerings = 5,
  SolverMemoHits = 6,
  SolverMemoMisses = 7,
  /// By-reference aliasing shape counters (Pipeline).
  AliasPairs = 8,
  AliasUnstableSymbols = 9,
  /// Complete-propagation dynamics (Pipeline).
  DceRounds = 10,
  FoldedBranches = 11,
  /// Jump-function population histogram (Pipeline), value = count.
  JfForwardConst = 12,
  JfForwardPassThrough = 13,
  JfForwardPoly = 14,
  JfForwardBottom = 15,
  JfReturnConst = 16,
  JfReturnPoly = 17,
  JfMaxPolySupport = 18,
  /// Results shape (Pipeline).
  SubstitutedConstants = 19,
  KnownButIrrelevant = 20,
  NeverCalledProcs = 21,
  /// Transform decisions (recorded by the fuzz harness).
  InlinedCalls = 22,
  InlineSkippedRecursive = 23,
  InlineSkippedHasReturn = 24,
  ClonesCreated = 25,
  CloneRounds = 26,
};

/// Fixed-size feature bitmap plus hit recording. Not thread-safe; one
/// instance per (serial) pipeline run.
class FuzzFeedback {
public:
  /// 2^16 bits; small enough to copy freely, large enough that the
  /// couple of hundred features a run can produce rarely collide.
  static constexpr size_t MapBits = 1u << 16;

  FuzzFeedback() : Words(MapBits / 64, 0) {}

  /// Records feature \p Id observed with \p Value. Values below 8 keep
  /// their identity (categorical features stay distinct); larger ones
  /// are log2-bucketed so each counter contributes at most ~70 distinct
  /// bits over its whole range.
  void hit(FuzzFeature Id, uint64_t Value);

  /// Number of set bits.
  size_t countBits() const;

  /// ORs \p Other into this map. Returns true iff \p Other contained at
  /// least one bit this map did not (the libFuzzer retention test).
  bool mergeNovel(const FuzzFeedback &Other);

  /// True iff \p Other has at least one bit not in this map, without
  /// modifying either.
  bool wouldAddNovel(const FuzzFeedback &Other) const;

  void clear();

private:
  std::vector<uint64_t> Words;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_FUZZFEEDBACK_H
