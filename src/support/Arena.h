//===- support/Arena.h - Chunked bump allocator -----------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator for node-sized objects that live exactly as
/// long as their owning container (AST nodes in an AstContext). Objects
/// are allocated with two pointer bumps and freed wholesale when the
/// arena dies; the arena never runs destructors — owners that allocate
/// non-trivially-destructible objects must track and destroy them
/// explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_ARENA_H
#define IPCP_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ipcp {

/// Bump allocator over geometrically growing chunks.
class BumpArena {
public:
  BumpArena() = default;
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  /// Returns \p Size bytes aligned to \p Align (a power of two no larger
  /// than alignof(std::max_align_t)).
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) [[unlikely]]
      return allocateSlow(Size, Align);
    Cur = reinterpret_cast<char *>(Aligned + Size);
    Allocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Total bytes handed out (diagnostics only).
  size_t bytesAllocated() const { return Allocated; }

private:
  void *allocateSlow(size_t Size, size_t Align);

  std::vector<std::unique_ptr<char[]>> Chunks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextChunkSize = 4096;
  size_t Allocated = 0;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_ARENA_H
