//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-===//
//
// Part of the ipcp project: a reproduction of Grove & Torczon, PLDI 1993,
// "Interprocedural Constant Propagation: A Study of Jump Function
// Implementations".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight 1-based line/column source locations used by the lexer,
/// parser, and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_SOURCELOC_H
#define IPCP_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace ipcp {

/// A position in a source buffer. Line and column are 1-based; a
/// default-constructed location is invalid (line 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const = default;

  /// Renders the location as "line:col" for diagnostics.
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace ipcp

#endif // IPCP_SUPPORT_SOURCELOC_H
