//===- exec/Bytecode.h - MiniFort bytecode representation -------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact stack-bytecode the VM executes (exec/Vm.h). One
/// CodeObject per procedure: a flat instruction vector, a constant
/// pool, a source-location table (trapping instructions reference it by
/// index so the VM reports the same trap locations as the AST
/// interpreter), and the frame layout. Storage classes are resolved at
/// compile time: globals live in one dense slot array, scalar locals
/// and by-value argument temporaries in fixed frame slots, and formals
/// behind one indirection (a per-frame cell-pointer table) so MiniFort's
/// by-reference parameter binding — including reference chains through
/// nested calls — costs a single pointer load.
///
/// Scalar load instructions carry the originating VarRefExpr's id so
/// the VM can fire ExecHooks::OnVarUse; compiler-internal reads (DO-loop
/// bookkeeping) carry id 0, which is never a real ExprId, and stay
/// invisible to hooks exactly like the interpreter's direct cell
/// accesses.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_EXEC_BYTECODE_H
#define IPCP_EXEC_BYTECODE_H

#include "lang/Sema.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipcp {

/// The opcode set. Operand meanings are given per opcode; A and B are
/// the two immediate fields of Inst.
enum class Op : uint8_t {
  PushConst, ///< A = constant-pool index. Push the constant.

  // Scalar reads. A selects the slot; B is the VarRefExpr id for the
  // OnVarUse hook (0 = internal read, no hook).
  LoadGlobal, ///< A = dense global slot.
  LoadLocal,  ///< A = frame slot (by-value temps and locals share one
              ///< numbering; see CodeObject).
  LoadFormal, ///< A = formal index; reads through the frame's cell table.

  // Scalar writes (definition positions never fire hooks).
  StoreGlobal, ///< A = dense global slot. Pop into it.
  StoreLocal,  ///< A = frame slot.
  StoreFormal, ///< A = formal index (through the cell table).

  // Array element reads: pop the 1-based index, bounds-check it
  // (B = location-table index of the ArrayRefExpr for the trap), push
  // the element. A indexes the owning array table.
  LoadArrGlobal, ///< A = CodeProgram::GlobalArrays index.
  LoadArrLocal,  ///< A = CodeObject::LocalArrays index.

  // Array element writes, split so the index is checked *before* the
  // value is evaluated (the interpreter's observable order): AddrArr*
  // pops the index, bounds-checks, and pushes the element's flat
  // storage offset; StoreArr* pops (value, offset) and writes.
  AddrArrGlobal, ///< A = global array index, B = loc index.
  AddrArrLocal,  ///< A = local array index, B = loc index.
  StoreArrGlobal,
  StoreArrLocal,

  // Binary arithmetic, wrapping two's-complement; pop rhs, pop lhs,
  // push the result. Div/Mod carry B = loc index for the
  // divide-by-zero trap.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  LogAnd, ///< Non-short-circuit: both operands were already evaluated.
  LogOr,
  Neg,
  LogNot,

  Jump,       ///< A = target instruction index.
  JumpIfZero, ///< Pop; jump to A when zero.

  Step,  ///< One tick of the step budget; B = loc index for the
         ///< step-limit trap. Emitted at every statement entry and once
         ///< per DO/WHILE iteration, mirroring the interpreter's tick().
  Print, ///< Pop into the PRINT trace.
  Read,  ///< Push the next READ-stream value (consumes one position).

  // Call sequence: CheckCall traps on call-depth *before* any argument
  // is evaluated (the interpreter checks depth on invoke() entry, ahead
  // of argument evaluation — observable through hooks and arg traps).
  // Then one Arg* per actual, left to right: plain-variable actuals
  // push their storage cell (by-reference, no value read, no hook);
  // anything else is evaluated and passed by value. Call binds the
  // buffered arguments to the callee's formals and enters it.
  CheckCall,     ///< B = loc index of the call statement.
  ArgValue,      ///< Pop a by-value actual into the argument buffer.
  ArgCellGlobal, ///< A = global slot; buffer the cell.
  ArgCellLocal,  ///< A = frame slot; buffer the cell.
  ArgCellFormal, ///< A = formal index; pass the caller's cell through.
  Call,          ///< A = callee CodeProgram::Procs index.

  Ret, ///< Pop the frame; from the entry procedure, end the run.
};

/// Returns the stable lowercase mnemonic ("push", "ld.g", ...).
const char *opName(Op O);

/// One instruction. A and B are immediates whose meaning depends on the
/// opcode (slot/target/pool index in A; location-table index or
/// VarRefExpr id in B).
struct Inst {
  Op Opcode;
  uint32_t A = 0;
  uint32_t B = 0;
};

/// A local array's placement inside the frame.
struct LocalArrayInfo {
  uint32_t Offset; ///< First element's frame slot.
  int64_t Size;    ///< Declared element count (indices are 1..Size).
  SymbolId Symbol; ///< The array's symbol (final-state reporting).
};

/// A global array's placement inside the program's flat array storage.
struct GlobalArrayInfo {
  uint32_t Offset;
  int64_t Size;
  SymbolId Symbol;
};

/// One compiled procedure. Frame layout, in slots:
///   [0, NumFormals)            by-value argument temporaries
///   [NumFormals, ArrayBase)    scalar locals, then DO-loop temporaries
///   [ArrayBase, FrameSlots)    local array storage
/// Every activation additionally carries NumFormals cell pointers (the
/// by-reference binding table): formal i resolves to the caller's cell
/// for plain-variable actuals, or to frame slot i for by-value actuals.
struct CodeObject {
  std::string Name;
  uint32_t NumFormals = 0;
  uint32_t ArrayBase = 0;
  uint32_t FrameSlots = 0;
  /// Operand-stack slots this procedure needs (statements never leave
  /// residue, so frames share one stack and the program-wide bound is
  /// the per-procedure maximum, not a sum).
  uint32_t MaxStack = 0;
  std::vector<Inst> Code;
  std::vector<int64_t> Consts;
  std::vector<SourceLoc> Locs;
  /// Formal symbols in parameter order (OnProcEntry hook lookups).
  std::vector<SymbolId> FormalSyms;
  std::vector<LocalArrayInfo> LocalArrays;
};

/// A whole compiled program.
struct CodeProgram {
  std::vector<CodeObject> Procs;
  /// Index of the entry procedure (ProcIds are Procs indices, so call
  /// instructions use the AST's callee ids directly).
  uint32_t Entry = 0;
  /// SymbolTable::size() of the source program; final-state reporting
  /// scatters the dense global slots back to SymbolId indexing so VM
  /// results compare bitwise against interpreter results.
  uint32_t NumSymbols = 0;
  /// Dense global slot -> SymbolId.
  std::vector<SymbolId> GlobalSyms;
  /// SymbolId -> dense global slot, or -1 (OnProcEntry lookups).
  std::vector<int32_t> GlobalSlotOfSymbol;
  /// Declared global initializers, applied at run start.
  std::vector<std::pair<uint32_t, int64_t>> GlobalInits;
  std::vector<GlobalArrayInfo> GlobalArrays;
  uint32_t GlobalArraySlots = 0;
  /// max over Procs of CodeObject::MaxStack.
  uint32_t MaxStack = 0;

  /// Human-readable disassembly of every procedure.
  std::string str() const;
};

} // namespace ipcp

#endif // IPCP_EXEC_BYTECODE_H
