//===- exec/Vm.cpp - MiniFort bytecode virtual machine --------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Vm.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

using namespace ipcp;

namespace {

// Wrapping two's-complement arithmetic, same as the interpreter's
// (computed in unsigned space so the VM is UB-free under UBSan).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// One activation. Reused across calls at the same depth; a depth's
/// Slots buffer is only resized while no deeper frame exists (frames
/// are strictly LIFO), so by-reference cells handed down to callees
/// stay stable.
struct Frame {
  std::vector<int64_t> Slots;
  std::vector<int64_t *> Refs;
  const CodeObject *RetCode = nullptr;
  uint32_t RetIp = 0;
};

struct Arg {
  int64_t Value;
  int64_t *Cell; ///< Null for by-value actuals.
};

/// Per-thread run state, reused across runs so the fuzzer/oracle hot
/// path (many short runs over small programs) pays no per-run heap
/// allocation: the vectors keep their capacity between runs and are
/// re-sized (never re-created) at the top of run(). Every buffer is
/// fully re-initialized before use, so reuse is invisible to program
/// semantics; each thread owns its own scratch, so concurrent run()
/// calls stay safe.
struct VmScratch {
  std::vector<int64_t> Globals;
  std::vector<int64_t> GlobalArr;
  std::vector<int64_t> Stack;
  std::vector<Frame> Frames;
  std::vector<Arg> Args;
  bool InUse = false; ///< Guards against re-entrant runs from hooks.
};

} // namespace

RunResult Vm::run(const RunOptions &Opts, const ExecHooks *Hooks) const {
  RunResult Res;

  // Grab the thread's scratch buffers; if a hook re-entered run() on
  // this thread (the scratch is mid-run), fall back to fresh local
  // buffers for the nested run.
  static thread_local VmScratch Tls;
  VmScratch Local;
  VmScratch &Scr = Tls.InUse ? Local : Tls;
  struct ScratchGuard {
    bool &Flag;
    explicit ScratchGuard(bool &F) : Flag(F) { Flag = true; }
    ~ScratchGuard() { Flag = false; }
  } Guard(Scr.InUse);

  // Program state. The global/stack buffers are sized once per run and
  // never resized afterwards, so the raw data pointers below stay
  // valid. Stale stack contents are fine: every slot is written before
  // it is read.
  Scr.Globals.assign(CP.GlobalSyms.size(), 0);
  for (const auto &[Slot, V] : CP.GlobalInits)
    Scr.Globals[Slot] = V;
  Scr.GlobalArr.assign(CP.GlobalArraySlots, 0);
  Scr.Stack.resize(CP.MaxStack);
  Scr.Args.clear();
  int64_t *const GV = Scr.Globals.data();
  int64_t *const GA = Scr.GlobalArr.data();
  std::vector<int64_t> &Globals = Scr.Globals;
  std::vector<int64_t> &GlobalArr = Scr.GlobalArr;
  std::vector<int64_t> &Stack = Scr.Stack;
  std::vector<Frame> &Frames = Scr.Frames;
  std::vector<Arg> &Args = Scr.Args;

  const uint64_t MaxSteps = Opts.Limits.MaxSteps;
  const unsigned MaxDepth = Opts.Limits.MaxCallDepth;
  uint64_t Steps = 0;
  uint64_t Reads = 0;
  size_t Depth = 0;
  const bool UseHook = Hooks && Hooks->OnVarUse;
  const bool EntryHook = Hooks && Hooks->OnProcEntry;

  auto capture = [&] {
    Res.Steps = Steps;
    Res.ReadsConsumed = Reads;
    Res.FinalGlobals.assign(CP.NumSymbols, 0);
    for (size_t I = 0; I != CP.GlobalSyms.size(); ++I)
      Res.FinalGlobals[CP.GlobalSyms[I]] = Globals[I];
    for (const GlobalArrayInfo &AI : CP.GlobalArrays)
      Res.FinalGlobalArrays.emplace_back(
          AI.Symbol,
          std::vector<int64_t>(GlobalArr.begin() + AI.Offset,
                               GlobalArr.begin() + AI.Offset +
                                   static_cast<size_t>(AI.Size)));
    std::sort(Res.FinalGlobalArrays.begin(), Res.FinalGlobalArrays.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
  };

  auto pushFrame = [&](const CodeObject &CO) -> Frame & {
    if (Frames.size() <= Depth)
      Frames.emplace_back();
    Frame &F = Frames[Depth];
    ++Depth;
    F.Slots.resize(CO.FrameSlots);
    // Locals and local arrays are zero per activation; the by-value
    // temp slots [0, NumFormals) are either bound or dead.
    std::fill(F.Slots.begin() + CO.NumFormals, F.Slots.end(), 0);
    F.Refs.resize(CO.NumFormals);
    return F;
  };

  auto fireProcEntry = [&](ProcId P, const CodeObject &CO, Frame &F) {
    // Mirrors the interpreter's lookup: global scalars first, then
    // formals of the entered procedure, else null.
    auto Lookup = [&](SymbolId Sym) -> const int64_t * {
      if (Sym < CP.GlobalSlotOfSymbol.size()) {
        int32_t S = CP.GlobalSlotOfSymbol[Sym];
        if (S >= 0)
          return &GV[S];
      }
      for (size_t I = 0; I != CO.FormalSyms.size(); ++I)
        if (CO.FormalSyms[I] == Sym)
          return F.Refs[I];
      return nullptr;
    };
    Hooks->OnProcEntry(P, std::function<const int64_t *(SymbolId)>(Lookup));
  };

  // The entry "call": depth-checked like every invoke(), before any
  // frame exists, with an invalid call location.
  if (Depth + 1 > MaxDepth) {
    Res.Status = RunStatus::CallDepthLimit;
    capture();
    return Res;
  }
  const CodeObject *CO = &CP.Procs[CP.Entry];
  {
    Frame &F = pushFrame(*CO);
    // The entry procedure receives no actuals; any formals it declares
    // bind to fresh zero cells (the interpreter reads them as
    // uninitialized-zero locals).
    for (uint32_t I = 0; I != CO->NumFormals; ++I) {
      F.Slots[I] = 0;
      F.Refs[I] = &F.Slots[I];
    }
    if (EntryHook)
      fireProcEntry(CP.Entry, *CO, F);
  }

  // The dispatch-loop registers, re-cached on every call and return.
  const Inst *Code = CO->Code.data();
  const int64_t *Consts = CO->Consts.data();
  uint32_t Ip = 0;
  int64_t *Sp = Stack.data();
  int64_t *FB = Frames[0].Slots.data();
  int64_t **RF = Frames[0].Refs.data();

  RunStatus Trap = RunStatus::Ok;
  SourceLoc TrapLoc;

#define IPCP_VM_TRAP(K)                                                        \
  do {                                                                         \
    Trap = RunStatus::K;                                                       \
    TrapLoc = CO->Locs[I.B];                                                   \
    goto trapped;                                                              \
  } while (0)

  for (;;) {
    const Inst &I = *Code++;
    ++Ip;
    switch (I.Opcode) {
    case Op::PushConst:
      *Sp++ = Consts[I.A];
      break;

    case Op::LoadGlobal: {
      int64_t V = GV[I.A];
      if (UseHook && I.B)
        Hooks->OnVarUse(I.B, V);
      *Sp++ = V;
      break;
    }
    case Op::LoadLocal: {
      int64_t V = FB[I.A];
      if (UseHook && I.B)
        Hooks->OnVarUse(I.B, V);
      *Sp++ = V;
      break;
    }
    case Op::LoadFormal: {
      int64_t V = *RF[I.A];
      if (UseHook && I.B)
        Hooks->OnVarUse(I.B, V);
      *Sp++ = V;
      break;
    }

    case Op::StoreGlobal:
      GV[I.A] = *--Sp;
      break;
    case Op::StoreLocal:
      FB[I.A] = *--Sp;
      break;
    case Op::StoreFormal:
      *RF[I.A] = *--Sp;
      break;

    case Op::LoadArrGlobal: {
      const GlobalArrayInfo &AI = CP.GlobalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = GA[AI.Offset + static_cast<size_t>(Idx) - 1];
      break;
    }
    case Op::LoadArrLocal: {
      const LocalArrayInfo &AI = CO->LocalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = FB[AI.Offset + static_cast<size_t>(Idx) - 1];
      break;
    }
    case Op::AddrArrGlobal: {
      const GlobalArrayInfo &AI = CP.GlobalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = static_cast<int64_t>(AI.Offset) + Idx - 1;
      break;
    }
    case Op::AddrArrLocal: {
      const LocalArrayInfo &AI = CO->LocalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = static_cast<int64_t>(AI.Offset) + Idx - 1;
      break;
    }
    case Op::StoreArrGlobal: {
      int64_t V = *--Sp;
      GA[static_cast<size_t>(*--Sp)] = V;
      break;
    }
    case Op::StoreArrLocal: {
      int64_t V = *--Sp;
      FB[static_cast<size_t>(*--Sp)] = V;
      break;
    }

    case Op::Add:
      Sp[-2] = wrapAdd(Sp[-2], Sp[-1]);
      --Sp;
      break;
    case Op::Sub:
      Sp[-2] = wrapSub(Sp[-2], Sp[-1]);
      --Sp;
      break;
    case Op::Mul:
      Sp[-2] = wrapMul(Sp[-2], Sp[-1]);
      --Sp;
      break;
    case Op::Div: {
      int64_t R = *--Sp;
      int64_t L = Sp[-1];
      if (R == 0)
        IPCP_VM_TRAP(DivideByZero);
      Sp[-1] = (L == INT64_MIN && R == -1) ? INT64_MIN : L / R;
      break;
    }
    case Op::Mod: {
      int64_t R = *--Sp;
      int64_t L = Sp[-1];
      if (R == 0)
        IPCP_VM_TRAP(DivideByZero);
      Sp[-1] = (L == INT64_MIN && R == -1) ? 0 : L % R;
      break;
    }
    case Op::CmpEq:
      Sp[-2] = Sp[-2] == Sp[-1];
      --Sp;
      break;
    case Op::CmpNe:
      Sp[-2] = Sp[-2] != Sp[-1];
      --Sp;
      break;
    case Op::CmpLt:
      Sp[-2] = Sp[-2] < Sp[-1];
      --Sp;
      break;
    case Op::CmpLe:
      Sp[-2] = Sp[-2] <= Sp[-1];
      --Sp;
      break;
    case Op::CmpGt:
      Sp[-2] = Sp[-2] > Sp[-1];
      --Sp;
      break;
    case Op::CmpGe:
      Sp[-2] = Sp[-2] >= Sp[-1];
      --Sp;
      break;
    case Op::LogAnd:
      Sp[-2] = (Sp[-2] != 0) && (Sp[-1] != 0);
      --Sp;
      break;
    case Op::LogOr:
      Sp[-2] = (Sp[-2] != 0) || (Sp[-1] != 0);
      --Sp;
      break;
    case Op::Neg:
      Sp[-1] = wrapNeg(Sp[-1]);
      break;
    case Op::LogNot:
      Sp[-1] = Sp[-1] == 0 ? 1 : 0;
      break;

    case Op::Jump:
      Code += static_cast<int64_t>(I.A) - static_cast<int64_t>(Ip);
      Ip = I.A;
      break;
    case Op::JumpIfZero:
      if (*--Sp == 0) {
        Code += static_cast<int64_t>(I.A) - static_cast<int64_t>(Ip);
        Ip = I.A;
      }
      break;

    case Op::Step:
      if (Steps >= MaxSteps)
        IPCP_VM_TRAP(StepLimit);
      ++Steps;
      break;
    case Op::Print:
      Res.Prints.push_back(*--Sp);
      break;
    case Op::Read:
      *Sp++ = readStreamValue(Opts.ReadSeed, Reads++);
      break;

    case Op::CheckCall:
      if (Depth + 1 > MaxDepth)
        IPCP_VM_TRAP(CallDepthLimit);
      break;
    case Op::ArgValue:
      Args.push_back({*--Sp, nullptr});
      break;
    case Op::ArgCellGlobal:
      Args.push_back({0, &GV[I.A]});
      break;
    case Op::ArgCellLocal:
      Args.push_back({0, &FB[I.A]});
      break;
    case Op::ArgCellFormal:
      Args.push_back({0, RF[I.A]});
      break;
    case Op::Call: {
      const CodeObject &Callee = CP.Procs[I.A];
      assert(Args.size() == Callee.NumFormals && "arity checked by sema");
      Frame &F = pushFrame(Callee);
      F.RetCode = CO;
      F.RetIp = Ip;
      for (uint32_t J = 0; J != Callee.NumFormals; ++J) {
        if (Args[J].Cell) {
          F.Refs[J] = Args[J].Cell;
        } else {
          F.Slots[J] = Args[J].Value;
          F.Refs[J] = &F.Slots[J];
        }
      }
      Args.clear();
      CO = &Callee;
      Code = CO->Code.data();
      Consts = CO->Consts.data();
      Ip = 0;
      FB = F.Slots.data();
      RF = F.Refs.data();
      if (EntryHook)
        fireProcEntry(I.A, Callee, F);
      break;
    }
    case Op::Ret: {
      --Depth;
      if (Depth == 0)
        goto done;
      Frame &F = Frames[Depth]; // The frame being popped.
      CO = F.RetCode;
      Code = CO->Code.data() + F.RetIp;
      Consts = CO->Consts.data();
      Ip = F.RetIp;
      Frame &C = Frames[Depth - 1];
      FB = C.Slots.data();
      RF = C.Refs.data();
      break;
    }
    }
  }

#undef IPCP_VM_TRAP

trapped:
  Res.Status = Trap;
  Res.TrapLoc = TrapLoc;
done:
  capture();
  return Res;
}
