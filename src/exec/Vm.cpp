//===- exec/Vm.cpp - MiniFort bytecode virtual machine --------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Vm.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

// Dispatch strategy. GCC and Clang support computed goto (labels as
// values), which turns the dispatch into one indirect branch *per
// handler* instead of one shared branch at the top of a switch loop —
// the per-handler branches train the predictor on each opcode's actual
// successors, which is worth a double-digit percentage on this
// interpreter's fuzz/oracle workload. Other compilers (and builds
// defining IPCP_VM_FORCE_SWITCH, which CMake exposes as
// -DIPCP_VM_SWITCH_DISPATCH=ON) fall back to the plain switch; both
// expand the same VM_CASE/VM_NEXT handler bodies, so the semantics
// cannot drift between the two.
#if (defined(__GNUC__) || defined(__clang__)) && !defined(IPCP_VM_FORCE_SWITCH)
#define IPCP_VM_COMPUTED_GOTO 1
#else
#define IPCP_VM_COMPUTED_GOTO 0
#endif

using namespace ipcp;

const char *ipcp::vmDispatchMode() {
#if IPCP_VM_COMPUTED_GOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

namespace {

// Wrapping two's-complement arithmetic, same as the interpreter's
// (computed in unsigned space so the VM is UB-free under UBSan).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// One activation. Reused across calls at the same depth; a depth's
/// Slots buffer is only resized while no deeper frame exists (frames
/// are strictly LIFO), so by-reference cells handed down to callees
/// stay stable.
struct Frame {
  std::vector<int64_t> Slots;
  std::vector<int64_t *> Refs;
  const CodeObject *RetCode = nullptr;
  uint32_t RetIp = 0;
};

struct Arg {
  int64_t Value;
  int64_t *Cell; ///< Null for by-value actuals.
};

/// Per-thread run state, reused across runs so the fuzzer/oracle hot
/// path (many short runs over small programs) pays no per-run heap
/// allocation: the vectors keep their capacity between runs and are
/// re-sized (never re-created) at the top of run(). Every buffer is
/// fully re-initialized before use, so reuse is invisible to program
/// semantics; each thread owns its own scratch, so concurrent run()
/// calls stay safe.
struct VmScratch {
  std::vector<int64_t> Globals;
  std::vector<int64_t> GlobalArr;
  std::vector<int64_t> Stack;
  std::vector<Frame> Frames;
  std::vector<Arg> Args;
  bool InUse = false; ///< Guards against re-entrant runs from hooks.
};

} // namespace

RunResult Vm::run(const RunOptions &Opts, const ExecHooks *Hooks) const {
  RunResult Res;

  // Grab the thread's scratch buffers; if a hook re-entered run() on
  // this thread (the scratch is mid-run), fall back to fresh local
  // buffers for the nested run.
  static thread_local VmScratch Tls;
  VmScratch Local;
  VmScratch &Scr = Tls.InUse ? Local : Tls;
  struct ScratchGuard {
    bool &Flag;
    explicit ScratchGuard(bool &F) : Flag(F) { Flag = true; }
    ~ScratchGuard() { Flag = false; }
  } Guard(Scr.InUse);

  // Program state. The global/stack buffers are sized once per run and
  // never resized afterwards, so the raw data pointers below stay
  // valid. Stale stack contents are fine: every slot is written before
  // it is read.
  Scr.Globals.assign(CP.GlobalSyms.size(), 0);
  for (const auto &[Slot, V] : CP.GlobalInits)
    Scr.Globals[Slot] = V;
  Scr.GlobalArr.assign(CP.GlobalArraySlots, 0);
  Scr.Stack.resize(CP.MaxStack);
  Scr.Args.clear();
  int64_t *const GV = Scr.Globals.data();
  int64_t *const GA = Scr.GlobalArr.data();
  std::vector<int64_t> &Globals = Scr.Globals;
  std::vector<int64_t> &GlobalArr = Scr.GlobalArr;
  std::vector<int64_t> &Stack = Scr.Stack;
  std::vector<Frame> &Frames = Scr.Frames;
  std::vector<Arg> &Args = Scr.Args;

  const uint64_t MaxSteps = Opts.Limits.MaxSteps;
  const unsigned MaxDepth = Opts.Limits.MaxCallDepth;
  uint64_t Steps = 0;
  uint64_t Reads = 0;
  size_t Depth = 0;
  const bool UseHook = Hooks && Hooks->OnVarUse;
  const bool EntryHook = Hooks && Hooks->OnProcEntry;

  auto capture = [&] {
    Res.Steps = Steps;
    Res.ReadsConsumed = Reads;
    Res.FinalGlobals.assign(CP.NumSymbols, 0);
    for (size_t I = 0; I != CP.GlobalSyms.size(); ++I)
      Res.FinalGlobals[CP.GlobalSyms[I]] = Globals[I];
    for (const GlobalArrayInfo &AI : CP.GlobalArrays)
      Res.FinalGlobalArrays.emplace_back(
          AI.Symbol,
          std::vector<int64_t>(GlobalArr.begin() + AI.Offset,
                               GlobalArr.begin() + AI.Offset +
                                   static_cast<size_t>(AI.Size)));
    std::sort(Res.FinalGlobalArrays.begin(), Res.FinalGlobalArrays.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
  };

  auto pushFrame = [&](const CodeObject &CO) -> Frame & {
    if (Frames.size() <= Depth)
      Frames.emplace_back();
    Frame &F = Frames[Depth];
    ++Depth;
    F.Slots.resize(CO.FrameSlots);
    // Locals and local arrays are zero per activation; the by-value
    // temp slots [0, NumFormals) are either bound or dead.
    std::fill(F.Slots.begin() + CO.NumFormals, F.Slots.end(), 0);
    F.Refs.resize(CO.NumFormals);
    return F;
  };

  auto fireProcEntry = [&](ProcId P, const CodeObject &CO, Frame &F) {
    // Mirrors the interpreter's lookup: global scalars first, then
    // formals of the entered procedure, else null.
    auto Lookup = [&](SymbolId Sym) -> const int64_t * {
      if (Sym < CP.GlobalSlotOfSymbol.size()) {
        int32_t S = CP.GlobalSlotOfSymbol[Sym];
        if (S >= 0)
          return &GV[S];
      }
      for (size_t I = 0; I != CO.FormalSyms.size(); ++I)
        if (CO.FormalSyms[I] == Sym)
          return F.Refs[I];
      return nullptr;
    };
    Hooks->OnProcEntry(P, std::function<const int64_t *(SymbolId)>(Lookup));
  };

  // The entry "call": depth-checked like every invoke(), before any
  // frame exists, with an invalid call location.
  if (Depth + 1 > MaxDepth) {
    Res.Status = RunStatus::CallDepthLimit;
    capture();
    return Res;
  }
  const CodeObject *CO = &CP.Procs[CP.Entry];
  {
    Frame &F = pushFrame(*CO);
    // The entry procedure receives no actuals; any formals it declares
    // bind to fresh zero cells (the interpreter reads them as
    // uninitialized-zero locals).
    for (uint32_t I = 0; I != CO->NumFormals; ++I) {
      F.Slots[I] = 0;
      F.Refs[I] = &F.Slots[I];
    }
    if (EntryHook)
      fireProcEntry(CP.Entry, *CO, F);
  }

  // The dispatch-loop registers, re-cached on every call and return.
  const Inst *Code = CO->Code.data();
  const int64_t *Consts = CO->Consts.data();
  uint32_t Ip = 0;
  int64_t *Sp = Stack.data();
  int64_t *FB = Frames[0].Slots.data();
  int64_t **RF = Frames[0].Refs.data();

  RunStatus Trap = RunStatus::Ok;
  SourceLoc TrapLoc;

#define IPCP_VM_TRAP(K)                                                        \
  do {                                                                         \
    Trap = RunStatus::K;                                                       \
    TrapLoc = CO->Locs[I.B];                                                   \
    goto trapped;                                                              \
  } while (0)

  // Both dispatch strategies share the handler bodies below: VM_CASE
  // opens a handler (binding I to the fetched instruction), VM_NEXT
  // ends it. Under computed goto the handlers are labels and VM_NEXT is
  // the fetch + indirect branch; under the fallback they are switch
  // cases inside an ordinary for(;;) loop. The label table MUST match
  // exec/Bytecode.h's Op declaration order — a static_assert on the
  // table size below catches additions, and any reordering shows up as
  // instant differential-wall failure.
  const Inst *IPtr = nullptr;
#if IPCP_VM_COMPUTED_GOTO
  static const void *const Labels[] = {
      &&L_PushConst,     &&L_LoadGlobal,    &&L_LoadLocal,
      &&L_LoadFormal,    &&L_StoreGlobal,   &&L_StoreLocal,
      &&L_StoreFormal,   &&L_LoadArrGlobal, &&L_LoadArrLocal,
      &&L_AddrArrGlobal, &&L_AddrArrLocal,  &&L_StoreArrGlobal,
      &&L_StoreArrLocal, &&L_Add,           &&L_Sub,
      &&L_Mul,           &&L_Div,           &&L_Mod,
      &&L_CmpEq,         &&L_CmpNe,         &&L_CmpLt,
      &&L_CmpLe,         &&L_CmpGt,         &&L_CmpGe,
      &&L_LogAnd,        &&L_LogOr,         &&L_Neg,
      &&L_LogNot,        &&L_Jump,          &&L_JumpIfZero,
      &&L_Step,          &&L_Print,         &&L_Read,
      &&L_CheckCall,     &&L_ArgValue,      &&L_ArgCellGlobal,
      &&L_ArgCellLocal,  &&L_ArgCellFormal, &&L_Call,
      &&L_Ret,
  };
  static_assert(sizeof(Labels) / sizeof(Labels[0]) ==
                    static_cast<size_t>(Op::Ret) + 1,
                "computed-goto label table out of sync with the Op enum");
#define VM_DISPATCH()                                                          \
  IPtr = Code++;                                                               \
  ++Ip;                                                                        \
  goto *Labels[static_cast<uint8_t>(IPtr->Opcode)]
#define VM_CASE(Name)                                                          \
  L_##Name : {                                                                 \
    const Inst &I = *IPtr;                                                     \
    (void)I;
#define VM_NEXT()                                                              \
  }                                                                            \
  VM_DISPATCH()
  VM_DISPATCH();
#else
#define VM_CASE(Name)                                                          \
  case Op::Name: {                                                             \
    const Inst &I = *IPtr;                                                     \
    (void)I;
#define VM_NEXT()                                                              \
  }                                                                            \
  break
  for (;;) {
    IPtr = Code++;
    ++Ip;
    switch (IPtr->Opcode) {
#endif

      VM_CASE(PushConst)
      *Sp++ = Consts[I.A];
      VM_NEXT();

      VM_CASE(LoadGlobal)
      int64_t V = GV[I.A];
      if (UseHook && I.B)
        Hooks->OnVarUse(I.B, V);
      *Sp++ = V;
      VM_NEXT();

      VM_CASE(LoadLocal)
      int64_t V = FB[I.A];
      if (UseHook && I.B)
        Hooks->OnVarUse(I.B, V);
      *Sp++ = V;
      VM_NEXT();

      VM_CASE(LoadFormal)
      int64_t V = *RF[I.A];
      if (UseHook && I.B)
        Hooks->OnVarUse(I.B, V);
      *Sp++ = V;
      VM_NEXT();

      VM_CASE(StoreGlobal)
      GV[I.A] = *--Sp;
      VM_NEXT();

      VM_CASE(StoreLocal)
      FB[I.A] = *--Sp;
      VM_NEXT();

      VM_CASE(StoreFormal)
      *RF[I.A] = *--Sp;
      VM_NEXT();

      VM_CASE(LoadArrGlobal)
      const GlobalArrayInfo &AI = CP.GlobalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = GA[AI.Offset + static_cast<size_t>(Idx) - 1];
      VM_NEXT();

      VM_CASE(LoadArrLocal)
      const LocalArrayInfo &AI = CO->LocalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = FB[AI.Offset + static_cast<size_t>(Idx) - 1];
      VM_NEXT();

      VM_CASE(AddrArrGlobal)
      const GlobalArrayInfo &AI = CP.GlobalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = static_cast<int64_t>(AI.Offset) + Idx - 1;
      VM_NEXT();

      VM_CASE(AddrArrLocal)
      const LocalArrayInfo &AI = CO->LocalArrays[I.A];
      int64_t Idx = Sp[-1];
      if (Idx < 1 ||
          static_cast<uint64_t>(Idx) > static_cast<uint64_t>(AI.Size))
        IPCP_VM_TRAP(ArrayBounds);
      Sp[-1] = static_cast<int64_t>(AI.Offset) + Idx - 1;
      VM_NEXT();

      VM_CASE(StoreArrGlobal)
      int64_t V = *--Sp;
      GA[static_cast<size_t>(*--Sp)] = V;
      VM_NEXT();

      VM_CASE(StoreArrLocal)
      int64_t V = *--Sp;
      FB[static_cast<size_t>(*--Sp)] = V;
      VM_NEXT();

      VM_CASE(Add)
      Sp[-2] = wrapAdd(Sp[-2], Sp[-1]);
      --Sp;
      VM_NEXT();

      VM_CASE(Sub)
      Sp[-2] = wrapSub(Sp[-2], Sp[-1]);
      --Sp;
      VM_NEXT();

      VM_CASE(Mul)
      Sp[-2] = wrapMul(Sp[-2], Sp[-1]);
      --Sp;
      VM_NEXT();

      VM_CASE(Div)
      int64_t R = *--Sp;
      int64_t L = Sp[-1];
      if (R == 0)
        IPCP_VM_TRAP(DivideByZero);
      Sp[-1] = (L == INT64_MIN && R == -1) ? INT64_MIN : L / R;
      VM_NEXT();

      VM_CASE(Mod)
      int64_t R = *--Sp;
      int64_t L = Sp[-1];
      if (R == 0)
        IPCP_VM_TRAP(DivideByZero);
      Sp[-1] = (L == INT64_MIN && R == -1) ? 0 : L % R;
      VM_NEXT();

      VM_CASE(CmpEq)
      Sp[-2] = Sp[-2] == Sp[-1];
      --Sp;
      VM_NEXT();

      VM_CASE(CmpNe)
      Sp[-2] = Sp[-2] != Sp[-1];
      --Sp;
      VM_NEXT();

      VM_CASE(CmpLt)
      Sp[-2] = Sp[-2] < Sp[-1];
      --Sp;
      VM_NEXT();

      VM_CASE(CmpLe)
      Sp[-2] = Sp[-2] <= Sp[-1];
      --Sp;
      VM_NEXT();

      VM_CASE(CmpGt)
      Sp[-2] = Sp[-2] > Sp[-1];
      --Sp;
      VM_NEXT();

      VM_CASE(CmpGe)
      Sp[-2] = Sp[-2] >= Sp[-1];
      --Sp;
      VM_NEXT();

      VM_CASE(LogAnd)
      Sp[-2] = (Sp[-2] != 0) && (Sp[-1] != 0);
      --Sp;
      VM_NEXT();

      VM_CASE(LogOr)
      Sp[-2] = (Sp[-2] != 0) || (Sp[-1] != 0);
      --Sp;
      VM_NEXT();

      VM_CASE(Neg)
      Sp[-1] = wrapNeg(Sp[-1]);
      VM_NEXT();

      VM_CASE(LogNot)
      Sp[-1] = Sp[-1] == 0 ? 1 : 0;
      VM_NEXT();

      VM_CASE(Jump)
      Code += static_cast<int64_t>(I.A) - static_cast<int64_t>(Ip);
      Ip = I.A;
      VM_NEXT();

      VM_CASE(JumpIfZero)
      if (*--Sp == 0) {
        Code += static_cast<int64_t>(I.A) - static_cast<int64_t>(Ip);
        Ip = I.A;
      }
      VM_NEXT();

      VM_CASE(Step)
      if (Steps >= MaxSteps)
        IPCP_VM_TRAP(StepLimit);
      ++Steps;
      VM_NEXT();

      VM_CASE(Print)
      Res.Prints.push_back(*--Sp);
      VM_NEXT();

      VM_CASE(Read)
      *Sp++ = readStreamValue(Opts.ReadSeed, Reads++);
      VM_NEXT();

      VM_CASE(CheckCall)
      if (Depth + 1 > MaxDepth)
        IPCP_VM_TRAP(CallDepthLimit);
      VM_NEXT();

      VM_CASE(ArgValue)
      Args.push_back({*--Sp, nullptr});
      VM_NEXT();

      VM_CASE(ArgCellGlobal)
      Args.push_back({0, &GV[I.A]});
      VM_NEXT();

      VM_CASE(ArgCellLocal)
      Args.push_back({0, &FB[I.A]});
      VM_NEXT();

      VM_CASE(ArgCellFormal)
      Args.push_back({0, RF[I.A]});
      VM_NEXT();

      VM_CASE(Call)
      const CodeObject &Callee = CP.Procs[I.A];
      assert(Args.size() == Callee.NumFormals && "arity checked by sema");
      Frame &F = pushFrame(Callee);
      F.RetCode = CO;
      F.RetIp = Ip;
      for (uint32_t J = 0; J != Callee.NumFormals; ++J) {
        if (Args[J].Cell) {
          F.Refs[J] = Args[J].Cell;
        } else {
          F.Slots[J] = Args[J].Value;
          F.Refs[J] = &F.Slots[J];
        }
      }
      Args.clear();
      CO = &Callee;
      Code = CO->Code.data();
      Consts = CO->Consts.data();
      Ip = 0;
      FB = F.Slots.data();
      RF = F.Refs.data();
      if (EntryHook)
        fireProcEntry(I.A, Callee, F);
      VM_NEXT();

      VM_CASE(Ret)
      --Depth;
      if (Depth == 0)
        goto done;
      Frame &F = Frames[Depth]; // The frame being popped.
      CO = F.RetCode;
      Code = CO->Code.data() + F.RetIp;
      Consts = CO->Consts.data();
      Ip = F.RetIp;
      Frame &C = Frames[Depth - 1];
      FB = C.Slots.data();
      RF = C.Refs.data();
      VM_NEXT();

#if !IPCP_VM_COMPUTED_GOTO
    }
  }
#endif

#undef VM_CASE
#undef VM_NEXT
#ifdef VM_DISPATCH
#undef VM_DISPATCH
#endif
#undef IPCP_VM_TRAP

trapped:
  Res.Status = Trap;
  Res.TrapLoc = TrapLoc;
done:
  capture();
  return Res;
}
