//===- exec/Oracle.h - Translation-validation oracle ------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth checking for the analyzer and its transforms, in the
/// spirit of value-context validation (Padhye & Khedker) and the GVN
/// correctness-checking tradition: execute the program and its
/// transformed versions on the same READ input stream and require
/// identical observable behavior, and replay the analyzed program
/// checking every claim the analysis made against the values actually
/// observed.
///
/// Concretely, validateTranslation():
///
///  1. runs the original program as parsed (the reference trace);
///  2. re-runs the analyzed AST (mutated by DCE under complete
///     propagation) with hooks asserting that every substituted use
///     carries exactly its claimed constant and that every CONSTANTS(p)
///     entry holds on every observed entry to p, and compares its trace
///     to the reference;
///  3. reparses the EmitTransformedSource output and compares its trace;
///  4. optionally applies the same trace check to the procedure
///     integrator (Inliner) and the cloning transform.
///
/// Traces must agree exactly — same PRINT values, same termination
/// status — unless a run hit a resource limit (step or call-depth
/// budget), in which case the truncated trace must be a prefix of the
/// other (resource limits are budget artifacts, not semantics).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_EXEC_ORACLE_H
#define IPCP_EXEC_ORACLE_H

#include "exec/ExecEngine.h"
#include "exec/Interpreter.h"
#include "ipcp/Pipeline.h"

#include <string>
#include <string_view>
#include <vector>

namespace ipcp {

/// Parameters of one validation.
struct OracleOptions {
  /// The analyzer configuration under validation.
  PipelineOptions Pipeline;
  /// Resource bounds applied to every run.
  RunLimits Limits;
  /// Which engine executes the runs. The bytecode VM is the hot-path
  /// default; the AST interpreter remains available as the differential
  /// reference (the check-vm tests pin oracle results identical under
  /// both).
  ExecEngine Engine = ExecEngine::Vm;
  /// READ streams to execute under; every check runs once per seed.
  std::vector<uint64_t> ReadSeeds = {1, 2};
  /// Validate the reparsed EmitTransformedSource output (step 3).
  bool CheckTransformedSource = true;
  /// Validate the procedure integrator's output (step 4).
  bool CheckInliner = false;
  /// Validate the cloning transform's output (step 4). Note: cloning
  /// runs its own analyzer internally; this is the costliest check.
  bool CheckCloning = false;
};

/// Outcome of one validation.
struct OracleResult {
  /// True when every executed check passed.
  bool Ok = false;
  /// Failure descriptions (empty when Ok). At most a handful are kept.
  std::string Error;

  unsigned RunsExecuted = 0;
  unsigned TraceComparisons = 0;
  /// Observed evaluations of substituted uses checked against their
  /// claimed constants.
  unsigned SubstitutedUseChecks = 0;
  /// Observed procedure entries checked against CONSTANTS(p) entries.
  unsigned EntryConstantChecks = 0;

  /// Trace/status disagreements between the reference and a transform.
  unsigned TraceDivergences = 0;
  /// Substituted-use or CONSTANTS(p) values contradicted by execution.
  unsigned ConstantMismatches = 0;
};

/// Validates \p Source under \p Opts. Returns Ok=false with a diagnostic
/// in Error if the source does not parse, the pipeline fails, a
/// transformed program does not reparse, or any executed check fails.
OracleResult validateTranslation(std::string_view Source,
                                 const OracleOptions &Opts);

} // namespace ipcp

#endif // IPCP_EXEC_ORACLE_H
