//===- exec/BytecodeCompiler.h - AST -> bytecode lowering -------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a Sema-checked MiniFort program into the stack bytecode of
/// exec/Bytecode.h. The lowering is a direct syntax-directed walk that
/// preserves the AST interpreter's observable semantics instruction by
/// instruction: evaluation order, step accounting (one tick per
/// statement plus one per loop iteration), trap locations, hook firing
/// positions, and the DO-loop comparison direction fixed from the
/// step's *syntactic* constancy. tests/VmTests.cpp and the check-vm
/// differential wall hold the compiled code to that contract.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_EXEC_BYTECODECOMPILER_H
#define IPCP_EXEC_BYTECODECOMPILER_H

#include "exec/Bytecode.h"
#include "lang/Ast.h"
#include "lang/Sema.h"

namespace ipcp {

/// Compiles \p Prog into executable bytecode. \p Prog must be
/// Sema-checked against \p Symbols (every VarRef bound, every call
/// resolved, an entry procedure present).
CodeProgram compileProgram(const Program &Prog, const SymbolTable &Symbols);

} // namespace ipcp

#endif // IPCP_EXEC_BYTECODECOMPILER_H
