//===- exec/Bytecode.cpp - MiniFort bytecode representation ---------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Bytecode.h"

#include <sstream>

using namespace ipcp;

const char *ipcp::opName(Op O) {
  switch (O) {
  case Op::PushConst:
    return "push";
  case Op::LoadGlobal:
    return "ld.g";
  case Op::LoadLocal:
    return "ld.l";
  case Op::LoadFormal:
    return "ld.f";
  case Op::StoreGlobal:
    return "st.g";
  case Op::StoreLocal:
    return "st.l";
  case Op::StoreFormal:
    return "st.f";
  case Op::LoadArrGlobal:
    return "ldarr.g";
  case Op::LoadArrLocal:
    return "ldarr.l";
  case Op::AddrArrGlobal:
    return "addr.g";
  case Op::AddrArrLocal:
    return "addr.l";
  case Op::StoreArrGlobal:
    return "starr.g";
  case Op::StoreArrLocal:
    return "starr.l";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Mod:
    return "mod";
  case Op::CmpEq:
    return "ceq";
  case Op::CmpNe:
    return "cne";
  case Op::CmpLt:
    return "clt";
  case Op::CmpLe:
    return "cle";
  case Op::CmpGt:
    return "cgt";
  case Op::CmpGe:
    return "cge";
  case Op::LogAnd:
    return "and";
  case Op::LogOr:
    return "or";
  case Op::Neg:
    return "neg";
  case Op::LogNot:
    return "not";
  case Op::Jump:
    return "jmp";
  case Op::JumpIfZero:
    return "jz";
  case Op::Step:
    return "step";
  case Op::Print:
    return "print";
  case Op::Read:
    return "read";
  case Op::CheckCall:
    return "ckcall";
  case Op::ArgValue:
    return "arg.v";
  case Op::ArgCellGlobal:
    return "arg.g";
  case Op::ArgCellLocal:
    return "arg.l";
  case Op::ArgCellFormal:
    return "arg.f";
  case Op::Call:
    return "call";
  case Op::Ret:
    return "ret";
  }
  return "?";
}

namespace {

bool hasAOperand(Op O) {
  switch (O) {
  case Op::PushConst:
  case Op::LoadGlobal:
  case Op::LoadLocal:
  case Op::LoadFormal:
  case Op::StoreGlobal:
  case Op::StoreLocal:
  case Op::StoreFormal:
  case Op::LoadArrGlobal:
  case Op::LoadArrLocal:
  case Op::AddrArrGlobal:
  case Op::AddrArrLocal:
  case Op::Jump:
  case Op::JumpIfZero:
  case Op::ArgCellGlobal:
  case Op::ArgCellLocal:
  case Op::ArgCellFormal:
  case Op::Call:
    return true;
  default:
    return false;
  }
}

bool hasLocOperand(Op O) {
  switch (O) {
  case Op::LoadArrGlobal:
  case Op::LoadArrLocal:
  case Op::AddrArrGlobal:
  case Op::AddrArrLocal:
  case Op::Div:
  case Op::Mod:
  case Op::Step:
  case Op::CheckCall:
    return true;
  default:
    return false;
  }
}

} // namespace

std::string CodeProgram::str() const {
  std::ostringstream OS;
  for (size_t P = 0; P != Procs.size(); ++P) {
    const CodeObject &CO = Procs[P];
    OS << "proc " << CO.Name << " (#" << P << ")"
       << (P == Entry ? " [entry]" : "") << ": " << CO.NumFormals
       << " formals, " << CO.FrameSlots << " frame slots, stack "
       << CO.MaxStack << "\n";
    for (size_t I = 0; I != CO.Code.size(); ++I) {
      const Inst &In = CO.Code[I];
      OS << "  " << I << ": " << opName(In.Opcode);
      if (In.Opcode == Op::PushConst)
        OS << " " << CO.Consts[In.A];
      else if (hasAOperand(In.Opcode))
        OS << " " << In.A;
      if (hasLocOperand(In.Opcode))
        OS << " @" << CO.Locs[In.B].str();
      else if (In.B)
        OS << " #" << In.B; // VarRefExpr id feeding OnVarUse.
      OS << "\n";
    }
  }
  return OS.str();
}
