//===- exec/ExecEngine.cpp - Execution engine selection -------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecEngine.h"

#include "exec/BytecodeCompiler.h"
#include "exec/Vm.h"

using namespace ipcp;

const char *ipcp::execEngineName(ExecEngine E) {
  return E == ExecEngine::Vm ? "vm" : "ast";
}

std::optional<ExecEngine> ipcp::parseExecEngineName(std::string_view Name) {
  if (Name == "vm")
    return ExecEngine::Vm;
  if (Name == "ast")
    return ExecEngine::Ast;
  return std::nullopt;
}

ProgramRunner::ProgramRunner(const Program &Prog, const SymbolTable &Symbols,
                             ExecEngine Engine)
    : Engine(Engine), Interp(Prog, Symbols) {
  if (Engine == ExecEngine::Vm) {
    Code = std::make_unique<CodeProgram>(compileProgram(Prog, Symbols));
    Machine = std::make_unique<Vm>(*Code);
  }
}

ProgramRunner::~ProgramRunner() = default;
ProgramRunner::ProgramRunner(ProgramRunner &&) noexcept = default;

RunResult ProgramRunner::run(const RunOptions &Opts,
                             const ExecHooks *Hooks) const {
  return Engine == ExecEngine::Vm ? Machine->run(Opts, Hooks)
                                  : Interp.run(Opts, Hooks);
}
