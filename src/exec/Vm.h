//===- exec/Vm.h - MiniFort bytecode virtual machine ------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode VM: a tight dispatch loop (computed goto on GCC/Clang,
/// portable switch elsewhere — see vmDispatchMode()) over
/// exec/Bytecode.h code objects. It is the oracle's and the fuzzer's execution hot
/// path; the AST interpreter (exec/Interpreter.h) remains the normative
/// semantics, and the VM reproduces its observable behavior exactly —
/// PRINT trace, READ consumption, step accounting, trap kinds and
/// locations, hook firing, and final global/array state. The check-vm
/// differential test wall (tests/VmDifferentialTests.cpp) enforces the
/// equivalence; bench/vm_throughput gates the speedup that justifies
/// the second engine.
///
/// Design notes. Values live on one preallocated operand stack sized by
/// the compiler (statements never leave residue, so frames share it and
/// no bounds checks run in the loop). Activations are kept in a
/// per-depth pool of flat slot vectors: frames are strictly LIFO, and a
/// depth's buffer is only ever resized while no deeper frame exists, so
/// the by-reference cells handed to callees stay stable without
/// per-call heap allocation. All run state (stack, globals, frame
/// pool) lives in thread-local scratch reused across runs — the
/// fuzzer/oracle workload is many microsecond-scale runs, where per-run
/// allocation would dominate — and every buffer is re-initialized per
/// run, so reuse never leaks state between runs (re-entrant runs from
/// hooks fall back to local buffers). Traps unwind by direct branch out
/// of the dispatch loop — no exceptions on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_EXEC_VM_H
#define IPCP_EXEC_VM_H

#include "exec/Bytecode.h"
#include "exec/Interpreter.h"

namespace ipcp {

/// Which dispatch strategy this build of the VM compiled in:
/// "computed-goto" on compilers with labels-as-values (GCC/Clang),
/// "switch" otherwise or when built with -DIPCP_VM_SWITCH_DISPATCH=ON.
/// Both expand identical handler bodies; the bench reports the mode so
/// throughput numbers are attributable.
const char *vmDispatchMode();

/// Executes compiled MiniFort programs. Stateless between runs like the
/// interpreter: run() may be called repeatedly and concurrently from
/// multiple threads on the same instance.
class Vm {
public:
  /// \p Code must outlive the VM.
  explicit Vm(const CodeProgram &Code) : CP(Code) {}

  /// Executes from the entry procedure to completion, trap, or limit.
  RunResult run(const RunOptions &Opts,
                const ExecHooks *Hooks = nullptr) const;

private:
  const CodeProgram &CP;
};

} // namespace ipcp

#endif // IPCP_EXEC_VM_H
