//===- exec/Interpreter.cpp - MiniFort reference interpreter --------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>

using namespace ipcp;

const char *ipcp::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Ok:
    return "ok";
  case RunStatus::DivideByZero:
    return "divide-by-zero";
  case RunStatus::ArrayBounds:
    return "array-bounds";
  case RunStatus::StepLimit:
    return "step-limit";
  case RunStatus::CallDepthLimit:
    return "call-depth-limit";
  }
  return "unknown";
}

std::string RunResult::str() const {
  std::ostringstream OS;
  OS << runStatusName(Status);
  if (Status != RunStatus::Ok && TrapLoc.isValid())
    OS << " at " << TrapLoc.str();
  OS << ", " << Prints.size() << " prints, " << Steps << " steps, "
     << ReadsConsumed << " reads";
  return OS.str();
}

int64_t ipcp::readStreamValue(uint64_t Seed, uint64_t Index) {
  // splitmix64 over (seed, index) so the nth value depends only on the
  // stream position, not on how earlier values were consumed.
  uint64_t X = (Seed ? Seed : 0x9e3779b97f4a7c15) +
               (Index + 1) * 0x9e3779b97f4a7c15;
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9;
  X ^= X >> 27;
  X *= 0x94d049bb133111eb;
  X ^= X >> 31;
  // Small range around zero: includes 0 (division traps) and negatives
  // (descending comparisons) while keeping loop bounds modest.
  return static_cast<int64_t>(X % 41) - 8;
}

namespace {

// All arithmetic is two's-complement and wraps modulo 2^64 (computed in
// unsigned space so the interpreter itself is UB-free under UBSan even
// for adversarial programs).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// Thrown on a structured trap; caught at the run() boundary.
struct TrapSignal {
  RunStatus Kind;
  SourceLoc Loc;
};

/// Statement-level control flow outcome.
enum class Flow : uint8_t { Normal, Returned };

/// One run's machine state.
class Machine {
public:
  Machine(const Program &Prog, const SymbolTable &Symbols,
          const RunOptions &Opts, const ExecHooks *Hooks)
      : Prog(Prog), Symbols(Symbols), Opts(Opts), Hooks(Hooks) {
    Globals.assign(Symbols.size(), 0);
    for (const GlobalDecl &G : Prog.Globals)
      if (G.Init)
        Globals[G.Symbol] = *G.Init;
    for (const ArrayDecl &A : Prog.GlobalArrays)
      GlobalArrays.emplace(A.Symbol,
                           std::vector<int64_t>(size_t(A.Size), 0));
  }

  RunResult run() {
    auto Entry = Prog.entryProc();
    assert(Entry && "interpreter needs a sema-checked program");
    try {
      invoke(*Entry, nullptr, SourceLoc());
    } catch (const TrapSignal &T) {
      Res.Status = T.Kind;
      Res.TrapLoc = T.Loc;
    }
    // Final-state capture (the engine-differential tests compare it).
    Res.FinalGlobals = std::move(Globals);
    for (auto &[Sym, Elems] : GlobalArrays)
      Res.FinalGlobalArrays.emplace_back(Sym, std::move(Elems));
    std::sort(Res.FinalGlobalArrays.begin(), Res.FinalGlobalArrays.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    return std::move(Res);
  }

private:
  /// A procedure activation. Frames are heap-allocated and node-based so
  /// the by-reference cells handed to callees stay stable.
  struct Frame {
    /// Formal name -> cell in the caller (by-reference) or in Temps
    /// (by-value expression actual).
    std::unordered_map<SymbolId, int64_t *> Refs;
    /// Locals, default-initialized to 0 on first touch (the documented
    /// uninitialized-variable policy).
    std::unordered_map<SymbolId, int64_t> Locals;
    /// Local arrays, zero-initialized per activation.
    std::unordered_map<SymbolId, std::vector<int64_t>> Arrays;
    /// Storage for by-value argument temporaries (stable addresses).
    std::deque<int64_t> Temps;
  };

  void tick(SourceLoc Loc) {
    // Trap before counting: the reported step count never exceeds the
    // budget.
    if (Res.Steps >= Opts.Limits.MaxSteps)
      throw TrapSignal{RunStatus::StepLimit, Loc};
    ++Res.Steps;
  }

  int64_t nextRead() {
    return readStreamValue(Opts.ReadSeed, Res.ReadsConsumed++);
  }

  /// Resolves a scalar symbol to its storage cell in the current frame.
  int64_t *scalarCell(SymbolId Sym) {
    const Symbol &S = Symbols.symbol(Sym);
    if (S.Kind == SymbolKind::Global)
      return &Globals[Sym];
    Frame &F = *Stack.back();
    if (auto It = F.Refs.find(Sym); It != F.Refs.end())
      return It->second;
    return &F.Locals[Sym]; // Default-inserts 0: uninitialized policy.
  }

  std::vector<int64_t> &arrayStorage(SymbolId Sym) {
    const Symbol &S = Symbols.symbol(Sym);
    if (S.Kind == SymbolKind::GlobalArray)
      return GlobalArrays.at(Sym);
    return Stack.back()->Arrays.at(Sym);
  }

  int64_t *arrayCell(const ArrayRefExpr *A) {
    int64_t Index = eval(A->index());
    std::vector<int64_t> &Elems = arrayStorage(A->symbol());
    if (Index < 1 || static_cast<uint64_t>(Index) > Elems.size())
      throw TrapSignal{RunStatus::ArrayBounds, A->loc()};
    return &Elems[size_t(Index - 1)];
  }

  int64_t eval(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return cast<IntLitExpr>(E)->value();
    case ExprKind::VarRef: {
      const auto *V = cast<VarRefExpr>(E);
      int64_t Value = *scalarCell(V->symbol());
      if (Hooks && Hooks->OnVarUse)
        Hooks->OnVarUse(V->id(), Value);
      return Value;
    }
    case ExprKind::ArrayRef:
      return *arrayCell(cast<ArrayRefExpr>(E));
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      int64_t V = eval(U->operand());
      return U->op() == UnaryOp::Neg ? wrapNeg(V) : (V == 0 ? 1 : 0);
    }
    case ExprKind::Binary: {
      // Both operands are always evaluated (no short-circuit), matching
      // the CFG lowering's dataflow.
      const auto *B = cast<BinaryExpr>(E);
      int64_t L = eval(B->lhs());
      int64_t R = eval(B->rhs());
      switch (B->op()) {
      case BinaryOp::Add:
        return wrapAdd(L, R);
      case BinaryOp::Sub:
        return wrapSub(L, R);
      case BinaryOp::Mul:
        return wrapMul(L, R);
      case BinaryOp::Div:
        if (R == 0)
          throw TrapSignal{RunStatus::DivideByZero, B->loc()};
        if (L == INT64_MIN && R == -1)
          return INT64_MIN; // Wraps, like every other operation.
        return L / R;
      case BinaryOp::Mod:
        if (R == 0)
          throw TrapSignal{RunStatus::DivideByZero, B->loc()};
        if (L == INT64_MIN && R == -1)
          return 0;
        return L % R;
      case BinaryOp::CmpEq:
        return L == R;
      case BinaryOp::CmpNe:
        return L != R;
      case BinaryOp::CmpLt:
        return L < R;
      case BinaryOp::CmpLe:
        return L <= R;
      case BinaryOp::CmpGt:
        return L > R;
      case BinaryOp::CmpGe:
        return L >= R;
      case BinaryOp::LogicalAnd:
        return (L != 0) && (R != 0);
      case BinaryOp::LogicalOr:
        return (L != 0) || (R != 0);
      }
      break;
    }
    }
    assert(false && "unknown expression kind");
    return 0;
  }

  /// Calls \p Callee. \p Args is null for the entry procedure.
  void invoke(ProcId Callee, const std::vector<Expr *> *Args,
              SourceLoc CallLoc) {
    if (Stack.size() + 1 > Opts.Limits.MaxCallDepth)
      throw TrapSignal{RunStatus::CallDepthLimit, CallLoc};
    const Proc &P = *Prog.Procs[Callee];
    const std::vector<SymbolId> &Formals = Symbols.formals(Callee);

    auto F = std::make_unique<Frame>();
    if (Args) {
      assert(Args->size() == Formals.size() && "arity checked by sema");
      // Arguments are evaluated left to right in the caller's frame.
      // Plain scalar variables bind by reference; anything else binds a
      // fresh by-value temporary (FORTRAN expression-actual semantics).
      for (size_t I = 0; I != Args->size(); ++I) {
        const Expr *Arg = (*Args)[I];
        if (const auto *V = dyn_cast<VarRefExpr>(Arg)) {
          F->Refs[Formals[I]] = scalarCell(V->symbol());
        } else {
          F->Temps.push_back(eval(Arg));
          F->Refs[Formals[I]] = &F->Temps.back();
        }
      }
    }
    for (const ArrayDecl &A : P.LocalArrays)
      F->Arrays.emplace(A.Symbol, std::vector<int64_t>(size_t(A.Size), 0));

    Stack.push_back(std::move(F));
    if (Hooks && Hooks->OnProcEntry) {
      auto Lookup = [this, &Formals](SymbolId Sym) -> const int64_t * {
        const Symbol &S = Symbols.symbol(Sym);
        if (S.Kind == SymbolKind::Global)
          return &Globals[Sym];
        if (S.Kind == SymbolKind::Formal)
          for (SymbolId FS : Formals)
            if (FS == Sym)
              return Stack.back()->Refs.at(Sym);
        return nullptr;
      };
      Hooks->OnProcEntry(
          Callee, std::function<const int64_t *(SymbolId)>(Lookup));
    }
    execStmts(P.Body);
    Stack.pop_back();
  }

  Flow execStmts(const std::vector<Stmt *> &Stmts) {
    for (Stmt *S : Stmts)
      if (execStmt(S) == Flow::Returned)
        return Flow::Returned;
    return Flow::Normal;
  }

  Flow execStmt(Stmt *S) {
    tick(S->loc());
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (const auto *V = dyn_cast<VarRefExpr>(A->target())) {
        int64_t Value = eval(A->value());
        *scalarCell(V->symbol()) = Value;
      } else {
        // Index before value, matching the lowering's order of
        // evaluation (observable through traps).
        int64_t *Cell = arrayCell(cast<ArrayRefExpr>(A->target()));
        *Cell = eval(A->value());
      }
      return Flow::Normal;
    }
    case StmtKind::Call: {
      const auto *C = cast<CallStmt>(S);
      assert(C->callee() != UINT32_MAX && "call resolved by sema");
      invoke(C->callee(), &C->args(), C->loc());
      return Flow::Normal;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      return eval(I->cond()) != 0 ? execStmts(I->thenBody())
                                  : execStmts(I->elseBody());
    }
    case StmtKind::DoLoop: {
      const auto *D = cast<DoLoopStmt>(S);
      // Bounds and step are captured once, before the loop. The
      // comparison direction comes from the step's *syntactic*
      // constancy, exactly as the CFG lowering fixes it.
      int64_t Lo = eval(D->lo());
      int64_t Hi = eval(D->hi());
      int64_t Step = D->step() ? eval(D->step()) : 1;
      bool Descending = false;
      if (D->step())
        if (auto C = foldSyntacticConst(D->step()))
          Descending = *C < 0;
      int64_t *Var = scalarCell(D->var()->symbol());
      *Var = Lo;
      while (Descending ? *Var >= Hi : *Var <= Hi) {
        tick(D->loc());
        if (execStmts(D->body()) == Flow::Returned)
          return Flow::Returned;
        *Var = wrapAdd(*Var, Step);
      }
      return Flow::Normal;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      while (true) {
        if (eval(W->cond()) == 0)
          return Flow::Normal;
        tick(W->loc());
        if (execStmts(W->body()) == Flow::Returned)
          return Flow::Returned;
      }
    }
    case StmtKind::Print:
      Res.Prints.push_back(eval(cast<PrintStmt>(S)->value()));
      return Flow::Normal;
    case StmtKind::Read:
      *scalarCell(cast<ReadStmt>(S)->target()->symbol()) = nextRead();
      return Flow::Normal;
    case StmtKind::Return:
      return Flow::Returned;
    }
    assert(false && "unknown statement kind");
    return Flow::Normal;
  }

  const Program &Prog;
  const SymbolTable &Symbols;
  const RunOptions &Opts;
  const ExecHooks *Hooks;
  RunResult Res;
  std::vector<int64_t> Globals;
  std::unordered_map<SymbolId, std::vector<int64_t>> GlobalArrays;
  std::vector<std::unique_ptr<Frame>> Stack;
};

} // namespace

std::optional<int64_t> ipcp::foldSyntacticConst(const Expr *E) {
  if (const auto *L = dyn_cast<IntLitExpr>(E))
    return L->value();
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (auto V = foldSyntacticConst(U->operand()))
      return U->op() == UnaryOp::Neg ? wrapNeg(*V) : (*V == 0 ? 1 : 0);
  }
  return std::nullopt;
}

Interpreter::Interpreter(const Program &Prog, const SymbolTable &Symbols)
    : Prog(Prog), Symbols(Symbols) {}

RunResult Interpreter::run(const RunOptions &Opts,
                           const ExecHooks *Hooks) const {
  Machine M(Prog, Symbols, Opts, Hooks);
  return M.run();
}
