//===- exec/ExecEngine.h - Execution engine selection -----------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-engine selector shared by the oracle, the fuzzer, the
/// driver (--exec=vm|ast), and the server's fuzz-replay path. Vm is the
/// default everywhere — the bytecode VM is the hot path — and Ast keeps
/// the normative AST interpreter one flag away as the differential
/// reference. ProgramRunner wraps the choice behind one run() call:
/// construction compiles the program once for the VM engine, so
/// repeated runs (multi-seed oracle sweeps) amortize the compile.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_EXEC_EXECENGINE_H
#define IPCP_EXEC_EXECENGINE_H

#include "exec/Interpreter.h"

#include <memory>
#include <optional>
#include <string_view>

namespace ipcp {

struct CodeProgram;
class Vm;

/// Which engine executes MiniFort programs.
enum class ExecEngine : uint8_t {
  Vm,  ///< Bytecode compiler + VM (exec/Vm.h), the default hot path.
  Ast, ///< The normative AST interpreter (exec/Interpreter.h).
};

/// Stable lowercase name ("vm" / "ast").
const char *execEngineName(ExecEngine E);

/// Parses an engine name; nullopt when \p Name is neither "vm" nor
/// "ast".
std::optional<ExecEngine> parseExecEngineName(std::string_view Name);

/// Executes one program through the selected engine. Like the engines
/// themselves, stateless between runs: run() may be called repeatedly
/// (with different seeds) and concurrently from multiple threads.
class ProgramRunner {
public:
  /// \p Prog must be Sema-checked against \p Symbols; both must outlive
  /// the runner. For the Vm engine, compiles the program here.
  ProgramRunner(const Program &Prog, const SymbolTable &Symbols,
                ExecEngine Engine = ExecEngine::Vm);
  ~ProgramRunner();
  ProgramRunner(ProgramRunner &&) noexcept;

  RunResult run(const RunOptions &Opts,
                const ExecHooks *Hooks = nullptr) const;

  ExecEngine engine() const { return Engine; }

private:
  ExecEngine Engine;
  Interpreter Interp;
  std::unique_ptr<CodeProgram> Code; ///< Null for the Ast engine.
  std::unique_ptr<Vm> Machine;       ///< Null for the Ast engine.
};

} // namespace ipcp

#endif // IPCP_EXEC_EXECENGINE_H
