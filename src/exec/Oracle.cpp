//===- exec/Oracle.cpp - Translation-validation oracle --------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Oracle.h"

#include "ipcp/Cloning.h"
#include "ipcp/Inliner.h"
#include "lang/Parser.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>

using namespace ipcp;

namespace {

/// A parsed-and-checked program, or the diagnostics explaining why not.
struct CheckedProgram {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

CheckedProgram parseChecked(std::string_view Source) {
  CheckedProgram P;
  DiagnosticEngine Diags;
  P.Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    P.Symbols = Sema::run(*P.Ctx, Diags);
  if (Diags.hasErrors())
    P.Error = Diags.str();
  return P;
}

/// Collects failures, keeping only the first few descriptions.
class FailureLog {
public:
  void add(const std::string &What) {
    ++Count;
    if (Count <= 4) {
      if (!Text.empty())
        Text += "\n";
      Text += What;
    } else if (Count == 5) {
      Text += "\n... (further failures suppressed)";
    }
  }

  unsigned count() const { return Count; }
  const std::string &text() const { return Text; }

private:
  unsigned Count = 0;
  std::string Text;
};

std::string traceSummary(const RunResult &R) {
  std::ostringstream OS;
  OS << R.str() << ", prints:";
  size_t N = std::min<size_t>(R.Prints.size(), 8);
  for (size_t I = 0; I != N; ++I)
    OS << ' ' << R.Prints[I];
  if (R.Prints.size() > N)
    OS << " ...";
  return OS.str();
}

/// Compares a transformed run against the reference. Exact agreement is
/// required unless a resource limit truncated one of the runs, in which
/// case prefix agreement suffices (the budget is not semantics).
bool tracesAgree(const RunResult &Ref, const RunResult &Got,
                 std::string &Why) {
  if (isResourceLimit(Ref.Status) || isResourceLimit(Got.Status)) {
    size_t N = std::min(Ref.Prints.size(), Got.Prints.size());
    for (size_t I = 0; I != N; ++I)
      if (Ref.Prints[I] != Got.Prints[I]) {
        Why = "print #" + std::to_string(I) + " differs under a "
              "resource-limited run: reference " +
              std::to_string(Ref.Prints[I]) + ", transformed " +
              std::to_string(Got.Prints[I]);
        return false;
      }
    return true;
  }
  if (Ref.Status != Got.Status) {
    Why = std::string("termination status differs: reference ") +
          runStatusName(Ref.Status) + ", transformed " +
          runStatusName(Got.Status);
    return false;
  }
  if (Ref.Prints != Got.Prints) {
    size_t N = std::min(Ref.Prints.size(), Got.Prints.size());
    size_t I = 0;
    while (I != N && Ref.Prints[I] == Got.Prints[I])
      ++I;
    if (I == N)
      Why = "trace lengths differ: reference " +
            std::to_string(Ref.Prints.size()) + " prints, transformed " +
            std::to_string(Got.Prints.size());
    else
      Why = "print #" + std::to_string(I) + " differs: reference " +
            std::to_string(Ref.Prints[I]) + ", transformed " +
            std::to_string(Got.Prints[I]);
    return false;
  }
  return true;
}

} // namespace

OracleResult ipcp::validateTranslation(std::string_view Source,
                                       const OracleOptions &Opts) {
  OracleResult R;
  FailureLog Failures;

  // Step 0: the reference program and the copy the analyzer may mutate.
  CheckedProgram Ref = parseChecked(Source);
  if (!Ref.ok()) {
    R.Error = "source does not parse: " + Ref.Error;
    return R;
  }
  CheckedProgram Analyzed = parseChecked(Source);

  PipelineOptions POpts = Opts.Pipeline;
  POpts.EmitTransformedSource = true;
  PipelineResult P =
      runPipelineOnAst(*Analyzed.Ctx, Analyzed.Symbols, POpts);
  if (!P.Ok) {
    R.Error = "pipeline failed: " + P.Error;
    return R;
  }

  // Resolve the CONSTANTS(p) claims back to symbol ids of the analyzed
  // program (names are unambiguous: formals may not shadow globals).
  const Program &AnProg = Analyzed.Ctx->program();
  std::vector<std::vector<std::pair<SymbolId, int64_t>>> EntryClaims(
      AnProg.Procs.size());
  for (size_t Pid = 0; Pid != P.Constants.size(); ++Pid) {
    for (const auto &[Name, Value] : P.Constants[Pid]) {
      SymbolId Found = InvalidSymbol;
      for (SymbolId Sym : Analyzed.Symbols.formals(ProcId(Pid)))
        if (Analyzed.Symbols.symbol(Sym).Name == Name)
          Found = Sym;
      if (Found == InvalidSymbol)
        for (SymbolId Sym : Analyzed.Symbols.globalScalars())
          if (Analyzed.Symbols.symbol(Sym).Name == Name)
            Found = Sym;
      if (Found != InvalidSymbol)
        EntryClaims[Pid].push_back({Found, Value});
    }
  }

  // Step 3 prep: the transformed source must reparse cleanly.
  CheckedProgram Transformed = parseChecked(P.TransformedSource);
  if (Opts.CheckTransformedSource && !Transformed.ok())
    Failures.add("transformed source does not reparse: " +
                 Transformed.Error);

  // Step 4 prep: the inlined and cloned programs.
  CheckedProgram Inlined;
  if (Opts.CheckInliner) {
    InlineResult IR = inlineProgram(*Ref.Ctx, Ref.Symbols);
    Inlined = parseChecked(IR.Source);
    if (!Inlined.ok())
      Failures.add("inlined program does not reparse: " + Inlined.Error);
  }
  CheckedProgram Cloned;
  if (Opts.CheckCloning) {
    CloneResult CR = cloneForConstants(Source);
    if (!CR.Ok) {
      Failures.add("cloning transform failed: " + CR.Error);
    } else {
      Cloned = parseChecked(CR.Source);
      if (!Cloned.ok())
        Failures.add("cloned program does not reparse: " + Cloned.Error);
    }
  }

  // Runners are built once and reused across seeds: for the VM engine
  // this compiles each program exactly once per validation.
  ProgramRunner RefRunner(Ref.Ctx->program(), Ref.Symbols, Opts.Engine);
  ProgramRunner AnRunner(AnProg, Analyzed.Symbols, Opts.Engine);
  std::optional<ProgramRunner> TrRunner, InRunner, ClRunner;
  if (Opts.CheckTransformedSource && Transformed.ok())
    TrRunner.emplace(Transformed.Ctx->program(), Transformed.Symbols,
                     Opts.Engine);
  if (Opts.CheckInliner && Inlined.ok())
    InRunner.emplace(Inlined.Ctx->program(), Inlined.Symbols, Opts.Engine);
  if (Opts.CheckCloning && Cloned.ok() && Cloned.Ctx)
    ClRunner.emplace(Cloned.Ctx->program(), Cloned.Symbols, Opts.Engine);

  for (uint64_t Seed : Opts.ReadSeeds) {
    RunOptions RO;
    RO.Limits = Opts.Limits;
    RO.ReadSeed = Seed;

    RunResult RefRun = RefRunner.run(RO);
    ++R.RunsExecuted;

    auto compare = [&](const char *What, const RunResult &Got) {
      ++R.TraceComparisons;
      std::string Why;
      if (!tracesAgree(RefRun, Got, Why)) {
        ++R.TraceDivergences;
        Failures.add(std::string(What) + " (seed " +
                     std::to_string(Seed) + "): " + Why +
                     "\n  reference:   " + traceSummary(RefRun) +
                     "\n  transformed: " + traceSummary(Got));
      }
    };

    // Step 2: replay the analyzed AST, checking every claim.
    {
      ExecHooks Hooks;
      Hooks.OnVarUse = [&](ExprId Id, int64_t Value) {
        auto It = P.Substitutions.find(Id);
        if (It == P.Substitutions.end())
          return;
        ++R.SubstitutedUseChecks;
        if (Value != It->second) {
          ++R.ConstantMismatches;
          Failures.add("substituted use #" + std::to_string(Id) +
                       " (seed " + std::to_string(Seed) +
                       "): claimed constant " +
                       std::to_string(It->second) + ", observed " +
                       std::to_string(Value));
        }
      };
      Hooks.OnProcEntry =
          [&](ProcId Pid,
              const std::function<const int64_t *(SymbolId)> &Lookup) {
            for (const auto &[Sym, Value] : EntryClaims[Pid]) {
              const int64_t *Cell = Lookup(Sym);
              if (!Cell)
                continue;
              ++R.EntryConstantChecks;
              if (*Cell != Value) {
                ++R.ConstantMismatches;
                Failures.add(
                    "CONSTANTS(" + AnProg.Procs[Pid]->name() + ") entry " +
                    Analyzed.Symbols.symbol(Sym).Name + "=" +
                    std::to_string(Value) + " (seed " +
                    std::to_string(Seed) + "): observed " +
                    std::to_string(*Cell) + " on entry");
              }
            }
          };
      RunResult AnRun = AnRunner.run(RO, &Hooks);
      ++R.RunsExecuted;
      compare("analyzed/DCE'd program trace", AnRun);
    }

    // Step 3: the textually substituted source.
    if (TrRunner) {
      RunResult TrRun = TrRunner->run(RO);
      ++R.RunsExecuted;
      compare("transformed-source trace", TrRun);
    }

    // Step 4: the inliner and cloning transforms.
    if (InRunner) {
      RunResult InRun = InRunner->run(RO);
      ++R.RunsExecuted;
      compare("inlined program trace", InRun);
    }
    if (ClRunner) {
      RunResult ClRun = ClRunner->run(RO);
      ++R.RunsExecuted;
      compare("cloned program trace", ClRun);
    }
  }

  R.Ok = Failures.count() == 0;
  R.Error = Failures.text();
  return R;
}
