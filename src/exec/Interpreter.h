//===- exec/Interpreter.h - MiniFort reference interpreter ------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic AST-level evaluator for MiniFort. It is the normative
/// implementation of the language's execution semantics (documented in
/// docs/LANGUAGE.md "Execution semantics"): integer scalars with
/// by-reference parameter binding, globals, 1-based arrays, DO/WHILE/IF
/// control flow, a seeded READ stream, and PRINT trace capture. Division
/// or modulo by zero and out-of-bounds array accesses terminate the run
/// with a structured trap result rather than aborting the process, and
/// step/recursion-depth limits bound every run so the translation
/// validation oracle (exec/Oracle.h) can execute arbitrary generated
/// programs safely.
///
/// Observation hooks report every scalar variable read and every
/// procedure entry; the oracle uses them to check the analyzer's
/// substituted constants and CONSTANTS(p) sets against observed values.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_EXEC_INTERPRETER_H
#define IPCP_EXEC_INTERPRETER_H

#include "lang/Ast.h"
#include "lang/Sema.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ipcp {

/// How one execution ended.
enum class RunStatus : uint8_t {
  Ok,             ///< main returned normally.
  DivideByZero,   ///< "/ 0" or "% 0" was evaluated.
  ArrayBounds,    ///< Array index outside 1..size.
  StepLimit,      ///< RunLimits::MaxSteps exhausted.
  CallDepthLimit, ///< RunLimits::MaxCallDepth exceeded.
};

/// Returns a stable lowercase name ("ok", "divide-by-zero", ...).
const char *runStatusName(RunStatus S);

/// True for the resource-exhaustion statuses. They depend on the step
/// budget rather than on program semantics, so a semantics-preserving
/// transform may legitimately move or remove them; only the genuine
/// traps (and Ok) are portable across translations.
inline bool isResourceLimit(RunStatus S) {
  return S == RunStatus::StepLimit || S == RunStatus::CallDepthLimit;
}

/// Resource bounds for one run.
struct RunLimits {
  /// Statement executions plus loop iterations.
  uint64_t MaxSteps = 1u << 20;
  /// Maximum depth of the call stack (main is depth 1).
  unsigned MaxCallDepth = 128;
};

/// Observation hooks, all optional. Callbacks must not mutate the
/// interpreter's state; the pointers handed out are valid only for the
/// duration of the callback.
struct ExecHooks {
  /// Called for every evaluated scalar variable read (VarRefExpr in an
  /// expression position) with the node's id and the value read.
  /// Definition positions (assignment targets, READ targets, DO-loop
  /// variables) and by-reference actuals do not report — they are not
  /// value reads.
  std::function<void(ExprId, int64_t)> OnVarUse;
  /// Called on entry to every procedure (including main), after argument
  /// binding. The lookup resolves a formal of the entered procedure or a
  /// global scalar to its current cell, or null if the symbol is neither.
  std::function<void(ProcId, const std::function<const int64_t *(SymbolId)> &)>
      OnProcEntry;
};

/// Parameters of one run.
struct RunOptions {
  RunLimits Limits;
  /// Seed of the READ input stream (see docs/LANGUAGE.md).
  uint64_t ReadSeed = 1;
};

/// Everything one run produces.
struct RunResult {
  RunStatus Status = RunStatus::Ok;
  /// The PRINT trace, in execution order.
  std::vector<int64_t> Prints;
  /// Statement executions plus loop iterations.
  uint64_t Steps = 0;
  /// READ statements executed (stream positions consumed).
  uint64_t ReadsConsumed = 0;
  /// Location of the trap when Status is not Ok.
  SourceLoc TrapLoc;
  /// Final values of the global scalars, indexed by SymbolId (slots of
  /// non-global symbols stay 0). Captured at run end, including after a
  /// trap, so engines can be compared on full final state.
  std::vector<int64_t> FinalGlobals;
  /// Final contents of every global array, ordered by SymbolId.
  std::vector<std::pair<SymbolId, std::vector<int64_t>>> FinalGlobalArrays;

  /// Compact one-line summary ("ok, 12 prints, 340 steps").
  std::string str() const;
};

/// Evaluates MiniFort programs. The interpreter itself is stateless
/// between runs: run() may be called repeatedly (with different seeds)
/// and concurrently from multiple threads on the same instance.
class Interpreter {
public:
  /// \p Prog must be Sema-checked against \p Symbols (every VarRef bound,
  /// every call resolved); both must outlive the interpreter.
  Interpreter(const Program &Prog, const SymbolTable &Symbols);

  /// Executes the program from 'main' to completion, trap, or limit.
  RunResult run(const RunOptions &Opts,
                const ExecHooks *Hooks = nullptr) const;

private:
  const Program &Prog;
  const SymbolTable &Symbols;
};

/// Statically folds an expression the way the CFG lowering does:
/// literals and unary operators over folded operands only (binary
/// expressions are deliberately not folded — see CfgBuilder). The
/// interpreter and the bytecode compiler both use it to fix the DO-loop
/// comparison direction from the step's *syntactic* constancy.
std::optional<int64_t> foldSyntacticConst(const Expr *E);

/// The value of position \p Index in the READ stream seeded with
/// \p Seed. Values lie in a small range around zero (including zero and
/// negatives) so generated programs exercise division traps and both
/// branch directions. Exposed so tests can pin the stream.
int64_t readStreamValue(uint64_t Seed, uint64_t Index);

} // namespace ipcp

#endif // IPCP_EXEC_INTERPRETER_H
