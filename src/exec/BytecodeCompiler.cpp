//===- exec/BytecodeCompiler.cpp - AST -> bytecode lowering ---------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/BytecodeCompiler.h"

#include "exec/Interpreter.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace ipcp;

namespace {

/// Where a scalar symbol lives, resolved once per procedure.
struct ScalarSlot {
  enum Kind : uint8_t { Global, Formal, Local } Where;
  uint32_t Slot;
};

class ProcCompiler {
public:
  ProcCompiler(const Program &Prog, const SymbolTable &Symbols,
               const CodeProgram &CP, ProcId P, CodeObject &CO)
      : Symbols(Symbols), CP(CP), CO(CO) {
    CO.Name = Prog.Procs[P]->name();

    const std::vector<SymbolId> &Formals = Symbols.formals(P);
    CO.NumFormals = static_cast<uint32_t>(Formals.size());
    CO.FormalSyms = Formals;
    for (uint32_t I = 0; I != CO.NumFormals; ++I)
      Slots.emplace(Formals[I], ScalarSlot{ScalarSlot::Formal, I});

    NextSlot = CO.NumFormals;
    for (SymbolId Sym : Symbols.locals(P))
      Slots.emplace(Sym, ScalarSlot{ScalarSlot::Local, NextSlot++});
    // DO-loop bound/step temporaries are appended behind the declared
    // locals as the walk encounters loops; local arrays go behind those,
    // so their frame offsets are only fixed after the body is emitted.
  }

  void compile(const Proc &P) {
    emitStmts(P.Body);
    emit(Op::Ret); // Implicit return at the end of the body.

    CO.ArrayBase = NextSlot;
    uint32_t ArraySlot = NextSlot;
    for (const ArrayDecl &A : P.LocalArrays) {
      uint32_t Idx = static_cast<uint32_t>(CO.LocalArrays.size());
      CO.LocalArrays.push_back({ArraySlot, A.Size, A.Symbol});
      LocalArrayIdx.emplace(A.Symbol, Idx);
      ArraySlot += static_cast<uint32_t>(A.Size);
    }
    CO.FrameSlots = ArraySlot;
    // Local-array operands were emitted before the table existed (loop
    // temporaries keep moving ArrayBase during the walk); resolve them
    // now.
    for (auto &[Pc, Sym] : PendingArrays)
      CO.Code[Pc].A = LocalArrayIdx.at(Sym);
    CO.MaxStack = std::max<uint32_t>(CO.MaxStack, 2);
  }

private:
  //===--------------------------------------------------------------------===//
  // Emission primitives
  //===--------------------------------------------------------------------===//

  uint32_t emit(Op O, uint32_t A = 0, uint32_t B = 0) {
    CO.Code.push_back({O, A, B});
    return static_cast<uint32_t>(CO.Code.size() - 1);
  }

  uint32_t locIdx(SourceLoc L) {
    if (!CO.Locs.empty() && CO.Locs.back() == L)
      return static_cast<uint32_t>(CO.Locs.size() - 1);
    CO.Locs.push_back(L);
    return static_cast<uint32_t>(CO.Locs.size() - 1);
  }

  uint32_t constIdx(int64_t V) {
    if (auto It = ConstIdx.find(V); It != ConstIdx.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(CO.Consts.size());
    CO.Consts.push_back(V);
    ConstIdx.emplace(V, Idx);
    return Idx;
  }

  void patch(uint32_t JumpPc) {
    CO.Code[JumpPc].A = static_cast<uint32_t>(CO.Code.size());
  }

  /// Operand-stack bookkeeping: the compiler simulates the depth so the
  /// VM can preallocate one exact-size stack and run without bounds
  /// checks.
  void push(uint32_t N = 1) {
    Depth += N;
    CO.MaxStack = std::max(CO.MaxStack, Depth);
  }
  void pop(uint32_t N = 1) {
    assert(Depth >= N && "operand stack underflow in compiler");
    Depth -= N;
  }

  uint32_t newTemp() { return NextSlot++; }

  //===--------------------------------------------------------------------===//
  // Scalar and array access
  //===--------------------------------------------------------------------===//

  ScalarSlot scalarSlot(SymbolId Sym) {
    if (auto It = Slots.find(Sym); It != Slots.end())
      return It->second;
    assert(Sym < CP.GlobalSlotOfSymbol.size() &&
           CP.GlobalSlotOfSymbol[Sym] >= 0 && "unbound scalar symbol");
    return {ScalarSlot::Global,
            static_cast<uint32_t>(CP.GlobalSlotOfSymbol[Sym])};
  }

  /// Emits a scalar read. \p Id is the VarRefExpr id for the OnVarUse
  /// hook; 0 marks a compiler-internal read (DO-loop bookkeeping) that
  /// must stay invisible to hooks.
  void emitLoadScalar(SymbolId Sym, ExprId Id) {
    ScalarSlot S = scalarSlot(Sym);
    static constexpr Op Ld[] = {Op::LoadGlobal, Op::LoadFormal, Op::LoadLocal};
    emit(S.Where == ScalarSlot::Global   ? Ld[0]
         : S.Where == ScalarSlot::Formal ? Ld[1]
                                         : Ld[2],
         S.Slot, Id);
    push();
  }

  void emitStoreScalar(SymbolId Sym) {
    ScalarSlot S = scalarSlot(Sym);
    emit(S.Where == ScalarSlot::Global   ? Op::StoreGlobal
         : S.Where == ScalarSlot::Formal ? Op::StoreFormal
                                         : Op::StoreLocal,
         S.Slot);
    pop();
  }

  /// Resolves an array symbol to (is-global, table index); local array
  /// operands are recorded for fixup since their table is built after
  /// the body walk.
  bool arrayOperand(const ArrayRefExpr *A, uint32_t EmittedPc) {
    const Symbol &S = Symbols.symbol(A->symbol());
    if (S.Kind == SymbolKind::GlobalArray) {
      for (uint32_t I = 0; I != CP.GlobalArrays.size(); ++I)
        if (CP.GlobalArrays[I].Symbol == A->symbol()) {
          CO.Code[EmittedPc].A = I;
          return true;
        }
      assert(false && "global array not in table");
    }
    PendingArrays.emplace_back(EmittedPc, A->symbol());
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  void emitExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      emit(Op::PushConst, constIdx(cast<IntLitExpr>(E)->value()));
      push();
      return;
    case ExprKind::VarRef: {
      const auto *V = cast<VarRefExpr>(E);
      emitLoadScalar(V->symbol(), V->id());
      return;
    }
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRefExpr>(E);
      emitExpr(A->index());
      uint32_t Pc = emit(Op::LoadArrLocal, 0, locIdx(A->loc()));
      if (arrayOperand(A, Pc))
        CO.Code[Pc].Opcode = Op::LoadArrGlobal;
      return; // Pops the index, pushes the element: depth unchanged.
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      emitExpr(U->operand());
      emit(U->op() == UnaryOp::Neg ? Op::Neg : Op::LogNot);
      return;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      emitExpr(B->lhs());
      emitExpr(B->rhs());
      uint32_t Loc = 0;
      Op O = Op::Add;
      switch (B->op()) {
      case BinaryOp::Add:
        O = Op::Add;
        break;
      case BinaryOp::Sub:
        O = Op::Sub;
        break;
      case BinaryOp::Mul:
        O = Op::Mul;
        break;
      case BinaryOp::Div:
        O = Op::Div;
        Loc = locIdx(B->loc());
        break;
      case BinaryOp::Mod:
        O = Op::Mod;
        Loc = locIdx(B->loc());
        break;
      case BinaryOp::CmpEq:
        O = Op::CmpEq;
        break;
      case BinaryOp::CmpNe:
        O = Op::CmpNe;
        break;
      case BinaryOp::CmpLt:
        O = Op::CmpLt;
        break;
      case BinaryOp::CmpLe:
        O = Op::CmpLe;
        break;
      case BinaryOp::CmpGt:
        O = Op::CmpGt;
        break;
      case BinaryOp::CmpGe:
        O = Op::CmpGe;
        break;
      case BinaryOp::LogicalAnd:
        O = Op::LogAnd;
        break;
      case BinaryOp::LogicalOr:
        O = Op::LogOr;
        break;
      }
      emit(O, 0, Loc);
      pop();
      return;
    }
    }
    assert(false && "unknown expression kind");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void emitStmts(const std::vector<Stmt *> &Stmts) {
    for (const Stmt *S : Stmts)
      emitStmt(S);
  }

  void emitStmt(const Stmt *S) {
    emit(Op::Step, 0, locIdx(S->loc()));
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (const auto *V = dyn_cast<VarRefExpr>(A->target())) {
        emitExpr(A->value());
        emitStoreScalar(V->symbol());
        return;
      }
      // Array target: the index is evaluated and bounds-checked before
      // the value, matching the interpreter's trap order.
      const auto *T = cast<ArrayRefExpr>(A->target());
      emitExpr(T->index());
      uint32_t Pc = emit(Op::AddrArrLocal, 0, locIdx(T->loc()));
      bool Global = arrayOperand(T, Pc);
      if (Global)
        CO.Code[Pc].Opcode = Op::AddrArrGlobal;
      emitExpr(A->value());
      emit(Global ? Op::StoreArrGlobal : Op::StoreArrLocal);
      pop(2);
      return;
    }
    case StmtKind::Call: {
      const auto *C = cast<CallStmt>(S);
      assert(C->callee() != UINT32_MAX && "call resolved by sema");
      // Depth is checked before any argument is evaluated, like the
      // interpreter's invoke() entry check.
      emit(Op::CheckCall, 0, locIdx(C->loc()));
      for (const Expr *Arg : C->args()) {
        if (const auto *V = dyn_cast<VarRefExpr>(Arg)) {
          // Plain-variable actual: pass the cell, read no value.
          ScalarSlot SS = scalarSlot(V->symbol());
          emit(SS.Where == ScalarSlot::Global   ? Op::ArgCellGlobal
               : SS.Where == ScalarSlot::Formal ? Op::ArgCellFormal
                                                : Op::ArgCellLocal,
               SS.Slot);
        } else {
          emitExpr(Arg);
          emit(Op::ArgValue);
          pop();
        }
      }
      emit(Op::Call, C->callee());
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      emitExpr(I->cond());
      uint32_t ToElse = emit(Op::JumpIfZero);
      pop();
      emitStmts(I->thenBody());
      if (I->elseBody().empty()) {
        patch(ToElse);
        return;
      }
      uint32_t ToEnd = emit(Op::Jump);
      patch(ToElse);
      emitStmts(I->elseBody());
      patch(ToEnd);
      return;
    }
    case StmtKind::DoLoop:
      emitDoLoop(cast<DoLoopStmt>(S));
      return;
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      uint32_t Head = static_cast<uint32_t>(CO.Code.size());
      emitExpr(W->cond());
      uint32_t ToExit = emit(Op::JumpIfZero);
      pop();
      emit(Op::Step, 0, locIdx(W->loc())); // One tick per iteration.
      emitStmts(W->body());
      emit(Op::Jump, Head);
      patch(ToExit);
      return;
    }
    case StmtKind::Print:
      emitExpr(cast<PrintStmt>(S)->value());
      emit(Op::Print);
      pop();
      return;
    case StmtKind::Read:
      emit(Op::Read);
      push();
      emitStoreScalar(cast<ReadStmt>(S)->target()->symbol());
      return;
    case StmtKind::Return:
      emit(Op::Ret);
      return;
    }
    assert(false && "unknown statement kind");
  }

  void emitDoLoop(const DoLoopStmt *D) {
    // Bounds and step are captured once, before the loop variable is
    // set (the interpreter evaluates lo, hi, step, then assigns), into
    // per-loop frame temporaries. The comparison direction is fixed at
    // compile time from the step's syntactic constancy, exactly as the
    // CFG lowering does.
    uint32_t HiTemp = newTemp();
    uint32_t StepTemp = newTemp();
    emitExpr(D->lo()); // Stays on the stack while hi/step evaluate.
    emitExpr(D->hi());
    emit(Op::StoreLocal, HiTemp);
    pop();
    if (D->step())
      emitExpr(D->step());
    else {
      emit(Op::PushConst, constIdx(1));
      push();
    }
    emit(Op::StoreLocal, StepTemp);
    pop();
    emitStoreScalar(D->var()->symbol()); // *var = lo
    bool Descending = false;
    if (D->step())
      if (auto C = foldSyntacticConst(D->step()))
        Descending = *C < 0;

    uint32_t Head = static_cast<uint32_t>(CO.Code.size());
    emitLoadScalar(D->var()->symbol(), 0); // Internal read: no hook.
    emit(Op::LoadLocal, HiTemp);
    push();
    emit(Descending ? Op::CmpGe : Op::CmpLe);
    pop();
    uint32_t ToExit = emit(Op::JumpIfZero);
    pop();
    emit(Op::Step, 0, locIdx(D->loc())); // One tick per iteration.
    emitStmts(D->body());
    emitLoadScalar(D->var()->symbol(), 0);
    emit(Op::LoadLocal, StepTemp);
    push();
    emit(Op::Add);
    pop();
    emitStoreScalar(D->var()->symbol());
    emit(Op::Jump, Head);
    patch(ToExit);
  }

  const SymbolTable &Symbols;
  const CodeProgram &CP;
  CodeObject &CO;
  std::unordered_map<SymbolId, ScalarSlot> Slots;
  std::unordered_map<SymbolId, uint32_t> LocalArrayIdx;
  std::unordered_map<int64_t, uint32_t> ConstIdx;
  std::vector<std::pair<uint32_t, SymbolId>> PendingArrays;
  uint32_t NextSlot = 0;
  uint32_t Depth = 0;
};

} // namespace

CodeProgram ipcp::compileProgram(const Program &Prog,
                                 const SymbolTable &Symbols) {
  CodeProgram CP;
  CP.NumSymbols = static_cast<uint32_t>(Symbols.size());

  CP.GlobalSlotOfSymbol.assign(Symbols.size(), -1);
  for (SymbolId Sym : Symbols.globalScalars()) {
    CP.GlobalSlotOfSymbol[Sym] = static_cast<int32_t>(CP.GlobalSyms.size());
    CP.GlobalSyms.push_back(Sym);
  }
  for (const GlobalDecl &G : Prog.Globals)
    if (G.Init)
      CP.GlobalInits.emplace_back(
          static_cast<uint32_t>(CP.GlobalSlotOfSymbol[G.Symbol]), *G.Init);

  uint32_t ArrOffset = 0;
  for (const ArrayDecl &A : Prog.GlobalArrays) {
    CP.GlobalArrays.push_back({ArrOffset, A.Size, A.Symbol});
    ArrOffset += static_cast<uint32_t>(A.Size);
  }
  CP.GlobalArraySlots = ArrOffset;

  auto Entry = Prog.entryProc();
  assert(Entry && "bytecode compiler needs a sema-checked program");
  CP.Entry = *Entry;

  CP.Procs.resize(Prog.Procs.size());
  for (ProcId P = 0; P != Prog.Procs.size(); ++P) {
    ProcCompiler PC(Prog, Symbols, CP, P, CP.Procs[P]);
    PC.compile(*Prog.Procs[P]);
    CP.MaxStack = std::max(CP.MaxStack, CP.Procs[P].MaxStack);
  }
  return CP;
}
