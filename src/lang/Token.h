//===- lang/Token.h - MiniFort tokens ---------------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type for the MiniFort language, the
/// FORTRAN-flavoured input language of the analyzer (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_TOKEN_H
#define IPCP_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string_view>

namespace ipcp {

/// The lexical classes of MiniFort. Statements are line-oriented, so the
/// lexer emits explicit Newline tokens.
enum class TokenKind {
  Eof,
  Newline,
  Identifier,
  IntLiteral,
  // Keywords.
  KwProgram,
  KwGlobal,
  KwArray,
  KwProc,
  KwInteger,
  KwCall,
  KwIf,
  KwThen,
  KwElseif,
  KwElse,
  KwEnd,
  KwDo,
  KwWhile,
  KwPrint,
  KwRead,
  KwReturn,
  KwAnd,
  KwOr,
  KwNot,
  // Punctuation and operators.
  LParen,
  RParen,
  Comma,
  Assign,  // =
  Plus,    // +
  Minus,   // -
  Star,    // *
  Slash,   // /
  Percent, // %
  EqEq,    // ==
  NotEq,   // !=
  Less,    // <
  LessEq,  // <=
  Greater, // >
  GreaterEq, // >=
  Error,
};

/// Returns a human-readable spelling of \p Kind for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text is populated for identifiers and views into
/// the source buffer (zero-copy; the buffer must outlive the token);
/// \c IntValue is populated for integer literals.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace ipcp

#endif // IPCP_LANG_TOKEN_H
