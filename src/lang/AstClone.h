//===- lang/AstClone.h - Deep AST cloning -----------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep cloning of statement trees with optional name substitution. The
/// procedure integrator (Inliner) clones callee bodies with renamed
/// locals; the cloning transform duplicates whole procedures verbatim.
/// Cloned nodes get fresh ids from the destination context; resolved
/// symbols are NOT copied — clone consumers re-run Sema (typically by
/// printing and re-parsing).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_ASTCLONE_H
#define IPCP_LANG_ASTCLONE_H

#include "lang/Ast.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// Variable/array renaming applied during cloning (empty = verbatim).
using NameSubst = std::unordered_map<std::string, std::string>;

/// Clones \p E into \p Ctx, renaming identifiers through \p Subst.
Expr *cloneExpr(AstContext &Ctx, const Expr *E, const NameSubst &Subst);

/// Clones \p V (keeping it a VarRefExpr) into \p Ctx.
VarRefExpr *cloneVarRef(AstContext &Ctx, const VarRefExpr *V,
                        const NameSubst &Subst);

/// Clones a statement tree into \p Ctx. Call statements are cloned with
/// their callee names unchanged.
Stmt *cloneStmt(AstContext &Ctx, const Stmt *S, const NameSubst &Subst);

/// Clones a statement list into \p Ctx.
std::vector<Stmt *> cloneStmts(AstContext &Ctx,
                               const std::vector<Stmt *> &Stmts,
                               const NameSubst &Subst);

/// Clones \p E verbatim (no renaming) and copies the resolved symbol
/// bindings onto the fresh nodes, so consumers that rewrite an
/// already-checked AST in place (e.g. dead-code elimination) get
/// alias-free trees without re-running Sema.
Expr *cloneExprResolved(AstContext &Ctx, const Expr *E);

/// Clones \p V (keeping it a VarRefExpr) with its resolved symbol.
VarRefExpr *cloneVarRefResolved(AstContext &Ctx, const VarRefExpr *V);

/// Clones a statement tree verbatim with resolved symbols and call
/// targets preserved, so the clone is analyzable under the original
/// SymbolTable without re-running Sema.
Stmt *cloneStmtResolved(AstContext &Ctx, const Stmt *S);

/// Clones a statement list verbatim with resolved bindings.
std::vector<Stmt *> cloneStmtsResolved(AstContext &Ctx,
                                       const std::vector<Stmt *> &Stmts);

/// Deep-copies a whole checked program into a fresh AstContext,
/// preserving every resolved symbol binding and callee id. The clone
/// shares the source program's SymbolTable (symbol ids are copied, not
/// re-derived), so mutating passes like dead-code elimination can run on
/// the copy while other readers keep analyzing the original. Expression
/// and statement ids are freshly assigned by the destination context and
/// in general differ from the source's.
std::unique_ptr<AstContext> cloneProgramResolved(const AstContext &Src);

} // namespace ipcp

#endif // IPCP_LANG_ASTCLONE_H
