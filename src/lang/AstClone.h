//===- lang/AstClone.h - Deep AST cloning -----------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep cloning of statement trees with optional name substitution. The
/// procedure integrator (Inliner) clones callee bodies with renamed
/// locals; the cloning transform duplicates whole procedures verbatim.
/// Cloned nodes get fresh ids from the destination context; resolved
/// symbols are NOT copied — clone consumers re-run Sema (typically by
/// printing and re-parsing).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_ASTCLONE_H
#define IPCP_LANG_ASTCLONE_H

#include "lang/Ast.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// Variable/array renaming applied during cloning (empty = verbatim).
using NameSubst = std::unordered_map<std::string, std::string>;

/// Clones \p E into \p Ctx, renaming identifiers through \p Subst.
Expr *cloneExpr(AstContext &Ctx, const Expr *E, const NameSubst &Subst);

/// Clones \p V (keeping it a VarRefExpr) into \p Ctx.
VarRefExpr *cloneVarRef(AstContext &Ctx, const VarRefExpr *V,
                        const NameSubst &Subst);

/// Clones a statement tree into \p Ctx. Call statements are cloned with
/// their callee names unchanged.
Stmt *cloneStmt(AstContext &Ctx, const Stmt *S, const NameSubst &Subst);

/// Clones a statement list into \p Ctx.
std::vector<Stmt *> cloneStmts(AstContext &Ctx,
                               const std::vector<Stmt *> &Stmts,
                               const NameSubst &Subst);

/// Clones \p E verbatim (no renaming) and copies the resolved symbol
/// bindings onto the fresh nodes, so consumers that rewrite an
/// already-checked AST in place (e.g. dead-code elimination) get
/// alias-free trees without re-running Sema.
Expr *cloneExprResolved(AstContext &Ctx, const Expr *E);

/// Clones \p V (keeping it a VarRefExpr) with its resolved symbol.
VarRefExpr *cloneVarRefResolved(AstContext &Ctx, const VarRefExpr *V);

} // namespace ipcp

#endif // IPCP_LANG_ASTCLONE_H
