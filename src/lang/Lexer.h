//===- lang/Lexer.h - MiniFort lexer ----------------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniFort. Comments run from '!' to end of line;
/// blank lines produce no tokens; every non-blank line is terminated by a
/// Newline token.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_LEXER_H
#define IPCP_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <string_view>
#include <vector>

namespace ipcp {

/// Turns a MiniFort source buffer into a token stream.
///
/// The lexer is line-oriented: consecutive newlines collapse into a single
/// Newline token and a leading blank region produces none, so the parser
/// never sees empty statements. Invalid characters produce an Error token
/// and a diagnostic, then lexing continues.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.
  Token next();

  /// Lexes the entire buffer (convenience for tests). The last token is
  /// always Eof.
  std::vector<Token> lexAll();

private:
  char peek() const;
  char peekAhead() const;
  char advance();
  bool atEnd() const;
  void skipHorizontalSpaceAndComments();
  Token makeToken(TokenKind Kind, SourceLoc Loc);
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  /// True once any token has been produced on the current line; controls
  /// Newline emission so blank lines are invisible to the parser.
  bool TokenOnLine = false;
};

} // namespace ipcp

#endif // IPCP_LANG_LEXER_H
