//===- lang/Parser.h - MiniFort parser --------------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniFort. See the grammar in README.md.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_PARSER_H
#define IPCP_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace ipcp {

/// Parses \p Source into an AST. Always returns a context; the caller must
/// check \p Diags for errors before trusting the tree. On a syntax error
/// the parser reports a diagnostic and resynchronizes at the next line.
std::unique_ptr<AstContext> parseProgram(std::string_view Source,
                                         DiagnosticEngine &Diags);

} // namespace ipcp

#endif // IPCP_LANG_PARSER_H
