//===- lang/AstPrinter.h - MiniFort pretty-printer --------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints an AST back as MiniFort source. The printer optionally rewrites
/// selected variable uses to integer literals; this implements the paper's
/// "transformed version of the original source in which the
/// interprocedural constants are textually substituted" (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_ASTPRINTER_H
#define IPCP_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>

namespace ipcp {

/// Maps VarRefExpr ids to the constant that should replace them in
/// printed output.
using SubstitutionMap = std::unordered_map<ExprId, int64_t>;

/// Pretty-prints programs (or fragments) as parseable MiniFort source.
class AstPrinter {
public:
  /// Creates a printer. If \p Substitutions is non-null, VarRef uses whose
  /// ids appear in the map print as their constant value instead of their
  /// name.
  explicit AstPrinter(const SubstitutionMap *Substitutions = nullptr)
      : Substitutions(Substitutions) {}

  /// Prints the whole program.
  void print(const Program &Prog, std::ostream &OS) const;

  /// Prints one procedure.
  void printProc(const Proc &P, std::ostream &OS) const;

  /// Prints one statement at \p Indent levels of two-space indentation.
  void printStmt(const Stmt *S, std::ostream &OS, unsigned Indent) const;

  /// Renders one expression (no trailing newline).
  std::string exprToString(const Expr *E) const;

  /// Renders the whole program into a string.
  std::string programToString(const Program &Prog) const;

private:
  void printExpr(const Expr *E, std::ostream &OS, int ParentPrec) const;
  void printBody(const std::vector<Stmt *> &Body, std::ostream &OS,
                 unsigned Indent) const;

  const SubstitutionMap *Substitutions;
};

} // namespace ipcp

#endif // IPCP_LANG_ASTPRINTER_H
