//===- lang/Parser.cpp - MiniFort parser ----------------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include <cassert>

using namespace ipcp;

namespace {

/// Recursive-descent parser over a pre-lexed token stream.
class Parser {
public:
  Parser(std::string_view Source, DiagnosticEngine &Diags)
      : Diags(Diags), Ctx(std::make_unique<AstContext>()) {
    Lexer Lex(Source, Diags);
    Tokens = Lex.lexAll();
  }

  std::unique_ptr<AstContext> run() {
    parseProgram();
    return std::move(Ctx);
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  bool check(TokenKind K) const { return peek().is(K); }

  bool match(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  /// Consumes a token of kind \p K or reports an error. Returns true on
  /// success.
  bool expect(TokenKind K, const char *Context) {
    if (match(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + tokenKindName(K) +
                                " " + Context + ", found " +
                                tokenKindName(peek().Kind));
    return false;
  }

  /// Skips ahead to just past the next newline (error recovery).
  void syncToNextLine() {
    while (!check(TokenKind::Eof) && !match(TokenKind::Newline))
      advance();
  }

  bool expectNewline(const char *Context) {
    if (match(TokenKind::Newline) || check(TokenKind::Eof))
      return true;
    Diags.error(peek().Loc,
                std::string("expected end of line ") + Context);
    syncToNextLine();
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Top level
  //===--------------------------------------------------------------------===//

  void parseProgram() {
    Program &Prog = Ctx->program();
    if (match(TokenKind::KwProgram)) {
      if (check(TokenKind::Identifier))
        Prog.Name = advance().Text;
      else
        Diags.error(peek().Loc, "expected program name");
      expectNewline("after program header");
    }

    while (!check(TokenKind::Eof)) {
      if (check(TokenKind::KwGlobal)) {
        parseGlobalDecl();
      } else if (check(TokenKind::KwArray)) {
        parseGlobalArrayDecl();
      } else if (check(TokenKind::KwProc)) {
        parseProc();
      } else {
        Diags.error(peek().Loc,
                    std::string("expected 'global', 'array', or 'proc' at "
                                "top level, found ") +
                        tokenKindName(peek().Kind));
        syncToNextLine();
      }
    }
  }

  void parseGlobalDecl() {
    advance(); // 'global'
    do {
      GlobalDecl Decl;
      Decl.Loc = peek().Loc;
      if (!check(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected global variable name");
        syncToNextLine();
        return;
      }
      Decl.Name = advance().Text;
      if (match(TokenKind::Assign)) {
        bool Negate = match(TokenKind::Minus);
        if (!check(TokenKind::IntLiteral)) {
          Diags.error(peek().Loc,
                      "global initializer must be an integer literal");
          syncToNextLine();
          return;
        }
        int64_t Value = advance().IntValue;
        Decl.Init = Negate ? -Value : Value;
      }
      Ctx->program().Globals.push_back(std::move(Decl));
    } while (match(TokenKind::Comma));
    expectNewline("after global declaration");
  }

  /// Parses "array name(size)"; used for both global and local arrays.
  bool parseArrayDeclTail(ArrayDecl &Decl) {
    Decl.Loc = peek().Loc;
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected array name");
      return false;
    }
    Decl.Name = advance().Text;
    if (!expect(TokenKind::LParen, "after array name"))
      return false;
    if (!check(TokenKind::IntLiteral)) {
      Diags.error(peek().Loc, "array size must be an integer literal");
      return false;
    }
    Decl.Size = advance().IntValue;
    return expect(TokenKind::RParen, "after array size");
  }

  void parseGlobalArrayDecl() {
    advance(); // 'array'
    ArrayDecl Decl;
    if (parseArrayDeclTail(Decl))
      Ctx->program().GlobalArrays.push_back(std::move(Decl));
    expectNewline("after array declaration");
  }

  void parseProc() {
    SourceLoc Loc = advance().Loc; // 'proc'
    std::string Name;
    if (check(TokenKind::Identifier)) {
      Name = advance().Text;
    } else {
      Diags.error(peek().Loc, "expected procedure name");
      syncToNextLine();
      return;
    }

    std::vector<std::string> Formals;
    if (expect(TokenKind::LParen, "after procedure name")) {
      if (!check(TokenKind::RParen)) {
        do {
          if (!check(TokenKind::Identifier)) {
            Diags.error(peek().Loc, "expected formal parameter name");
            break;
          }
          Formals.emplace_back(advance().Text);
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after formal parameters");
    }
    expectNewline("after procedure header");

    auto P = std::make_unique<Proc>(Loc, std::move(Name), std::move(Formals));

    // Local declarations precede the statements.
    for (;;) {
      if (check(TokenKind::KwInteger)) {
        advance();
        do {
          if (!check(TokenKind::Identifier)) {
            Diags.error(peek().Loc, "expected local variable name");
            break;
          }
          P->Locals.emplace_back(advance().Text);
        } while (match(TokenKind::Comma));
        expectNewline("after local declaration");
        continue;
      }
      if (check(TokenKind::KwArray)) {
        advance();
        ArrayDecl Decl;
        if (parseArrayDeclTail(Decl))
          P->LocalArrays.push_back(std::move(Decl));
        expectNewline("after array declaration");
        continue;
      }
      break;
    }

    P->Body = parseStmtList();

    if (!match(TokenKind::KwEnd))
      Diags.error(peek().Loc, "expected 'end' to close procedure '" +
                                  P->name() + "'");
    expectNewline("after 'end'");
    Ctx->program().Procs.push_back(std::move(P));
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  /// Parses statements until 'end', 'else', 'elseif', or EOF.
  std::vector<Stmt *> parseStmtList() {
    std::vector<Stmt *> Stmts;
    for (;;) {
      if (check(TokenKind::Eof) || check(TokenKind::KwEnd) ||
          check(TokenKind::KwElse) || check(TokenKind::KwElseif))
        return Stmts;
      if (Stmt *S = parseStmt())
        Stmts.push_back(S);
    }
  }

  Stmt *parseStmt() {
    switch (peek().Kind) {
    case TokenKind::Identifier:
      return parseAssign();
    case TokenKind::KwCall:
      return parseCall();
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwDo:
      return parseDo();
    case TokenKind::KwWhile:
      return parseWhile();
    case TokenKind::KwPrint:
      return parsePrint();
    case TokenKind::KwRead:
      return parseRead();
    case TokenKind::KwReturn: {
      SourceLoc Loc = advance().Loc;
      expectNewline("after 'return'");
      return Ctx->createStmt<ReturnStmt>(Loc);
    }
    default:
      Diags.error(peek().Loc, std::string("expected a statement, found ") +
                                  tokenKindName(peek().Kind));
      syncToNextLine();
      return nullptr;
    }
  }

  Stmt *parseAssign() {
    SourceLoc Loc = peek().Loc;
    std::string Name(advance().Text);
    Expr *Target = nullptr;
    if (match(TokenKind::LParen)) {
      Expr *Index = parseExpr();
      expect(TokenKind::RParen, "after array subscript");
      Target = Ctx->createExpr<ArrayRefExpr>(Loc, Name, Index);
    } else {
      Target = Ctx->createExpr<VarRefExpr>(Loc, Name);
    }
    if (!expect(TokenKind::Assign, "in assignment")) {
      syncToNextLine();
      return nullptr;
    }
    Expr *Value = parseExpr();
    expectNewline("after assignment");
    return Ctx->createStmt<AssignStmt>(Loc, Target, Value);
  }

  Stmt *parseCall() {
    SourceLoc Loc = advance().Loc; // 'call'
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected procedure name after 'call'");
      syncToNextLine();
      return nullptr;
    }
    std::string Callee(advance().Text);
    std::vector<Expr *> Args;
    if (expect(TokenKind::LParen, "after callee name")) {
      if (!check(TokenKind::RParen)) {
        do
          Args.push_back(parseExpr());
        while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
    }
    expectNewline("after call");
    return Ctx->createStmt<CallStmt>(Loc, std::move(Callee),
                                     std::move(Args));
  }

  Stmt *parseIf() {
    SourceLoc Loc = advance().Loc; // 'if' or 'elseif'
    expect(TokenKind::LParen, "after 'if'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after if condition");
    expect(TokenKind::KwThen, "after if condition");
    expectNewline("after 'then'");

    std::vector<Stmt *> Then = parseStmtList();
    std::vector<Stmt *> Else;

    if (check(TokenKind::KwElseif)) {
      // Desugar: elseif becomes a nested if in the else block, sharing the
      // same 'end if'.
      if (Stmt *Nested = parseIf())
        Else.push_back(Nested);
      return Ctx->createStmt<IfStmt>(Loc, Cond, std::move(Then),
                                     std::move(Else));
    }

    if (match(TokenKind::KwElse)) {
      expectNewline("after 'else'");
      Else = parseStmtList();
    }
    expect(TokenKind::KwEnd, "to close 'if'");
    expect(TokenKind::KwIf, "after 'end'");
    expectNewline("after 'end if'");
    return Ctx->createStmt<IfStmt>(Loc, Cond, std::move(Then),
                                   std::move(Else));
  }

  Stmt *parseDo() {
    SourceLoc Loc = advance().Loc; // 'do'
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected loop variable after 'do'");
      syncToNextLine();
      return nullptr;
    }
    SourceLoc VarLoc = peek().Loc;
    auto *Var =
        Ctx->createExpr<VarRefExpr>(VarLoc, std::string(advance().Text));
    expect(TokenKind::Assign, "after loop variable");
    Expr *Lo = parseExpr();
    expect(TokenKind::Comma, "after loop lower bound");
    Expr *Hi = parseExpr();
    Expr *Step = nullptr;
    if (match(TokenKind::Comma))
      Step = parseExpr();
    expectNewline("after do header");

    std::vector<Stmt *> Body = parseStmtList();
    expect(TokenKind::KwEnd, "to close 'do'");
    expect(TokenKind::KwDo, "after 'end'");
    expectNewline("after 'end do'");
    return Ctx->createStmt<DoLoopStmt>(Loc, Var, Lo, Hi, Step,
                                       std::move(Body));
  }

  Stmt *parseWhile() {
    SourceLoc Loc = advance().Loc; // 'while'
    expect(TokenKind::LParen, "after 'while'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after while condition");
    expectNewline("after while header");

    std::vector<Stmt *> Body = parseStmtList();
    expect(TokenKind::KwEnd, "to close 'while'");
    expect(TokenKind::KwWhile, "after 'end'");
    expectNewline("after 'end while'");
    return Ctx->createStmt<WhileStmt>(Loc, Cond, std::move(Body));
  }

  Stmt *parsePrint() {
    SourceLoc Loc = advance().Loc; // 'print'
    Expr *Value = parseExpr();
    expectNewline("after print");
    return Ctx->createStmt<PrintStmt>(Loc, Value);
  }

  Stmt *parseRead() {
    SourceLoc Loc = advance().Loc; // 'read'
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected variable name after 'read'");
      syncToNextLine();
      return nullptr;
    }
    SourceLoc VarLoc = peek().Loc;
    auto *Var =
        Ctx->createExpr<VarRefExpr>(VarLoc, std::string(advance().Text));
    expectNewline("after read");
    return Ctx->createStmt<ReadStmt>(Loc, Var);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Expr *parseExpr() { return parseOr(); }

  Expr *parseOr() {
    Expr *Lhs = parseAnd();
    while (check(TokenKind::KwOr)) {
      SourceLoc Loc = advance().Loc;
      Expr *Rhs = parseAnd();
      Lhs = Ctx->createExpr<BinaryExpr>(Loc, BinaryOp::LogicalOr, Lhs, Rhs);
    }
    return Lhs;
  }

  Expr *parseAnd() {
    Expr *Lhs = parseNot();
    while (check(TokenKind::KwAnd)) {
      SourceLoc Loc = advance().Loc;
      Expr *Rhs = parseNot();
      Lhs = Ctx->createExpr<BinaryExpr>(Loc, BinaryOp::LogicalAnd, Lhs, Rhs);
    }
    return Lhs;
  }

  Expr *parseNot() {
    if (check(TokenKind::KwNot)) {
      SourceLoc Loc = advance().Loc;
      Expr *Operand = parseNot();
      return Ctx->createExpr<UnaryExpr>(Loc, UnaryOp::LogicalNot, Operand);
    }
    return parseRelational();
  }

  static std::optional<BinaryOp> relationalOp(TokenKind K) {
    switch (K) {
    case TokenKind::EqEq:
      return BinaryOp::CmpEq;
    case TokenKind::NotEq:
      return BinaryOp::CmpNe;
    case TokenKind::Less:
      return BinaryOp::CmpLt;
    case TokenKind::LessEq:
      return BinaryOp::CmpLe;
    case TokenKind::Greater:
      return BinaryOp::CmpGt;
    case TokenKind::GreaterEq:
      return BinaryOp::CmpGe;
    default:
      return std::nullopt;
    }
  }

  Expr *parseRelational() {
    Expr *Lhs = parseAdditive();
    if (auto Op = relationalOp(peek().Kind)) {
      SourceLoc Loc = advance().Loc;
      Expr *Rhs = parseAdditive();
      return Ctx->createExpr<BinaryExpr>(Loc, *Op, Lhs, Rhs);
    }
    return Lhs;
  }

  Expr *parseAdditive() {
    Expr *Lhs = parseMultiplicative();
    for (;;) {
      BinaryOp Op;
      if (check(TokenKind::Plus))
        Op = BinaryOp::Add;
      else if (check(TokenKind::Minus))
        Op = BinaryOp::Sub;
      else
        return Lhs;
      SourceLoc Loc = advance().Loc;
      Expr *Rhs = parseMultiplicative();
      Lhs = Ctx->createExpr<BinaryExpr>(Loc, Op, Lhs, Rhs);
    }
  }

  Expr *parseMultiplicative() {
    Expr *Lhs = parseUnary();
    for (;;) {
      BinaryOp Op;
      if (check(TokenKind::Star))
        Op = BinaryOp::Mul;
      else if (check(TokenKind::Slash))
        Op = BinaryOp::Div;
      else if (check(TokenKind::Percent))
        Op = BinaryOp::Mod;
      else
        return Lhs;
      SourceLoc Loc = advance().Loc;
      Expr *Rhs = parseUnary();
      Lhs = Ctx->createExpr<BinaryExpr>(Loc, Op, Lhs, Rhs);
    }
  }

  Expr *parseUnary() {
    if (check(TokenKind::Minus)) {
      SourceLoc Loc = advance().Loc;
      Expr *Operand = parseUnary();
      return Ctx->createExpr<UnaryExpr>(Loc, UnaryOp::Neg, Operand);
    }
    return parsePrimary();
  }

  Expr *parsePrimary() {
    SourceLoc Loc = peek().Loc;
    if (check(TokenKind::IntLiteral)) {
      int64_t Value = advance().IntValue;
      return Ctx->createExpr<IntLitExpr>(Loc, Value);
    }
    if (check(TokenKind::Identifier)) {
      std::string Name(advance().Text);
      if (match(TokenKind::LParen)) {
        Expr *Index = parseExpr();
        expect(TokenKind::RParen, "after array subscript");
        return Ctx->createExpr<ArrayRefExpr>(Loc, std::move(Name), Index);
      }
      return Ctx->createExpr<VarRefExpr>(Loc, std::move(Name));
    }
    if (match(TokenKind::LParen)) {
      Expr *Inner = parseExpr();
      expect(TokenKind::RParen, "after parenthesized expression");
      return Inner;
    }
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(peek().Kind));
    // Recover with a dummy literal so callers always get a node.
    if (!check(TokenKind::Newline) && !check(TokenKind::Eof))
      advance();
    return Ctx->createExpr<IntLitExpr>(Loc, int64_t(0));
  }

  DiagnosticEngine &Diags;
  std::unique_ptr<AstContext> Ctx;
  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace

std::unique_ptr<AstContext> ipcp::parseProgram(std::string_view Source,
                                               DiagnosticEngine &Diags) {
  Parser P(Source, Diags);
  return P.run();
}
