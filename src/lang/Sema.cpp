//===- lang/Sema.cpp - MiniFort semantic analysis -------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <cassert>
#include <string_view>
#include <unordered_map>

using namespace ipcp;

std::vector<SymbolId> SymbolTable::interproceduralParams(ProcId P) const {
  std::vector<SymbolId> Params = PerProc.at(P).Formals;
  Params.insert(Params.end(), GlobalIds.begin(), GlobalIds.end());
  return Params;
}

namespace ipcp {
namespace detail {

/// Walks one program binding names to symbols.
class SemaImpl {
public:
  SemaImpl(AstContext &Ctx, DiagnosticEngine &Diags)
      : Prog(Ctx.program()), Diags(Diags) {}

  SymbolTable run() {
    declareGlobals();
    declareProcs();
    for (ProcId P = 0, E = static_cast<ProcId>(Prog.Procs.size()); P != E;
         ++P)
      checkProcBody(P);
    checkEntry();
    return std::move(Table);
  }

private:
  void declareGlobals() {
    for (GlobalDecl &G : Prog.Globals) {
      if (GlobalScope.count(G.Name)) {
        Diags.error(G.Loc, "duplicate global '" + G.Name + "'");
        continue;
      }
      Symbol S;
      S.Kind = SymbolKind::Global;
      S.Name = G.Name;
      S.GlobalInit = G.Init;
      SymbolId Id = Table.addSymbol(std::move(S));
      Table.GlobalIds.push_back(Id);
      GlobalScope[G.Name] = Id;
      G.Symbol = Id;
    }
    for (ArrayDecl &A : Prog.GlobalArrays) {
      if (GlobalScope.count(A.Name)) {
        Diags.error(A.Loc, "duplicate global '" + A.Name + "'");
        continue;
      }
      if (A.Size <= 0)
        Diags.error(A.Loc, "array size must be positive");
      Symbol S;
      S.Kind = SymbolKind::GlobalArray;
      S.Name = A.Name;
      SymbolId Id = Table.addSymbol(std::move(S));
      Table.GlobalArrayIds.push_back(Id);
      GlobalScope[A.Name] = Id;
      A.Symbol = Id;
    }
  }

  void declareProcs() {
    // ProcIndex keeps the first occurrence of each name, matching
    // Program::findProc's first-match semantics; call resolution below
    // uses it instead of a per-call linear scan.
    for (ProcId P = 0, E = static_cast<ProcId>(Prog.Procs.size()); P != E;
         ++P) {
      Proc &Pr = *Prog.Procs[P];
      if (!ProcIndex.emplace(Pr.name(), P).second)
        Diags.error(Pr.loc(), "duplicate procedure '" + Pr.name() + "'");
      Table.PerProc.emplace_back();
      declareProcSymbols(P);
    }
  }

  void declareProcSymbols(ProcId P) {
    Proc &Pr = *Prog.Procs[P];
    auto &Scope = ProcScopes.emplace_back();

    auto declare = [&](const std::string &Name, SymbolKind Kind,
                       SourceLoc Loc, uint32_t FormalIndex) -> SymbolId {
      if (Scope.count(Name)) {
        Diags.error(Loc, "duplicate declaration of '" + Name +
                             "' in procedure '" + Pr.name() + "'");
        return InvalidSymbol;
      }
      if (GlobalScope.count(Name)) {
        Diags.error(Loc, "declaration of '" + Name +
                             "' shadows a global (not allowed)");
        return InvalidSymbol;
      }
      Symbol S;
      S.Kind = Kind;
      S.Name = Name;
      S.Owner = P;
      S.FormalIndex = FormalIndex;
      SymbolId Id = Table.addSymbol(std::move(S));
      Scope[Name] = Id;
      return Id;
    };

    for (uint32_t I = 0, E = static_cast<uint32_t>(Pr.formals().size());
         I != E; ++I) {
      SymbolId Id = declare(Pr.formals()[I], SymbolKind::Formal, Pr.loc(), I);
      Pr.FormalSymbols.push_back(Id);
      if (Id != InvalidSymbol)
        Table.PerProc[P].Formals.push_back(Id);
    }
    for (const std::string &Name : Pr.Locals) {
      SymbolId Id = declare(Name, SymbolKind::Local, Pr.loc(), 0);
      Pr.LocalSymbols.push_back(Id);
      if (Id != InvalidSymbol)
        Table.PerProc[P].Locals.push_back(Id);
    }
    for (ArrayDecl &A : Pr.LocalArrays) {
      if (A.Size <= 0)
        Diags.error(A.Loc, "array size must be positive");
      SymbolId Id = declare(A.Name, SymbolKind::LocalArray, A.Loc, 0);
      A.Symbol = Id;
      if (Id != InvalidSymbol)
        Table.PerProc[P].LocalArrays.push_back(Id);
    }
  }

  /// Looks up \p Name in \p P's scope, then the global scope. Returns
  /// InvalidSymbol (after diagnosing) if absent.
  SymbolId lookup(ProcId P, const std::string &Name, SourceLoc Loc) {
    auto &Scope = ProcScopes[P];
    if (auto It = Scope.find(Name); It != Scope.end())
      return It->second;
    if (auto It = GlobalScope.find(Name); It != GlobalScope.end())
      return It->second;
    Diags.error(Loc, "use of undeclared name '" + Name + "'");
    return InvalidSymbol;
  }

  void checkExpr(ProcId P, Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return;
    case ExprKind::VarRef: {
      auto *V = cast<VarRefExpr>(E);
      SymbolId Id = lookup(P, V->name(), V->loc());
      if (Id != InvalidSymbol && !Table.symbol(Id).isScalar()) {
        Diags.error(V->loc(),
                    "'" + V->name() + "' is an array; subscript required");
        Id = InvalidSymbol;
      }
      V->setSymbol(Id);
      return;
    }
    case ExprKind::ArrayRef: {
      auto *A = cast<ArrayRefExpr>(E);
      SymbolId Id = lookup(P, A->name(), A->loc());
      if (Id != InvalidSymbol && !Table.symbol(Id).isArray()) {
        Diags.error(A->loc(),
                    "'" + A->name() + "' is a scalar; cannot subscript");
        Id = InvalidSymbol;
      }
      A->setSymbol(Id);
      checkExpr(P, A->index());
      return;
    }
    case ExprKind::Unary:
      checkExpr(P, cast<UnaryExpr>(E)->operand());
      return;
    case ExprKind::Binary: {
      auto *B = cast<BinaryExpr>(E);
      checkExpr(P, B->lhs());
      checkExpr(P, B->rhs());
      return;
    }
    }
  }

  void checkStmts(ProcId P, const std::vector<Stmt *> &Stmts) {
    for (Stmt *S : Stmts)
      checkStmt(P, S);
  }

  void checkStmt(ProcId P, Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      auto *A = cast<AssignStmt>(S);
      checkExpr(P, A->target());
      checkExpr(P, A->value());
      return;
    }
    case StmtKind::Call: {
      auto *C = cast<CallStmt>(S);
      std::optional<ProcId> Callee;
      if (auto It = ProcIndex.find(C->calleeName()); It != ProcIndex.end())
        Callee = It->second;
      if (!Callee) {
        Diags.error(C->loc(),
                    "call to unknown procedure '" + C->calleeName() + "'");
      } else {
        C->setCallee(*Callee);
        size_t Expected = Prog.Procs[*Callee]->formals().size();
        if (C->args().size() != Expected)
          Diags.error(C->loc(), "call to '" + C->calleeName() + "' passes " +
                                    std::to_string(C->args().size()) +
                                    " arguments; expected " +
                                    std::to_string(Expected));
      }
      for (Expr *Arg : C->args())
        checkExpr(P, Arg);
      return;
    }
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      checkExpr(P, I->cond());
      checkStmts(P, I->thenBody());
      checkStmts(P, I->elseBody());
      return;
    }
    case StmtKind::DoLoop: {
      auto *D = cast<DoLoopStmt>(S);
      checkExpr(P, D->var());
      checkExpr(P, D->lo());
      checkExpr(P, D->hi());
      if (D->step())
        checkExpr(P, D->step());
      checkStmts(P, D->body());
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      checkExpr(P, W->cond());
      checkStmts(P, W->body());
      return;
    }
    case StmtKind::Print:
      checkExpr(P, cast<PrintStmt>(S)->value());
      return;
    case StmtKind::Read:
      checkExpr(P, cast<ReadStmt>(S)->target());
      return;
    case StmtKind::Return:
      return;
    }
  }

  void checkProcBody(ProcId P) { checkStmts(P, Prog.Procs[P]->Body); }

  void checkEntry() {
    auto Entry = Prog.entryProc();
    if (!Entry) {
      Diags.error(SourceLoc(1, 1), "program has no 'main' procedure");
      return;
    }
    if (!Prog.Procs[*Entry]->formals().empty())
      Diags.error(Prog.Procs[*Entry]->loc(),
                  "'main' must take no parameters");
  }

  Program &Prog;
  DiagnosticEngine &Diags;
  SymbolTable Table;
  // Scope and procedure maps key by views into names the Program owns
  // (declarations and procedure names), which outlive this walk.
  std::unordered_map<std::string_view, SymbolId> GlobalScope;
  std::vector<std::unordered_map<std::string_view, SymbolId>> ProcScopes;
  std::unordered_map<std::string_view, ProcId> ProcIndex;
};

} // namespace detail
} // namespace ipcp

SymbolTable Sema::run(AstContext &Ctx, DiagnosticEngine &Diags) {
  detail::SemaImpl Impl(Ctx, Diags);
  return Impl.run();
}
