//===- lang/AstClone.cpp - Deep AST cloning -------------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/AstClone.h"

#include <cassert>

using namespace ipcp;

static const std::string &substName(const NameSubst &Subst,
                                    const std::string &Name) {
  auto It = Subst.find(Name);
  return It == Subst.end() ? Name : It->second;
}

VarRefExpr *ipcp::cloneVarRef(AstContext &Ctx, const VarRefExpr *V,
                              const NameSubst &Subst) {
  return Ctx.createExpr<VarRefExpr>(V->loc(), substName(Subst, V->name()));
}

Expr *ipcp::cloneExpr(AstContext &Ctx, const Expr *E,
                      const NameSubst &Subst) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Ctx.createExpr<IntLitExpr>(E->loc(),
                                      cast<IntLitExpr>(E)->value());
  case ExprKind::VarRef:
    return cloneVarRef(Ctx, cast<VarRefExpr>(E), Subst);
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    return Ctx.createExpr<ArrayRefExpr>(A->loc(),
                                        substName(Subst, A->name()),
                                        cloneExpr(Ctx, A->index(), Subst));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return Ctx.createExpr<UnaryExpr>(U->loc(), U->op(),
                                     cloneExpr(Ctx, U->operand(), Subst));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Ctx.createExpr<BinaryExpr>(B->loc(), B->op(),
                                      cloneExpr(Ctx, B->lhs(), Subst),
                                      cloneExpr(Ctx, B->rhs(), Subst));
  }
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

VarRefExpr *ipcp::cloneVarRefResolved(AstContext &Ctx,
                                      const VarRefExpr *V) {
  VarRefExpr *Clone = Ctx.createExpr<VarRefExpr>(V->loc(), V->name());
  Clone->setSymbol(V->symbol());
  return Clone;
}

Expr *ipcp::cloneExprResolved(AstContext &Ctx, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Ctx.createExpr<IntLitExpr>(E->loc(),
                                      cast<IntLitExpr>(E)->value());
  case ExprKind::VarRef:
    return cloneVarRefResolved(Ctx, cast<VarRefExpr>(E));
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    auto *Clone = Ctx.createExpr<ArrayRefExpr>(
        A->loc(), A->name(), cloneExprResolved(Ctx, A->index()));
    Clone->setSymbol(A->symbol());
    return Clone;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return Ctx.createExpr<UnaryExpr>(
        U->loc(), U->op(), cloneExprResolved(Ctx, U->operand()));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Ctx.createExpr<BinaryExpr>(B->loc(), B->op(),
                                      cloneExprResolved(Ctx, B->lhs()),
                                      cloneExprResolved(Ctx, B->rhs()));
  }
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

Stmt *ipcp::cloneStmt(AstContext &Ctx, const Stmt *S,
                      const NameSubst &Subst) {
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    return Ctx.createStmt<AssignStmt>(A->loc(),
                                      cloneExpr(Ctx, A->target(), Subst),
                                      cloneExpr(Ctx, A->value(), Subst));
  }
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    std::vector<Expr *> Args;
    for (const Expr *Arg : C->args())
      Args.push_back(cloneExpr(Ctx, Arg, Subst));
    return Ctx.createStmt<CallStmt>(C->loc(), C->calleeName(),
                                    std::move(Args));
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    return Ctx.createStmt<IfStmt>(I->loc(),
                                  cloneExpr(Ctx, I->cond(), Subst),
                                  cloneStmts(Ctx, I->thenBody(), Subst),
                                  cloneStmts(Ctx, I->elseBody(), Subst));
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    return Ctx.createStmt<WhileStmt>(W->loc(),
                                     cloneExpr(Ctx, W->cond(), Subst),
                                     cloneStmts(Ctx, W->body(), Subst));
  }
  case StmtKind::DoLoop: {
    const auto *D = cast<DoLoopStmt>(S);
    return Ctx.createStmt<DoLoopStmt>(
        D->loc(), cloneVarRef(Ctx, D->var(), Subst),
        cloneExpr(Ctx, D->lo(), Subst), cloneExpr(Ctx, D->hi(), Subst),
        D->step() ? cloneExpr(Ctx, D->step(), Subst) : nullptr,
        cloneStmts(Ctx, D->body(), Subst));
  }
  case StmtKind::Print:
    return Ctx.createStmt<PrintStmt>(
        S->loc(), cloneExpr(Ctx, cast<PrintStmt>(S)->value(), Subst));
  case StmtKind::Read:
    return Ctx.createStmt<ReadStmt>(
        S->loc(), cloneVarRef(Ctx, cast<ReadStmt>(S)->target(), Subst));
  case StmtKind::Return:
    return Ctx.createStmt<ReturnStmt>(S->loc());
  }
  assert(false && "unknown statement kind");
  return nullptr;
}

std::vector<Stmt *> ipcp::cloneStmts(AstContext &Ctx,
                                     const std::vector<Stmt *> &Stmts,
                                     const NameSubst &Subst) {
  std::vector<Stmt *> Out;
  Out.reserve(Stmts.size());
  for (const Stmt *S : Stmts)
    Out.push_back(cloneStmt(Ctx, S, Subst));
  return Out;
}

Stmt *ipcp::cloneStmtResolved(AstContext &Ctx, const Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    return Ctx.createStmt<AssignStmt>(A->loc(),
                                      cloneExprResolved(Ctx, A->target()),
                                      cloneExprResolved(Ctx, A->value()));
  }
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    std::vector<Expr *> Args;
    for (const Expr *Arg : C->args())
      Args.push_back(cloneExprResolved(Ctx, Arg));
    auto *Clone = Ctx.createStmt<CallStmt>(C->loc(), C->calleeName(),
                                           std::move(Args));
    Clone->setCallee(C->callee());
    return Clone;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    return Ctx.createStmt<IfStmt>(I->loc(),
                                  cloneExprResolved(Ctx, I->cond()),
                                  cloneStmtsResolved(Ctx, I->thenBody()),
                                  cloneStmtsResolved(Ctx, I->elseBody()));
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    return Ctx.createStmt<WhileStmt>(W->loc(),
                                     cloneExprResolved(Ctx, W->cond()),
                                     cloneStmtsResolved(Ctx, W->body()));
  }
  case StmtKind::DoLoop: {
    const auto *D = cast<DoLoopStmt>(S);
    return Ctx.createStmt<DoLoopStmt>(
        D->loc(), cloneVarRefResolved(Ctx, D->var()),
        cloneExprResolved(Ctx, D->lo()), cloneExprResolved(Ctx, D->hi()),
        D->step() ? cloneExprResolved(Ctx, D->step()) : nullptr,
        cloneStmtsResolved(Ctx, D->body()));
  }
  case StmtKind::Print:
    return Ctx.createStmt<PrintStmt>(
        S->loc(), cloneExprResolved(Ctx, cast<PrintStmt>(S)->value()));
  case StmtKind::Read:
    return Ctx.createStmt<ReadStmt>(
        S->loc(), cloneVarRefResolved(Ctx, cast<ReadStmt>(S)->target()));
  case StmtKind::Return:
    return Ctx.createStmt<ReturnStmt>(S->loc());
  }
  assert(false && "unknown statement kind");
  return nullptr;
}

std::vector<Stmt *>
ipcp::cloneStmtsResolved(AstContext &Ctx, const std::vector<Stmt *> &Stmts) {
  std::vector<Stmt *> Out;
  Out.reserve(Stmts.size());
  for (const Stmt *S : Stmts)
    Out.push_back(cloneStmtResolved(Ctx, S));
  return Out;
}

std::unique_ptr<AstContext> ipcp::cloneProgramResolved(const AstContext &Src) {
  auto Dst = std::make_unique<AstContext>();
  const Program &From = Src.program();
  Program &To = Dst->program();
  To.Name = From.Name;
  To.Globals = From.Globals;
  To.GlobalArrays = From.GlobalArrays;
  To.Procs.reserve(From.Procs.size());
  for (const auto &P : From.Procs) {
    auto Clone = std::make_unique<Proc>(P->loc(), P->name(), P->formals());
    Clone->Locals = P->Locals;
    Clone->LocalArrays = P->LocalArrays;
    Clone->FormalSymbols = P->FormalSymbols;
    Clone->LocalSymbols = P->LocalSymbols;
    Clone->Body = cloneStmtsResolved(*Dst, P->Body);
    To.Procs.push_back(std::move(Clone));
  }
  return Dst;
}
