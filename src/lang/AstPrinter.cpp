//===- lang/AstPrinter.cpp - MiniFort pretty-printer ----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include <cassert>
#include <ostream>
#include <sstream>

using namespace ipcp;

/// Binding strength used to decide where parentheses are required.
/// Higher binds tighter. Matches the parser's precedence levels.
static int precedence(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::VarRef:
  case ExprKind::ArrayRef:
    return 100;
  case ExprKind::Unary:
    return 60;
  case ExprKind::Binary:
    switch (cast<BinaryExpr>(E)->op()) {
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      return 50;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 40;
    case BinaryOp::CmpEq:
    case BinaryOp::CmpNe:
    case BinaryOp::CmpLt:
    case BinaryOp::CmpLe:
    case BinaryOp::CmpGt:
    case BinaryOp::CmpGe:
      return 30;
    case BinaryOp::LogicalAnd:
      return 20;
    case BinaryOp::LogicalOr:
      return 10;
    }
  }
  return 0;
}

void AstPrinter::printExpr(const Expr *E, std::ostream &OS,
                           int ParentPrec) const {
  int Prec = precedence(E);
  bool NeedParens = Prec < ParentPrec;
  if (NeedParens)
    OS << '(';

  switch (E->kind()) {
  case ExprKind::IntLit: {
    int64_t V = cast<IntLitExpr>(E)->value();
    if (V < 0)
      OS << "(0 - " << -(V + 1) << " - 1)"; // Avoid re-lexing issues.
    else
      OS << V;
    break;
  }
  case ExprKind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    if (Substitutions) {
      if (auto It = Substitutions->find(V->id());
          It != Substitutions->end()) {
        OS << It->second;
        break;
      }
    }
    OS << V->name();
    break;
  }
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    OS << A->name() << '(';
    printExpr(A->index(), OS, 0);
    OS << ')';
    break;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    OS << unaryOpSpelling(U->op());
    if (U->op() == UnaryOp::LogicalNot)
      OS << ' ';
    printExpr(U->operand(), OS, Prec + 1);
    break;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    printExpr(B->lhs(), OS, Prec);
    OS << ' ' << binaryOpSpelling(B->op()) << ' ';
    // Right operand needs stricter binding for left-associative operators.
    printExpr(B->rhs(), OS, Prec + 1);
    break;
  }
  }

  if (NeedParens)
    OS << ')';
}

std::string AstPrinter::exprToString(const Expr *E) const {
  std::ostringstream OS;
  printExpr(E, OS, 0);
  return OS.str();
}

static void indentTo(std::ostream &OS, unsigned Indent) {
  for (unsigned I = 0; I != Indent; ++I)
    OS << "  ";
}

void AstPrinter::printBody(const std::vector<Stmt *> &Body, std::ostream &OS,
                           unsigned Indent) const {
  for (const Stmt *S : Body)
    printStmt(S, OS, Indent);
}

void AstPrinter::printStmt(const Stmt *S, std::ostream &OS,
                           unsigned Indent) const {
  indentTo(OS, Indent);
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    // The assignment target prints as a name even when a substitution map
    // is present: only uses are substitutable.
    if (const auto *V = dyn_cast<VarRefExpr>(A->target())) {
      OS << V->name();
    } else {
      const auto *Arr = cast<ArrayRefExpr>(A->target());
      OS << Arr->name() << '(';
      printExpr(Arr->index(), OS, 0);
      OS << ')';
    }
    OS << " = ";
    printExpr(A->value(), OS, 0);
    OS << '\n';
    return;
  }
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    OS << "call " << C->calleeName() << '(';
    bool First = true;
    for (const Expr *Arg : C->args()) {
      if (!First)
        OS << ", ";
      First = false;
      printExpr(Arg, OS, 0);
    }
    OS << ")\n";
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    OS << "if (";
    printExpr(I->cond(), OS, 0);
    OS << ") then\n";
    printBody(I->thenBody(), OS, Indent + 1);
    if (!I->elseBody().empty()) {
      indentTo(OS, Indent);
      OS << "else\n";
      printBody(I->elseBody(), OS, Indent + 1);
    }
    indentTo(OS, Indent);
    OS << "end if\n";
    return;
  }
  case StmtKind::DoLoop: {
    const auto *D = cast<DoLoopStmt>(S);
    OS << "do " << D->var()->name() << " = ";
    printExpr(D->lo(), OS, 0);
    OS << ", ";
    printExpr(D->hi(), OS, 0);
    if (D->step()) {
      OS << ", ";
      printExpr(D->step(), OS, 0);
    }
    OS << '\n';
    printBody(D->body(), OS, Indent + 1);
    indentTo(OS, Indent);
    OS << "end do\n";
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    OS << "while (";
    printExpr(W->cond(), OS, 0);
    OS << ")\n";
    printBody(W->body(), OS, Indent + 1);
    indentTo(OS, Indent);
    OS << "end while\n";
    return;
  }
  case StmtKind::Print: {
    OS << "print ";
    printExpr(cast<PrintStmt>(S)->value(), OS, 0);
    OS << '\n';
    return;
  }
  case StmtKind::Read: {
    OS << "read " << cast<ReadStmt>(S)->target()->name() << '\n';
    return;
  }
  case StmtKind::Return:
    OS << "return\n";
    return;
  }
}

void AstPrinter::printProc(const Proc &P, std::ostream &OS) const {
  OS << "proc " << P.name() << '(';
  bool First = true;
  for (const std::string &F : P.formals()) {
    if (!First)
      OS << ", ";
    First = false;
    OS << F;
  }
  OS << ")\n";
  if (!P.Locals.empty()) {
    OS << "  integer ";
    First = true;
    for (const std::string &L : P.Locals) {
      if (!First)
        OS << ", ";
      First = false;
      OS << L;
    }
    OS << '\n';
  }
  for (const ArrayDecl &A : P.LocalArrays)
    OS << "  array " << A.Name << '(' << A.Size << ")\n";
  printBody(P.Body, OS, 1);
  OS << "end\n";
}

void AstPrinter::print(const Program &Prog, std::ostream &OS) const {
  if (!Prog.Name.empty())
    OS << "program " << Prog.Name << '\n';
  for (const GlobalDecl &G : Prog.Globals) {
    OS << "global " << G.Name;
    if (G.Init)
      OS << " = " << *G.Init;
    OS << '\n';
  }
  for (const ArrayDecl &A : Prog.GlobalArrays)
    OS << "array " << A.Name << '(' << A.Size << ")\n";
  for (const auto &P : Prog.Procs) {
    OS << '\n';
    printProc(*P, OS);
  }
}

std::string AstPrinter::programToString(const Program &Prog) const {
  std::ostringstream OS;
  print(Prog, OS);
  return OS.str();
}
