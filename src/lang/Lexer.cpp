//===- lang/Lexer.cpp - MiniFort lexer ------------------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cassert>
#include <cstring>

using namespace ipcp;

namespace {

/// Locale-independent character classes, one table lookup per byte.
enum : uint8_t { CcIdentStart = 1, CcDigit = 2, CcIdent = CcIdentStart | CcDigit };

struct CharClassTable {
  uint8_t C[256] = {};
  constexpr CharClassTable() {
    for (unsigned I = 'a'; I <= 'z'; ++I)
      C[I] = CcIdentStart;
    for (unsigned I = 'A'; I <= 'Z'; ++I)
      C[I] = CcIdentStart;
    C['_'] = CcIdentStart;
    for (unsigned I = '0'; I <= '9'; ++I)
      C[I] = CcDigit;
  }
};

constexpr CharClassTable CharClasses;

inline bool isIdentStart(char C) {
  return CharClasses.C[static_cast<unsigned char>(C)] & CcIdentStart;
}
inline bool isIdentCont(char C) {
  return CharClasses.C[static_cast<unsigned char>(C)] & CcIdent;
}
inline bool isDigitChar(char C) {
  return CharClasses.C[static_cast<unsigned char>(C)] & CcDigit;
}

} // namespace

const char *ipcp::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Newline:
    return "end of line";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwGlobal:
    return "'global'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwProc:
    return "'proc'";
  case TokenKind::KwInteger:
    return "'integer'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElseif:
    return "'elseif'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwRead:
    return "'read'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown";
}

/// Branchy keyword matcher: one switch on the first character plus a
/// memcmp, no hashing. Keywords are lowercase; anything else (including
/// "IF") is an identifier.
static TokenKind keywordOrIdentifier(std::string_view Text) {
  auto Is = [&](const char *Kw, size_t Len) {
    return Text.size() == Len && std::memcmp(Text.data(), Kw, Len) == 0;
  };
  switch (Text[0]) {
  case 'a':
    if (Is("and", 3))
      return TokenKind::KwAnd;
    if (Is("array", 5))
      return TokenKind::KwArray;
    break;
  case 'c':
    if (Is("call", 4))
      return TokenKind::KwCall;
    break;
  case 'd':
    if (Is("do", 2))
      return TokenKind::KwDo;
    break;
  case 'e':
    if (Is("end", 3))
      return TokenKind::KwEnd;
    if (Is("else", 4))
      return TokenKind::KwElse;
    if (Is("elseif", 6))
      return TokenKind::KwElseif;
    break;
  case 'g':
    if (Is("global", 6))
      return TokenKind::KwGlobal;
    break;
  case 'i':
    if (Is("if", 2))
      return TokenKind::KwIf;
    if (Is("integer", 7))
      return TokenKind::KwInteger;
    break;
  case 'n':
    if (Is("not", 3))
      return TokenKind::KwNot;
    break;
  case 'o':
    if (Is("or", 2))
      return TokenKind::KwOr;
    break;
  case 'p':
    if (Is("proc", 4))
      return TokenKind::KwProc;
    if (Is("print", 5))
      return TokenKind::KwPrint;
    if (Is("program", 7))
      return TokenKind::KwProgram;
    break;
  case 'r':
    if (Is("read", 4))
      return TokenKind::KwRead;
    if (Is("return", 6))
      return TokenKind::KwReturn;
    break;
  case 't':
    if (Is("then", 4))
      return TokenKind::KwThen;
    break;
  case 'w':
    if (Is("while", 5))
      return TokenKind::KwWhile;
    break;
  default:
    break;
  }
  return TokenKind::Identifier;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

bool Lexer::atEnd() const { return Pos >= Source.size(); }

char Lexer::peek() const { return atEnd() ? '\0' : Source[Pos]; }

char Lexer::peekAhead() const {
  return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipHorizontalSpaceAndComments() {
  // Bulk scan: nothing in here crosses a newline, so the column advances
  // by the scanned length and the line number is untouched.
  const size_t Size = Source.size();
  size_t P = Pos;
  for (;;) {
    size_t RunStart = P;
    while (P < Size) {
      char C = Source[P];
      if (C == ' ' || C == '\t' || C == '\r')
        ++P;
      else
        break;
    }
    if (P < Size && Source[P] == '!' &&
        (P + 1 >= Size || Source[P + 1] != '=')) {
      // Comment to end of line; the newline itself is handled by next().
      // "!=" is the not-equal operator, not a comment.
      ++P;
      while (P < Size && Source[P] != '\n')
        ++P;
      Col += static_cast<uint32_t>(P - RunStart);
      continue;
    }
    Col += static_cast<uint32_t>(P - RunStart);
    break;
  }
  Pos = P;
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  if (Kind != TokenKind::Newline && Kind != TokenKind::Eof)
    TokenOnLine = true;
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Start = Pos;
  size_t P = Pos;
  const size_t Size = Source.size();
  while (P < Size && isIdentCont(Source[P]))
    ++P;
  Col += static_cast<uint32_t>(P - Start);
  Pos = P;
  std::string_view Text = Source.substr(Start, P - Start);
  TokenKind Kind = keywordOrIdentifier(Text);
  if (Kind != TokenKind::Identifier)
    return makeToken(Kind, Loc);
  Token T = makeToken(TokenKind::Identifier, Loc);
  T.Text = Text;
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  size_t P = Pos;
  const size_t Size = Source.size();
  while (P < Size && isDigitChar(Source[P]))
    ++P;
  Col += static_cast<uint32_t>(P - Start);
  Pos = P;
  std::string_view Text = Source.substr(Start, P - Start);
  Token T = makeToken(TokenKind::IntLiteral, Loc);
  // MiniFort literals fit in int64_t by construction of the workloads; on
  // overflow we diagnose and clamp rather than wrapping silently.
  int64_t Value = 0;
  bool Overflow = false;
  for (char C : Text) {
    if (Value > (INT64_MAX - (C - '0')) / 10) {
      Overflow = true;
      break;
    }
    Value = Value * 10 + (C - '0');
  }
  if (Overflow) {
    Diags.error(Loc, "integer literal too large");
    Value = INT64_MAX;
  }
  T.IntValue = Value;
  return T;
}

Token Lexer::next() {
  skipHorizontalSpaceAndComments();
  SourceLoc Loc(Line, Col);

  if (atEnd()) {
    if (TokenOnLine) {
      TokenOnLine = false;
      return makeToken(TokenKind::Newline, Loc);
    }
    return makeToken(TokenKind::Eof, Loc);
  }

  char C = peek();
  if (C == '\n') {
    advance();
    if (TokenOnLine) {
      TokenOnLine = false;
      return makeToken(TokenKind::Newline, Loc);
    }
    return next(); // Blank line: no token.
  }

  if (isIdentStart(C))
    return lexIdentifierOrKeyword(Loc);
  if (isDigitChar(C))
    return lexNumber(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Loc);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqEq, Loc);
    }
    return makeToken(TokenKind::Assign, Loc);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEq, Loc);
    }
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEq, Loc);
    }
    return makeToken(TokenKind::Greater, Loc);
  case '!':
    // skipHorizontalSpaceAndComments() only lets '!' through when it is
    // followed by '=', i.e. the not-equal operator.
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::NotEq, Loc);
    }
    break;
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Loc);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  // MiniFort averages well under four characters per token; one upfront
  // reservation avoids the dozen-plus regrowth copies of a 6KB program.
  Tokens.reserve(Source.size() / 3 + 16);
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
