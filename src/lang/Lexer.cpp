//===- lang/Lexer.cpp - MiniFort lexer ------------------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace ipcp;

const char *ipcp::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Newline:
    return "end of line";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwGlobal:
    return "'global'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwProc:
    return "'proc'";
  case TokenKind::KwInteger:
    return "'integer'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElseif:
    return "'elseif'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwRead:
    return "'read'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown";
}

static const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"program", TokenKind::KwProgram}, {"global", TokenKind::KwGlobal},
      {"array", TokenKind::KwArray},     {"proc", TokenKind::KwProc},
      {"integer", TokenKind::KwInteger}, {"call", TokenKind::KwCall},
      {"if", TokenKind::KwIf},           {"then", TokenKind::KwThen},
      {"elseif", TokenKind::KwElseif},   {"else", TokenKind::KwElse},
      {"end", TokenKind::KwEnd},         {"do", TokenKind::KwDo},
      {"while", TokenKind::KwWhile},     {"print", TokenKind::KwPrint},
      {"read", TokenKind::KwRead},       {"return", TokenKind::KwReturn},
      {"and", TokenKind::KwAnd},         {"or", TokenKind::KwOr},
      {"not", TokenKind::KwNot},
  };
  return Table;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

bool Lexer::atEnd() const { return Pos >= Source.size(); }

char Lexer::peek() const { return atEnd() ? '\0' : Source[Pos]; }

char Lexer::peekAhead() const {
  return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipHorizontalSpaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r') {
      advance();
      continue;
    }
    if (C == '!' && peekAhead() != '=') {
      // Comment to end of line; the newline itself is handled by next().
      // "!=" is the not-equal operator, not a comment.
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  if (Kind != TokenKind::Newline && Kind != TokenKind::Eof)
    TokenOnLine = true;
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Start = Pos;
  while (!atEnd() && (std::isalnum((unsigned char)peek()) || peek() == '_'))
    advance();
  std::string_view Text = Source.substr(Start, Pos - Start);
  const auto &Keywords = keywordTable();
  if (auto It = Keywords.find(Text); It != Keywords.end())
    return makeToken(It->second, Loc);
  Token T = makeToken(TokenKind::Identifier, Loc);
  T.Text = std::string(Text);
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  while (!atEnd() && std::isdigit((unsigned char)peek()))
    advance();
  std::string_view Text = Source.substr(Start, Pos - Start);
  Token T = makeToken(TokenKind::IntLiteral, Loc);
  // MiniFort literals fit in int64_t by construction of the workloads; on
  // overflow we diagnose and clamp rather than wrapping silently.
  int64_t Value = 0;
  bool Overflow = false;
  for (char C : Text) {
    if (Value > (INT64_MAX - (C - '0')) / 10) {
      Overflow = true;
      break;
    }
    Value = Value * 10 + (C - '0');
  }
  if (Overflow) {
    Diags.error(Loc, "integer literal too large");
    Value = INT64_MAX;
  }
  T.IntValue = Value;
  return T;
}

Token Lexer::next() {
  skipHorizontalSpaceAndComments();
  SourceLoc Loc(Line, Col);

  if (atEnd()) {
    if (TokenOnLine) {
      TokenOnLine = false;
      return makeToken(TokenKind::Newline, Loc);
    }
    return makeToken(TokenKind::Eof, Loc);
  }

  char C = peek();
  if (C == '\n') {
    advance();
    if (TokenOnLine) {
      TokenOnLine = false;
      return makeToken(TokenKind::Newline, Loc);
    }
    return next(); // Blank line: no token.
  }

  if (std::isalpha((unsigned char)C) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit((unsigned char)C))
    return lexNumber(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Loc);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqEq, Loc);
    }
    return makeToken(TokenKind::Assign, Loc);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEq, Loc);
    }
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEq, Loc);
    }
    return makeToken(TokenKind::Greater, Loc);
  case '!':
    // skipHorizontalSpaceAndComments() only lets '!' through when it is
    // followed by '=', i.e. the not-equal operator.
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::NotEq, Loc);
    }
    break;
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Loc);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
