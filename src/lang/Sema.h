//===- lang/Sema.h - MiniFort semantic analysis -----------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and semantic checks for MiniFort, plus the program-wide
/// symbol table that every later phase keys its results on.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_SEMA_H
#define IPCP_LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipcp {

namespace detail {
class SemaImpl;
} // namespace detail

/// Id of a symbol in the program-wide SymbolTable.
using SymbolId = uint32_t;
/// Sentinel for "no symbol".
inline constexpr SymbolId InvalidSymbol = UINT32_MAX;

/// What a symbol names. The interprocedural analysis treats global scalars
/// as implicit parameters of every procedure (paper footnote 1), so
/// "parameter" below means Formal or Global.
enum class SymbolKind : uint8_t {
  Global,      ///< Global integer scalar.
  GlobalArray, ///< Global integer array (opaque to the analysis).
  Formal,      ///< By-reference formal parameter of one procedure.
  Local,       ///< Procedure-local integer scalar.
  LocalArray,  ///< Procedure-local integer array (opaque).
};

/// One named entity. Formals record their 0-based position in the owning
/// procedure's parameter list.
struct Symbol {
  SymbolId Id = InvalidSymbol;
  SymbolKind Kind = SymbolKind::Local;
  std::string Name;
  /// Owning procedure for Formal/Local/LocalArray; UINT32_MAX for globals.
  ProcId Owner = UINT32_MAX;
  /// Position in the formal list (Formal symbols only).
  uint32_t FormalIndex = 0;
  /// Compile-time initializer (Global symbols only).
  std::optional<int64_t> GlobalInit;

  bool isScalar() const {
    return Kind == SymbolKind::Global || Kind == SymbolKind::Formal ||
           Kind == SymbolKind::Local;
  }
  bool isArray() const { return !isScalar(); }
  /// True for the symbols that participate in interprocedural value flow:
  /// formals and global scalars.
  bool isInterproceduralParam() const {
    return Kind == SymbolKind::Global || Kind == SymbolKind::Formal;
  }
};

/// The program-wide symbol table built by Sema. SymbolIds index \c
/// symbols() densely.
class SymbolTable {
public:
  const Symbol &symbol(SymbolId Id) const { return Symbols.at(Id); }
  size_t size() const { return Symbols.size(); }
  const std::vector<Symbol> &symbols() const { return Symbols; }

  /// Ids of all global scalars, in declaration order.
  const std::vector<SymbolId> &globalScalars() const { return GlobalIds; }

  /// Ids of the formals of \p P, in parameter order.
  const std::vector<SymbolId> &formals(ProcId P) const {
    return PerProc.at(P).Formals;
  }

  /// Ids of the scalar locals of \p P.
  const std::vector<SymbolId> &locals(ProcId P) const {
    return PerProc.at(P).Locals;
  }

  /// The "interprocedural parameters" of \p P: its formals followed by all
  /// global scalars. These are exactly the cells the IPCP solver tracks
  /// per procedure.
  std::vector<SymbolId> interproceduralParams(ProcId P) const;

private:
  friend class detail::SemaImpl;

  SymbolId addSymbol(Symbol S) {
    S.Id = static_cast<SymbolId>(Symbols.size());
    Symbols.push_back(std::move(S));
    return Symbols.back().Id;
  }

  struct ProcSymbols {
    std::vector<SymbolId> Formals;
    std::vector<SymbolId> Locals;
    std::vector<SymbolId> LocalArrays;
  };

  std::vector<Symbol> Symbols;
  std::vector<SymbolId> GlobalIds;
  std::vector<SymbolId> GlobalArrayIds;
  std::vector<ProcSymbols> PerProc;
};

/// Runs name resolution and semantic checks over \p Ctx's program:
/// builds the symbol table, binds every VarRef/ArrayRef/Call to its
/// symbol/procedure, and enforces MiniFort's rules (no shadowing, arity
/// match, scalar/array usage, presence of a zero-argument 'main').
///
/// Returns the symbol table; valid only if \p Diags has no errors.
class Sema {
public:
  static SymbolTable run(AstContext &Ctx, DiagnosticEngine &Diags);
};

} // namespace ipcp

#endif // IPCP_LANG_SEMA_H
