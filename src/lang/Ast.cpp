//===- lang/Ast.cpp - MiniFort abstract syntax trees ----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace ipcp;

const char *ipcp::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::CmpEq:
    return "==";
  case BinaryOp::CmpNe:
    return "!=";
  case BinaryOp::CmpLt:
    return "<";
  case BinaryOp::CmpLe:
    return "<=";
  case BinaryOp::CmpGt:
    return ">";
  case BinaryOp::CmpGe:
    return ">=";
  case BinaryOp::LogicalAnd:
    return "and";
  case BinaryOp::LogicalOr:
    return "or";
  }
  return "?";
}

const char *ipcp::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::LogicalNot:
    return "not";
  }
  return "?";
}

std::optional<ProcId> Program::findProc(const std::string &Name) const {
  for (ProcId I = 0, E = static_cast<ProcId>(Procs.size()); I != E; ++I)
    if (Procs[I]->name() == Name)
      return I;
  return std::nullopt;
}
