//===- lang/Ast.h - MiniFort abstract syntax trees --------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node types for MiniFort and the AstContext arena that owns them.
///
/// Every expression and statement carries a program-unique id. The ids let
/// later phases attach analysis results back to source constructs: the
/// constant-substitution pass maps IR operands to VarRefExpr ids, and the
/// dead-code-elimination pass maps IR branches to IfStmt/WhileStmt ids.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_LANG_AST_H
#define IPCP_LANG_AST_H

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace ipcp {

class AstContext;

/// Program-unique id of an expression node (1-based; 0 is "no id").
using ExprId = uint32_t;
/// Program-unique id of a statement node (1-based; 0 is "no id").
using StmtId = uint32_t;
/// Index of a procedure within its Program.
using ProcId = uint32_t;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Discriminator for Expr subclasses.
enum class ExprKind : uint8_t {
  IntLit,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
};

/// Binary operators. Relational and logical operators yield 0/1 integers
/// (there is only one type in MiniFort).
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div, // truncating integer division
  Mod,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  LogicalAnd,
  LogicalOr,
};

/// Unary operators.
enum class UnaryOp : uint8_t {
  Neg,
  LogicalNot,
};

/// Returns the MiniFort spelling of \p Op ("+", "<=", "and", ...).
const char *binaryOpSpelling(BinaryOp Op);
/// Returns the MiniFort spelling of \p Op ("-", "not").
const char *unaryOpSpelling(UnaryOp Op);

/// Base class of all MiniFort expressions.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  ExprId id() const { return Id; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc, ExprId Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  ExprId Id;
};

/// An integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, ExprId Id, int64_t Value)
      : Expr(ExprKind::IntLit, Loc, Id), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// A reference to a scalar variable (global, formal, or local). Sema fills
/// in the resolved symbol id.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, ExprId Id, std::string Name)
      : Expr(ExprKind::VarRef, Loc, Id), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  uint32_t symbol() const { return Symbol; }
  void setSymbol(uint32_t Sym) { Symbol = Sym; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

private:
  std::string Name;
  uint32_t Symbol = UINT32_MAX;
};

/// A subscripted array reference a(i). Sema fills in the resolved symbol.
class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(SourceLoc Loc, ExprId Id, std::string Name, Expr *Index)
      : Expr(ExprKind::ArrayRef, Loc, Id), Name(std::move(Name)),
        Index(Index) {}

  const std::string &name() const { return Name; }
  Expr *index() const { return Index; }
  uint32_t symbol() const { return Symbol; }
  void setSymbol(uint32_t Sym) { Symbol = Sym; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayRef;
  }

private:
  std::string Name;
  Expr *Index;
  uint32_t Symbol = UINT32_MAX;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, ExprId Id, UnaryOp Op, Expr *Operand)
      : Expr(ExprKind::Unary, Loc, Id), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, ExprId Id, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(ExprKind::Binary, Loc, Id), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Discriminator for Stmt subclasses.
enum class StmtKind : uint8_t {
  Assign,
  Call,
  If,
  DoLoop,
  While,
  Print,
  Read,
  Return,
};

/// Base class of all MiniFort statements.
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  StmtId id() const { return Id; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc, StmtId Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
  StmtId Id;
};

/// Assignment to a scalar variable or an array element. The target is a
/// VarRefExpr or ArrayRefExpr.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, StmtId Id, Expr *Target, Expr *Value)
      : Stmt(StmtKind::Assign, Loc, Id), Target(Target), Value(Value) {}

  Expr *target() const { return Target; }
  Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

private:
  Expr *Target;
  Expr *Value;
};

/// A call statement. Sema fills in the callee ProcId. Arguments that are
/// plain scalar VarRefs bind by reference (FORTRAN semantics); any other
/// argument expression binds to a fresh by-value temporary.
class CallStmt : public Stmt {
public:
  CallStmt(SourceLoc Loc, StmtId Id, std::string Callee,
           std::vector<Expr *> Args)
      : Stmt(StmtKind::Call, Loc, Id), CalleeName(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &calleeName() const { return CalleeName; }
  const std::vector<Expr *> &args() const { return Args; }
  ProcId callee() const { return Callee; }
  void setCallee(ProcId P) { Callee = P; }
  /// Retargets the call (procedure cloning); invalidates the resolved
  /// callee until Sema runs again.
  void setCalleeName(std::string Name) {
    CalleeName = std::move(Name);
    Callee = UINT32_MAX;
  }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }

private:
  std::string CalleeName;
  std::vector<Expr *> Args;
  ProcId Callee = UINT32_MAX;
};

/// An if/then/else statement. "elseif" chains are represented as a nested
/// IfStmt as the sole statement of the else block.
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, StmtId Id, Expr *Cond, std::vector<Stmt *> Then,
         std::vector<Stmt *> Else)
      : Stmt(StmtKind::If, Loc, Id), Cond(Cond), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond; }
  const std::vector<Stmt *> &thenBody() const { return Then; }
  const std::vector<Stmt *> &elseBody() const { return Else; }

  /// Replaces the arms (dead-code elimination rewrites trees in place).
  void setThenBody(std::vector<Stmt *> Body) { Then = std::move(Body); }
  void setElseBody(std::vector<Stmt *> Body) { Else = std::move(Body); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  std::vector<Stmt *> Then;
  std::vector<Stmt *> Else;
};

/// A counted DO loop: do v = lo, hi [, step]. The step defaults to 1.
class DoLoopStmt : public Stmt {
public:
  DoLoopStmt(SourceLoc Loc, StmtId Id, VarRefExpr *Var, Expr *Lo, Expr *Hi,
             Expr *Step, std::vector<Stmt *> Body)
      : Stmt(StmtKind::DoLoop, Loc, Id), Var(Var), Lo(Lo), Hi(Hi),
        Step(Step), Body(std::move(Body)) {}

  VarRefExpr *var() const { return Var; }
  Expr *lo() const { return Lo; }
  Expr *hi() const { return Hi; }
  /// Null when the step was omitted (defaults to 1).
  Expr *step() const { return Step; }
  const std::vector<Stmt *> &body() const { return Body; }

  /// Replaces the body (dead-code elimination rewrites trees in place).
  void setBody(std::vector<Stmt *> NewBody) { Body = std::move(NewBody); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::DoLoop; }

private:
  VarRefExpr *Var;
  Expr *Lo;
  Expr *Hi;
  Expr *Step;
  std::vector<Stmt *> Body;
};

/// A while loop.
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, StmtId Id, Expr *Cond, std::vector<Stmt *> Body)
      : Stmt(StmtKind::While, Loc, Id), Cond(Cond), Body(std::move(Body)) {}

  Expr *cond() const { return Cond; }
  const std::vector<Stmt *> &body() const { return Body; }

  /// Replaces the body (dead-code elimination rewrites trees in place).
  void setBody(std::vector<Stmt *> NewBody) { Body = std::move(NewBody); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  Expr *Cond;
  std::vector<Stmt *> Body;
};

/// print <expr>: a use of the expression with no dataflow effect.
class PrintStmt : public Stmt {
public:
  PrintStmt(SourceLoc Loc, StmtId Id, Expr *Value)
      : Stmt(StmtKind::Print, Loc, Id), Value(Value) {}

  Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Print; }

private:
  Expr *Value;
};

/// read <var>: assigns an unknowable runtime value to a scalar variable.
/// This models the paper's "values read from a file" (§2) and is the
/// canonical source of BOTTOM in the workloads.
class ReadStmt : public Stmt {
public:
  ReadStmt(SourceLoc Loc, StmtId Id, VarRefExpr *Target)
      : Stmt(StmtKind::Read, Loc, Id), Target(Target) {}

  VarRefExpr *target() const { return Target; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Read; }

private:
  VarRefExpr *Target;
};

/// An early return from the enclosing procedure.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, StmtId Id) : Stmt(StmtKind::Return, Loc, Id) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A global scalar declaration with an optional compile-time initializer
/// (the analogue of a FORTRAN DATA statement). Initialized globals are
/// lowered into a prologue of the entry procedure.
struct GlobalDecl {
  SourceLoc Loc;
  std::string Name;
  std::optional<int64_t> Init;
  uint32_t Symbol = UINT32_MAX; // Filled in by Sema.
};

/// An array declaration (global or procedure-local). Arrays are opaque to
/// the constant propagator (paper §4, limitation 2).
struct ArrayDecl {
  SourceLoc Loc;
  std::string Name;
  int64_t Size = 0;
  uint32_t Symbol = UINT32_MAX; // Filled in by Sema.
};

/// One procedure: formal parameter names, local declarations, and a body.
class Proc {
public:
  Proc(SourceLoc Loc, std::string Name, std::vector<std::string> Formals)
      : Loc(Loc), Name(std::move(Name)), Formals(std::move(Formals)) {}

  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }
  const std::vector<std::string> &formals() const { return Formals; }

  std::vector<std::string> Locals;    ///< Declared scalar locals.
  std::vector<ArrayDecl> LocalArrays; ///< Declared local arrays.
  std::vector<Stmt *> Body;

  /// Resolved symbol ids of the formals, parallel to formals(). Filled in
  /// by Sema.
  std::vector<uint32_t> FormalSymbols;
  /// Resolved symbol ids of the scalar locals, parallel to Locals.
  std::vector<uint32_t> LocalSymbols;

private:
  SourceLoc Loc;
  std::string Name;
  std::vector<std::string> Formals;
};

/// A whole MiniFort program: globals, arrays, and procedures. The entry
/// procedure is the one named "main".
class Program {
public:
  std::string Name;
  std::vector<GlobalDecl> Globals;
  std::vector<ArrayDecl> GlobalArrays;
  std::vector<std::unique_ptr<Proc>> Procs;

  /// Returns the index of the procedure named \p Name, or nullopt.
  std::optional<ProcId> findProc(const std::string &Name) const;

  /// Returns the entry procedure id ("main"), or nullopt if absent.
  std::optional<ProcId> entryProc() const { return findProc("main"); }
};

//===----------------------------------------------------------------------===//
// AstContext
//===----------------------------------------------------------------------===//

/// Arena that owns every AST node of one program and hands out the
/// program-unique expression/statement ids. Nodes live in a bump arena
/// and are freed wholesale when the context dies; only nodes with
/// non-trivial destructors (names, child lists) are tracked so their
/// destructors run — the bulk of a program (literals, operators) needs
/// no per-node bookkeeping at all.
class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;
  ~AstContext() {
    for (auto It = NonTrivial.rbegin(), E = NonTrivial.rend(); It != E; ++It)
      It->Dtor(It->Node);
  }

  /// Allocates an expression node of type \p T; the id is assigned
  /// automatically as the first constructor argument after Loc.
  template <typename T, typename... Args>
  T *createExpr(SourceLoc Loc, Args &&...Rest) {
    return createNode<T>(Loc, NextExprId++, std::forward<Args>(Rest)...);
  }

  /// Allocates a statement node of type \p T.
  template <typename T, typename... Args>
  T *createStmt(SourceLoc Loc, Args &&...Rest) {
    return createNode<T>(Loc, NextStmtId++, std::forward<Args>(Rest)...);
  }

  ExprId numExprIds() const { return NextExprId; }
  StmtId numStmtIds() const { return NextStmtId; }

  Program &program() { return Prog; }
  const Program &program() const { return Prog; }

private:
  template <typename T, typename... Args>
  T *createNode(SourceLoc Loc, uint32_t Id, Args &&...Rest) {
    T *Raw = new (Arena.allocate(sizeof(T), alignof(T)))
        T(Loc, Id, std::forward<Args>(Rest)...);
    // Nodes are kind-tagged, not virtual, so destruction must go through
    // the concrete type.
    if constexpr (!std::is_trivially_destructible_v<T>)
      NonTrivial.push_back(
          {Raw, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Raw;
  }

  struct PendingDtor {
    void *Node;
    void (*Dtor)(void *);
  };

  Program Prog;
  BumpArena Arena;
  std::vector<PendingDtor> NonTrivial;
  ExprId NextExprId = 1;
  StmtId NextStmtId = 1;
};

} // namespace ipcp

#endif // IPCP_LANG_AST_H
