//===- analysis/ModRef.h - Interprocedural MOD/REF summaries ----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-insensitive interprocedural MOD and REF summary sets in the style
/// of Cooper & Kennedy (paper reference [7], computed here with a simple
/// fixpoint over call-graph bindings rather than the binding multi-graph).
///
/// MOD(p) contains the formals and globals that an invocation of p may
/// modify; REF(p) the ones it may reference. The paper's central Table 3
/// experiment toggles exactly this information: without MOD, every call
/// must be assumed to clobber every global and every by-reference actual.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_MODREF_H
#define IPCP_ANALYSIS_MODREF_H

#include "analysis/CallGraph.h"
#include "ir/Ssa.h"

#include <vector>

namespace ipcp {

/// MOD/REF summaries for every procedure of one module.
class ModRefInfo {
public:
  ModRefInfo(const Module &M, const SymbolTable &Symbols,
             const CallGraph &CG);

  /// True if calling \p P may modify \p Sym (a formal of P, a global
  /// scalar, or an array).
  bool mods(ProcId P, SymbolId Sym) const { return Mod[P][Sym]; }

  /// True if calling \p P may reference \p Sym.
  bool refs(ProcId P, SymbolId Sym) const { return Ref[P][Sym]; }

  /// All modified symbols of \p P in SymbolId order (formals, globals,
  /// arrays).
  std::vector<SymbolId> modSet(ProcId P) const;

  /// All referenced symbols of \p P in SymbolId order.
  std::vector<SymbolId> refSet(ProcId P) const;

  /// Number of fixpoint iterations taken (statistics).
  unsigned iterations() const { return Iterations; }

private:
  // Dense bitsets indexed [ProcId][SymbolId].
  std::vector<std::vector<uint8_t>> Mod;
  std::vector<std::vector<uint8_t>> Ref;
  unsigned Iterations = 0;
};

/// Computes the scalar symbols the call instruction \p Call (inside \p F)
/// may modify, in deterministic order: by-reference actuals first (in
/// argument order), then global scalars (in declaration order).
///
/// With \p MRI non-null, only actuals bound to MOD formals and globals in
/// MOD(callee) are killed. With \p MRI null, the worst case is assumed —
/// every by-reference actual and every global scalar dies — which is the
/// paper's "without MOD information" configuration (Table 3, column 1).
std::vector<SymbolId> computeCallKills(const Function &F, const Instr &Call,
                                       const SymbolTable &Symbols,
                                       const ModRefInfo *MRI);

/// Wraps computeCallKills as a SsaForm::KillOracle.
SsaForm::KillOracle makeKillOracle(const SymbolTable &Symbols,
                                   const ModRefInfo *MRI);

} // namespace ipcp

#endif // IPCP_ANALYSIS_MODREF_H
