//===- analysis/DeadCodeElim.cpp - Branch-driven dead code removal --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadCodeElim.h"

#include "lang/AstClone.h"
#include "support/Casting.h"

using namespace ipcp;

namespace {

/// Whether evaluating \p E can trap at runtime (divide/modulo by zero,
/// array index out of bounds). The analyzer proves the loop never
/// *iterates* from lo/hi alone; a trapping step expression would still
/// be evaluated once before the trip test, so the fold must keep it.
bool mayTrap(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::VarRef:
    return false;
  case ExprKind::ArrayRef:
    return true;
  case ExprKind::Unary:
    return mayTrap(cast<UnaryExpr>(E)->operand());
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::Div || B->op() == BinaryOp::Mod)
      return true;
    return mayTrap(B->lhs()) || mayTrap(B->rhs());
  }
  }
  return true;
}

class Rewriter {
public:
  Rewriter(AstContext &Ctx, const DeadCodeElim::Decisions &Decisions)
      : Ctx(Ctx), Decisions(Decisions) {}

  unsigned folded() const { return Folded; }

  std::vector<Stmt *> rewriteList(const std::vector<Stmt *> &Stmts) {
    std::vector<Stmt *> Out;
    for (Stmt *S : Stmts)
      rewriteInto(S, Out);
    return Out;
  }

private:
  /// Appends the rewritten form of \p S (possibly nothing, possibly the
  /// spliced contents of a folded branch) to \p Out.
  void rewriteInto(Stmt *S, std::vector<Stmt *> &Out) {
    switch (S->kind()) {
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      if (auto It = Decisions.find(I->id()); It != Decisions.end()) {
        ++Folded;
        const auto &Arm = It->second ? I->thenBody() : I->elseBody();
        for (Stmt *Inner : rewriteList(Arm))
          Out.push_back(Inner);
        return;
      }
      I->setThenBody(rewriteList(I->thenBody()));
      I->setElseBody(rewriteList(I->elseBody()));
      Out.push_back(I);
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      if (auto It = Decisions.find(W->id());
          It != Decisions.end() && !It->second) {
        ++Folded; // Loop body never executes.
        return;
      }
      W->setBody(rewriteList(W->body()));
      Out.push_back(W);
      return;
    }
    case StmtKind::DoLoop: {
      auto *D = cast<DoLoopStmt>(S);
      if (auto It = Decisions.find(D->id());
          It != Decisions.end() && !It->second &&
          !(D->step() && mayTrap(D->step()))) {
        // Zero-trip loop: only the loop-variable initialization remains.
        // The trip test's operands (lo, hi) were proven constant, so
        // dropping their evaluation is trap-free; the step expression is
        // outside that proof, so a possibly-trapping step blocks the
        // fold (guard above). The var and lo nodes are cloned — reusing
        // them would alias the retained DoLoopStmt's children, and later
        // passes (printing, a second DCE round) walk both trees.
        ++Folded;
        Out.push_back(Ctx.createStmt<AssignStmt>(
            D->loc(), cloneVarRefResolved(Ctx, D->var()),
            cloneExprResolved(Ctx, D->lo())));
        return;
      }
      D->setBody(rewriteList(D->body()));
      Out.push_back(D);
      return;
    }
    default:
      Out.push_back(S);
      return;
    }
  }

  AstContext &Ctx;
  const DeadCodeElim::Decisions &Decisions;
  unsigned Folded = 0;
};

} // namespace

unsigned DeadCodeElim::run(AstContext &Ctx, const Decisions &Decisions,
                           std::vector<ProcId> *DirtyProcs) {
  Rewriter R(Ctx, Decisions);
  Program &Prog = Ctx.program();
  // A procedure is dirty iff a fold fired inside it: with zero folds the
  // rewrite returns the statement list unchanged (every non-folded case
  // pushes the original node back).
  for (ProcId P = 0, E = static_cast<ProcId>(Prog.Procs.size()); P != E;
       ++P) {
    unsigned Before = R.folded();
    Prog.Procs[P]->Body = R.rewriteList(Prog.Procs[P]->Body);
    if (DirtyProcs && R.folded() != Before)
      DirtyProcs->push_back(P);
  }
  return R.folded();
}
