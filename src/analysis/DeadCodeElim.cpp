//===- analysis/DeadCodeElim.cpp - Branch-driven dead code removal --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadCodeElim.h"

#include "support/Casting.h"

using namespace ipcp;

namespace {

class Rewriter {
public:
  Rewriter(AstContext &Ctx, const DeadCodeElim::Decisions &Decisions)
      : Ctx(Ctx), Decisions(Decisions) {}

  unsigned folded() const { return Folded; }

  std::vector<Stmt *> rewriteList(const std::vector<Stmt *> &Stmts) {
    std::vector<Stmt *> Out;
    for (Stmt *S : Stmts)
      rewriteInto(S, Out);
    return Out;
  }

private:
  /// Appends the rewritten form of \p S (possibly nothing, possibly the
  /// spliced contents of a folded branch) to \p Out.
  void rewriteInto(Stmt *S, std::vector<Stmt *> &Out) {
    switch (S->kind()) {
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      if (auto It = Decisions.find(I->id()); It != Decisions.end()) {
        ++Folded;
        const auto &Arm = It->second ? I->thenBody() : I->elseBody();
        for (Stmt *Inner : rewriteList(Arm))
          Out.push_back(Inner);
        return;
      }
      I->setThenBody(rewriteList(I->thenBody()));
      I->setElseBody(rewriteList(I->elseBody()));
      Out.push_back(I);
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      if (auto It = Decisions.find(W->id());
          It != Decisions.end() && !It->second) {
        ++Folded; // Loop body never executes.
        return;
      }
      W->setBody(rewriteList(W->body()));
      Out.push_back(W);
      return;
    }
    case StmtKind::DoLoop: {
      auto *D = cast<DoLoopStmt>(S);
      if (auto It = Decisions.find(D->id());
          It != Decisions.end() && !It->second) {
        // Zero-trip loop: only the loop-variable initialization remains.
        ++Folded;
        Out.push_back(Ctx.createStmt<AssignStmt>(D->loc(), D->var(),
                                                 D->lo()));
        return;
      }
      D->setBody(rewriteList(D->body()));
      Out.push_back(D);
      return;
    }
    default:
      Out.push_back(S);
      return;
    }
  }

  AstContext &Ctx;
  const DeadCodeElim::Decisions &Decisions;
  unsigned Folded = 0;
};

} // namespace

unsigned DeadCodeElim::run(AstContext &Ctx,
                           const Decisions &Decisions) {
  Rewriter R(Ctx, Decisions);
  Program &Prog = Ctx.program();
  for (auto &P : Prog.Procs)
    P->Body = R.rewriteList(P->Body);
  return R.folded();
}
