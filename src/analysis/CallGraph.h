//===- analysis/CallGraph.h - Program call graph ----------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph G the interprocedural phases run over (paper §2): one
/// node per procedure, one edge per call site. Provides reachability from
/// the entry, a bottom-up order for return-jump-function generation, and
/// Tarjan SCCs so recursive cycles are handled conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_CALLGRAPH_H
#define IPCP_ANALYSIS_CALLGRAPH_H

#include "ir/Function.h"

#include <vector>

namespace ipcp {

/// One call site: an edge of the call graph, anchored at its Call
/// instruction.
struct CallSite {
  ProcId Caller = UINT32_MAX;
  ProcId Callee = UINT32_MAX;
  BlockId Block = InvalidBlock;
  uint32_t InstrIdx = 0;
};

/// The call graph of one lowered module.
class CallGraph {
public:
  CallGraph(const Module &M, ProcId Entry);

  ProcId entry() const { return Entry; }
  size_t numProcs() const { return Sites.size(); }

  /// Call sites textually inside \p P, in block/instruction order.
  const std::vector<CallSite> &callSitesIn(ProcId P) const {
    return Sites.at(P);
  }

  /// Call sites whose callee is \p P.
  const std::vector<CallSite> &callSitesOf(ProcId P) const {
    return Callers.at(P);
  }

  /// True if \p P is reachable from the entry procedure.
  bool isReachable(ProcId P) const { return Reachable.at(P); }

  /// Procedures in bottom-up order (callees before callers, ignoring
  /// back edges within recursive cycles), restricted to reachable procs.
  const std::vector<ProcId> &bottomUpOrder() const { return BottomUp; }

  /// Procedures in top-down order (callers before callees, ignoring back
  /// edges), restricted to reachable procs.
  const std::vector<ProcId> &topDownOrder() const { return TopDown; }

  /// Tarjan SCC id of \p P (dense, reverse-topological: callees' SCCs
  /// have smaller ids than callers' within reachable code).
  uint32_t sccId(ProcId P) const { return SccIds.at(P); }

  /// True if \p P sits on a call-graph cycle (including self-recursion).
  bool isRecursive(ProcId P) const { return Recursive.at(P); }

  /// Total number of call sites.
  size_t numCallSites() const;

private:
  ProcId Entry;
  std::vector<std::vector<CallSite>> Sites;
  std::vector<std::vector<CallSite>> Callers;
  std::vector<uint8_t> Reachable;
  std::vector<ProcId> BottomUp;
  std::vector<ProcId> TopDown;
  std::vector<uint32_t> SccIds;
  std::vector<uint8_t> Recursive;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_CALLGRAPH_H
