//===- analysis/FlowAlias.h - Flow-sensitive reference aliasing -*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow- and context-sensitive refinement of the call-by-reference alias
/// analysis (analysis/RefAlias.h). The whole-procedure unstable masks are
/// sound but blunt on two axes, and this analysis sharpens both:
///
///  * **Context.** RefAlias intersects per-formal binding sets that were
///    accumulated over *all* call sites, so two formals are paired as soon
///    as any location reaches both — even when no single call chain binds
///    them together. Here a pair is realized only when one call site
///    passes the same location to both positions: the same variable
///    twice, two caller formals already paired in the caller, or a caller
///    formal plus the global it may be bound to. Closing those rules over
///    the call graph yields per-procedure formal-formal and formal-global
///    relations that are a subset of the flow-insensitive pairs (locals
///    are fresh per activation, so a formal can never alias a local of
///    the procedure it belongs to).
///
///  * **Flow.** Instead of poisoning every definition of a paired symbol,
///    a forward may-dataflow over the CFG tracks, per program point, which
///    paired symbols are *dirty* — possibly overwritten through the other
///    name since their last visible definition. A direct store to one
///    member of a pair dirties its partners and cleans itself; a call
///    cleans the symbols it kills (they receive a fresh SSA definition)
///    and dirties the un-killed partners of every killed symbol. Only
///    *reads* at dirty points must be treated as unknowable; reads at
///    clean points — the `f(v, v)` EdgeCase among them — keep their SSA
///    value.
///
/// Soundness: a symbol's SSA value can only diverge from memory through a
/// store to an aliased name, every such store is a direct definition or a
/// member of the call-kill set (which embeds MOD), and both transfer
/// functions dirty every may-partner. The analysis is a may-analysis
/// (union at joins, fixpoint over loops), so "clean" implies no aliased
/// store can have intervened on any path.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_FLOWALIAS_H
#define IPCP_ANALYSIS_FLOWALIAS_H

#include "analysis/RefAlias.h"
#include "ir/Function.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipcp {

/// Per-procedure flow-sensitive dirty facts. Queries are valid for any
/// (block, instruction) of the procedure's CFG; symbols outside every
/// realized pair are never dirty.
class ProcFlowAlias {
public:
  /// True when the procedure has no realized alias pair at all: nothing
  /// is ever dirty and callers may skip gating entirely.
  bool trivial() const { return Tracked.empty(); }

  /// True if \p Sym may be stale immediately *before* instruction
  /// \p InstrIdx of block \p B executes (i.e. for that instruction's
  /// operand reads and call environment snapshot).
  bool dirtyAt(BlockId B, uint32_t InstrIdx, SymbolId Sym) const {
    int Bit = bitOf(Sym);
    if (Bit < 0)
      return false;
    if (AlwaysDirty)
      return true;
    return (PreState[B][InstrIdx] >> Bit) & 1;
  }

  /// True if \p Sym may be stale at some Ret instruction (the exit
  /// environment read that return jump functions are built from).
  bool dirtyAtExit(SymbolId Sym) const {
    int Bit = bitOf(Sym);
    if (Bit < 0)
      return false;
    return AlwaysDirty || ((ExitDirty >> Bit) & 1);
  }

  /// Symbols that participate in at least one realized pair.
  const std::vector<SymbolId> &trackedSymbols() const { return Tracked; }

private:
  friend class FlowAliasInfo;

  int bitOf(SymbolId Sym) const {
    if (Tracked.empty() || Sym == InvalidSymbol ||
        Sym >= TrackedBit.size())
      return -1;
    return TrackedBit[Sym];
  }

  /// Tracked symbols in SymbolId order; empty when the proc has no pair.
  std::vector<SymbolId> Tracked;
  /// SymbolId -> bit index in the state masks, or -1.
  std::vector<int16_t> TrackedBit;
  /// PreState[B][I]: dirty mask before instruction I of block B.
  std::vector<std::vector<uint64_t>> PreState;
  /// Union of the pre-states at every Ret instruction.
  uint64_t ExitDirty = 0;
  /// Sound fallback when a procedure tracks more than 64 pair symbols:
  /// every tracked symbol counts as dirty everywhere.
  bool AlwaysDirty = false;
};

/// Program-wide flow-/context-sensitive alias facts, plus the precision
/// delta against the flow-insensitive baseline they refine.
class FlowAliasInfo {
public:
  /// Computes realized pairs and dirty dataflow for every procedure of
  /// \p M. \p MRI supplies call kill sets (null = worst case), exactly as
  /// the SSA overlay's kill oracle does, so dirt and SSA call-kill
  /// definitions stay in lockstep. \p Baseline is the flow-insensitive
  /// analysis being refined; it is only read to compute the
  /// numRefinedPoints() statistic.
  FlowAliasInfo(const Module &M, const SymbolTable &Symbols,
                const ModRefInfo *MRI, const RefAliasInfo &Baseline);

  const ProcFlowAlias &proc(ProcId P) const { return Procs.at(P); }

  /// Number of realized (context-sensitive) alias pairs program-wide;
  /// always <= the baseline's numAliasPairs().
  size_t numAliasPairs() const { return NumAliasPairs; }

  /// Number of (instruction point, symbol) facts where the baseline
  /// masks the symbol as unstable but the flow-sensitive state is clean —
  /// the points this analysis recovers.
  size_t numRefinedPoints() const { return NumRefinedPoints; }

private:
  std::vector<ProcFlowAlias> Procs;
  size_t NumAliasPairs = 0;
  size_t NumRefinedPoints = 0;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_FLOWALIAS_H
