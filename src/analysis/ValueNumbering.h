//===- analysis/ValueNumbering.h - SSA value numbering ----------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global (intraprocedural) value numbering over the SSA form, the
/// machinery the paper builds every jump function on top of (§3, §4.1).
///
/// Every SSA value is mapped to a hash-consed expression over:
///   * integer constants,
///   * Param leaves — the *entry* values of the procedure's formals and of
///     global scalars (the paper's extended notion of parameter), and
///   * Opaque leaves — anything unknowable (array loads, READ, loop-
///     carried phis, call effects with no constant return jump function).
///
/// An SSA value whose expression contains no Opaque leaf is a "polynomial
/// function of the entry parameters"; that is exactly the class the
/// polynomial jump function transmits (§3.1.4). Expressions are folded
/// and lightly canonicalized, so a constant-valued expression always
/// surfaces as a Const node — this provides the paper's gcp(y, s)
/// function (§3.1).
///
/// The numbering is pessimistic (one reverse-postorder pass): a phi whose
/// inputs are not all available and equal becomes Opaque. The paper used
/// the optimistic AWZ partitioning; for constants flowing through call
/// chains, straight-line code, and branches the two coincide, and the
/// pessimistic form is dramatically simpler.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_VALUENUMBERING_H
#define IPCP_ANALYSIS_VALUENUMBERING_H

#include "ir/Ssa.h"

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

class ProcFlowAlias;
class ProcCopyProp;

/// Node kinds of value-numbering expressions. Gamma is the gated-SSA
/// selector (Ballance et al., paper reference [2]): Gamma(c, t, f) is t
/// when c is nonzero and f otherwise. Gammas are only built when the
/// numbering runs in gated mode (paper §4.2's suggested improvement).
/// CopyOf is the copy-lattice leaf (ipcp/CopyLattice.h): the entry value
/// of a stable symbol recovered from an array cell by analysis/CopyProp —
/// semantically identical to Param (it *is* that entry value) but kept
/// distinct so jump functions can classify it as Form::Copy.
enum class VnKind : uint8_t {
  Const,
  Param,
  Opaque,
  Unary,
  Binary,
  Gamma,
  CopyOf
};

/// One hash-consed expression node. Structural equality coincides with
/// pointer equality for non-Opaque nodes within one VnContext.
struct VnExpr {
  VnKind Kind;
  uint32_t Id = 0;      ///< Creation index; stable canonicalization key.
  int64_t ConstValue = 0;          ///< Const.
  SymbolId Param = InvalidSymbol;  ///< Param/CopyOf (entry value of sym).
  uint32_t OpaqueId = 0;           ///< Opaque (unique per creation).
  UnaryOp UOp = UnaryOp::Neg;      ///< Unary.
  BinaryOp BOp = BinaryOp::Add;    ///< Binary.
  const VnExpr *Lhs = nullptr;     ///< Unary/Binary; Gamma true arm.
  const VnExpr *Rhs = nullptr;     ///< Binary; Gamma false arm.
  const VnExpr *Cond = nullptr;    ///< Gamma predicate.

  bool isConst() const { return Kind == VnKind::Const; }
  bool isParam() const { return Kind == VnKind::Param; }
  bool isCopyOf() const { return Kind == VnKind::CopyOf; }
  bool isOpaque() const { return Kind == VnKind::Opaque; }
};

/// Arena and hash-consing table for VnExprs. One context typically lives
/// for the analysis of one procedure and is then discarded (the paper
/// discards the SSA and value graphs after each procedure, §4.1).
class VnContext {
public:
  VnContext() = default;
  VnContext(const VnContext &) = delete;
  VnContext &operator=(const VnContext &) = delete;

  const VnExpr *getConst(int64_t Value);
  const VnExpr *getParam(SymbolId Sym);
  /// The copy-lattice leaf: the entry value of stable symbol \p Sym, as
  /// recovered from an array cell (analysis/CopyProp.h).
  const VnExpr *getCopyOf(SymbolId Sym);
  /// Creates a fresh, never-unified opaque value.
  const VnExpr *makeOpaque();
  /// Builds (folding constants and simple identities) op(Operand).
  const VnExpr *getUnary(UnaryOp Op, const VnExpr *Operand);
  /// Builds (folding and canonicalizing) Lhs op Rhs. Division or modulo
  /// by a constant zero yields Opaque.
  const VnExpr *getBinary(BinaryOp Op, const VnExpr *Lhs, const VnExpr *Rhs);

  /// Builds the gated selector Gamma(Cond, TrueArm, FalseArm), folding a
  /// constant predicate and identical arms.
  const VnExpr *getGamma(const VnExpr *Cond, const VnExpr *TrueArm,
                         const VnExpr *FalseArm);

  size_t numExprs() const { return Exprs.size(); }

private:
  const VnExpr *intern(VnExpr Proto);

  struct Key {
    VnKind Kind;
    int64_t A;
    uint64_t B;
    bool operator==(const Key &) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<int>()(static_cast<int>(K.Kind));
      H = H * 31 + std::hash<int64_t>()(K.A);
      H = H * 31 + std::hash<uint64_t>()(K.B);
      return H;
    }
  };

  std::deque<VnExpr> Exprs;
  std::unordered_map<Key, const VnExpr *, KeyHash> Table;
  uint32_t NextOpaque = 0;
};

/// True if \p E mentions no Opaque leaf, i.e. it is an integer expression
/// purely over entry parameters and constants.
bool isParamExpr(const VnExpr *E);

/// Gated relaxation of isParamExpr: Gamma *arms* may be Opaque (the
/// predicate must still be a parameter expression). Such an expression is
/// evaluable whenever the predicates fold to constants selecting known
/// arms — exactly what lets gated jump functions skip dead definitions
/// without dead-code elimination (paper §4.2).
bool isGatedParamExpr(const VnExpr *E);

/// Appends the distinct Param symbols of \p E to \p Support (the paper's
/// support(J) set).
void collectSupport(const VnExpr *E, std::vector<SymbolId> &Support);

/// Renders \p E using symbol names, e.g. "(n + 1) * 2".
std::string vnExprToString(const VnExpr *E, const SymbolTable &Symbols);

/// Read-only view of the expressions flowing into one call site, handed
/// to the kill-value callback so return jump functions can be evaluated
/// with intraprocedural information (paper §3.2).
class CallSiteValues {
public:
  CallSiteValues(const class ValueNumbering &VN, BlockId Block,
                 uint32_t InstrIdx)
      : VN(VN), Block(Block), InstrIdx(InstrIdx) {}

  /// Expression of the \p Idx-th actual argument.
  const VnExpr *actual(uint32_t Idx) const;
  /// Expression of global scalar \p G flowing into the call.
  const VnExpr *global(SymbolId G) const;

private:
  const class ValueNumbering &VN;
  BlockId Block;
  uint32_t InstrIdx;
};

/// Decides the value a call assigns to a symbol it may modify: return a
/// constant when the callee's return jump function evaluates to one under
/// the call-site expressions, or nullopt for Opaque. A null callback
/// means "no return jump functions" (every kill is Opaque).
using KillValueFn = std::function<std::optional<int64_t>(
    const Instr &Call, SymbolId Killed, const CallSiteValues &Values)>;

/// Precision options of one numbering run. At most one of \p Unstable
/// (whole-procedure flow-insensitive masking, analysis/RefAlias.h) and
/// \p Flow (per-point dirty gating, analysis/FlowAlias.h) is set; with
/// \p Optimistic the pessimistic single pass is replaced by Pai-style
/// optimistic iteration to a fixpoint (TOP-initialized, reverse-postorder
/// passes until no expression changes).
struct VnPrecision {
  const std::vector<uint8_t> *Unstable = nullptr;
  const ProcFlowAlias *Flow = nullptr;
  bool Optimistic = false;
  /// Copy-propagation facts (analysis/CopyProp.h): a Load whose cell
  /// resolves becomes getConst/getCopyOf instead of Opaque.
  const ProcCopyProp *Copy = nullptr;
};

/// The value numbering of one procedure.
class ValueNumbering {
public:
  /// Numbers every SSA value of \p Ssa. \p KillFn may be null. With a
  /// non-null \p GatedDT the numbering is *gated*: a two-way join phi
  /// whose controlling branch predicate is a parameter expression
  /// becomes a Gamma instead of an Opaque (paper §4.2). \p Unstable, when
  /// non-null, is a SymbolId-indexed mask of symbols in a modified
  /// by-reference alias pair (analysis/RefAlias.h); every definition of
  /// such a symbol, the entry value included, becomes Opaque because a
  /// store through the aliased name changes it without a visible def.
  ValueNumbering(const SsaForm &Ssa, const SymbolTable &Symbols,
                 VnContext &Ctx, const KillValueFn *KillFn,
                 const DominatorTree *GatedDT = nullptr,
                 const std::vector<uint8_t> *Unstable = nullptr);

  /// As above with the full precision options. With \p Prec.Flow set,
  /// definitions stay precise and only *reads* at dirty points — operand
  /// slots, the global environment flowing into calls, and the exit
  /// environment — resolve to pre-allocated Opaque gate values.
  ValueNumbering(const SsaForm &Ssa, const SymbolTable &Symbols,
                 VnContext &Ctx, const KillValueFn *KillFn,
                 const DominatorTree *GatedDT, const VnPrecision &Prec);

  const SsaForm &ssa() const { return Ssa; }
  const SymbolTable &symbols() const { return Symbols; }
  VnContext &context() const { return Ctx; }

  /// Expression of SSA value \p Id (never null after construction).
  const VnExpr *exprOf(SsaId Id) const { return ExprOf.at(Id); }

  /// Expression of source-operand \p Slot of instruction \p InstrIdx in
  /// block \p B; resolves Const operands to Const expressions and dirty
  /// reads (flow-gated mode) to their gate Opaques.
  const VnExpr *exprOfOperand(BlockId B, uint32_t InstrIdx,
                              uint32_t Slot) const;

  /// Expression of the \p GlobalIdx-th global scalar flowing into the
  /// call at (\p B, \p InstrIdx); gated like exprOfOperand.
  const VnExpr *globalEnvExpr(BlockId B, uint32_t InstrIdx,
                              uint32_t GlobalIdx) const;

  /// Expression of the \p ExitIdx-th exit-environment value (parallel to
  /// SsaForm::exitSymbols()); gated like exprOfOperand. Only valid when
  /// the SSA form hasExitEnv().
  const VnExpr *exitExpr(uint32_t ExitIdx) const;

  /// Optimistic mode only: phis whose merge ever skipped an unavailable
  /// (TOP) input and still converged to a non-Opaque value — merges the
  /// pessimistic single pass gives up on (Pai's iteration wins).
  size_t numOptimisticPhiMerges() const { return NumOptimisticPhiMerges; }

private:
  struct GateKey {
    uint32_t Block;
    uint32_t Instr;
    uint32_t Slot;
    bool operator==(const GateKey &) const = default;
  };
  struct GateKeyHash {
    size_t operator()(const GateKey &K) const {
      size_t H = std::hash<uint64_t>()(
          (static_cast<uint64_t>(K.Block) << 32) | K.Instr);
      return H * 31 + K.Slot;
    }
  };
  using GateMap = std::unordered_map<GateKey, const VnExpr *, GateKeyHash>;

  void buildFlowGates();
  void numberPessimistic(const KillValueFn *KillFn,
                         const DominatorTree *GatedDT,
                         const std::vector<uint8_t> *Unstable);
  void numberOptimistic(const KillValueFn *KillFn,
                        const DominatorTree *GatedDT,
                        const std::vector<uint8_t> *Unstable);
  const VnExpr *operandGate(BlockId B, uint32_t InstrIdx,
                            uint32_t Slot) const;

  const SsaForm &Ssa;
  const SymbolTable &Symbols;
  VnContext &Ctx;
  std::vector<const VnExpr *> ExprOf;

  /// Flow-gated mode only (null otherwise). The gate tables are filled
  /// once before numbering, so concurrent post-construction readers
  /// (exprOfOperand from shared cached numberings) never allocate.
  const ProcFlowAlias *Flow = nullptr;
  /// Copy-propagation mode only (null otherwise, including when the
  /// procedure has no resolved loads).
  const ProcCopyProp *Copy = nullptr;
  GateMap OperandGates;
  GateMap GlobalGates;
  std::vector<const VnExpr *> ExitGates;

  /// Optimistic mode only: stable per-SsaId Opaque identities, so
  /// re-evaluation across passes terminates (TOP -> expr -> pinned
  /// Opaque, at most two changes per value).
  std::vector<const VnExpr *> OpaqueSlots;
  size_t NumOptimisticPhiMerges = 0;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_VALUENUMBERING_H
