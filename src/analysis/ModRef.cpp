//===- analysis/ModRef.cpp - Interprocedural MOD/REF summaries ------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ModRef.h"

#include <cassert>

using namespace ipcp;

ModRefInfo::ModRefInfo(const Module &M, const SymbolTable &Symbols,
                       const CallGraph &CG) {
  size_t NumProcs = M.Functions.size();
  size_t NumSyms = Symbols.size();
  Mod.assign(NumProcs, std::vector<uint8_t>(NumSyms, 0));
  Ref.assign(NumProcs, std::vector<uint8_t>(NumSyms, 0));

  // True for symbols that belong in a summary set: formals of the
  // summarized procedure, global scalars, and arrays.
  auto summarizable = [&](ProcId P, SymbolId Sym) {
    const Symbol &S = Symbols.symbol(Sym);
    switch (S.Kind) {
    case SymbolKind::Global:
    case SymbolKind::GlobalArray:
      return true;
    case SymbolKind::Formal:
      return S.Owner == P;
    case SymbolKind::Local:
    case SymbolKind::LocalArray:
      return false;
    }
    return false;
  };

  // Direct effects (ignoring calls).
  for (ProcId P = 0; P != NumProcs; ++P) {
    const Function &F = M.function(P);
    for (BlockId B = 0, BE = static_cast<BlockId>(F.numBlocks()); B != BE;
         ++B) {
      for (const Instr &In : F.block(B).Instrs) {
        if (const Operand *Def = In.def(); Def && Def->isVar())
          if (summarizable(P, Def->Sym))
            Mod[P][Def->Sym] = 1;
        if (In.Op == Opcode::Store && summarizable(P, In.Array))
          Mod[P][In.Array] = 1;
        if (In.Op == Opcode::Load && summarizable(P, In.Array))
          Ref[P][In.Array] = 1;
        In.forEachUse([&](const Operand &Op) {
          if (Op.isVar() && summarizable(P, Op.Sym))
            Ref[P][Op.Sym] = 1;
        });
      }
    }
  }

  // Close over call-site bindings: worklist over procedures whose summary
  // changed, propagating into their callers.
  std::vector<uint8_t> InWork(NumProcs, 1);
  std::vector<ProcId> Work;
  for (ProcId P = 0; P != NumProcs; ++P)
    Work.push_back(P);

  while (!Work.empty()) {
    ++Iterations;
    ProcId Callee = Work.back();
    Work.pop_back();
    InWork[Callee] = 0;

    for (const CallSite &S : CG.callSitesOf(Callee)) {
      ProcId Caller = S.Caller;
      const Function &F = M.function(Caller);
      const Instr &Call = F.block(S.Block).Instrs[S.InstrIdx];
      assert(Call.Op == Opcode::Call && Call.Callee == Callee);
      bool Changed = false;
      auto raise = [&](std::vector<std::vector<uint8_t>> &Sets,
                       SymbolId Sym) {
        if (!Sets[Caller][Sym] && summarizable(Caller, Sym)) {
          Sets[Caller][Sym] = 1;
          Changed = true;
        }
      };

      // Formal effects map through the by-reference actuals. Note that a
      // modified local actual does not enter the caller's summary (locals
      // are not visible to the caller's callers) but is still handled by
      // computeCallKills below.
      const auto &Formals = Symbols.formals(Callee);
      for (uint32_t I = 0, E = static_cast<uint32_t>(Formals.size());
           I != E && I < Call.Args.size(); ++I) {
        const Operand &Actual = Call.Args[I];
        if (!Actual.isVar())
          continue;
        if (Mod[Callee][Formals[I]])
          raise(Mod, Actual.Sym);
        if (Ref[Callee][Formals[I]])
          raise(Ref, Actual.Sym);
      }
      // Global effects propagate directly.
      for (SymbolId G : Symbols.globalScalars()) {
        if (Mod[Callee][G])
          raise(Mod, G);
        if (Ref[Callee][G])
          raise(Ref, G);
      }
      for (const Symbol &Sym : Symbols.symbols()) {
        if (Sym.Kind != SymbolKind::GlobalArray)
          continue;
        if (Mod[Callee][Sym.Id])
          raise(Mod, Sym.Id);
        if (Ref[Callee][Sym.Id])
          raise(Ref, Sym.Id);
      }

      if (Changed && !InWork[Caller]) {
        InWork[Caller] = 1;
        Work.push_back(Caller);
      }
    }
  }
}

std::vector<SymbolId> ModRefInfo::modSet(ProcId P) const {
  std::vector<SymbolId> Out;
  for (SymbolId S = 0, E = static_cast<SymbolId>(Mod[P].size()); S != E; ++S)
    if (Mod[P][S])
      Out.push_back(S);
  return Out;
}

std::vector<SymbolId> ModRefInfo::refSet(ProcId P) const {
  std::vector<SymbolId> Out;
  for (SymbolId S = 0, E = static_cast<SymbolId>(Ref[P].size()); S != E; ++S)
    if (Ref[P][S])
      Out.push_back(S);
  return Out;
}

std::vector<SymbolId> ipcp::computeCallKills(const Function &F,
                                             const Instr &Call,
                                             const SymbolTable &Symbols,
                                             const ModRefInfo *MRI) {
  (void)F;
  assert(Call.Op == Opcode::Call && "kill query on a non-call");
  std::vector<SymbolId> Kills;
  std::vector<uint8_t> Seen(Symbols.size(), 0);
  auto add = [&](SymbolId Sym) {
    if (!Seen[Sym]) {
      Seen[Sym] = 1;
      Kills.push_back(Sym);
    }
  };

  const auto &Formals = Symbols.formals(Call.Callee);
  for (uint32_t I = 0, E = static_cast<uint32_t>(Formals.size());
       I != E && I < Call.Args.size(); ++I) {
    const Operand &Actual = Call.Args[I];
    if (!Actual.isVar())
      continue; // Expression actuals bind to by-value temporaries.
    if (!MRI || MRI->mods(Call.Callee, Formals[I]))
      add(Actual.Sym);
  }
  for (SymbolId G : Symbols.globalScalars())
    if (!MRI || MRI->mods(Call.Callee, G))
      add(G);
  return Kills;
}

SsaForm::KillOracle ipcp::makeKillOracle(const SymbolTable &Symbols,
                                         const ModRefInfo *MRI) {
  return [&Symbols, MRI](const Function &F, const Instr &Call) {
    return computeCallKills(F, Call, Symbols, MRI);
  };
}
