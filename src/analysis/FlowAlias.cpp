//===- analysis/FlowAlias.cpp - Flow-sensitive reference aliasing ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/FlowAlias.h"

#include "analysis/ModRef.h"

#include <algorithm>
#include <set>
#include <utility>

using namespace ipcp;

namespace {

/// Formal-formal pairs as (i, j) formal indices with i < j, and
/// formal-global pairs as (i, global SymbolId). Sets are tiny (bounded by
/// realized bindings), so std::set keeps the fixpoint simple and
/// deterministic.
using FormalPairSet = std::set<std::pair<uint32_t, uint32_t>>;
using FormalGlobalSet = std::set<std::pair<uint32_t, SymbolId>>;

struct PairRelations {
  std::vector<FormalPairSet> FF;
  std::vector<FormalGlobalSet> FG;
};

/// Closes the pair-realization rules over every call site to a fixpoint.
/// Unlike the baseline's binding-set intersection, a formal-formal pair
/// only arises when a *single* call site passes one location to both
/// positions — directly, via an already-paired caller formal pair, or via
/// a caller formal and the global it may be bound to.
PairRelations computeRealizedPairs(const Module &M,
                                   const SymbolTable &Symbols) {
  size_t NumProcs = M.Functions.size();
  PairRelations R;
  R.FF.resize(NumProcs);
  R.FG.resize(NumProcs);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProcId Caller = 0; Caller != NumProcs; ++Caller) {
      const Function &F = M.function(Caller);
      for (BlockId B = 0, BE = static_cast<BlockId>(F.numBlocks()); B != BE;
           ++B) {
        for (const Instr &In : F.block(B).Instrs) {
          if (In.Op != Opcode::Call)
            continue;
          ProcId P = In.Callee;
          uint32_t NumFormals =
              static_cast<uint32_t>(Symbols.formals(P).size());
          uint32_t E = static_cast<uint32_t>(
              std::min<size_t>(In.Args.size(), NumFormals));

          auto formalIndexOf = [&](const Operand &A) -> int64_t {
            const Symbol &S = Symbols.symbol(A.Sym);
            return S.Kind == SymbolKind::Formal ? S.FormalIndex : -1;
          };
          auto isGlobal = [&](const Operand &A) {
            return Symbols.symbol(A.Sym).Kind == SymbolKind::Global;
          };

          // Formal-global propagation: position I binds global G when the
          // actual is G itself or a caller formal that may be bound to G.
          for (uint32_t I = 0; I != E; ++I) {
            const Operand &A = In.Args[I];
            if (!A.isVar())
              continue;
            if (isGlobal(A)) {
              Changed |= R.FG[P].insert({I, A.Sym}).second;
            } else if (int64_t FI = formalIndexOf(A); FI >= 0) {
              for (const auto &[CallerFormal, G] : R.FG[Caller])
                if (CallerFormal == static_cast<uint32_t>(FI))
                  Changed |= R.FG[P].insert({I, G}).second;
            }
          }

          // Formal-formal realization: positions I < J receive one
          // location through this site.
          for (uint32_t I = 0; I != E; ++I) {
            const Operand &U = In.Args[I];
            if (!U.isVar())
              continue;
            for (uint32_t J = I + 1; J != E; ++J) {
              const Operand &V = In.Args[J];
              if (!V.isVar())
                continue;
              bool Aliased = false;
              if (U.Sym == V.Sym) {
                Aliased = true;
              } else {
                int64_t FU = formalIndexOf(U);
                int64_t FV = formalIndexOf(V);
                if (FU >= 0 && FV >= 0) {
                  // Value pair, not std::minmax: minmax on prvalues returns
                  // a pair of references into expired temporaries.
                  std::pair<uint32_t, uint32_t> Key = std::minmax(
                      static_cast<uint32_t>(FU), static_cast<uint32_t>(FV));
                  Aliased = R.FF[Caller].count(Key) != 0;
                } else if (FU >= 0 && isGlobal(V)) {
                  Aliased = R.FG[Caller].count(
                                {static_cast<uint32_t>(FU), V.Sym}) != 0;
                } else if (FV >= 0 && isGlobal(U)) {
                  Aliased = R.FG[Caller].count(
                                {static_cast<uint32_t>(FV), U.Sym}) != 0;
                }
                // Two distinct globals never share a location.
              }
              if (Aliased)
                Changed |= R.FF[P].insert({I, J}).second;
            }
          }
        }
      }
    }
  }
  return R;
}

} // namespace

FlowAliasInfo::FlowAliasInfo(const Module &M, const SymbolTable &Symbols,
                             const ModRefInfo *MRI,
                             const RefAliasInfo &Baseline) {
  size_t NumProcs = M.Functions.size();
  size_t NumSyms = Symbols.size();
  Procs.resize(NumProcs);

  PairRelations Rel = computeRealizedPairs(M, Symbols);
  SsaForm::KillOracle Kills = makeKillOracle(Symbols, MRI);

  for (ProcId P = 0; P != NumProcs; ++P) {
    ProcFlowAlias &PA = Procs[P];
    const Function &F = M.function(P);
    const auto &Formals = Symbols.formals(P);

    // Materialize scalar symbol pairs and the per-symbol partner sets.
    std::vector<std::pair<SymbolId, SymbolId>> Pairs;
    auto addPair = [&](SymbolId A, SymbolId B) {
      if (!Symbols.symbol(A).isScalar() || !Symbols.symbol(B).isScalar())
        return;
      Pairs.push_back({A, B});
    };
    for (const auto &[I, J] : Rel.FF[P])
      addPair(Formals[I], Formals[J]);
    for (const auto &[I, G] : Rel.FG[P])
      addPair(Formals[I], G);
    NumAliasPairs += Pairs.size();
    if (Pairs.empty())
      continue;

    // Tracked-symbol bit assignment, in SymbolId order for determinism.
    PA.TrackedBit.assign(NumSyms, -1);
    for (const auto &[A, B] : Pairs) {
      PA.TrackedBit[A] = 0;
      PA.TrackedBit[B] = 0;
    }
    for (SymbolId S = 0; S != NumSyms; ++S)
      if (PA.TrackedBit[S] == 0) {
        PA.TrackedBit[S] = static_cast<int16_t>(PA.Tracked.size());
        PA.Tracked.push_back(S);
      }

    size_t NumBlocks = F.numBlocks();
    PA.PreState.resize(NumBlocks);
    for (BlockId B = 0; B != static_cast<BlockId>(NumBlocks); ++B)
      PA.PreState[B].assign(F.block(B).Instrs.size(), 0);

    if (PA.Tracked.size() > 64) {
      // More pair symbols than state bits: fall back to "always dirty",
      // which is sound (every read of a pair symbol is gated) and no
      // weaker than the baseline's whole-procedure masking.
      PA.AlwaysDirty = true;
      continue;
    }

    std::vector<uint64_t> Partner(PA.Tracked.size(), 0);
    for (const auto &[A, B] : Pairs) {
      Partner[PA.TrackedBit[A]] |= uint64_t(1) << PA.TrackedBit[B];
      Partner[PA.TrackedBit[B]] |= uint64_t(1) << PA.TrackedBit[A];
    }

    // Forward may-dataflow: bit set = symbol may be stale. Entry state is
    // all-clean (at entry every name still holds its location's value),
    // joins union, and the transfer mirrors exactly the definitions the
    // SSA overlay sees.
    auto transfer = [&](const Instr &In, uint64_t Cur) -> uint64_t {
      if (const Operand *D = In.def();
          D && D->isVar() && PA.TrackedBit[D->Sym] >= 0) {
        int Bit = PA.TrackedBit[D->Sym];
        Cur |= Partner[Bit];
        Cur &= ~(uint64_t(1) << Bit);
      }
      if (In.Op == Opcode::Call) {
        uint64_t KilledMask = 0, DirtyAdd = 0;
        for (SymbolId K : Kills(F, In)) {
          if (PA.TrackedBit[K] < 0)
            continue;
          int Bit = PA.TrackedBit[K];
          KilledMask |= uint64_t(1) << Bit;
          DirtyAdd |= Partner[Bit];
        }
        Cur = (Cur | DirtyAdd) & ~KilledMask;
      }
      return Cur;
    };

    std::vector<BlockId> Rpo = F.reversePostOrder();
    std::vector<uint64_t> InState(NumBlocks, 0), OutState(NumBlocks, 0);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B : Rpo) {
        uint64_t In = 0;
        for (BlockId Pred : F.block(B).Preds)
          In |= OutState[Pred];
        uint64_t Cur = In;
        for (const Instr &I : F.block(B).Instrs)
          Cur = transfer(I, Cur);
        if (In != InState[B] || Cur != OutState[B]) {
          InState[B] = In;
          OutState[B] = Cur;
          Changed = true;
        }
      }
    }

    // Record per-instruction pre-states and the exit union.
    for (BlockId B : Rpo) {
      uint64_t Cur = InState[B];
      const auto &Instrs = F.block(B).Instrs;
      for (uint32_t I = 0, E = static_cast<uint32_t>(Instrs.size()); I != E;
           ++I) {
        PA.PreState[B][I] = Cur;
        if (Instrs[I].Op == Opcode::Ret)
          PA.ExitDirty |= Cur;
        Cur = transfer(Instrs[I], Cur);
      }
    }
  }

  // Precision delta against the baseline: (instruction point, symbol)
  // facts where the whole-procedure mask said unstable but the dirty
  // state here is clean.
  for (ProcId P = 0; P != NumProcs; ++P) {
    std::vector<SymbolId> Masked;
    for (SymbolId S = 0; S != NumSyms; ++S)
      if (Baseline.unstable(P, S))
        Masked.push_back(S);
    if (Masked.empty())
      continue;
    const Function &F = M.function(P);
    for (BlockId B = 0, BE = static_cast<BlockId>(F.numBlocks()); B != BE;
         ++B) {
      uint32_t NumInstrs = static_cast<uint32_t>(F.block(B).Instrs.size());
      for (uint32_t I = 0; I != NumInstrs; ++I)
        for (SymbolId S : Masked)
          NumRefinedPoints += !Procs[P].dirtyAt(B, I, S);
    }
  }
}
