//===- analysis/CopyProp.cpp - Array-cell copy propagation ----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CopyProp.h"

#include "analysis/ModRef.h"
#include "analysis/RefAlias.h"

#include <algorithm>
#include <map>

using namespace ipcp;

namespace {

/// A tracked (array, constant index) cell. std::map keys keep cell ids
/// deterministic across platforms.
using CellKey = std::pair<SymbolId, int64_t>;

/// Per-procedure cells beyond this bound fall back to "no facts", which is
/// sound (loads stay opaque, exactly the classic behaviour).
constexpr size_t MaxCellsPerProc = 256;

} // namespace

CopyPropInfo::CopyPropInfo(const Module &M, const SymbolTable &Symbols,
                           const ModRefInfo *MRI,
                           const RefAliasInfo &Aliases) {
  size_t NumProcs = M.Functions.size();
  size_t NumSyms = Symbols.size();
  Procs.resize(NumProcs);

  SsaForm::KillOracle Kills = makeKillOracle(Symbols, MRI);

  for (ProcId P = 0; P != NumProcs; ++P) {
    ProcCopyProp &PC = Procs[P];
    const Function &F = M.function(P);
    size_t NumBlocks = F.numBlocks();

    // Pass 1: the tracked cells are exactly the (array, constant index)
    // pairs some store writes; loads only query.
    std::map<CellKey, uint32_t> CellId;
    bool AnyConstLoad = false;
    for (BlockId B = 0; B != static_cast<BlockId>(NumBlocks); ++B) {
      for (const Instr &In : F.block(B).Instrs) {
        if (In.Op == Opcode::Store && In.Src1.isConst())
          CellId.emplace(CellKey{In.Array, In.Src1.ConstValue},
                         static_cast<uint32_t>(CellId.size()));
        else if (In.Op == Opcode::Load && In.Src1.isConst())
          AnyConstLoad = true;
      }
    }
    // Re-number after the emplace race with size(): ids in key order.
    {
      uint32_t Next = 0;
      for (auto &[Key, Id] : CellId)
        Id = Next++;
    }
    if (CellId.empty() || !AnyConstLoad || CellId.size() > MaxCellsPerProc)
      continue;
    size_t NumCells = CellId.size();
    NumTrackedCells += NumCells;

    // A copy source must be an interprocedural parameter whose memory value
    // provably equals its entry value everywhere in P: never defined here,
    // never call-killed, and not alias-unstable.
    std::vector<uint8_t> Stable(NumSyms, 0);
    for (SymbolId S = 0; S != NumSyms; ++S) {
      const Symbol &Sym = Symbols.symbol(S);
      Stable[S] = Sym.isScalar() && Sym.isInterproceduralParam() &&
                  (Sym.Kind != SymbolKind::Formal || Sym.Owner == P) &&
                  !Aliases.unstable(P, S);
    }
    for (BlockId B = 0; B != static_cast<BlockId>(NumBlocks); ++B) {
      for (const Instr &In : F.block(B).Instrs) {
        if (const Operand *D = In.def(); D && D->isVar())
          Stable[D->Sym] = 0;
        if (In.Op == Opcode::Call)
          for (SymbolId K : Kills(F, In))
            Stable[K] = 0;
      }
    }

    // Cell kill masks: a non-constant-index store smashes every cell of its
    // array; a call smashes the cells of global arrays the callee may
    // modify (all of them without MOD). Local arrays survive calls — arrays
    // cannot be actuals and locals are fresh per activation.
    std::vector<std::vector<uint32_t>> ArrayCells(NumSyms);
    for (const auto &[Key, Id] : CellId)
      ArrayCells[Key.first].push_back(Id);
    auto calleeKillsArray = [&](ProcId Callee, SymbolId Array) {
      if (Symbols.symbol(Array).Kind != SymbolKind::GlobalArray)
        return false;
      return !MRI || MRI->mods(Callee, Array);
    };

    using State = std::vector<CopyValue>;
    auto meetInto = [](State &Dst, const State &Src) {
      for (size_t I = 0, E = Dst.size(); I != E; ++I)
        Dst[I] = CopyValue::meet(Dst[I], Src[I]);
    };
    auto transfer = [&](const Instr &In, State &Cur) {
      if (In.Op == Opcode::Store) {
        if (In.Src1.isConst()) {
          auto It = CellId.find({In.Array, In.Src1.ConstValue});
          CopyValue Gen = CopyValue::bottom();
          if (In.Src2.isConst())
            Gen = CopyValue::constant(In.Src2.ConstValue);
          else if (In.Src2.isVar() && Stable[In.Src2.Sym])
            Gen = CopyValue::copyOf(In.Src2.Sym);
          Cur[It->second] = Gen;
        } else {
          for (uint32_t C : ArrayCells[In.Array])
            Cur[C] = CopyValue::bottom();
        }
      } else if (In.Op == Opcode::Call) {
        for (const auto &[Key, Id] : CellId)
          if (calleeKillsArray(In.Callee, Key.first))
            Cur[Id] = CopyValue::bottom();
      }
    };

    // Forward must-dataflow: interior blocks start optimistic (TOP), the
    // entry starts all-BOTTOM (array contents are unknown at entry), joins
    // meet, RPO iteration to a fixpoint.
    std::vector<BlockId> Rpo = F.reversePostOrder();
    std::vector<State> InState(NumBlocks, State(NumCells)),
        OutState(NumBlocks, State(NumCells));
    BlockId Entry = Rpo.empty() ? 0 : Rpo.front();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B : Rpo) {
        State In(NumCells, B == Entry ? CopyValue::bottom()
                                      : CopyValue::top());
        if (B != Entry)
          for (BlockId Pred : F.block(B).Preds)
            meetInto(In, OutState[Pred]);
        State Cur = In;
        for (const Instr &I : F.block(B).Instrs)
          transfer(I, Cur);
        if (In != InState[B] || Cur != OutState[B]) {
          InState[B] = std::move(In);
          OutState[B] = std::move(Cur);
          Changed = true;
        }
      }
    }

    // Publish per-load facts from the stabilized pre-states.
    for (BlockId B : Rpo) {
      State Cur = InState[B];
      const auto &Instrs = F.block(B).Instrs;
      for (uint32_t I = 0, E = static_cast<uint32_t>(Instrs.size()); I != E;
           ++I) {
        const Instr &In = Instrs[I];
        if (In.Op == Opcode::Load && In.Src1.isConst()) {
          auto It = CellId.find({In.Array, In.Src1.ConstValue});
          if (It != CellId.end() && Cur[It->second].isResolved()) {
            PC.Facts.emplace(ProcCopyProp::key(B, I), Cur[It->second]);
            ++NumResolvedLoads;
          }
        }
        transfer(In, Cur);
      }
    }
  }
}
