//===- analysis/ValueNumbering.cpp - SSA value numbering ------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueNumbering.h"

#include "analysis/CopyProp.h"
#include "analysis/FlowAlias.h"

#include <cassert>

using namespace ipcp;

//===----------------------------------------------------------------------===//
// VnContext
//===----------------------------------------------------------------------===//

const VnExpr *VnContext::intern(VnExpr Proto) {
  Key K;
  K.Kind = Proto.Kind;
  switch (Proto.Kind) {
  case VnKind::Const:
    K.A = Proto.ConstValue;
    K.B = 0;
    break;
  case VnKind::Param:
  case VnKind::CopyOf:
    K.A = Proto.Param;
    K.B = 0;
    break;
  case VnKind::Unary:
    K.A = static_cast<int64_t>(Proto.UOp);
    K.B = Proto.Lhs->Id;
    break;
  case VnKind::Binary:
    K.A = static_cast<int64_t>(Proto.BOp);
    K.B = (static_cast<uint64_t>(Proto.Lhs->Id) << 32) | Proto.Rhs->Id;
    break;
  case VnKind::Gamma:
    K.A = Proto.Cond->Id;
    K.B = (static_cast<uint64_t>(Proto.Lhs->Id) << 32) | Proto.Rhs->Id;
    break;
  case VnKind::Opaque:
    assert(false && "opaque nodes are not interned");
    break;
  }
  if (auto It = Table.find(K); It != Table.end())
    return It->second;
  Proto.Id = static_cast<uint32_t>(Exprs.size());
  Exprs.push_back(Proto);
  const VnExpr *E = &Exprs.back();
  Table.emplace(K, E);
  return E;
}

const VnExpr *VnContext::getConst(int64_t Value) {
  VnExpr E;
  E.Kind = VnKind::Const;
  E.ConstValue = Value;
  return intern(E);
}

const VnExpr *VnContext::getParam(SymbolId Sym) {
  VnExpr E;
  E.Kind = VnKind::Param;
  E.Param = Sym;
  return intern(E);
}

const VnExpr *VnContext::getCopyOf(SymbolId Sym) {
  VnExpr E;
  E.Kind = VnKind::CopyOf;
  E.Param = Sym;
  return intern(E);
}

const VnExpr *VnContext::makeOpaque() {
  VnExpr E;
  E.Kind = VnKind::Opaque;
  E.OpaqueId = NextOpaque++;
  E.Id = static_cast<uint32_t>(Exprs.size());
  Exprs.push_back(E);
  return &Exprs.back();
}

const VnExpr *VnContext::getUnary(UnaryOp Op, const VnExpr *Operand) {
  assert(Operand && "null operand");
  if (Operand->isConst())
    return getConst(evalUnaryOp(Op, Operand->ConstValue));
  // --x == x.
  if (Op == UnaryOp::Neg && Operand->Kind == VnKind::Unary &&
      Operand->UOp == UnaryOp::Neg)
    return Operand->Lhs;
  VnExpr E;
  E.Kind = VnKind::Unary;
  E.UOp = Op;
  E.Lhs = Operand;
  return intern(E);
}

static bool isCommutative(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Mul:
  case BinaryOp::CmpEq:
  case BinaryOp::CmpNe:
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    return true;
  default:
    return false;
  }
}

const VnExpr *VnContext::getBinary(BinaryOp Op, const VnExpr *Lhs,
                                   const VnExpr *Rhs) {
  assert(Lhs && Rhs && "null operand");

  if (Lhs->isConst() && Rhs->isConst()) {
    int64_t Result;
    if (!evalBinaryOp(Op, Lhs->ConstValue, Rhs->ConstValue, Result))
      return makeOpaque(); // Division by a constant zero.
    return getConst(Result);
  }

  // Algebraic identities that keep pass-through values recognizable.
  auto constOf = [](const VnExpr *E, int64_t C) {
    return E->isConst() && E->ConstValue == C;
  };
  switch (Op) {
  case BinaryOp::Add:
    if (constOf(Lhs, 0))
      return Rhs;
    if (constOf(Rhs, 0))
      return Lhs;
    break;
  case BinaryOp::Sub:
    if (constOf(Rhs, 0))
      return Lhs;
    if (Lhs == Rhs && !Lhs->isOpaque())
      return getConst(0);
    break;
  case BinaryOp::Mul:
    if (constOf(Lhs, 1))
      return Rhs;
    if (constOf(Rhs, 1))
      return Lhs;
    if (constOf(Lhs, 0) || constOf(Rhs, 0))
      return getConst(0);
    break;
  case BinaryOp::Div:
    if (constOf(Rhs, 1))
      return Lhs;
    break;
  case BinaryOp::Mod:
    if (constOf(Rhs, 1))
      return getConst(0);
    break;
  case BinaryOp::LogicalAnd:
    if (constOf(Lhs, 0) || constOf(Rhs, 0))
      return getConst(0);
    break;
  case BinaryOp::LogicalOr:
    if ((Lhs->isConst() && Lhs->ConstValue != 0) ||
        (Rhs->isConst() && Rhs->ConstValue != 0))
      return getConst(1);
    break;
  default:
    break;
  }

  if (isCommutative(Op) && Lhs->Id > Rhs->Id)
    std::swap(Lhs, Rhs);

  VnExpr E;
  E.Kind = VnKind::Binary;
  E.BOp = Op;
  E.Lhs = Lhs;
  E.Rhs = Rhs;
  return intern(E);
}

const VnExpr *VnContext::getGamma(const VnExpr *Cond,
                                  const VnExpr *TrueArm,
                                  const VnExpr *FalseArm) {
  assert(Cond && TrueArm && FalseArm && "null gamma operand");
  if (Cond->isConst())
    return Cond->ConstValue != 0 ? TrueArm : FalseArm;
  if (TrueArm == FalseArm)
    return TrueArm;
  VnExpr E;
  E.Kind = VnKind::Gamma;
  E.Cond = Cond;
  E.Lhs = TrueArm;
  E.Rhs = FalseArm;
  // Opaque arms are legitimate in gated expressions, but opaque nodes
  // are not interned; hash-consing on their Ids is still sound because
  // each opaque Id is unique.
  return intern(E);
}

//===----------------------------------------------------------------------===//
// Expression helpers
//===----------------------------------------------------------------------===//

bool ipcp::isParamExpr(const VnExpr *E) {
  switch (E->Kind) {
  case VnKind::Const:
  case VnKind::Param:
  case VnKind::CopyOf:
    return true;
  case VnKind::Opaque:
    return false;
  case VnKind::Unary:
    return isParamExpr(E->Lhs);
  case VnKind::Binary:
    return isParamExpr(E->Lhs) && isParamExpr(E->Rhs);
  case VnKind::Gamma:
    return isParamExpr(E->Cond) && isParamExpr(E->Lhs) &&
           isParamExpr(E->Rhs);
  }
  return false;
}

bool ipcp::isGatedParamExpr(const VnExpr *E) {
  switch (E->Kind) {
  case VnKind::Const:
  case VnKind::Param:
  case VnKind::CopyOf:
    return true;
  case VnKind::Opaque:
    return false;
  case VnKind::Unary:
    return isGatedParamExpr(E->Lhs);
  case VnKind::Binary:
    return isGatedParamExpr(E->Lhs) && isGatedParamExpr(E->Rhs);
  case VnKind::Gamma:
    // The predicate must be evaluable; either arm may be unknowable (it
    // only matters when selected).
    return isParamExpr(E->Cond) &&
           (E->Lhs->isOpaque() || isGatedParamExpr(E->Lhs)) &&
           (E->Rhs->isOpaque() || isGatedParamExpr(E->Rhs));
  }
  return false;
}

void ipcp::collectSupport(const VnExpr *E, std::vector<SymbolId> &Support) {
  switch (E->Kind) {
  case VnKind::Const:
  case VnKind::Opaque:
    return;
  case VnKind::Param:
  case VnKind::CopyOf:
    for (SymbolId S : Support)
      if (S == E->Param)
        return;
    Support.push_back(E->Param);
    return;
  case VnKind::Unary:
    collectSupport(E->Lhs, Support);
    return;
  case VnKind::Binary:
    collectSupport(E->Lhs, Support);
    collectSupport(E->Rhs, Support);
    return;
  case VnKind::Gamma:
    collectSupport(E->Cond, Support);
    collectSupport(E->Lhs, Support);
    collectSupport(E->Rhs, Support);
    return;
  }
}

std::string ipcp::vnExprToString(const VnExpr *E,
                                 const SymbolTable &Symbols) {
  switch (E->Kind) {
  case VnKind::Const:
    return std::to_string(E->ConstValue);
  case VnKind::Param:
    return Symbols.symbol(E->Param).Name;
  case VnKind::CopyOf:
    return "copy(" + Symbols.symbol(E->Param).Name + ")";
  case VnKind::Opaque:
    return "opaque#" + std::to_string(E->OpaqueId);
  case VnKind::Unary:
    return std::string(unaryOpSpelling(E->UOp)) + "(" +
           vnExprToString(E->Lhs, Symbols) + ")";
  case VnKind::Binary:
    return "(" + vnExprToString(E->Lhs, Symbols) + " " +
           binaryOpSpelling(E->BOp) + " " +
           vnExprToString(E->Rhs, Symbols) + ")";
  case VnKind::Gamma:
    return "gamma(" + vnExprToString(E->Cond, Symbols) + ", " +
           vnExprToString(E->Lhs, Symbols) + ", " +
           vnExprToString(E->Rhs, Symbols) + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// CallSiteValues
//===----------------------------------------------------------------------===//

const VnExpr *CallSiteValues::actual(uint32_t Idx) const {
  return VN.exprOfOperand(Block, InstrIdx, Idx);
}

const VnExpr *CallSiteValues::global(SymbolId G) const {
  // GlobalEnv is parallel to the symbol table's global scalar list.
  const auto &Globals = VN.symbols().globalScalars();
  for (uint32_t Idx = 0, E = static_cast<uint32_t>(Globals.size()); Idx != E;
       ++Idx)
    if (Globals[Idx] == G)
      return VN.globalEnvExpr(Block, InstrIdx, Idx);
  assert(false && "not a global scalar");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// ValueNumbering
//===----------------------------------------------------------------------===//

namespace {

/// For a two-predecessor join \p B controlled by the conditional branch
/// in idom(B), maps each predecessor to the branch arm (true/false) it
/// belongs to. Fails (returns false) for joins that are not simple
/// diamonds/triangles — loop headers in particular.
bool mapPredsToArms(const Function &F, const DominatorTree &DT, BlockId B,
                    BlockId &BranchBlock, bool ArmIsTrue[2]) {
  const auto &Preds = F.block(B).Preds;
  if (Preds.size() != 2)
    return false;
  BlockId D = DT.idom(B);
  if (D == InvalidBlock || D == B)
    return false;
  const auto &DInstrs = F.block(D).Instrs;
  if (DInstrs.empty() || DInstrs.back().Op != Opcode::Branch)
    return false;
  BlockId TrueSucc = F.block(D).Succs[0];
  BlockId FalseSucc = F.block(D).Succs[1];
  for (int I = 0; I != 2; ++I) {
    BlockId P = Preds[I];
    if (!DT.isReachable(P))
      return false;
    if (P == D) {
      // Triangle: the branch edge reaches the join directly.
      if (B == TrueSucc && B != FalseSucc)
        ArmIsTrue[I] = true;
      else if (B == FalseSucc && B != TrueSucc)
        ArmIsTrue[I] = false;
      else
        return false;
    } else if (TrueSucc != B && DT.dominates(TrueSucc, P)) {
      ArmIsTrue[I] = true;
    } else if (FalseSucc != B && DT.dominates(FalseSucc, P)) {
      ArmIsTrue[I] = false;
    } else {
      return false;
    }
  }
  if (ArmIsTrue[0] == ArmIsTrue[1])
    return false; // Both preds on the same arm: not a gate.
  BranchBlock = D;
  return true;
}

} // namespace

ValueNumbering::ValueNumbering(const SsaForm &Ssa,
                               const SymbolTable &Symbols, VnContext &Ctx,
                               const KillValueFn *KillFn,
                               const DominatorTree *GatedDT,
                               const std::vector<uint8_t> *Unstable)
    : ValueNumbering(Ssa, Symbols, Ctx, KillFn, GatedDT,
                     VnPrecision{Unstable, nullptr, false}) {}

ValueNumbering::ValueNumbering(const SsaForm &Ssa,
                               const SymbolTable &Symbols, VnContext &Ctx,
                               const KillValueFn *KillFn,
                               const DominatorTree *GatedDT,
                               const VnPrecision &Prec)
    : Ssa(Ssa), Symbols(Symbols), Ctx(Ctx),
      Flow(Prec.Flow && !Prec.Flow->trivial() ? Prec.Flow : nullptr),
      Copy(Prec.Copy && !Prec.Copy->trivial() ? Prec.Copy : nullptr) {
  ExprOf.assign(Ssa.numValues(), nullptr);
  if (Flow)
    buildFlowGates();
  if (Prec.Optimistic)
    numberOptimistic(KillFn, GatedDT, Prec.Unstable);
  else
    numberPessimistic(KillFn, GatedDT, Prec.Unstable);

  // Unreachable definitions (e.g. phis in a preserved-but-unreachable
  // exit block) get opaque values so exprOf() is total.
  for (const VnExpr *&E : ExprOf)
    if (!E)
      E = Ctx.makeOpaque();
}

/// Pre-allocates one Opaque gate for every dirty read point: operand
/// slots, per-call global environments, and the exit environment. Filling
/// the tables up front (in deterministic block order) keeps the numbering
/// itself allocation-order-stable across optimistic passes and lets
/// concurrent post-construction readers resolve gated reads without ever
/// touching the context.
void ValueNumbering::buildFlowGates() {
  const Function &F = Ssa.function();
  const auto &Globals = Symbols.globalScalars();
  for (BlockId B = 0, BE = static_cast<BlockId>(F.numBlocks()); B != BE;
       ++B) {
    const auto &Instrs = F.block(B).Instrs;
    for (uint32_t I = 0, E = static_cast<uint32_t>(Instrs.size()); I != E;
         ++I) {
      const Instr &In = Instrs[I];
      uint32_t Slot = 0;
      In.forEachUse([&](const Operand &Op) {
        if (Op.isVar() && Flow->dirtyAt(B, I, Op.Sym))
          OperandGates.emplace(GateKey{B, I, Slot}, Ctx.makeOpaque());
        ++Slot;
      });
      if (In.Op == Opcode::Call) {
        const InstrSsaInfo &Info = Ssa.instrInfo(B, I);
        for (uint32_t GI = 0,
                      GE = static_cast<uint32_t>(Info.GlobalEnv.size());
             GI != GE; ++GI)
          if (Flow->dirtyAt(B, I, Globals[GI]))
            GlobalGates.emplace(GateKey{B, I, GI}, Ctx.makeOpaque());
      }
    }
  }
  if (Ssa.hasExitEnv()) {
    const auto &ExitSyms = Ssa.exitSymbols();
    ExitGates.assign(ExitSyms.size(), nullptr);
    for (uint32_t I = 0, E = static_cast<uint32_t>(ExitSyms.size()); I != E;
         ++I)
      if (Flow->dirtyAtExit(ExitSyms[I]))
        ExitGates[I] = Ctx.makeOpaque();
  }
}

const VnExpr *ValueNumbering::operandGate(BlockId B, uint32_t InstrIdx,
                                          uint32_t Slot) const {
  if (!Flow)
    return nullptr;
  auto It = OperandGates.find(GateKey{B, InstrIdx, Slot});
  return It != OperandGates.end() ? It->second : nullptr;
}

void ValueNumbering::numberPessimistic(const KillValueFn *KillFn,
                                       const DominatorTree *GatedDT,
                                       const std::vector<uint8_t> *Unstable) {
  const Function &F = Ssa.function();

  auto unstable = [&](SymbolId Sym) {
    return Unstable && Sym != InvalidSymbol && (*Unstable)[Sym];
  };

  // Entry values: formals and globals are Params; uninitialized locals
  // are unknowable, as are symbols in a modified by-reference alias pair
  // (their entry value is only the location's value until the first
  // store through the other name).
  for (auto [Sym, Id] : Ssa.entryDefs()) {
    const Symbol &S = Symbols.symbol(Sym);
    ExprOf[Id] = S.isInterproceduralParam() && !unstable(Sym)
                     ? Ctx.getParam(Sym)
                     : Ctx.makeOpaque();
  }

  auto operandExpr = [&](const Operand &Op, SsaId Use) -> const VnExpr * {
    if (Op.isConst())
      return Ctx.getConst(Op.ConstValue);
    assert(Use != InvalidSsa && "variable operand without SSA id");
    assert(ExprOf[Use] && "use before def in RPO walk");
    return ExprOf[Use];
  };

  // In gated mode, a failed phi merge at a two-way join becomes a Gamma
  // over the controlling branch's predicate expression.
  auto tryGamma = [&](BlockId B, const Phi &P) -> const VnExpr * {
    if (!GatedDT)
      return nullptr;
    BlockId BranchBlock = InvalidBlock;
    bool ArmIsTrue[2];
    if (!mapPredsToArms(F, *GatedDT, B, BranchBlock, ArmIsTrue))
      return nullptr;
    const auto &BranchInstrs = F.block(BranchBlock).Instrs;
    uint32_t BranchIdx = static_cast<uint32_t>(BranchInstrs.size() - 1);
    const VnExpr *Cond = exprOfOperand(BranchBlock, BranchIdx, 0);
    // The predicate must be evaluable during propagation. (Optimistic
    // passes may see a still-unnumbered predicate; no gamma then.)
    if (!Cond || !isParamExpr(Cond))
      return nullptr;
    const VnExpr *Arms[2];
    for (int I = 0; I != 2; ++I) {
      SsaId In = P.Incoming[I];
      Arms[I] = In != InvalidSsa && ExprOf[In] ? ExprOf[In] : nullptr;
      if (!Arms[I])
        return nullptr; // Back edge: a mu, not a gamma.
    }
    const VnExpr *TrueArm = ArmIsTrue[0] ? Arms[0] : Arms[1];
    const VnExpr *FalseArm = ArmIsTrue[0] ? Arms[1] : Arms[0];
    return Ctx.getGamma(Cond, TrueArm, FalseArm);
  };

  std::vector<BlockId> Rpo = F.reversePostOrder();
  // Operand-expression scratch, reused across instructions (hoisted out
  // of the inner loop so numbering does not allocate per instruction).
  std::vector<const VnExpr *> Ops;
  for (BlockId B : Rpo) {
    // Phis: available-and-equal inputs collapse; anything else is opaque
    // (pessimistic value numbering), or a Gamma in gated mode.
    for (const Phi &P : Ssa.phis(B)) {
      if (unstable(P.Sym)) {
        ExprOf[P.Def] = Ctx.makeOpaque();
        continue;
      }
      const VnExpr *Merged = nullptr;
      bool Known = true;
      for (SsaId In : P.Incoming) {
        const VnExpr *E = In == InvalidSsa ? nullptr : ExprOf[In];
        if (!E) {
          Known = false; // Back edge not yet numbered.
          break;
        }
        if (E->isOpaque()) {
          Known = false;
          break;
        }
        if (!Merged)
          Merged = E;
        else if (Merged != E)
          Known = false;
        if (!Known)
          break;
      }
      if (Known && Merged) {
        ExprOf[P.Def] = Merged;
        continue;
      }
      if (const VnExpr *Gated = tryGamma(B, P)) {
        ExprOf[P.Def] = Gated;
        continue;
      }
      ExprOf[P.Def] = Ctx.makeOpaque();
    }

    const auto &Instrs = F.block(B).Instrs;
    for (uint32_t I = 0, E = static_cast<uint32_t>(Instrs.size()); I != E;
         ++I) {
      const Instr &In = Instrs[I];
      const InstrSsaInfo &Info = Ssa.instrInfo(B, I);

      // Gather operand expressions in slot order. A read gated dirty by
      // the flow-sensitive alias facts resolves to its gate Opaque: the
      // reaching SSA value may be stale at this point.
      Ops.clear();
      uint32_t Slot = 0;
      In.forEachUse([&](const Operand &Op) {
        const VnExpr *Gate = operandGate(B, I, Slot);
        Ops.push_back(Gate ? Gate : operandExpr(Op, Info.UseSsa[Slot]));
        ++Slot;
      });

      // A value stored into an unstable symbol is unreliable the moment
      // it lands: the next store through an aliased name rewrites it.
      if (Info.DefSsa != InvalidSsa &&
          unstable(Ssa.def(Info.DefSsa).Sym)) {
        ExprOf[Info.DefSsa] = Ctx.makeOpaque();
        continue;
      }

      switch (In.Op) {
      case Opcode::Copy:
        ExprOf[Info.DefSsa] = Ops[0];
        break;
      case Opcode::Unary:
        ExprOf[Info.DefSsa] = Ctx.getUnary(In.UnOp, Ops[0]);
        break;
      case Opcode::Binary:
        ExprOf[Info.DefSsa] = Ctx.getBinary(In.BinOp, Ops[0], Ops[1]);
        break;
      case Opcode::Load:
        // A load whose cell the copy-propagation dataflow resolves is the
        // literal / the entry value of the stable source, not an Opaque.
        if (const CopyValue *CF = Copy ? Copy->factAt(B, I) : nullptr) {
          ExprOf[Info.DefSsa] = CF->isConst()
                                    ? Ctx.getConst(CF->constValue())
                                    : Ctx.getCopyOf(CF->copySym());
          break;
        }
        ExprOf[Info.DefSsa] = Ctx.makeOpaque();
        break;
      case Opcode::Read:
        ExprOf[Info.DefSsa] = Ctx.makeOpaque();
        break;
      case Opcode::Call: {
        CallSiteValues Values(*this, B, I);
        for (auto [Killed, Def] : Info.Kills) {
          std::optional<int64_t> C;
          if (KillFn && *KillFn && !unstable(Killed))
            C = (*KillFn)(In, Killed, Values);
          ExprOf[Def] = C ? Ctx.getConst(*C) : Ctx.makeOpaque();
        }
        break;
      }
      case Opcode::Store:
      case Opcode::Print:
      case Opcode::Branch:
      case Opcode::Jump:
      case Opcode::Ret:
        break;
      }
    }
  }
}

/// Pai-style optimistic iteration: every value starts at TOP (null) and
/// reverse-postorder passes re-evaluate until nothing changes. Phi merges
/// skip TOP inputs (the optimistic assumption that an unresolved path
/// will agree); a value whose re-evaluation disagrees with what it
/// already holds is pinned to its stable per-id Opaque, so each value
/// changes at most twice and the iteration terminates. Values still TOP
/// at the fixpoint are unreachable and are filled with Opaques by the
/// constructor tail.
void ValueNumbering::numberOptimistic(const KillValueFn *KillFn,
                                      const DominatorTree *GatedDT,
                                      const std::vector<uint8_t> *Unstable) {
  const Function &F = Ssa.function();

  auto unstable = [&](SymbolId Sym) {
    return Unstable && Sym != InvalidSymbol && (*Unstable)[Sym];
  };

  OpaqueSlots.assign(Ssa.numValues(), nullptr);
  auto opaqueFor = [&](SsaId Id) {
    if (!OpaqueSlots[Id])
      OpaqueSlots[Id] = Ctx.makeOpaque();
    return OpaqueSlots[Id];
  };

  // Three-level descent per id: TOP (null) adopts the first value; a
  // re-evaluation that disagrees pins the id to its stable Opaque; a
  // pinned id never changes again.
  auto setExpr = [&](SsaId Id, const VnExpr *E) -> bool {
    if (ExprOf[Id] == E)
      return false;
    if (!ExprOf[Id]) {
      ExprOf[Id] = E;
      return true;
    }
    if (OpaqueSlots[Id] && ExprOf[Id] == OpaqueSlots[Id])
      return false;
    ExprOf[Id] = opaqueFor(Id);
    return true;
  };

  for (auto [Sym, Id] : Ssa.entryDefs()) {
    const Symbol &S = Symbols.symbol(Sym);
    ExprOf[Id] = S.isInterproceduralParam() && !unstable(Sym)
                     ? Ctx.getParam(Sym)
                     : opaqueFor(Id);
  }

  auto operandExpr = [&](const Operand &Op, SsaId Use) -> const VnExpr * {
    if (Op.isConst())
      return Ctx.getConst(Op.ConstValue);
    assert(Use != InvalidSsa && "variable operand without SSA id");
    return ExprOf[Use]; // May still be TOP (null) mid-iteration.
  };

  auto tryGamma = [&](BlockId B, const Phi &P) -> const VnExpr * {
    if (!GatedDT)
      return nullptr;
    BlockId BranchBlock = InvalidBlock;
    bool ArmIsTrue[2];
    if (!mapPredsToArms(F, *GatedDT, B, BranchBlock, ArmIsTrue))
      return nullptr;
    const auto &BranchInstrs = F.block(BranchBlock).Instrs;
    uint32_t BranchIdx = static_cast<uint32_t>(BranchInstrs.size() - 1);
    const VnExpr *Cond = exprOfOperand(BranchBlock, BranchIdx, 0);
    if (!Cond || !isParamExpr(Cond))
      return nullptr;
    const VnExpr *Arms[2];
    for (int I = 0; I != 2; ++I) {
      SsaId In = P.Incoming[I];
      Arms[I] = In != InvalidSsa ? ExprOf[In] : nullptr;
      if (!Arms[I])
        return nullptr;
    }
    const VnExpr *TrueArm = ArmIsTrue[0] ? Arms[0] : Arms[1];
    const VnExpr *FalseArm = ArmIsTrue[0] ? Arms[1] : Arms[0];
    return Ctx.getGamma(Cond, TrueArm, FalseArm);
  };

  // SawTop[phi def]: the phi's merge skipped a TOP input on some pass —
  // exactly the merges the pessimistic single pass turns Opaque.
  std::vector<uint8_t> SawTop(Ssa.numValues(), 0);

  std::vector<BlockId> Rpo = F.reversePostOrder();
  std::vector<const VnExpr *> Ops;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Rpo) {
      for (const Phi &P : Ssa.phis(B)) {
        if (unstable(P.Sym)) {
          Changed |= setExpr(P.Def, opaqueFor(P.Def));
          continue;
        }
        const VnExpr *Merged = nullptr;
        bool SawOpaque = false, Conflict = false, SkippedTop = false;
        for (SsaId In : P.Incoming) {
          const VnExpr *E = In == InvalidSsa ? nullptr : ExprOf[In];
          if (!E) {
            SkippedTop = true; // Optimistic: assume the path will agree.
            continue;
          }
          if (E->isOpaque()) {
            SawOpaque = true;
            break;
          }
          if (!Merged)
            Merged = E;
          else if (Merged != E) {
            Conflict = true;
            break;
          }
        }
        if (SkippedTop)
          SawTop[P.Def] = 1;
        if (!SawOpaque && !Conflict) {
          if (Merged)
            Changed |= setExpr(P.Def, Merged);
          // All inputs TOP: stay TOP.
          continue;
        }
        if (const VnExpr *Gated = tryGamma(B, P)) {
          Changed |= setExpr(P.Def, Gated);
          continue;
        }
        Changed |= setExpr(P.Def, opaqueFor(P.Def));
      }

      const auto &Instrs = F.block(B).Instrs;
      for (uint32_t I = 0, E = static_cast<uint32_t>(Instrs.size()); I != E;
           ++I) {
        const Instr &In = Instrs[I];
        const InstrSsaInfo &Info = Ssa.instrInfo(B, I);

        Ops.clear();
        bool OpsReady = true;
        uint32_t Slot = 0;
        In.forEachUse([&](const Operand &Op) {
          const VnExpr *Gate = operandGate(B, I, Slot);
          const VnExpr *E = Gate ? Gate : operandExpr(Op, Info.UseSsa[Slot]);
          OpsReady &= E != nullptr;
          Ops.push_back(E);
          ++Slot;
        });

        if (Info.DefSsa != InvalidSsa &&
            unstable(Ssa.def(Info.DefSsa).Sym)) {
          Changed |= setExpr(Info.DefSsa, opaqueFor(Info.DefSsa));
          continue;
        }

        switch (In.Op) {
        case Opcode::Copy:
          if (OpsReady)
            Changed |= setExpr(Info.DefSsa, Ops[0]);
          break;
        case Opcode::Unary:
          if (OpsReady)
            Changed |= setExpr(Info.DefSsa, Ctx.getUnary(In.UnOp, Ops[0]));
          break;
        case Opcode::Binary:
          if (OpsReady)
            Changed |=
                setExpr(Info.DefSsa, Ctx.getBinary(In.BinOp, Ops[0], Ops[1]));
          break;
        case Opcode::Load:
          if (const CopyValue *CF = Copy ? Copy->factAt(B, I) : nullptr) {
            Changed |= setExpr(Info.DefSsa,
                               CF->isConst()
                                   ? Ctx.getConst(CF->constValue())
                                   : Ctx.getCopyOf(CF->copySym()));
            break;
          }
          Changed |= setExpr(Info.DefSsa, opaqueFor(Info.DefSsa));
          break;
        case Opcode::Read:
          Changed |= setExpr(Info.DefSsa, opaqueFor(Info.DefSsa));
          break;
        case Opcode::Call: {
          // The kill callback reads actuals and the global environment
          // lazily; evaluate only once every input it could read has
          // left TOP (at the fixpoint every reachable call is ready).
          bool EnvReady = OpsReady;
          for (uint32_t GI = 0,
                        GE = static_cast<uint32_t>(Info.GlobalEnv.size());
               EnvReady && GI != GE; ++GI)
            EnvReady = globalEnvExpr(B, I, GI) != nullptr;
          if (!EnvReady)
            break;
          CallSiteValues Values(*this, B, I);
          for (auto [Killed, Def] : Info.Kills) {
            std::optional<int64_t> C;
            if (KillFn && *KillFn && !unstable(Killed))
              C = (*KillFn)(In, Killed, Values);
            Changed |= setExpr(Def, C ? Ctx.getConst(*C) : opaqueFor(Def));
          }
          break;
        }
        case Opcode::Store:
        case Opcode::Print:
        case Opcode::Branch:
        case Opcode::Jump:
        case Opcode::Ret:
          break;
        }
      }
    }
  }

  for (BlockId B : Rpo)
    for (const Phi &P : Ssa.phis(B))
      if (SawTop[P.Def] && ExprOf[P.Def] && !ExprOf[P.Def]->isOpaque())
        ++NumOptimisticPhiMerges;
}

const VnExpr *ValueNumbering::exprOfOperand(BlockId B, uint32_t InstrIdx,
                                            uint32_t Slot) const {
  if (const VnExpr *Gate = operandGate(B, InstrIdx, Slot))
    return Gate;
  const Instr &In = Ssa.function().block(B).Instrs[InstrIdx];
  const InstrSsaInfo &Info = Ssa.instrInfo(B, InstrIdx);
  const VnExpr *Result = nullptr;
  bool Found = false;
  uint32_t Cur = 0;
  In.forEachUse([&](const Operand &Op) {
    if (Cur == Slot) {
      Found = true;
      if (Op.isConst())
        Result = Ctx.getConst(Op.ConstValue);
      else
        Result = ExprOf[Info.UseSsa[Cur]];
    }
    ++Cur;
  });
  assert(Found && "operand slot out of range");
  (void)Found;
  return Result;
}

const VnExpr *ValueNumbering::globalEnvExpr(BlockId B, uint32_t InstrIdx,
                                            uint32_t GlobalIdx) const {
  if (Flow) {
    auto It = GlobalGates.find(GateKey{B, InstrIdx, GlobalIdx});
    if (It != GlobalGates.end())
      return It->second;
  }
  const InstrSsaInfo &Info = Ssa.instrInfo(B, InstrIdx);
  return ExprOf[Info.GlobalEnv.at(GlobalIdx)];
}

const VnExpr *ValueNumbering::exitExpr(uint32_t ExitIdx) const {
  if (ExitIdx < ExitGates.size() && ExitGates[ExitIdx])
    return ExitGates[ExitIdx];
  return ExprOf[Ssa.exitEnv().at(ExitIdx)];
}
