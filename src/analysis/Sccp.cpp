//===- analysis/Sccp.cpp - Sparse conditional constant propagation --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Sccp.h"

#include "analysis/CopyProp.h"
#include "analysis/FlowAlias.h"

#include <cassert>

using namespace ipcp;

LatticeValue SccpCallValues::actual(uint32_t Idx) const {
  const Instr &In = S.ssa().function().block(Block).Instrs[InstrIdx];
  const InstrSsaInfo &Info = S.ssa().instrInfo(Block, InstrIdx);
  assert(Idx < In.Args.size() && "actual index out of range");
  return S.operandValueImpl(In, Info, Block, InstrIdx, Idx);
}

LatticeValue SccpCallValues::global(SymbolId G) const {
  const InstrSsaInfo &Info = S.ssa().instrInfo(Block, InstrIdx);
  const auto &Globals = S.symbols().globalScalars();
  for (uint32_t Idx = 0, E = static_cast<uint32_t>(Globals.size()); Idx != E;
       ++Idx)
    if (Globals[Idx] == G) {
      if (S.dirtyRead(Block, InstrIdx, G))
        return LatticeValue::bottom();
      return S.Values[Info.GlobalEnv.at(Idx)];
    }
  assert(false && "not a global scalar");
  return LatticeValue::bottom();
}

bool Sccp::dirtyRead(BlockId B, uint32_t InstrIdx, SymbolId Sym) const {
  return Flow && Flow->dirtyAt(B, InstrIdx, Sym);
}

Sccp::Sccp(const SsaForm &Ssa, const SymbolTable &Symbols,
           const SccpSeeds *Seeds, const SccpKillFn *KillFn,
           const std::vector<uint8_t> *Unstable, const ProcFlowAlias *Flow,
           const ProcCopyProp *Copy)
    : Ssa(Ssa), Symbols(Symbols), KillFn(KillFn), Unstable(Unstable),
      Flow(Flow && !Flow->trivial() ? Flow : nullptr),
      Copy(Copy && !Copy->trivial() ? Copy : nullptr) {
  const Function &F = Ssa.function();
  Values.assign(Ssa.numValues(), LatticeValue::top());
  ExecBlock.assign(F.numBlocks(), 0);
  ExecEdge.resize(F.numBlocks());
  for (BlockId B = 0, E = static_cast<BlockId>(F.numBlocks()); B != E; ++B)
    ExecEdge[B].assign(F.block(B).Succs.size(), 0);

  // Seed entry values. Formals and globals default to BOTTOM (arbitrary
  // caller) unless the seed map says otherwise; locals are uninitialized
  // and also BOTTOM. Unstable symbols stay BOTTOM even when seeded: the
  // entry value is only trustworthy until the first store through an
  // aliased name, which the def chains below cannot witness.
  for (auto [Sym, Id] : Ssa.entryDefs()) {
    LatticeValue V = LatticeValue::bottom();
    if (Seeds) {
      if (auto It = Seeds->find(Sym); It != Seeds->end())
        V = It->second;
    }
    if (!Symbols.symbol(Sym).isInterproceduralParam() || isUnstable(Sym))
      V = LatticeValue::bottom();
    Values[Id] = V;
    if (this->Copy)
      EntryDefOf.emplace(Sym, Id);
  }

  ExecBlock[F.entry()] = 1;
  visitBlock(F.entry());

  while (!EdgeWork.empty() || !SsaWork.empty()) {
    while (!SsaWork.empty()) {
      SsaId Id = SsaWork.back();
      SsaWork.pop_back();
      for (const SsaUse &Use : Ssa.usesOf(Id)) {
        if (!ExecBlock[Use.Block])
          continue;
        if (Use.Kind == SsaUse::PhiUse)
          visitPhi(Use.Block, Use.Index);
        else
          visitInstr(Use.Block, Use.Index);
      }
    }
    while (!EdgeWork.empty()) {
      auto [From, SuccIdx] = EdgeWork.back();
      EdgeWork.pop_back();
      BlockId To = Ssa.function().block(From).Succs[SuccIdx];
      if (!ExecBlock[To]) {
        ExecBlock[To] = 1;
        visitBlock(To);
      } else {
        // New edge into an already-live block: phi inputs may improve.
        for (uint32_t PI = 0,
                      PE = static_cast<uint32_t>(Ssa.phis(To).size());
             PI != PE; ++PI)
          visitPhi(To, PI);
      }
    }
  }
}

void Sccp::setValue(SsaId Id, LatticeValue V) {
  // Monotonic: only ever lower.
  LatticeValue New = Values[Id].meet(V);
  if (New != Values[Id]) {
    Values[Id] = New;
    SsaWork.push_back(Id);
  }
}

bool Sccp::edgeIntoExecutable(BlockId Pred, BlockId Succ) const {
  const auto &Succs = Ssa.function().block(Pred).Succs;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Succs.size()); I != E; ++I)
    if (Succs[I] == Succ && ExecEdge[Pred][I])
      return true;
  return false;
}

void Sccp::markEdgeExecutable(BlockId From, uint32_t SuccIdx) {
  if (ExecEdge[From][SuccIdx])
    return;
  ExecEdge[From][SuccIdx] = 1;
  EdgeWork.push_back({From, SuccIdx});
}

void Sccp::visitBlock(BlockId B) {
  for (uint32_t PI = 0, PE = static_cast<uint32_t>(Ssa.phis(B).size());
       PI != PE; ++PI)
    visitPhi(B, PI);
  for (uint32_t I = 0,
                E = static_cast<uint32_t>(Ssa.function().block(B).Instrs.size());
       I != E; ++I)
    visitInstr(B, I);
}

void Sccp::visitPhi(BlockId B, uint32_t PhiIdx) {
  const Phi &P = Ssa.phis(B)[PhiIdx];
  if (isUnstable(P.Sym)) {
    setValue(P.Def, LatticeValue::bottom());
    return;
  }
  const auto &Preds = Ssa.function().block(B).Preds;
  LatticeValue Merged = LatticeValue::top();
  for (uint32_t I = 0, E = static_cast<uint32_t>(P.Incoming.size()); I != E;
       ++I) {
    if (!ExecBlock[Preds[I]] || !edgeIntoExecutable(Preds[I], B))
      continue;
    Merged = Merged.meet(Values[P.Incoming[I]]);
  }
  setValue(P.Def, Merged);
}

LatticeValue Sccp::operandValueImpl(const Instr &In,
                                    const InstrSsaInfo &Info, BlockId B,
                                    uint32_t InstrIdx, uint32_t Slot) const {
  LatticeValue Result = LatticeValue::bottom();
  uint32_t Cur = 0;
  bool Found = false;
  In.forEachUse([&](const Operand &Op) {
    if (Cur == Slot) {
      Found = true;
      if (Op.isConst())
        Result = LatticeValue::constant(Op.ConstValue);
      else if (dirtyRead(B, InstrIdx, Op.Sym))
        // The reaching SSA value may have been overwritten through an
        // aliased name on some path to this read.
        Result = LatticeValue::bottom();
      else
        Result = Values[Info.UseSsa[Cur]];
    }
    ++Cur;
  });
  assert(Found && "operand slot out of range");
  (void)Found;
  return Result;
}

LatticeValue Sccp::operandValue(BlockId B, uint32_t InstrIdx,
                                uint32_t Slot) const {
  const Instr &In = Ssa.function().block(B).Instrs[InstrIdx];
  return operandValueImpl(In, Ssa.instrInfo(B, InstrIdx), B, InstrIdx, Slot);
}

void Sccp::visitInstr(BlockId B, uint32_t InstrIdx) {
  const Instr &In = Ssa.function().block(B).Instrs[InstrIdx];
  const InstrSsaInfo &Info = Ssa.instrInfo(B, InstrIdx);
  auto use = [&](uint32_t Slot) {
    return operandValueImpl(In, Info, B, InstrIdx, Slot);
  };

  // A value computed into an unstable symbol is immediately unreliable:
  // the next store through an aliased name rewrites it invisibly. Only
  // Copy/Unary/Binary/Load/Read carry a DefSsa, so returning here never
  // skips control-flow handling.
  if (Info.DefSsa != InvalidSsa && isUnstable(Ssa.def(Info.DefSsa).Sym)) {
    setValue(Info.DefSsa, LatticeValue::bottom());
    return;
  }

  switch (In.Op) {
  case Opcode::Copy:
    setValue(Info.DefSsa, use(0));
    break;
  case Opcode::Unary: {
    LatticeValue V = use(0);
    if (V.isConst())
      setValue(Info.DefSsa,
               LatticeValue::constant(evalUnaryOp(In.UnOp, V.value())));
    else
      setValue(Info.DefSsa, V);
    break;
  }
  case Opcode::Binary: {
    LatticeValue L = use(0), R = use(1);
    if (L.isConst() && R.isConst()) {
      int64_t Result;
      if (evalBinaryOp(In.BinOp, L.value(), R.value(), Result))
        setValue(Info.DefSsa, LatticeValue::constant(Result));
      else
        setValue(Info.DefSsa, LatticeValue::bottom()); // Division by zero.
    } else if (L.isBottom() || R.isBottom()) {
      setValue(Info.DefSsa, LatticeValue::bottom());
    }
    // Else at least one TOP: stay optimistic.
    break;
  }
  case Opcode::Load:
    // A load whose cell the copy-propagation dataflow resolves takes the
    // literal / the entry value of its stable source (constant when the
    // solver seeded the source). Entry values are fixed at construction,
    // so this resolution is stable across re-visits.
    if (const CopyValue *CF = Copy ? Copy->factAt(B, InstrIdx) : nullptr) {
      if (CF->isConst()) {
        setValue(Info.DefSsa, LatticeValue::constant(CF->constValue()));
      } else {
        auto It = EntryDefOf.find(CF->copySym());
        setValue(Info.DefSsa, It != EntryDefOf.end()
                                  ? Values[It->second]
                                  : LatticeValue::bottom());
      }
      break;
    }
    setValue(Info.DefSsa, LatticeValue::bottom());
    break;
  case Opcode::Read:
    setValue(Info.DefSsa, LatticeValue::bottom());
    break;
  case Opcode::Call: {
    SccpCallValues CallVals(*this, B, InstrIdx);
    for (auto [Killed, Def] : Info.Kills) {
      LatticeValue V = KillFn && *KillFn && !isUnstable(Killed)
                           ? (*KillFn)(In, Killed, CallVals)
                           : LatticeValue::bottom();
      setValue(Def, V);
    }
    break;
  }
  case Opcode::Branch: {
    LatticeValue Cond = use(0);
    if (Cond.isConst()) {
      markEdgeExecutable(B, Cond.value() != 0 ? 0 : 1);
    } else if (Cond.isBottom()) {
      markEdgeExecutable(B, 0);
      markEdgeExecutable(B, 1);
    }
    // TOP: no edge executes yet.
    break;
  }
  case Opcode::Jump:
    markEdgeExecutable(B, 0);
    break;
  case Opcode::Store:
  case Opcode::Print:
  case Opcode::Ret:
    break;
  }
}

std::vector<std::pair<StmtId, bool>> Sccp::constantBranches() const {
  std::vector<std::pair<StmtId, bool>> Result;
  const Function &F = Ssa.function();
  for (BlockId B = 0, E = static_cast<BlockId>(F.numBlocks()); B != E; ++B) {
    if (!ExecBlock[B])
      continue;
    const auto &Instrs = F.block(B).Instrs;
    for (uint32_t I = 0, IE = static_cast<uint32_t>(Instrs.size()); I != IE;
         ++I) {
      const Instr &In = Instrs[I];
      if (In.Op != Opcode::Branch || In.SourceStmt == 0)
        continue;
      LatticeValue Cond = operandValue(B, I, 0);
      if (Cond.isConst())
        Result.push_back({In.SourceStmt, Cond.value() != 0});
    }
  }
  return Result;
}

size_t Sccp::numConstants() const {
  size_t N = 0;
  for (const LatticeValue &V : Values)
    N += V.isConst();
  return N;
}
