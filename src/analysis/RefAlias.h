//===- analysis/RefAlias.h - Call-by-reference alias analysis ---*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// May-alias analysis for call-by-reference formal parameters, in the
/// style of Cooper's alias analysis for FORTRAN (the companion problem
/// the paper's MOD computation builds on). A plain variable actual binds
/// the callee formal *by reference*, so the formal and the variable name
/// the same location for that activation:
///
///   * passing a global G into formal F makes F ~ G inside the callee;
///   * passing the same variable into two formals makes them alias each
///     other;
///   * passing a formal onward propagates whatever it may be bound to.
///
/// Per-procedure constant propagation (SCCP substitution, value numbering
/// for jump functions) tracks each symbol's definitions independently, so
/// an aliased pair is only safe when neither member is modified: a store
/// through one name silently changes the value of the other. This
/// analysis computes, per procedure, the set of *unstable* symbols —
/// members of a may-alias pair where either member may be modified (using
/// interprocedural MOD summaries when available, worst-case otherwise).
/// Analyses must treat every definition of an unstable symbol, including
/// its entry value, as unknowable.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_REFALIAS_H
#define IPCP_ANALYSIS_REFALIAS_H

#include "analysis/ModRef.h"
#include "ir/Function.h"

#include <cstddef>
#include <vector>

namespace ipcp {

/// Per-procedure unstable-symbol masks derived from by-reference alias
/// pairs. See the file comment for the definition of "unstable".
class RefAliasInfo {
public:
  /// Computes alias pairs for every procedure of \p M. \p MRI refines
  /// "may be modified"; when null every aliased symbol is unstable.
  RefAliasInfo(const Module &M, const SymbolTable &Symbols,
               const ModRefInfo *MRI);

  /// Mask over SymbolIds: nonzero entries are unstable within \p P.
  const std::vector<uint8_t> &unstableMask(ProcId P) const {
    return Unstable.at(P);
  }

  bool unstable(ProcId P, SymbolId Sym) const {
    return Unstable.at(P).at(Sym) != 0;
  }

  /// Number of distinct may-alias pairs found across the program.
  size_t numAliasPairs() const { return NumAliasPairs; }

  /// Number of (procedure, symbol) entries marked unstable.
  size_t numUnstable() const { return NumUnstable; }

private:
  std::vector<std::vector<uint8_t>> Unstable;
  size_t NumAliasPairs = 0;
  size_t NumUnstable = 0;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_REFALIAS_H
