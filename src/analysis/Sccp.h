//===- analysis/Sccp.h - Sparse conditional constant propagation -*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wegman–Zadeck sparse conditional constant propagation (paper reference
/// [16]) over the SSA overlay, with two IPCP-specific extensions:
///
///  * the entry lattice is seedable — seeding it with a procedure's
///    CONSTANTS set turns this pass into the paper's constant
///    *substitution* engine, while an all-BOTTOM seed gives the purely
///    intraprocedural baseline of Table 3 column 4;
///  * the value a call assigns to each symbol it may modify is supplied
///    by a callback, which is how constant-valued return jump functions
///    re-enter the intraprocedural world.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_SCCP_H
#define IPCP_ANALYSIS_SCCP_H

#include "ipcp/Lattice.h"
#include "ir/Ssa.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace ipcp {

class ProcCopyProp;
class ProcFlowAlias;
class Sccp;

/// Lattice values flowing into one call site, handed to the kill-value
/// callback.
class SccpCallValues {
public:
  SccpCallValues(const Sccp &S, BlockId Block, uint32_t InstrIdx)
      : S(S), Block(Block), InstrIdx(InstrIdx) {}

  /// Lattice value of the \p Idx-th actual.
  LatticeValue actual(uint32_t Idx) const;
  /// Lattice value of global scalar \p G flowing into the call.
  LatticeValue global(SymbolId G) const;

private:
  const Sccp &S;
  BlockId Block;
  uint32_t InstrIdx;
};

/// Decides the post-call lattice value of a symbol the call may modify.
/// A null callback means every kill is BOTTOM.
using SccpKillFn = std::function<LatticeValue(
    const Instr &Call, SymbolId Killed, const SccpCallValues &Values)>;

/// Entry-lattice seed: values for formals/globals on procedure entry.
/// Symbols absent from the map start at BOTTOM (unknown caller).
using SccpSeeds = std::unordered_map<SymbolId, LatticeValue>;

/// One SCCP run over one procedure.
class Sccp {
public:
  /// Runs to fixpoint. \p Seeds and \p KillFn may be null. \p Unstable,
  /// when non-null, is a SymbolId-indexed mask of symbols involved in a
  /// modified by-reference alias pair (see analysis/RefAlias.h); every
  /// definition of such a symbol — entry value included — is forced to
  /// BOTTOM, since a store through the aliased name changes it without a
  /// definition the SSA form can see. \p Flow, when non-null, replaces
  /// that whole-procedure masking with per-point gating (at most one of
  /// the two is set): definitions and seeds stay precise, and only
  /// *reads* at points where the symbol is dirty (analysis/FlowAlias.h)
  /// resolve to BOTTOM. \p Copy, when non-null, supplies copy-propagation
  /// facts (analysis/CopyProp.h): a Load whose cell resolves takes the
  /// literal / the (seeded) entry value of the stable source symbol
  /// instead of BOTTOM — the substitution-side half of the copy lattice.
  Sccp(const SsaForm &Ssa, const SymbolTable &Symbols,
       const SccpSeeds *Seeds, const SccpKillFn *KillFn,
       const std::vector<uint8_t> *Unstable = nullptr,
       const ProcFlowAlias *Flow = nullptr,
       const ProcCopyProp *Copy = nullptr);

  const SsaForm &ssa() const { return Ssa; }
  const SymbolTable &symbols() const { return Symbols; }

  /// Final lattice value of \p Id. TOP means the definition was never
  /// reached along any executable path.
  LatticeValue value(SsaId Id) const { return Values.at(Id); }

  /// Lattice value of source-operand \p Slot of an instruction (resolves
  /// Const operands).
  LatticeValue operandValue(BlockId B, uint32_t InstrIdx,
                            uint32_t Slot) const;

  /// True if any executable path reaches \p B.
  bool blockExecutable(BlockId B) const { return ExecBlock.at(B); }

  /// True if the CFG edge \p SuccIdx out of \p B ever executes.
  bool edgeExecutable(BlockId B, uint32_t SuccIdx) const {
    return ExecEdge.at(B).at(SuccIdx);
  }

  /// Branches (in executable blocks) whose condition folded to a
  /// constant, as (source statement id, taken-is-true) pairs — the input
  /// to dead-code elimination.
  std::vector<std::pair<StmtId, bool>> constantBranches() const;

  /// Statistics: number of lattice cells that ended Const.
  size_t numConstants() const;

private:
  friend class SccpCallValues;

  void markEdgeExecutable(BlockId From, uint32_t SuccIdx);
  void visitBlock(BlockId B);
  void visitPhi(BlockId B, uint32_t PhiIdx);
  void visitInstr(BlockId B, uint32_t InstrIdx);
  void setValue(SsaId Id, LatticeValue V);
  LatticeValue operandValueImpl(const Instr &In, const InstrSsaInfo &Info,
                                BlockId B, uint32_t InstrIdx,
                                uint32_t Slot) const;
  bool edgeIntoExecutable(BlockId Pred, BlockId Succ) const;

  /// True if \p Sym is in a modified by-reference alias pair.
  bool isUnstable(SymbolId Sym) const {
    return Unstable && Sym != InvalidSymbol && (*Unstable)[Sym];
  }

  /// Flow-gated mode: true when reading \p Sym just before instruction
  /// \p InstrIdx of \p B may observe a value overwritten through an
  /// aliased name.
  bool dirtyRead(BlockId B, uint32_t InstrIdx, SymbolId Sym) const;

  const SsaForm &Ssa;
  const SymbolTable &Symbols;
  const SccpKillFn *KillFn;
  const std::vector<uint8_t> *Unstable;
  const ProcFlowAlias *Flow;
  const ProcCopyProp *Copy;
  /// Entry SSA value of each symbol (filled only in copy mode): where a
  /// Copy(s) load fact resolves to.
  std::unordered_map<SymbolId, SsaId> EntryDefOf;

  std::vector<LatticeValue> Values;
  std::vector<uint8_t> ExecBlock;
  std::vector<std::vector<uint8_t>> ExecEdge;
  std::vector<std::pair<BlockId, uint32_t>> EdgeWork;
  std::vector<SsaId> SsaWork;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_SCCP_H
