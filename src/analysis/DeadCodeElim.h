//===- analysis/DeadCodeElim.h - Branch-driven dead code removal -*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-level dead-code elimination driven by constant branch
/// conditions, the DCE half of the paper's "complete propagation"
/// experiment (Table 3, column 3): after an IPCP round, branches whose
/// conditions the seeded SCCP proved constant are folded in the AST, and
/// the entire analysis re-runs from scratch on the smaller program.
/// Removing a dead arm can delete conflicting definitions and calls,
/// which is precisely what exposes additional constants.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_DEADCODEELIM_H
#define IPCP_ANALYSIS_DEADCODEELIM_H

#include "lang/Ast.h"

#include <unordered_map>
#include <vector>

namespace ipcp {

/// Folds statically-decided branches in a program's AST.
class DeadCodeElim {
public:
  /// Branch decisions: source statement id of an If/While/DoLoop whose
  /// condition is a known constant, mapped to taken-is-true.
  using Decisions = std::unordered_map<StmtId, bool>;

  /// Rewrites every procedure body of \p Ctx's program in place:
  ///  * an If with a known condition is replaced by its taken arm;
  ///  * a While with a known-false condition is deleted;
  ///  * a DoLoop with a known-false header test (zero iterations) is
  ///    replaced by the loop-variable initialization it still performs.
  /// Known-true loop conditions are left alone (the loop body still
  /// executes). Returns the number of statements folded.
  ///
  /// With a non-null \p DirtyProcs, appends (in ProcId order) the ids of
  /// the procedures whose bodies the pass structurally changed — i.e.
  /// folded at least one statement in. A procedure outside this set has
  /// the exact same statement tree as before the call, so incremental
  /// callers (AnalysisSession) can keep its lowered IR.
  static unsigned run(AstContext &Ctx, const Decisions &Decisions,
                      std::vector<ProcId> *DirtyProcs = nullptr);
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_DEADCODEELIM_H
