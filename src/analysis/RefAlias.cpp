//===- analysis/RefAlias.cpp - Call-by-reference alias analysis -----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/RefAlias.h"

#include <algorithm>

using namespace ipcp;

namespace {

/// Sorted-unique symbol set; the binding sets are tiny (one entry per
/// distinct variable actual reaching a formal).
using LocSet = std::vector<SymbolId>;

bool insertLoc(LocSet &Set, SymbolId Sym) {
  auto It = std::lower_bound(Set.begin(), Set.end(), Sym);
  if (It != Set.end() && *It == Sym)
    return false;
  Set.insert(It, Sym);
  return true;
}

bool unionInto(LocSet &Into, const LocSet &From) {
  bool Changed = false;
  for (SymbolId Sym : From)
    Changed |= insertLoc(Into, Sym);
  return Changed;
}

bool intersects(const LocSet &A, const LocSet &B) {
  auto AI = A.begin();
  auto BI = B.begin();
  while (AI != A.end() && BI != B.end()) {
    if (*AI == *BI)
      return true;
    if (*AI < *BI)
      ++AI;
    else
      ++BI;
  }
  return false;
}

} // namespace

RefAliasInfo::RefAliasInfo(const Module &M, const SymbolTable &Symbols,
                           const ModRefInfo *MRI) {
  size_t NumProcs = M.Functions.size();
  size_t NumSyms = Symbols.size();
  Unstable.assign(NumProcs, std::vector<uint8_t>(NumSyms, 0));

  // Bind[P][I]: the variable locations (globals and caller locals,
  // program-wide unique SymbolIds) that formal I of procedure P may be
  // bound to by reference at some call site. Expression actuals bind to
  // by-value temporaries and contribute nothing. A formal actual forwards
  // its own binding set, so the sets close transitively over call chains;
  // every call site in the module participates (reachability would only
  // shrink the sets, and conservatism is free here).
  std::vector<std::vector<LocSet>> Bind(NumProcs);
  for (ProcId P = 0; P != NumProcs; ++P)
    Bind[P].resize(Symbols.formals(P).size());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProcId Caller = 0; Caller != NumProcs; ++Caller) {
      const Function &F = M.function(Caller);
      for (BlockId B = 0, BE = static_cast<BlockId>(F.numBlocks()); B != BE;
           ++B) {
        for (const Instr &In : F.block(B).Instrs) {
          if (In.Op != Opcode::Call)
            continue;
          auto &CalleeBind = Bind[In.Callee];
          for (uint32_t I = 0,
                        E = static_cast<uint32_t>(
                            std::min(In.Args.size(), CalleeBind.size()));
               I != E; ++I) {
            const Operand &Actual = In.Args[I];
            if (!Actual.isVar())
              continue;
            const Symbol &S = Symbols.symbol(Actual.Sym);
            if (S.Kind == SymbolKind::Formal)
              Changed |=
                  unionInto(CalleeBind[I], Bind[Caller][S.FormalIndex]);
            else if (S.isScalar())
              Changed |= insertLoc(CalleeBind[I], Actual.Sym);
          }
        }
      }
    }
  }

  // A pair is unstable when either member may be modified within the
  // procedure (directly or through its calls). Without MOD summaries the
  // modification side is unknown, so every pair is unstable.
  auto mayMod = [&](ProcId P, SymbolId Sym) {
    return !MRI || MRI->mods(P, Sym);
  };
  for (ProcId P = 0; P != NumProcs; ++P) {
    const auto &Formals = Symbols.formals(P);
    auto markPair = [&](SymbolId A, SymbolId B) {
      ++NumAliasPairs;
      if (!mayMod(P, A) && !mayMod(P, B))
        return;
      Unstable[P][A] = 1;
      Unstable[P][B] = 1;
    };
    for (uint32_t I = 0, E = static_cast<uint32_t>(Formals.size()); I != E;
         ++I) {
      for (SymbolId Loc : Bind[P][I])
        if (Symbols.symbol(Loc).Kind == SymbolKind::Global)
          markPair(Formals[I], Loc);
      for (uint32_t J = I + 1; J != E; ++J)
        if (intersects(Bind[P][I], Bind[P][J]))
          markPair(Formals[I], Formals[J]);
    }
    for (SymbolId Sym = 0; Sym != NumSyms; ++Sym)
      NumUnstable += Unstable[P][Sym];
  }
}
