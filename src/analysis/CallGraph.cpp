//===- analysis/CallGraph.cpp - Program call graph ------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace ipcp;

CallGraph::CallGraph(const Module &M, ProcId Entry) : Entry(Entry) {
  size_t N = M.Functions.size();
  Sites.resize(N);
  Callers.resize(N);
  Reachable.assign(N, 0);
  SccIds.assign(N, UINT32_MAX);
  Recursive.assign(N, 0);

  for (ProcId P = 0; P != N; ++P) {
    const Function &F = M.function(P);
    for (BlockId B = 0, BE = static_cast<BlockId>(F.numBlocks()); B != BE;
         ++B) {
      const auto &Instrs = F.block(B).Instrs;
      for (uint32_t I = 0, IE = static_cast<uint32_t>(Instrs.size());
           I != IE; ++I) {
        if (Instrs[I].Op != Opcode::Call)
          continue;
        CallSite S;
        S.Caller = P;
        S.Callee = Instrs[I].Callee;
        S.Block = B;
        S.InstrIdx = I;
        Sites[P].push_back(S);
        Callers[S.Callee].push_back(S);
      }
    }
  }

  // Reachability and DFS postorder from the entry (iterative).
  std::vector<std::pair<ProcId, size_t>> Stack;
  std::vector<ProcId> PostOrder;
  Reachable[Entry] = 1;
  Stack.push_back({Entry, 0});
  while (!Stack.empty()) {
    auto &[P, Next] = Stack.back();
    if (Next < Sites[P].size()) {
      ProcId Callee = Sites[P][Next++].Callee;
      if (!Reachable[Callee]) {
        Reachable[Callee] = 1;
        Stack.push_back({Callee, 0});
      }
      continue;
    }
    PostOrder.push_back(P);
    Stack.pop_back();
  }
  BottomUp = PostOrder;
  TopDown.assign(PostOrder.rbegin(), PostOrder.rend());

  // Tarjan SCCs (iterative), over all procedures.
  struct NodeState {
    uint32_t Index = UINT32_MAX;
    uint32_t LowLink = 0;
    bool OnStack = false;
  };
  std::vector<NodeState> State(N);
  std::vector<ProcId> SccStack;
  uint32_t NextIndex = 0;
  uint32_t NextScc = 0;

  struct TarjanFrame {
    ProcId P;
    size_t NextEdge;
  };
  for (ProcId Root = 0; Root != N; ++Root) {
    if (State[Root].Index != UINT32_MAX)
      continue;
    std::vector<TarjanFrame> Frames;
    Frames.push_back({Root, 0});
    State[Root].Index = State[Root].LowLink = NextIndex++;
    State[Root].OnStack = true;
    SccStack.push_back(Root);

    while (!Frames.empty()) {
      TarjanFrame &Top = Frames.back();
      if (Top.NextEdge < Sites[Top.P].size()) {
        ProcId W = Sites[Top.P][Top.NextEdge++].Callee;
        if (State[W].Index == UINT32_MAX) {
          State[W].Index = State[W].LowLink = NextIndex++;
          State[W].OnStack = true;
          SccStack.push_back(W);
          Frames.push_back({W, 0});
        } else if (State[W].OnStack) {
          State[Top.P].LowLink = std::min(State[Top.P].LowLink,
                                          State[W].Index);
        }
        continue;
      }
      ProcId P = Top.P;
      Frames.pop_back();
      if (!Frames.empty())
        State[Frames.back().P].LowLink =
            std::min(State[Frames.back().P].LowLink, State[P].LowLink);
      if (State[P].LowLink != State[P].Index)
        continue;
      // P is an SCC root; pop its members.
      std::vector<ProcId> Members;
      for (;;) {
        ProcId W = SccStack.back();
        SccStack.pop_back();
        State[W].OnStack = false;
        SccIds[W] = NextScc;
        Members.push_back(W);
        if (W == P)
          break;
      }
      bool SelfLoop = false;
      for (const CallSite &S : Sites[P])
        SelfLoop |= S.Callee == P;
      if (Members.size() > 1 || SelfLoop)
        for (ProcId W : Members)
          Recursive[W] = 1;
      ++NextScc;
    }
  }
}

size_t CallGraph::numCallSites() const {
  size_t Total = 0;
  for (const auto &S : Sites)
    Total += S.size();
  return Total;
}
