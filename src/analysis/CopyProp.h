//===- analysis/CopyProp.h - Array-cell copy propagation --------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intraprocedural copy propagation over array cells, feeding the
/// interprocedural copy lattice (ipcp/CopyLattice.h). Array loads are the
/// one value source the constant framework declares permanently opaque
/// (docs/LANGUAGE.md, limitation 2): every `x = a(i)` is BOTTOM in SCCP and
/// Opaque in value numbering, even when the program just stored a literal
/// or an unmodified formal into that exact cell. This analysis recovers the
/// provable cases:
///
///  * **Cells.** A tracked cell is an (array symbol, constant index) pair
///    that some `a(c) = v` store writes. Distinct constant indices of one
///    array never alias; a store through a non-constant index smashes every
///    cell of that array.
///
///  * **Facts.** A forward *must*-dataflow (TOP-initialized interior, all-
///    BOTTOM entry, meet at joins, fixpoint over loops) proves, per program
///    point, that a cell holds Const(c) — a literal was stored — or
///    Copy(s) — the entry value of a *stable* symbol s was stored. Stable
///    means: an interprocedural parameter (formal or global scalar) that is
///    never defined in the procedure, never in any call's kill set (which
///    embeds MOD), and not in the reference-alias unstable mask, so its
///    memory value provably equals its entry value everywhere.
///
///  * **Kills.** A call kills the cells of every global array the callee
///    may modify (MOD-aware; with no MOD information every call kills all
///    global-array cells). Local arrays survive calls unconditionally —
///    MiniFort arrays cannot be passed as actuals, and locals are fresh
///    per activation, so no callee can reach them.
///
/// Consumers resolve Load instructions: value numbering maps a resolved
/// load to getConst(c) / getCopyOf(s) instead of Opaque, which lets jump
/// functions classify `call f(a(1))` actuals as Const/Copy/Poly instead of
/// Bottom; SCCP maps it to the literal / the entry SSA value of s. Facts
/// only upgrade points that were BOTTOM classically, so every classic
/// constant is preserved and CONSTANTS sets grow monotonically
/// (classic subset-of copy, checked per-proc by check-copy).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_COPYPROP_H
#define IPCP_ANALYSIS_COPYPROP_H

#include "ipcp/CopyLattice.h"
#include "ir/Function.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace ipcp {

class ModRefInfo;
class RefAliasInfo;

/// Per-procedure resolved-load facts. Queries are valid for any
/// (block, instruction) of the procedure's CFG.
class ProcCopyProp {
public:
  /// True when no load in the procedure resolves: consumers may skip the
  /// per-instruction lookup entirely.
  bool trivial() const { return Facts.empty(); }

  /// The resolved cell value for the Load instruction at \p InstrIdx of
  /// block \p B, or null when the load stays opaque. The returned fact is
  /// always Const or Copy.
  const CopyValue *factAt(BlockId B, uint32_t InstrIdx) const {
    if (Facts.empty())
      return nullptr;
    auto It = Facts.find(key(B, InstrIdx));
    return It == Facts.end() ? nullptr : &It->second;
  }

private:
  friend class CopyPropInfo;

  static uint64_t key(BlockId B, uint32_t InstrIdx) {
    return (static_cast<uint64_t>(B) << 32) | InstrIdx;
  }

  /// (block << 32 | instr) -> resolved value, only for loads that resolve.
  std::unordered_map<uint64_t, CopyValue> Facts;
};

/// Program-wide copy-propagation facts plus the statistics the pipeline
/// surfaces.
class CopyPropInfo {
public:
  /// Analyzes every procedure of \p M. \p MRI supplies callee MOD sets for
  /// array-cell kills and scalar call kills (null = worst case), exactly as
  /// the SSA overlay's kill oracle does. \p Aliases is the by-reference
  /// alias analysis whose unstable masks gate copy-source stability.
  CopyPropInfo(const Module &M, const SymbolTable &Symbols,
               const ModRefInfo *MRI, const RefAliasInfo &Aliases);

  const ProcCopyProp &proc(ProcId P) const { return Procs.at(P); }

  /// Number of (array, constant index) cells tracked program-wide.
  size_t numTrackedCells() const { return NumTrackedCells; }

  /// Number of Load instructions that resolve to Const or Copy.
  size_t numResolvedLoads() const { return NumResolvedLoads; }

private:
  std::vector<ProcCopyProp> Procs;
  size_t NumTrackedCells = 0;
  size_t NumResolvedLoads = 0;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_COPYPROP_H
