//===- serve/Transport.h - stdio and TCP line pumps -------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's transports. Both are deliberately dumb line pumps: all
/// protocol intelligence (parsing, admission, coalescing, deadlines)
/// lives in Server; a transport only moves request lines in and reply
/// lines out.
///
/// serveStream() pumps an istream/ostream pair (the stdio mode, and the
/// in-process harness the tests use). Requests are submitted
/// asynchronously, so replies may interleave out of request order —
/// clients match by id. The pump returns at EOF or once a shutdown
/// request begins draining, after every submitted request has been
/// answered.
///
/// Both transports speak to a RequestHandler (serve/Handler.h), not to
/// Server directly, so the same pumps front a computing Server or a
/// forwarding Router.
///
/// TcpListener accepts loopback connections and serves each on its own
/// thread, one request at a time per connection (concurrency comes from
/// opening more connections, which is what the bench's closed-loop
/// clients do). The listener binds 127.0.0.1 only — this is a local
/// analysis daemon, not a network service.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_TRANSPORT_H
#define IPCP_SERVE_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

namespace ipcp {

class RequestHandler;

/// Pumps request lines from \p In into \p S and reply lines to \p Out
/// (one per line, flushed). Returns at EOF or when a shutdown request
/// begins draining; every reply for a submitted request has been
/// written by the time it returns. Blank lines are ignored.
void serveStream(RequestHandler &S, std::istream &In, std::ostream &Out);

/// A loopback TCP acceptor serving one connection per thread.
class TcpListener {
public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener &) = delete;
  TcpListener &operator=(const TcpListener &) = delete;

  /// Binds 127.0.0.1:\p Port (0 = kernel-assigned ephemeral port; query
  /// the result with port()). Returns false and fills \p Error on
  /// failure — the environment may forbid sockets, so callers must
  /// treat failure as a degraded mode, not a crash.
  bool listen(uint16_t Port, std::string &Error);

  /// The bound port (after a successful listen()).
  uint16_t port() const { return BoundPort; }

  /// Accept loop. Returns once stop() is called or \p S starts
  /// draining; all connection threads are joined before it returns.
  void run(RequestHandler &S);

  /// Signals run() to return. Safe from any thread.
  void stop() { Stopping.store(true, std::memory_order_release); }

private:
  int Fd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stopping{false};
  std::vector<std::thread> Conns;
};

} // namespace ipcp

#endif // IPCP_SERVE_TRANSPORT_H
