//===- serve/SessionCache.cpp - Content-addressed session LRU -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/SessionCache.h"

#include "lang/Parser.h"
#include "serve/Protocol.h"

using namespace ipcp;

void SessionCache::Program::ensureFrontend() {
  std::call_once(FrontendOnce, [this] {
    DiagnosticEngine Diags;
    Ctx = parseProgram(Source, Diags);
    if (!Diags.hasErrors())
      Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors()) {
      FrontendError = Diags.str();
      Ctx.reset();
      return;
    }
    Session = std::make_unique<AnalysisSession>(*Ctx, Symbols);
    SessionReady.store(Session.get(), std::memory_order_release);
  });
}

SessionCache::SessionCache(size_t Capacity)
    : Capacity(Capacity ? Capacity : 1) {}

std::shared_ptr<SessionCache::Program>
SessionCache::acquire(const std::string &Source, bool &WasResident) {
  uint64_t Key = contentHash(Source, "");
  // Declared before the lock so an evicted Program (a full AST plus
  // analysis session, milliseconds to tear down) is destroyed *after*
  // the mutex is released, not while every other worker waits on it.
  std::shared_ptr<Program> Doomed;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    if (It->second.P->Source == Source) {
      WasResident = true;
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      return It->second.P;
    }
    // 64-bit hash collision between distinct sources: serve the new one
    // uncached rather than corrupting the resident entry. (Astronomically
    // rare; correctness must not depend on it being impossible.)
    WasResident = false;
    Misses.fetch_add(1, std::memory_order_relaxed);
    auto P = std::make_shared<Program>();
    P->Source = Source;
    return P;
  }

  WasResident = false;
  Misses.fetch_add(1, std::memory_order_relaxed);
  auto P = std::make_shared<Program>();
  P->Source = Source;
  Lru.push_front(Key);
  Index.emplace(Key, Slot{P, Lru.begin()});
  if (Index.size() > Capacity) {
    uint64_t Victim = Lru.back();
    Lru.pop_back();
    auto VictimIt = Index.find(Victim);
    if (AnalysisSession *S =
            VictimIt->second.P->SessionReady.load(std::memory_order_acquire)) {
      RetiredMemoHits.fetch_add(S->solverMemo().hits(),
                                std::memory_order_relaxed);
      RetiredMemoMisses.fetch_add(S->solverMemo().misses(),
                                  std::memory_order_relaxed);
    }
    Doomed = std::move(VictimIt->second.P);
    Index.erase(VictimIt);
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return P;
}

std::optional<JsonValue> SessionCache::cachedReply(Program &P,
                                                   const std::string &CfgKey) {
  std::lock_guard<std::mutex> Lock(P.ReplyMutex);
  auto It = P.Replies.find(CfgKey);
  if (It == P.Replies.end())
    return std::nullopt;
  ReplyHits.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

void SessionCache::storeReply(Program &P, const std::string &CfgKey,
                              JsonValue Payload) {
  std::lock_guard<std::mutex> Lock(P.ReplyMutex);
  P.Replies.emplace(CfgKey, std::move(Payload));
}

SessionCacheStats SessionCache::stats() const {
  SessionCacheStats S;
  S.ReplyHits = ReplyHits.load(std::memory_order_relaxed);
  S.SessionHits = SessionHits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.MemoHits = RetiredMemoHits.load(std::memory_order_relaxed);
  S.MemoMisses = RetiredMemoMisses.load(std::memory_order_relaxed);
  {
    auto *Self = const_cast<SessionCache *>(this);
    std::lock_guard<std::mutex> Lock(Self->Mutex);
    S.Entries = Index.size();
    for (const auto &[Key, Slot] : Self->Index) {
      if (AnalysisSession *Live =
              Slot.P->SessionReady.load(std::memory_order_acquire)) {
        S.MemoHits += Live->solverMemo().hits();
        S.MemoMisses += Live->solverMemo().misses();
      }
    }
  }
  return S;
}
