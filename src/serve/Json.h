//===- serve/Json.h - Minimal JSON values for the wire protocol -*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest JSON layer the line protocol needs: a value type, a
/// strict recursive-descent parser, and a serializer. No external
/// dependency — the toolchain constraint rules out picking one up — and
/// no clever zero-copy tricks: requests are one line and replies are
/// built once.
///
/// Robustness contract (the server's, really): parseJson never throws
/// and never aborts on malformed input; it returns nullopt and a
/// diagnostic so a garbage line becomes a structured `malformed` reply,
/// not a dead process. Depth is bounded to keep adversarial nesting from
/// overflowing the stack.
///
/// Numbers are kept as int64 when the text is integral (lattice
/// constants, counters — everything this protocol carries) and as double
/// otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_JSON_H
#define IPCP_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipcp {

/// One JSON value. Objects keep their keys sorted (std::map) so
/// serialization is canonical — handy for golden tests and for hashing.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool B) : K(Kind::Bool), BoolV(B) {}
  JsonValue(int64_t I) : K(Kind::Int), IntV(I) {}
  JsonValue(int I) : K(Kind::Int), IntV(I) {}
  JsonValue(unsigned I) : K(Kind::Int), IntV(I) {}
  JsonValue(uint64_t I) : K(Kind::Int), IntV(static_cast<int64_t>(I)) {}
  JsonValue(double D) : K(Kind::Double), DoubleV(D) {}
  JsonValue(std::string S) : K(Kind::String), StringV(std::move(S)) {}
  JsonValue(const char *S) : K(Kind::String), StringV(S) {}

  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }
  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }

  bool boolean() const { return BoolV; }
  int64_t integer() const { return IntV; }
  /// Numeric value of an Int or Double.
  double number() const { return K == Kind::Int ? double(IntV) : DoubleV; }
  const std::string &str() const { return StringV; }

  std::vector<JsonValue> &elements() { return ArrayV; }
  const std::vector<JsonValue> &elements() const { return ArrayV; }
  std::map<std::string, JsonValue> &members() { return ObjectV; }
  const std::map<std::string, JsonValue> &members() const { return ObjectV; }

  /// Object member by key, or null when absent / not an object.
  const JsonValue *find(const std::string &Key) const;

  /// Sets an object member (the value becomes an object if null).
  JsonValue &set(const std::string &Key, JsonValue V);

  /// Appends an array element (the value becomes an array if null).
  JsonValue &push(JsonValue V);

  /// Typed member access with defaults — the request-decoding idiom.
  std::string strOr(const std::string &Key, const std::string &Dflt) const;
  int64_t intOr(const std::string &Key, int64_t Dflt) const;
  bool boolOr(const std::string &Key, bool Dflt) const;

  /// Serializes without insignificant whitespace (one request/reply per
  /// line; the serializer never emits '\n').
  std::string dump() const;

private:
  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  double DoubleV = 0;
  std::string StringV;
  std::vector<JsonValue> ArrayV;
  std::map<std::string, JsonValue> ObjectV;
};

/// Parses one JSON document from \p Text (surrounding whitespace
/// allowed, trailing garbage rejected). Returns nullopt with a
/// diagnostic in \p Error on any malformation.
std::optional<JsonValue> parseJson(std::string_view Text, std::string &Error);

} // namespace ipcp

#endif // IPCP_SERVE_JSON_H
