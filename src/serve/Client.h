//===- serve/Client.h - Client for a running ipcp-serve ---------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A blocking TCP client for the serve protocol, used by the driver's
/// --server-url mode, the throughput bench's load generators, and the
/// round-trip tests. One call() is one request line out and one reply
/// line back; a ServeClient is single-threaded (open one per client
/// thread).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_CLIENT_H
#define IPCP_SERVE_CLIENT_H

#include "serve/Json.h"

#include <string>

namespace ipcp {

class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to \p Url — "host:port" or just "port" (localhost). Only
  /// loopback addresses are supported, matching the listener. Returns
  /// false and fills \p Error on failure.
  bool connect(const std::string &Url, std::string &Error);

  bool connected() const { return Fd >= 0; }

  /// Sends \p RequestLine (newline appended) and blocks for one reply
  /// line. Returns false on transport failure (never on a protocol-level
  /// error reply — those are successful calls whose reply says ok:false).
  bool call(const std::string &RequestLine, std::string &ReplyLine,
            std::string &Error);

  void close();

private:
  int Fd = -1;
  std::string Buffer; ///< Bytes read past the previous reply line.
};

} // namespace ipcp

#endif // IPCP_SERVE_CLIENT_H
