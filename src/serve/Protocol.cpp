//===- serve/Protocol.cpp - ipcp-serve wire protocol ----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstring>

using namespace ipcp;

const char *ipcp::serveMethodName(ServeMethod M) {
  switch (M) {
  case ServeMethod::AnalyzeSource:
    return "analyze-source";
  case ServeMethod::AnalyzeSuiteProgram:
    return "analyze-suite-program";
  case ServeMethod::Validate:
    return "validate";
  case ServeMethod::FuzzReplay:
    return "fuzz-replay";
  case ServeMethod::Stats:
    return "stats";
  case ServeMethod::Shutdown:
    return "shutdown";
  }
  return "?";
}

const char *ipcp::serveErrorKindName(ServeErrorKind K) {
  switch (K) {
  case ServeErrorKind::Malformed:
    return "malformed";
  case ServeErrorKind::Overloaded:
    return "overloaded";
  case ServeErrorKind::Deadline:
    return "deadline";
  case ServeErrorKind::ShuttingDown:
    return "shutting-down";
  case ServeErrorKind::AnalysisError:
    return "analysis-error";
  case ServeErrorKind::Internal:
    return "internal";
  }
  return "?";
}

namespace {

bool parseMethod(const std::string &Name, ServeMethod &Out) {
  for (ServeMethod M :
       {ServeMethod::AnalyzeSource, ServeMethod::AnalyzeSuiteProgram,
        ServeMethod::Validate, ServeMethod::FuzzReplay, ServeMethod::Stats,
        ServeMethod::Shutdown})
    if (Name == serveMethodName(M)) {
      Out = M;
      return true;
    }
  return false;
}

const char *kindToken(JumpFunctionKind K) {
  switch (K) {
  case JumpFunctionKind::Literal:
    return "literal";
  case JumpFunctionKind::IntraConst:
    return "intra";
  case JumpFunctionKind::PassThrough:
    return "pass";
  case JumpFunctionKind::Polynomial:
    return "poly";
  }
  return "?";
}

const char *strategyToken(SolverStrategy S) {
  switch (S) {
  case SolverStrategy::Worklist:
    return "worklist";
  case SolverStrategy::RoundRobin:
    return "round-robin";
  case SolverStrategy::BindingGraph:
    return "binding-graph";
  }
  return "?";
}

/// Decodes the `config` object into PipelineOptions. Unknown members
/// are rejected: a typo'd field silently analyzing under defaults is
/// exactly the kind of bug a service protocol must not have.
bool parseConfig(const JsonValue &Cfg, PipelineOptions &Opts,
                 std::string &Error) {
  if (!Cfg.isObject()) {
    Error = "'config' must be an object";
    return false;
  }
  for (const auto &[Key, V] : Cfg.members()) {
    if (Key == "jf") {
      std::string Kind = V.isString() ? V.str() : "";
      if (Kind == "literal")
        Opts.Kind = JumpFunctionKind::Literal;
      else if (Kind == "intra")
        Opts.Kind = JumpFunctionKind::IntraConst;
      else if (Kind == "pass")
        Opts.Kind = JumpFunctionKind::PassThrough;
      else if (Kind == "poly")
        Opts.Kind = JumpFunctionKind::Polynomial;
      else {
        Error = "config.jf must be literal|intra|pass|poly";
        return false;
      }
    } else if (Key == "strategy") {
      std::string S = V.isString() ? V.str() : "";
      if (S == "worklist")
        Opts.Strategy = SolverStrategy::Worklist;
      else if (S == "round-robin")
        Opts.Strategy = SolverStrategy::RoundRobin;
      else if (S == "binding-graph")
        Opts.Strategy = SolverStrategy::BindingGraph;
      else {
        Error = "config.strategy must be worklist|round-robin|binding-graph";
        return false;
      }
    } else if (Key == "rjf" || Key == "mod" || Key == "complete" ||
               Key == "gsa" || Key == "fsa" || Key == "ogvn" ||
               Key == "copy" || Key == "intra_only") {
      if (!V.isBool()) {
        Error = "config." + Key + " must be a boolean";
        return false;
      }
      bool B = V.boolean();
      if (Key == "rjf")
        Opts.UseReturnJumpFunctions = B;
      else if (Key == "mod")
        Opts.UseMod = B;
      else if (Key == "complete")
        Opts.CompletePropagation = B;
      else if (Key == "gsa")
        Opts.UseGatedSsa = B;
      else if (Key == "fsa")
        Opts.FlowSensitiveAlias = B;
      else if (Key == "ogvn")
        Opts.OptimisticVn = B;
      else if (Key == "copy")
        Opts.CopyPropagation = B;
      else
        Opts.IntraproceduralOnly = B;
    } else {
      Error = "unknown config field '" + Key + "'";
      return false;
    }
  }
  return true;
}

bool parseReport(const JsonValue &Rep, ReportOptions &Out,
                 std::string &Error) {
  if (!Rep.isObject()) {
    Error = "'report' must be an object";
    return false;
  }
  for (const auto &[Key, V] : Rep.members()) {
    if (!V.isBool()) {
      Error = "report." + Key + " must be a boolean";
      return false;
    }
    if (Key == "quiet")
      Out.Quiet = V.boolean();
    else if (Key == "stats")
      Out.Stats = V.boolean();
    else if (Key == "emit_source")
      Out.EmitSource = V.boolean();
    else {
      Error = "unknown report field '" + Key + "'";
      return false;
    }
  }
  return true;
}

} // namespace

bool ipcp::parseServeRequest(const std::string &Line, ServeRequest &Out,
                             std::string &Error) {
  std::optional<JsonValue> Doc = parseJson(Line, Error);
  if (!Doc) {
    Error = "bad JSON: " + Error;
    return false;
  }
  if (!Doc->isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  // The id is extracted before any validation so even a bad request's
  // error reply carries it.
  Out.Id = Doc->strOr("id", "");

  const JsonValue *Method = Doc->find("method");
  if (!Method || !Method->isString()) {
    Error = "missing 'method'";
    return false;
  }
  if (!parseMethod(Method->str(), Out.Method)) {
    Error = "unknown method '" + Method->str() + "'";
    return false;
  }

  const JsonValue *Params = Doc->find("params");
  JsonValue Empty = JsonValue::object();
  if (!Params)
    Params = &Empty;
  if (!Params->isObject()) {
    Error = "'params' must be an object";
    return false;
  }

  if (const JsonValue *D = Params->find("deadline_ms")) {
    if (D->kind() != JsonValue::Kind::Int &&
        D->kind() != JsonValue::Kind::Double) {
      Error = "params.deadline_ms must be a number";
      return false;
    }
    Out.DeadlineMs = D->number();
  }

  switch (Out.Method) {
  case ServeMethod::AnalyzeSource:
  case ServeMethod::Validate: {
    const JsonValue *Src = Params->find("source");
    if (!Src || !Src->isString()) {
      Error = "missing params.source";
      return false;
    }
    Out.Source = Src->str();
    break;
  }
  case ServeMethod::AnalyzeSuiteProgram: {
    const JsonValue *Prog = Params->find("program");
    if (!Prog || !Prog->isString()) {
      Error = "missing params.program";
      return false;
    }
    Out.SuiteProgram = Prog->str();
    break;
  }
  case ServeMethod::FuzzReplay: {
    const JsonValue *E = Params->find("entry");
    if (!E || !E->isString()) {
      Error = "missing params.entry";
      return false;
    }
    Out.Source = E->str();
    break;
  }
  case ServeMethod::Stats:
  case ServeMethod::Shutdown:
    break;
  }

  if (const JsonValue *Cfg = Params->find("config"))
    if (!parseConfig(*Cfg, Out.Config, Error))
      return false;
  if (const JsonValue *Rep = Params->find("report"))
    if (!parseReport(*Rep, Out.Report, Error))
      return false;
  if (const JsonValue *Seed = Params->find("read_seed")) {
    if (!Seed->isInt() || Seed->integer() < 0) {
      Error = "params.read_seed must be a non-negative integer";
      return false;
    }
    Out.ReadSeed = static_cast<uint64_t>(Seed->integer());
  }
  if (const JsonValue *Steps = Params->find("max_steps")) {
    if (!Steps->isInt() || Steps->integer() < 0) {
      Error = "params.max_steps must be a non-negative integer";
      return false;
    }
    Out.MaxSteps = static_cast<uint64_t>(Steps->integer());
  }
  if (const JsonValue *Exec = Params->find("exec")) {
    std::string Name = Exec->isString() ? Exec->str() : "";
    if (auto E = parseExecEngineName(Name)) {
      Out.Exec = *E;
    } else {
      Error = "params.exec must be vm or ast";
      return false;
    }
  }
  return true;
}

std::string ipcp::configKey(const PipelineOptions &Opts,
                            const ReportOptions &R) {
  std::string Key;
  Key += "jf=";
  Key += kindToken(Opts.Kind);
  Key += " rjf=";
  Key += Opts.UseReturnJumpFunctions ? '1' : '0';
  Key += " mod=";
  Key += Opts.UseMod ? '1' : '0';
  Key += " complete=";
  Key += Opts.CompletePropagation ? '1' : '0';
  Key += " gsa=";
  Key += Opts.UseGatedSsa ? '1' : '0';
  Key += " fsa=";
  Key += Opts.FlowSensitiveAlias ? '1' : '0';
  Key += " ogvn=";
  Key += Opts.OptimisticVn ? '1' : '0';
  Key += " copy=";
  Key += Opts.CopyPropagation ? '1' : '0';
  Key += " intra=";
  Key += Opts.IntraproceduralOnly ? '1' : '0';
  Key += " strategy=";
  Key += strategyToken(Opts.Strategy);
  Key += " quiet=";
  Key += R.Quiet ? '1' : '0';
  Key += " stats=";
  Key += R.Stats ? '1' : '0';
  Key += " emit=";
  Key += R.EmitSource ? '1' : '0';
  return Key;
}

uint64_t ipcp::contentHash(const std::string &Source,
                           const std::string &CfgKey) {
  // FNV-1a over 8-byte blocks with a byte-wise tail. The hash is an
  // in-memory cache/coalescing key only — its exact values are never
  // serialized — so block mixing (8x fewer multiplies than the byte-wise
  // form) is free to change them.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](const std::string &S) {
    const char *P = S.data();
    size_t N = S.size();
    while (N >= 8) {
      uint64_t Block;
      std::memcpy(&Block, P, 8);
      H = (H ^ Block) * 0x100000001b3ull;
      P += 8;
      N -= 8;
    }
    for (; N; --N, ++P) {
      H ^= static_cast<unsigned char>(*P);
      H *= 0x100000001b3ull;
    }
    // Separator so ("ab","c") and ("a","bc") differ; mixing the length
    // keeps blocks from aliasing across the boundary.
    H ^= 0xff;
    H = (H ^ S.size()) * 0x100000001b3ull;
  };
  Mix(Source);
  Mix(CfgKey);
  return H;
}

uint64_t ipcp::requestContentKey(const ServeRequest &Req) {
  std::string K = Req.Method == ServeMethod::AnalyzeSource ||
                          Req.Method == ServeMethod::AnalyzeSuiteProgram
                      ? "analyze"
                      : serveMethodName(Req.Method);
  K += '\n';
  K += configKey(Req.Config, Req.Report);
  K += "\nseed=";
  K += std::to_string(Req.ReadSeed);
  K += " steps=";
  K += std::to_string(Req.MaxSteps);
  K += " exec=";
  K += execEngineName(Req.Exec);
  // The server hashes the resolved source (a suite name has already been
  // replaced by its text); the router sees the unresolved request and
  // hashes the suite name instead — either way the key is a pure
  // function of the request's content.
  return contentHash(Req.Source.empty() ? Req.SuiteProgram : Req.Source, K);
}

std::string ipcp::makeOkReply(const std::string &Id, JsonValue Result) {
  JsonValue Reply = JsonValue::object();
  Reply.set("id", Id);
  Reply.set("ok", JsonValue(true));
  Reply.set("result", std::move(Result));
  return Reply.dump();
}

std::string ipcp::makeErrorReply(const std::string &Id, ServeErrorKind Kind,
                                 const std::string &Message) {
  JsonValue Err = JsonValue::object();
  Err.set("kind", serveErrorKindName(Kind));
  Err.set("message", Message);
  JsonValue Reply = JsonValue::object();
  Reply.set("id", Id);
  Reply.set("ok", JsonValue(false));
  Reply.set("error", std::move(Err));
  return Reply.dump();
}

std::string ipcp::serializeServeRequest(const ServeRequest &Req) {
  JsonValue Params = JsonValue::object();
  switch (Req.Method) {
  case ServeMethod::AnalyzeSource:
  case ServeMethod::Validate:
    Params.set("source", Req.Source);
    break;
  case ServeMethod::AnalyzeSuiteProgram:
    Params.set("program", Req.SuiteProgram);
    break;
  case ServeMethod::FuzzReplay:
    Params.set("entry", Req.Source);
    break;
  case ServeMethod::Stats:
  case ServeMethod::Shutdown:
    break;
  }

  bool NeedsConfig = Req.Method == ServeMethod::AnalyzeSource ||
                     Req.Method == ServeMethod::AnalyzeSuiteProgram ||
                     Req.Method == ServeMethod::Validate;
  if (NeedsConfig) {
    JsonValue Cfg = JsonValue::object();
    Cfg.set("jf", kindToken(Req.Config.Kind));
    Cfg.set("rjf", JsonValue(Req.Config.UseReturnJumpFunctions));
    Cfg.set("mod", JsonValue(Req.Config.UseMod));
    Cfg.set("complete", JsonValue(Req.Config.CompletePropagation));
    Cfg.set("gsa", JsonValue(Req.Config.UseGatedSsa));
    // Precision flags follow the exec-engine pattern: defaults are
    // elided so pre-precision request lines stay byte-identical.
    if (Req.Config.FlowSensitiveAlias)
      Cfg.set("fsa", JsonValue(true));
    if (Req.Config.OptimisticVn)
      Cfg.set("ogvn", JsonValue(true));
    if (Req.Config.CopyPropagation)
      Cfg.set("copy", JsonValue(true));
    Cfg.set("intra_only", JsonValue(Req.Config.IntraproceduralOnly));
    Cfg.set("strategy", strategyToken(Req.Config.Strategy));
    Params.set("config", std::move(Cfg));

    JsonValue Rep = JsonValue::object();
    Rep.set("quiet", JsonValue(Req.Report.Quiet));
    Rep.set("stats", JsonValue(Req.Report.Stats));
    Rep.set("emit_source", JsonValue(Req.Report.EmitSource));
    Params.set("report", std::move(Rep));
  }
  if (Req.DeadlineMs != 0)
    Params.set("deadline_ms", JsonValue(Req.DeadlineMs));
  if (Req.Method == ServeMethod::Validate) {
    Params.set("read_seed", JsonValue(Req.ReadSeed));
    if (Req.MaxSteps)
      Params.set("max_steps", JsonValue(Req.MaxSteps));
  }
  // The VM default is elided so pre-engine-selector request lines stay
  // byte-identical.
  if ((Req.Method == ServeMethod::Validate ||
       Req.Method == ServeMethod::FuzzReplay) &&
      Req.Exec != ExecEngine::Vm)
    Params.set("exec", execEngineName(Req.Exec));

  JsonValue Doc = JsonValue::object();
  Doc.set("id", Req.Id);
  Doc.set("method", serveMethodName(Req.Method));
  Doc.set("params", std::move(Params));
  return Doc.dump();
}
