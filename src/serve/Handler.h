//===- serve/Handler.h - Transport-facing request interface -----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What a transport needs from whatever answers request lines. Two
/// implementations exist: Server (computes replies itself) and Router
/// (forwards to a fleet of backend servers). Transports pump lines into
/// submit() and write back whatever the completion callback delivers —
/// they never know which side of the split they are talking to, which is
/// what lets one ipcp-serve binary be either a backend or a front tier.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_HANDLER_H
#define IPCP_SERVE_HANDLER_H

#include <functional>
#include <future>
#include <string>

namespace ipcp {

class RequestHandler {
public:
  virtual ~RequestHandler() = default;

  /// Parses and answers one request line asynchronously. \p Done is
  /// invoked exactly once — possibly on the calling thread — with the
  /// serialized reply line (no trailing newline). \p Done must be
  /// thread-safe against other replies and must not block.
  virtual void submit(std::string Line,
                      std::function<void(std::string)> Done) = 0;

  /// Synchronous submit: blocks until the reply is ready.
  virtual std::string handle(const std::string &Line) {
    std::promise<std::string> P;
    std::future<std::string> F = P.get_future();
    submit(Line, [&P](std::string Reply) { P.set_value(std::move(Reply)); });
    return F.get();
  }

  /// True once a shutdown has begun draining; transports stop reading.
  virtual bool draining() const = 0;

  /// Begins draining (idempotent) and blocks until every admitted
  /// request has been answered.
  virtual void shutdown() = 0;
};

} // namespace ipcp

#endif // IPCP_SERVE_HANDLER_H
