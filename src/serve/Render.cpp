//===- serve/Render.cpp - Canonical analysis report text ------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Render.h"

#include <sstream>

using namespace ipcp;

std::string ipcp::renderAnalysisReport(const PipelineOptions &Opts,
                                       const PipelineResult &Result,
                                       const ReportOptions &Report) {
  std::ostringstream OS;
  if (Report.Quiet) {
    OS << Result.SubstitutedConstants << '\n';
    return OS.str();
  }

  OS << "jump function: " << jumpFunctionKindName(Opts.Kind)
     << (Opts.UseReturnJumpFunctions ? ", return JFs" : "")
     << (Opts.UseMod ? ", MOD" : ", no MOD")
     << (Opts.CompletePropagation ? ", complete" : "")
     << (Opts.UseGatedSsa ? ", gated SSA" : "")
     << (Opts.FlowSensitiveAlias ? ", flow-sensitive aliasing" : "")
     << (Opts.OptimisticVn ? ", optimistic GVN" : "")
     << (Opts.CopyPropagation ? ", copy propagation" : "")
     << (Opts.IntraproceduralOnly ? " [intraprocedural only]" : "") << "\n";
  OS << "constants substituted: " << Result.SubstitutedConstants << "\n";
  if (Opts.CompletePropagation)
    OS << "dead-code rounds: " << Result.DceRounds << " (folded "
       << Result.FoldedBranches << " branches)\n";

  if (Report.Stats) {
    const JumpFunctionStats &S = Result.JfStats;
    OS << "stats:\n"
       << "  forward jump functions: " << S.NumForward << " ("
       << S.NumForwardConst << " const, " << S.NumForwardPassThrough
       << " pass-through, " << S.NumForwardPoly << " polynomial, "
       << S.NumForwardBottom << " bottom)\n"
       << "  avg polynomial support: " << S.avgPolySupport() << " (max "
       << S.MaxPolySupport << ")\n"
       << "  return jump functions: " << S.NumReturn << " ("
       << S.NumReturnConst << " const, " << S.NumReturnPoly
       << " polynomial, " << S.NumReturnBottom << " bottom)\n"
       // The value-context memo counters are deliberately absent: they
       // are warmth-dependent (a warm session's shared memo hits more
       // than a cold run's), and a rendered report must be byte-
       // identical between local and served, cold and warm. Memo
       // effectiveness is reported where warmth is the point: the
       // server's `stats` reply and the driver's suite summary.
       << "  solver: " << Result.SolverProcVisits << " visits, "
       << Result.SolverJfEvaluations << " evaluations, "
       << Result.SolverCellLowerings << " cell lowerings\n"
       << "  constant prints: " << Result.ConstantPrints << "\n"
       << "  known-but-irrelevant globals (Metzger-Stroud): "
       << Result.KnownButIrrelevant << "\n";
    // Precision-tier lines appear only under their flags, so reports of
    // pre-precision configurations stay byte-identical.
    if (Opts.FlowSensitiveAlias)
      OS << "  alias points refined: " << Result.AliasPointsRefined << "\n";
    if (Opts.OptimisticVn)
      OS << "  optimistic GVN phi merges: " << Result.GvnPhiMerges << "\n";
    if (Opts.CopyPropagation)
      OS << "  copy loads resolved: " << Result.CopyLoadsResolved << " ("
         << Result.CopyForwardJfs << " copy forward JFs)\n";
  }

  for (size_t P = 0; P != Result.Constants.size(); ++P) {
    if (Result.Constants[P].empty())
      continue;
    OS << "CONSTANTS(" << Result.ProcNames[P] << ") = {";
    bool First = true;
    for (const auto &[Name, Value] : Result.Constants[P]) {
      if (!First)
        OS << ", ";
      First = false;
      OS << "(" << Name << ", " << Value << ")";
    }
    OS << "}\n";
  }
  if (!Result.NeverCalled.empty()) {
    OS << "never invoked:";
    for (const std::string &Name : Result.NeverCalled)
      OS << ' ' << Name;
    OS << '\n';
  }

  if (Report.EmitSource)
    OS << "---- transformed source ----\n" << Result.TransformedSource;
  return OS.str();
}

std::string ipcp::renderConstantsFile(const PipelineResult &Result) {
  std::ostringstream OS;
  for (size_t P = 0; P != Result.Constants.size(); ++P) {
    OS << Result.ProcNames[P];
    for (const auto &[Name, Value] : Result.Constants[P])
      OS << ' ' << Name << '=' << Value;
    OS << '\n';
  }
  return OS.str();
}
