//===- serve/Render.h - Canonical analysis report text ----------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a PipelineResult as the exact text ipcp-driver prints for an
/// analysis run. The driver's local mode and the analysis server's
/// analyze replies both call this one function, which is what makes
/// "--via-server output is byte-identical to local output" true by
/// construction — and testable end to end (ServeTests runs both paths
/// through the real binary and diffs the bytes).
///
/// Timings are deliberately not part of the report: they are the one
/// nondeterministic field of a result, and a byte-identical contract
/// cannot include them. The driver prints its --time block separately.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_RENDER_H
#define IPCP_SERVE_RENDER_H

#include "ipcp/Pipeline.h"

#include <string>

namespace ipcp {

/// What the report includes, mirroring the driver's flags.
struct ReportOptions {
  /// --quiet: only the substituted-constants count.
  bool Quiet = false;
  /// --stats: the jump-function and solver statistics block.
  bool Stats = false;
  /// --emit-source: append the transformed source (the PipelineResult
  /// must have been produced with EmitTransformedSource).
  bool EmitSource = false;
};

/// Renders the driver's stdout for a successful analysis of \p Result
/// under \p Opts (the configuration banner reads the same fields the
/// driver prints).
std::string renderAnalysisReport(const PipelineOptions &Opts,
                                 const PipelineResult &Result,
                                 const ReportOptions &Report);

/// The "CONSTANTS sets" file body the driver's --constants-out writes
/// (paper §4.1): one line per procedure.
std::string renderConstantsFile(const PipelineResult &Result);

} // namespace ipcp

#endif // IPCP_SERVE_RENDER_H
