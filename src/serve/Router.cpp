//===- serve/Router.cpp - Front-tier shard router for ipcp-serve ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Router.h"

#include "serve/Protocol.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

using namespace ipcp;

namespace {

namespace fs = std::filesystem;

/// splitmix64 finisher: decorrelates the content key from each backend's
/// seed so rendezvous weights behave like independent uniform draws —
/// the property that makes the hashing "consistent": when one backend
/// dies, only the keys it was winning re-home; every other key keeps its
/// old backend and its warm caches.
uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdull;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ull;
  X ^= X >> 33;
  return X;
}

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return {};
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

} // namespace

Router::Router(RouterOptions O)
    : Opts(std::move(O)), Pool(Opts.ForwardThreads ? Opts.ForwardThreads : 0) {}

Router::~Router() {
  shutdown();
  if (OwnScratch && !Opts.KeepTemps && !ScratchDir.empty()) {
    std::error_code Ec;
    fs::remove_all(ScratchDir, Ec);
  }
}

bool Router::spawnBackend(Backend &B, size_t Index, std::string &Error) {
  const std::string Tag = "backend" + std::to_string(Index);
  const std::string PortFile = ScratchDir + "/" + Tag + ".port";
  const std::string LogFile = ScratchDir + "/" + Tag + ".log";

  std::string Binary = Opts.ServeBinary;
  if (Binary.empty())
    Binary = currentExecutablePath();
  if (Binary.empty()) {
    Error = "cannot determine the ipcp-serve binary to spawn";
    return false;
  }

  std::vector<std::string> Argv = {
      Binary,
      "--no-stdio",
      "--tcp=0",
      "--port-file=" + PortFile,
      "--workers=" + std::to_string(Opts.BackendWorkers),
      "--cache-capacity=" + std::to_string(Opts.BackendCacheCapacity),
  };
  if (!B.Child.spawn(Argv, LogFile, LogFile, Error)) {
    Error = "spawning " + Tag + ": " + Error;
    return false;
  }
  B.Spawned = true;

  // The child writes its ephemeral port once bound; poll for it. A child
  // that dies before binding leaves the file absent and we time out with
  // a pointer at its log.
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(Opts.SpawnWaitMs));
  for (;;) {
    std::string Text = readWholeFile(PortFile);
    while (!Text.empty() && (Text.back() == '\n' || Text.back() == '\r'))
      Text.pop_back();
    if (!Text.empty()) {
      B.Url = "127.0.0.1:" + Text;
      return true;
    }
    if (std::chrono::steady_clock::now() >= Deadline) {
      Error = Tag + " never wrote its port file (see " + LogFile + ")";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool Router::start(std::string &Error) {
  if (Started) {
    Error = "router already started";
    return false;
  }

  if (Opts.SpawnBackends > 0) {
    ScratchDir = Opts.TempDir;
    if (ScratchDir.empty()) {
      std::string Template =
          (fs::temp_directory_path() / "ipcp-router-XXXXXX").string();
      std::vector<char> Buf(Template.begin(), Template.end());
      Buf.push_back('\0');
      if (!mkdtemp(Buf.data())) {
        Error = "cannot create scratch directory under " +
                fs::temp_directory_path().string();
        return false;
      }
      ScratchDir = Buf.data();
      OwnScratch = true;
    }
  }

  for (const std::string &Url : Opts.Backends) {
    auto B = std::make_unique<Backend>();
    B->Url = Url;
    Fleet.push_back(std::move(B));
  }
  for (unsigned I = 0; I != Opts.SpawnBackends; ++I) {
    auto B = std::make_unique<Backend>();
    if (!spawnBackend(*B, Fleet.size(), Error)) {
      // Reap the half-spawned child and anything already in the fleet
      // before reporting failure — no zombie may survive a failed start.
      if (B->Spawned) {
        B->Child.kill();
        B->Child.wait();
      }
      for (auto &Prev : Fleet)
        if (Prev->Spawned) {
          Prev->Child.kill();
          Prev->Child.wait();
        }
      Fleet.clear();
      return false;
    }
    Fleet.push_back(std::move(B));
  }

  if (Fleet.empty()) {
    Error = "router has no backends (pass --backend or --spawn-backends)";
    return false;
  }
  // Seed each backend with a hash of its URL and position so two fleet
  // entries for the same host:port still weigh independently.
  for (size_t I = 0; I != Fleet.size(); ++I)
    Fleet[I]->Seed =
        mix64(contentHash(Fleet[I]->Url, "backend#" + std::to_string(I)));
  Started = true;
  return true;
}

size_t Router::numAlive() const {
  size_t N = 0;
  for (const auto &B : Fleet)
    if (B->Alive.load(std::memory_order_acquire))
      ++N;
  return N;
}

const std::string &Router::backendUrl(size_t I) const {
  return Fleet.at(I)->Url;
}

void Router::killBackend(size_t I) {
  Backend &B = *Fleet.at(I);
  if (B.Spawned) {
    std::lock_guard<std::mutex> Lock(B.ChildMutex);
    B.Child.kill(); // Reaped in shutdown(); Alive stays true on purpose —
                    // the next forward discovers the death organically.
  }
}

Router::Backend *Router::pickBackend(uint64_t Key) {
  Backend *Best = nullptr;
  uint64_t BestWeight = 0;
  for (const auto &B : Fleet) {
    if (!B->Alive.load(std::memory_order_acquire))
      continue;
    uint64_t W = mix64(Key ^ B->Seed);
    if (!Best || W > BestWeight) {
      Best = B.get();
      BestWeight = W;
    }
  }
  return Best;
}

bool Router::callBackend(Backend &B, const std::string &Line,
                         std::string &Reply) {
  std::lock_guard<std::mutex> Lock(B.ConnMutex);
  std::string Err;
  if (!B.Conn.connected() && !B.Conn.connect(B.Url, Err))
    return false;
  if (!B.Conn.call(Line, Reply, Err)) {
    B.Conn.close();
    return false;
  }
  return true;
}

void Router::finish(std::function<void(std::string)> &Done,
                    std::string Reply) {
  Done(std::move(Reply));
  std::lock_guard<std::mutex> Lock(Mutex);
  if (--Pending == 0)
    DrainedCv.notify_all();
}

void Router::forward(uint64_t Key, const std::string &Id, std::string Line,
                     std::function<void(std::string)> Done) {
  for (;;) {
    Backend *B = pickBackend(Key);
    if (!B) {
      ShedOverloaded.fetch_add(1, std::memory_order_relaxed);
      finish(Done, makeErrorReply(Id, ServeErrorKind::Overloaded,
                                  "all " + std::to_string(Fleet.size()) +
                                      " backends are down"));
      return;
    }
    std::string Reply;
    if (callBackend(*B, Line, Reply)) {
      B->Forwarded.fetch_add(1, std::memory_order_relaxed);
      ForwardedTotal.fetch_add(1, std::memory_order_relaxed);
      finish(Done, std::move(Reply));
      return;
    }
    // Transport failure: this backend is gone. Mark it dead and rehash
    // the key over the survivors — the retried request lands wherever
    // rendezvous now points, and every other key keeps its old home.
    if (B->Alive.exchange(false, std::memory_order_acq_rel))
      BackendDeaths.fetch_add(1, std::memory_order_relaxed);
    B->Failures.fetch_add(1, std::memory_order_relaxed);
    Retries.fetch_add(1, std::memory_order_relaxed);
  }
}

void Router::submit(std::string Line, std::function<void(std::string)> Done) {
  Lines.fetch_add(1, std::memory_order_relaxed);

  ServeRequest Req;
  std::string Err;
  if (!parseServeRequest(Line, Req, Err)) {
    // Answered locally: a malformed line never costs a backend round
    // trip, and the backend would only echo the same structured error.
    Malformed.fetch_add(1, std::memory_order_relaxed);
    Done(makeErrorReply(Req.Id, ServeErrorKind::Malformed, Err));
    return;
  }

  if (Req.Method == ServeMethod::Stats) {
    StatsServed.fetch_add(1, std::memory_order_relaxed);
    Done(makeOkReply(Req.Id, statsJson()));
    return;
  }
  if (Req.Method == ServeMethod::Shutdown) {
    // Flip the drain flag and ack; the blocking work (draining forwards,
    // telling the fleet, reaping children) happens in shutdown(), which
    // the transport's owner calls once the pumps stop.
    Draining.store(true, std::memory_order_release);
    JsonValue P = JsonValue::object();
    P.set("draining", JsonValue(true));
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      P.set("pending", JsonValue(static_cast<uint64_t>(Pending)));
    }
    Done(makeOkReply(Req.Id, P));
    return;
  }

  const std::string Id = Req.Id;
  const uint64_t Key = requestContentKey(Req);

  bool Shed = false;
  ServeErrorKind ShedKind = ServeErrorKind::Internal;
  std::string ShedMsg;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Draining.load(std::memory_order_acquire)) {
      Shed = true;
      ShedKind = ServeErrorKind::ShuttingDown;
      ShedMsg = "router is shutting down";
      ShedShuttingDown.fetch_add(1, std::memory_order_relaxed);
    } else if (Pending >= Opts.QueueLimit) {
      Shed = true;
      ShedKind = ServeErrorKind::Overloaded;
      ShedMsg = "router queue full (" + std::to_string(Opts.QueueLimit) +
                " in flight)";
      ShedOverloaded.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++Pending;
      QueueHighWater = std::max(QueueHighWater, Pending);
    }
  }
  if (Shed) {
    Done(makeErrorReply(Id, ShedKind, ShedMsg));
    return;
  }
  Pool.post(
      [this, Key, Id, L = std::move(Line), D = std::move(Done)]() mutable {
        forward(Key, Id, std::move(L), std::move(D));
      });
}

void Router::shutdown() {
  Draining.store(true, std::memory_order_release);
  if (ShutdownRan.exchange(true))
    return;

  {
    std::unique_lock<std::mutex> Lock(Mutex);
    DrainedCv.wait(Lock, [this] { return Pending == 0; });
  }
  Pool.wait();

  // Fleet teardown runs with no router-wide lock held (the PR 7 lesson:
  // destroying sessions — or here, children and connections — under a
  // registry lock inverts against whatever those teardowns take).
  // Forward the shutdown so backends drain their own in-flight work,
  // then reap the children we spawned; a backend that no longer answers
  // gets the unceremonious version.
  for (auto &B : Fleet) {
    std::string Reply;
    bool Acked = false;
    if (B->Alive.load(std::memory_order_acquire))
      Acked = callBackend(*B,
                          "{\"id\":\"router-shutdown\",\"method\":\"shutdown\"}",
                          Reply);
    {
      std::lock_guard<std::mutex> Lock(B->ConnMutex);
      B->Conn.close();
    }
    if (B->Spawned) {
      std::lock_guard<std::mutex> Lock(B->ChildMutex);
      if (!Acked)
        B->Child.kill();
      B->Child.wait();
    }
  }
}

JsonValue Router::statsJson() const {
  JsonValue S = JsonValue::object();
  S.set("role", JsonValue("router"));
  S.set("received", JsonValue(Lines.load(std::memory_order_relaxed)));
  S.set("forwarded", JsonValue(ForwardedTotal.load(std::memory_order_relaxed)));
  S.set("retries", JsonValue(Retries.load(std::memory_order_relaxed)));
  S.set("backend_deaths",
        JsonValue(BackendDeaths.load(std::memory_order_relaxed)));
  S.set("malformed", JsonValue(Malformed.load(std::memory_order_relaxed)));
  S.set("shed_overloaded",
        JsonValue(ShedOverloaded.load(std::memory_order_relaxed)));
  S.set("shed_shutting_down",
        JsonValue(ShedShuttingDown.load(std::memory_order_relaxed)));
  S.set("stats_served", JsonValue(StatsServed.load(std::memory_order_relaxed)));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S.set("pending", JsonValue(static_cast<uint64_t>(Pending)));
    S.set("queue_high_water",
          JsonValue(static_cast<uint64_t>(QueueHighWater)));
  }
  S.set("queue_limit", JsonValue(static_cast<uint64_t>(Opts.QueueLimit)));
  S.set("draining", JsonValue(draining()));
  S.set("backends_alive", JsonValue(static_cast<uint64_t>(numAlive())));

  JsonValue Backends = JsonValue::array();
  for (const auto &BPtr : Fleet) {
    Backend &B = *BPtr;
    JsonValue E = JsonValue::object();
    E.set("url", JsonValue(B.Url));
    E.set("spawned", JsonValue(B.Spawned));
    bool Alive = B.Alive.load(std::memory_order_acquire);
    E.set("alive", JsonValue(Alive));
    E.set("forwarded", JsonValue(B.Forwarded.load(std::memory_order_relaxed)));
    E.set("failures", JsonValue(B.Failures.load(std::memory_order_relaxed)));
    if (Alive && !draining()) {
      // Best-effort live snapshot; a failure here is a monitoring miss,
      // not a death sentence (the forward path owns liveness).
      std::string Reply;
      if (callBackend(B, "{\"id\":\"router-stats\",\"method\":\"stats\"}",
                      Reply)) {
        std::string PErr;
        if (std::optional<JsonValue> Parsed = parseJson(Reply, PErr))
          if (const JsonValue *Result = Parsed->find("result"))
            E.set("stats", *Result);
      }
    }
    Backends.push(std::move(E));
  }
  S.set("backends", Backends);
  return S;
}
