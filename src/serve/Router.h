//===- serve/Router.h - Front-tier shard router for ipcp-serve --*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scale-out tier: a Router is a RequestHandler that owns no
/// analysis state at all. It parses each request line just far enough to
/// compute its content key (serve/Protocol.h), rendezvous-hashes the key
/// across a fixed fleet of backend ipcp-serve processes, and forwards
/// the line verbatim over the backend's TCP connection — so a reply
/// through the router is byte-identical to one from the backend itself,
/// and repeats of the same content land on the backend whose session
/// cache is already warm (the sharded analogue of the single server's
/// content-addressed cache).
///
/// Failure semantics, mirroring the single server's "never a dead
/// process" contract:
///
///   * A backend whose connection fails mid-forward is marked dead and
///     the request is rehashed over the survivors and retried — the
///     client sees one reply, computed elsewhere, never an error caused
///     by a backend it did not choose.
///   * When every backend is dead, compute requests get a structured
///     `overloaded` error reply; the router itself keeps serving (stats
///     still answers, and operators can read the body count there).
///   * Malformed lines are answered locally with `malformed` — they
///     never consume a backend round trip.
///
/// Backends either pre-exist (RouterOptions::Backends URLs) or are
/// spawned by the router itself as ipcp-serve children on ephemeral
/// ports. shutdown() drains in-flight forwards, then forwards the
/// shutdown to every backend and reaps spawned children — strictly
/// after every router lock is released, because tearing down a child
/// (or a connection) while holding a registry lock is how the session
/// cache deadlocked in an earlier round of this codebase.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_ROUTER_H
#define IPCP_SERVE_ROUTER_H

#include "serve/Client.h"
#include "serve/Handler.h"
#include "serve/Json.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ipcp {

struct RouterOptions {
  /// URLs ("host:port" or "port") of externally managed backends.
  std::vector<std::string> Backends;
  /// Backends to spawn as `ipcp-serve --no-stdio --tcp=0` children (in
  /// addition to any external ones).
  unsigned SpawnBackends = 0;
  /// Binary for spawned backends. Empty = this executable (the router
  /// and the backend are the same ipcp-serve binary).
  std::string ServeBinary;
  /// --workers / --cache-capacity handed to spawned backends.
  unsigned BackendWorkers = 2;
  size_t BackendCacheCapacity = 16;
  /// Forwarding threads: concurrent in-flight backend calls.
  unsigned ForwardThreads = 4;
  /// Admission bound on in-flight forwards; beyond it new compute
  /// requests are shed with `overloaded`.
  size_t QueueLimit = 256;
  /// Scratch directory for spawned backends' port and log files. Empty =
  /// a fresh mkdtemp under TMPDIR, removed on destruction.
  std::string TempDir;
  /// Keep the scratch directory for post-mortems.
  bool KeepTemps = false;
  /// How long to wait for a spawned backend to write its port file.
  double SpawnWaitMs = 15000;
};

class Router : public RequestHandler {
public:
  explicit Router(RouterOptions Opts = {});
  ~Router() override;

  Router(const Router &) = delete;
  Router &operator=(const Router &) = delete;

  /// Spawns/connects the backend fleet. Returns false with a diagnostic
  /// when
  /// no backend could be established (a router with zero backends would
  /// shed everything). Must be called once, before submit().
  bool start(std::string &Error);

  void submit(std::string Line, std::function<void(std::string)> Done) override;
  bool draining() const override {
    return Draining.load(std::memory_order_acquire);
  }

  /// Drains in-flight forwards, forwards shutdown to every backend, and
  /// reaps spawned children. Idempotent.
  void shutdown() override;

  /// The router's own `stats` payload: forwarding counters plus a
  /// per-backend block (liveness, forward counts, and — for live
  /// backends — the backend's own stats reply fetched over the wire).
  JsonValue statsJson() const;

  size_t numBackends() const { return Fleet.size(); }
  size_t numAlive() const;
  /// The URL of backend \p I (spawned backends get theirs at start()).
  const std::string &backendUrl(size_t I) const;

  /// Test hook: SIGKILL spawned backend \p I without marking it dead —
  /// the next forward routed to it discovers the death organically and
  /// exercises the rehash + retry path. No-op for external backends.
  void killBackend(size_t I);

private:
  struct Backend {
    std::string Url;
    uint64_t Seed = 0; ///< Rendezvous seed (hash of the URL + index).
    std::atomic<bool> Alive{true};
    /// Serializes the single connection (ServeClient is one-per-thread).
    std::mutex ConnMutex;
    ServeClient Conn;
    /// Spawned-child state (unused for external backends). Subprocess is
    /// single-owner, but killBackend() may race shutdown()'s reap from
    /// another thread; ChildMutex serializes kill/wait on this one child
    /// only — per-backend, never a fleet-wide lock.
    bool Spawned = false;
    std::mutex ChildMutex;
    Subprocess Child;
    std::atomic<uint64_t> Forwarded{0};
    std::atomic<uint64_t> Failures{0};
  };

  /// Rendezvous winner for \p Key among live backends (nullptr when the
  /// whole fleet is dead).
  Backend *pickBackend(uint64_t Key);
  /// One blocking request/reply against \p B under its connection lock.
  /// False = transport failure (the caller marks \p B dead and rehashes).
  /// Static so the const stats snapshot can use it too — it touches only
  /// the backend's own state.
  static bool callBackend(Backend &B, const std::string &Line,
                          std::string &Reply);
  /// The forwarding loop: rendezvous, call, on failure mark dead and
  /// rehash over the survivors. Runs on a forward thread.
  void forward(uint64_t Key, const std::string &Id, std::string Line,
               std::function<void(std::string)> Done);
  void finish(std::function<void(std::string)> &Done, std::string Reply);

  bool spawnBackend(Backend &B, size_t Index, std::string &Error);

  const RouterOptions Opts;
  /// Fixed at start(); only Alive/conn state changes afterwards, so
  /// iteration never needs a registry lock.
  std::vector<std::unique_ptr<Backend>> Fleet;
  std::string ScratchDir;
  bool OwnScratch = false;
  bool Started = false;

  ThreadPool Pool;
  mutable std::mutex Mutex; ///< Guards Pending/QueueHighWater only.
  std::condition_variable DrainedCv;
  size_t Pending = 0;
  size_t QueueHighWater = 0;
  std::atomic<bool> Draining{false};
  std::atomic<bool> ShutdownRan{false};

  // Counters (relaxed; stats is a monitoring snapshot).
  std::atomic<uint64_t> Lines{0};
  std::atomic<uint64_t> ForwardedTotal{0};
  std::atomic<uint64_t> Retries{0};
  std::atomic<uint64_t> BackendDeaths{0};
  std::atomic<uint64_t> Malformed{0};
  std::atomic<uint64_t> ShedOverloaded{0};
  std::atomic<uint64_t> ShedShuttingDown{0};
  std::atomic<uint64_t> StatsServed{0};
};

} // namespace ipcp

#endif // IPCP_SERVE_ROUTER_H
