//===- serve/Json.cpp - Minimal JSON values for the wire protocol ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

using namespace ipcp;

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = ObjectV.find(Key);
  return It == ObjectV.end() ? nullptr : &It->second;
}

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  if (K == Kind::Null)
    K = Kind::Object;
  ObjectV[Key] = std::move(V);
  return *this;
}

JsonValue &JsonValue::push(JsonValue V) {
  if (K == Kind::Null)
    K = Kind::Array;
  ArrayV.push_back(std::move(V));
  return *this;
}

std::string JsonValue::strOr(const std::string &Key,
                             const std::string &Dflt) const {
  const JsonValue *V = find(Key);
  return V && V->isString() ? V->str() : Dflt;
}

int64_t JsonValue::intOr(const std::string &Key, int64_t Dflt) const {
  const JsonValue *V = find(Key);
  return V && V->isInt() ? V->integer() : Dflt;
}

bool JsonValue::boolOr(const std::string &Key, bool Dflt) const {
  const JsonValue *V = find(Key);
  return V && V->isBool() ? V->boolean() : Dflt;
}

namespace {

void dumpString(const std::string &S, std::string &Out) {
  // Copy maximal runs of unescaped characters in one append; only '"',
  // '\\', and control bytes break a run. Multi-kilobyte source strings
  // dominate the analyze-request wire format, so this path is hot.
  Out.reserve(Out.size() + S.size() + 2);
  Out += '"';
  const char *P = S.data();
  const char *E = P + S.size();
  const char *RunStart = P;
  for (; P != E; ++P) {
    unsigned char C = static_cast<unsigned char>(*P);
    if (C != '"' && C != '\\' && C >= 0x20)
      continue;
    Out.append(RunStart, P);
    RunStart = P + 1;
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default: {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    }
    }
  }
  Out.append(RunStart, E);
  Out += '"';
}

void dumpValue(const JsonValue &V, std::string &Out) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.boolean() ? "true" : "false";
    break;
  case JsonValue::Kind::Int:
    Out += std::to_string(V.integer());
    break;
  case JsonValue::Kind::Double: {
    // %.17g round-trips doubles; fall back to null for non-finite
    // values, which JSON cannot represent.
    double D = V.number();
    if (!std::isfinite(D)) {
      Out += "null";
      break;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case JsonValue::Kind::String:
    dumpString(V.str(), Out);
    break;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : V.elements()) {
      if (!First)
        Out += ',';
      First = false;
      dumpValue(E, Out);
    }
    Out += ']';
    break;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Member] : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      dumpString(Key, Out);
      Out += ':';
      dumpValue(Member, Out);
    }
    Out += '}';
    break;
  }
  }
}

/// Strict single-pass parser. Every failure path sets Error once with a
/// byte offset, so a malformed request line is diagnosable from the
/// reply alone.
class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  std::optional<JsonValue> run() {
    skipWs();
    JsonValue V;
    if (!parseValue(V, /*Depth=*/0))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing garbage after JSON value");
      return std::nullopt;
    }
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C, const char *What) {
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected ") + What);
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    case 't':
      if (Text.substr(Pos, 4) == "true") {
        Pos += 4;
        Out = JsonValue(true);
        return true;
      }
      return fail("bad literal");
    case 'f':
      if (Text.substr(Pos, 5) == "false") {
        Pos += 5;
        Out = JsonValue(false);
        return true;
      }
      return fail("bad literal");
    case 'n':
      if (Text.substr(Pos, 4) == "null") {
        Pos += 4;
        Out = JsonValue();
        return true;
      }
      return fail("bad literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = JsonValue::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':', "':'"))
        return false;
      skipWs();
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.set(Key, std::move(Member));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}', "'}' or ','");
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    ++Pos; // '['
    Out = JsonValue::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue Element;
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.push(std::move(Element));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']', "']' or ','");
    }
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      // Bulk-copy the run of plain characters up to the next quote,
      // backslash, or control byte.
      size_t RunStart = Pos;
      while (Pos < Text.size()) {
        unsigned char C = static_cast<unsigned char>(Text[Pos]);
        if (C == '"' || C == '\\' || C < 0x20)
          break;
        ++Pos;
      }
      if (Pos != RunStart)
        Out.append(Text.data() + RunStart, Pos - RunStart);
      if (Pos >= Text.size())
        break;
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      // Escape sequence.
      if (++Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos + I];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        Pos += 4;
        // UTF-8 encode the BMP code point; surrogate pairs are not
        // reassembled (the protocol carries MiniFort source and counter
        // names, all ASCII) but still produce valid bytes per half.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string_view Num = Text.substr(Start, Pos - Start);
    if (Num.empty() || Num == "-")
      return fail("expected value");
    if (Integral) {
      int64_t I = 0;
      auto [P, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), I);
      if (Ec == std::errc() && P == Num.data() + Num.size()) {
        Out = JsonValue(I);
        return true;
      }
      // Out-of-range integer: fall through to double.
    }
    double D = 0;
    auto [P, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), D);
    if (Ec != std::errc() || P != Num.data() + Num.size())
      return fail("bad number");
    Out = JsonValue(D);
    return true;
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

std::string JsonValue::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

std::optional<JsonValue> ipcp::parseJson(std::string_view Text,
                                         std::string &Error) {
  Error.clear();
  return Parser(Text, Error).run();
}
