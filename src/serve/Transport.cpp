//===- serve/Transport.cpp - stdio and TCP line pumps ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Transport.h"

#include "serve/Handler.h"

#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ipcp;

void ipcp::serveStream(RequestHandler &S, std::istream &In,
                       std::ostream &Out) {
  std::mutex WriteMutex; // Replies land from worker threads; serialize.
  std::mutex DoneMutex;
  std::condition_variable DoneCv;
  size_t Outstanding = 0;

  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      ++Outstanding;
    }
    S.submit(Line, [&](std::string Reply) {
      {
        std::lock_guard<std::mutex> Lock(WriteMutex);
        Out << Reply << '\n';
        Out.flush();
      }
      std::lock_guard<std::mutex> Lock(DoneMutex);
      --Outstanding;
      DoneCv.notify_all();
    });
    if (S.draining())
      break; // A shutdown request: stop reading, let the tail drain.
  }

  std::unique_lock<std::mutex> Lock(DoneMutex);
  DoneCv.wait(Lock, [&] { return Outstanding == 0; });
}

namespace {

/// Sends all of \p Data, suppressing SIGPIPE (a client that hangs up
/// mid-reply must not kill the server).
void sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N <= 0)
      return;
    Off += static_cast<size_t>(N);
  }
}

/// Serves one connection synchronously: read a line, answer it, repeat
/// until the client hangs up. Within a connection requests serialize;
/// across connections the handler interleaves them.
void serveConnection(int Fd, RequestHandler &S) {
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    size_t Nl;
    while ((Nl = Buffer.find('\n')) == std::string::npos) {
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0) {
        ::close(Fd);
        return;
      }
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
    std::string Line = Buffer.substr(0, Nl);
    Buffer.erase(0, Nl + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    sendAll(Fd, S.handle(Line) + "\n");
  }
}

} // namespace

TcpListener::~TcpListener() {
  stop();
  if (Fd >= 0)
    ::close(Fd);
  for (std::thread &T : Conns)
    if (T.joinable())
      T.join();
}

bool TcpListener::listen(uint16_t Port, std::string &Error) {
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = "socket() failed";
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "bind(127.0.0.1:" + std::to_string(Port) + ") failed";
    ::close(Fd);
    Fd = -1;
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    Error = "listen() failed";
    ::close(Fd);
    Fd = -1;
    return false;
  }

  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  else
    BoundPort = Port;
  return true;
}

void TcpListener::run(RequestHandler &S) {
  while (!Stopping.load(std::memory_order_acquire) && !S.draining()) {
    pollfd Pfd = {Fd, POLLIN, 0};
    int N = ::poll(&Pfd, 1, /*timeout_ms=*/200);
    if (N < 0)
      break;
    if (N == 0 || !(Pfd.revents & POLLIN))
      continue;
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0)
      continue;
    Conns.emplace_back([Client, &S] { serveConnection(Client, S); });
  }
  for (std::thread &T : Conns)
    if (T.joinable())
      T.join();
  Conns.clear();
}
