//===- serve/SessionCache.h - Content-addressed session LRU -----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's warm state: a size-bounded LRU of analyzed programs,
/// content-addressed by a hash of the source text. Each entry owns the
/// whole frontend product — AstContext, SymbolTable, and the
/// AnalysisSession whose per-procedure IR/SSA/VN caches PR 3 built —
/// plus a per-configuration map of finished reply payloads. A repeated
/// (source, config) request is served from the reply map without
/// touching the analyzer at all; a new config of a known source reuses
/// the warm session (the ~3.4x that motivated the service in the first
/// place); only a never-seen source pays the frontend.
///
/// Concurrency: the LRU index has one lock, held only for
/// lookup/insert/evict — never during parsing or analysis. Entries are
/// handed out as shared_ptr, so an entry evicted while a slow request
/// still analyzes it stays alive until that request finishes. Frontend
/// construction is per-entry call_once: concurrent first requests for
/// the same source parse it exactly once. Sessions are shared by
/// non-mutating configurations only; complete-propagation requests
/// analyze a private resolved clone (the SuiteRunner contract).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_SESSIONCACHE_H
#define IPCP_SERVE_SESSIONCACHE_H

#include "ipcp/AnalysisSession.h"
#include "lang/Sema.h"
#include "serve/Json.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace ipcp {

/// Cache-effectiveness counters (snapshot; live counters are atomics).
struct SessionCacheStats {
  uint64_t ReplyHits = 0;   ///< (source, config) repeats served verbatim.
  uint64_t SessionHits = 0; ///< Known source, new config (warm session).
  uint64_t Misses = 0;      ///< Never-seen source (cold frontend).
  uint64_t Evictions = 0;   ///< Entries dropped by the LRU bound.
  uint64_t Entries = 0;     ///< Current resident programs.
  /// Solver value-context memo counters, summed over every resident
  /// session plus the sessions retired by eviction — the server-lifetime
  /// view of how often warm sessions replayed recorded evaluations.
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
};

class SessionCache {
public:
  /// One resident program. Member order matters: Session refers to Ctx
  /// and Symbols, so it is declared (and therefore destroyed) last-first.
  struct Program {
    std::string Source;
    /// Frontend diagnostics; non-empty means the source does not check
    /// and Session is null (the failure itself is cached — a repeated
    /// bad request reparses nothing).
    std::string FrontendError;
    std::unique_ptr<AstContext> Ctx;
    SymbolTable Symbols;
    std::unique_ptr<AnalysisSession> Session;

    /// Session.get(), published (release) once ensureFrontend finishes.
    /// The stats path reads sessions of programs it did not acquire, so
    /// it must not touch the unique_ptr a concurrent first request may
    /// still be assigning.
    std::atomic<AnalysisSession *> SessionReady{nullptr};

    /// Finished reply payloads keyed by configKey(). Guarded by
    /// ReplyMutex (concurrent cells may finish different configs).
    std::mutex ReplyMutex;
    std::map<std::string, JsonValue> Replies;

    /// Runs parse+sema+session construction exactly once across
    /// concurrent acquirers.
    void ensureFrontend();

  private:
    std::once_flag FrontendOnce;
  };

  explicit SessionCache(size_t Capacity);

  /// Returns the entry for \p Source, creating (and counting a miss) or
  /// refreshing (recency) as needed. \p WasResident reports whether the
  /// program was already cached. Never blocks on analysis work.
  std::shared_ptr<Program> acquire(const std::string &Source,
                                   bool &WasResident);

  /// The cached reply payload for \p CfgKey, if any. Counts a reply hit.
  std::optional<JsonValue> cachedReply(Program &P, const std::string &CfgKey);

  /// Stores a finished reply payload (first writer wins; replays are
  /// deterministic so losers wrote the same bytes).
  void storeReply(Program &P, const std::string &CfgKey, JsonValue Payload);

  /// Counts a warm-session use (resident program, uncached config).
  void countSessionHit() { SessionHits.fetch_add(1, std::memory_order_relaxed); }

  SessionCacheStats stats() const;

private:
  const size_t Capacity;

  std::mutex Mutex;
  /// Front = most recent. Values are source hashes.
  std::list<uint64_t> Lru;
  struct Slot {
    std::shared_ptr<Program> P;
    std::list<uint64_t>::iterator LruIt;
  };
  std::unordered_map<uint64_t, Slot> Index;

  std::atomic<uint64_t> ReplyHits{0};
  std::atomic<uint64_t> SessionHits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
  /// Memo counters of evicted sessions, folded in at eviction time so
  /// the lifetime totals survive the LRU bound. (An in-flight request on
  /// an evicted entry may still add a few hits afterwards — stats are a
  /// snapshot, not an audit.)
  std::atomic<uint64_t> RetiredMemoHits{0};
  std::atomic<uint64_t> RetiredMemoMisses{0};
};

} // namespace ipcp

#endif // IPCP_SERVE_SESSIONCACHE_H
