//===- serve/Server.cpp - The ipcp analysis server ------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "exec/Oracle.h"
#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "lang/AstClone.h"
#include "support/FuzzFeedback.h"
#include "workloads/Suite.h"

#include <future>

using namespace ipcp;

namespace {

const WorkloadProgram *findSuiteProgram(const std::string &Name) {
  for (const WorkloadProgram &W : benchmarkSuite())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(O), Cache(O.CacheCapacity), Pool(O.Workers ? O.Workers : 0) {}

Server::~Server() { shutdown(); }

void Server::countError(ServeErrorKind Kind) {
  ErrorCount[static_cast<unsigned>(Kind)].fetch_add(1,
                                                    std::memory_order_relaxed);
}

void Server::submit(std::string Line, std::function<void(std::string)> Done) {
  Lines.fetch_add(1, std::memory_order_relaxed);

  ServeRequest Req;
  std::string Err;
  if (!parseServeRequest(Line, Req, Err)) {
    countError(ServeErrorKind::Malformed);
    Done(makeErrorReply(Req.Id, ServeErrorKind::Malformed, Err));
    return;
  }
  MethodCount[static_cast<unsigned>(Req.Method)].fetch_add(
      1, std::memory_order_relaxed);

  // Control traffic: answered inline, never queued, never shed.
  if (Req.Method == ServeMethod::Stats) {
    OkReplies.fetch_add(1, std::memory_order_relaxed);
    Done(makeOkReply(Req.Id, statsJson()));
    return;
  }
  if (Req.Method == ServeMethod::Shutdown) {
    Draining.store(true, std::memory_order_release);
    JsonValue P = JsonValue::object();
    P.set("draining", JsonValue(true));
    P.set("pending", JsonValue(static_cast<uint64_t>(pending())));
    OkReplies.fetch_add(1, std::memory_order_relaxed);
    Done(makeOkReply(Req.Id, P));
    return;
  }

  if (Req.Method == ServeMethod::AnalyzeSuiteProgram) {
    const WorkloadProgram *W = findSuiteProgram(Req.SuiteProgram);
    if (!W) {
      countError(ServeErrorKind::AnalysisError);
      Done(makeErrorReply(Req.Id, ServeErrorKind::AnalysisError,
                          "unknown suite program '" + Req.SuiteProgram + "'"));
      return;
    }
    Req.Source = W->Source;
  }

  // The coalescing key (serve/Protocol.h): requests with equal keys are
  // interchangeable and share one computation. Computed after suite-name
  // resolution, so analyze-source and analyze-suite-program of the same
  // source text deliberately share keys.
  const std::string Id = Req.Id;
  const uint64_t Key = requestContentKey(Req);
  double DeadlineMs = Req.DeadlineMs > 0 ? Req.DeadlineMs
                      : Req.DeadlineMs < 0 ? 0
                                           : Opts.DefaultDeadlineMs;

  bool Rejected = false;
  ServeErrorKind RejectKind = ServeErrorKind::Internal;
  std::string RejectMsg;
  bool IsFollower = false;
  std::shared_ptr<InflightOp> Op;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Draining.load(std::memory_order_acquire)) {
      Rejected = true;
      RejectKind = ServeErrorKind::ShuttingDown;
      RejectMsg = "server is shutting down";
    } else if (Pending >= Opts.QueueLimit) {
      Rejected = true;
      RejectKind = ServeErrorKind::Overloaded;
      RejectMsg = "queue full (" + std::to_string(Pending) + " pending)";
    } else {
      ++Pending;
      QueueHighWater = std::max(QueueHighWater, Pending);
      auto It = Inflight.find(Key);
      if (It != Inflight.end()) {
        // Identical content already computing: ride along. (A 64-bit
        // key collision between distinct requests would mis-coalesce;
        // as with the session cache, astronomically rare and bounded to
        // one wrong reply, not corruption.)
        It->second->Followers.emplace_back(Id, std::move(Done));
        IsFollower = true;
      } else {
        Op = std::make_shared<InflightOp>();
        Op->Key = Key;
        Op->Req = std::move(Req);
        Op->LeaderDone = std::move(Done);
        Op->Cancel = std::make_shared<CancelToken>();
        if (DeadlineMs > 0)
          Op->Cancel->setDeadlineAfterMs(DeadlineMs);
        Inflight.emplace(Key, Op);
      }
    }
  }

  if (Rejected) {
    countError(RejectKind);
    Done(makeErrorReply(Id, RejectKind, RejectMsg));
    return;
  }
  if (IsFollower) {
    Coalesced.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Pool.post([this, Op] { compute(Op); });
}

std::string Server::handle(const std::string &Line) {
  std::promise<std::string> P;
  std::future<std::string> F = P.get_future();
  submit(Line, [&P](std::string Reply) { P.set_value(std::move(Reply)); });
  return F.get();
}

void Server::compute(std::shared_ptr<InflightOp> Op) {
  if (TestHookBeforeCompute)
    TestHookBeforeCompute(Op->Req);
  if (Op->Cancel->expired()) {
    completeError(*Op, ServeErrorKind::Deadline,
                  "deadline expired before analysis started");
    return;
  }
  switch (Op->Req.Method) {
  case ServeMethod::AnalyzeSource:
  case ServeMethod::AnalyzeSuiteProgram:
    computeAnalyze(*Op);
    return;
  case ServeMethod::Validate:
    computeValidate(*Op);
    return;
  case ServeMethod::FuzzReplay:
    computeFuzzReplay(*Op);
    return;
  case ServeMethod::Stats:
  case ServeMethod::Shutdown:
    break; // Handled inline in submit(); unreachable here.
  }
  completeError(*Op, ServeErrorKind::Internal, "unhandled method");
}

void Server::computeAnalyze(InflightOp &Op) {
  bool WasResident = false;
  std::shared_ptr<SessionCache::Program> P =
      Cache.acquire(Op.Req.Source, WasResident);
  const std::string CfgKey = configKey(Op.Req.Config, Op.Req.Report);

  auto finishWith = [&](JsonValue Payload, bool Cached) {
    Payload.set("cached", JsonValue(Cached));
    if (Op.Req.Method == ServeMethod::AnalyzeSuiteProgram)
      Payload.set("program", JsonValue(Op.Req.SuiteProgram));
    completeOk(Op, Payload);
  };

  if (std::optional<JsonValue> Hit = Cache.cachedReply(*P, CfgKey)) {
    finishWith(std::move(*Hit), /*Cached=*/true);
    return;
  }

  P->ensureFrontend();
  if (!P->FrontendError.empty()) {
    completeError(Op, ServeErrorKind::AnalysisError, P->FrontendError);
    return;
  }
  if (WasResident)
    Cache.countSessionHit();

  PipelineOptions PO = Op.Req.Config;
  PO.Cancel = Op.Cancel.get();
  PO.EmitTransformedSource = Op.Req.Report.EmitSource;

  PipelineResult R;
  if (PO.CompletePropagation) {
    // Complete propagation mutates the AST it analyzes; give it a
    // private resolved clone so the cached session stays pristine (the
    // SuiteRunner contract).
    std::unique_ptr<AstContext> Clone = cloneProgramResolved(*P->Ctx);
    AnalysisSession Private(*Clone, P->Symbols);
    R = runPipelineOnSession(Private, PO);
  } else {
    R = runPipelineOnSession(*P->Session, PO);
  }

  if (R.Cancelled) {
    completeError(Op, ServeErrorKind::Deadline, R.Error);
    return;
  }
  if (!R.Ok) {
    completeError(Op, ServeErrorKind::AnalysisError, R.Error);
    return;
  }

  JsonValue Payload = JsonValue::object();
  Payload.set("output",
              JsonValue(renderAnalysisReport(PO, R, Op.Req.Report)));
  Payload.set("substituted",
              JsonValue(static_cast<uint64_t>(R.SubstitutedConstants)));
  Cache.storeReply(*P, CfgKey, Payload);
  finishWith(std::move(Payload), /*Cached=*/false);
}

void Server::computeValidate(InflightOp &Op) {
  OracleOptions OO;
  OO.Pipeline = Op.Req.Config;
  OO.Pipeline.Cancel = Op.Cancel.get();
  OO.ReadSeeds = {Op.Req.ReadSeed};
  OO.Engine = Op.Req.Exec;
  if (Op.Req.MaxSteps)
    OO.Limits.MaxSteps = Op.Req.MaxSteps;

  OracleResult R = validateTranslation(Op.Req.Source, OO);
  if (!R.Ok && Op.Cancel->expired()) {
    completeError(Op, ServeErrorKind::Deadline,
                  "validation cancelled (deadline expired)");
    return;
  }

  JsonValue Payload = JsonValue::object();
  Payload.set("valid", JsonValue(R.Ok));
  if (!R.Ok)
    Payload.set("error", JsonValue(R.Error));
  Payload.set("runs_executed", JsonValue(R.RunsExecuted));
  Payload.set("trace_comparisons", JsonValue(R.TraceComparisons));
  Payload.set("substituted_use_checks", JsonValue(R.SubstitutedUseChecks));
  Payload.set("entry_constant_checks", JsonValue(R.EntryConstantChecks));
  completeOk(Op, Payload);
}

void Server::computeFuzzReplay(InflightOp &Op) {
  std::string Diag;
  CorpusEntry Entry = parseCorpusEntry(Op.Req.Source, "request", &Diag);
  if (!Diag.empty()) {
    completeError(Op, ServeErrorKind::AnalysisError,
                  "corpus entry rejected: " + Diag);
    return;
  }
  FuzzFeedback FB;
  FuzzOptions FO;
  FO.Engine = Op.Req.Exec;
  if (Op.Req.MaxSteps)
    FO.MaxSteps = Op.Req.MaxSteps;

  std::optional<FuzzFailure> Failure = evaluateProgram(Entry.Source, FB, FO);
  if (Failure && Op.Cancel->expired()) {
    completeError(Op, ServeErrorKind::Deadline,
                  "replay cancelled (deadline expired)");
    return;
  }

  JsonValue Payload = JsonValue::object();
  Payload.set("failed", JsonValue(Failure.has_value()));
  if (Failure) {
    Payload.set("failure_kind", JsonValue(Failure->Kind));
    Payload.set("failure_config", JsonValue(Failure->Config));
    Payload.set("failure_detail", JsonValue(Failure->Detail));
  }
  Payload.set("feature_bits", JsonValue(static_cast<uint64_t>(FB.countBits())));
  completeOk(Op, Payload);
}

void Server::completeOk(InflightOp &Op, const JsonValue &Payload) {
  retire(Op, makeOkReply(Op.Req.Id, Payload), /*OkOutcome=*/true,
         ServeErrorKind::Internal);
}

void Server::completeError(InflightOp &Op, ServeErrorKind Kind,
                           const std::string &Message) {
  retire(Op, makeErrorReply(Op.Req.Id, Kind, Message), /*OkOutcome=*/false,
         Kind);
}

void Server::retire(InflightOp &Op, const std::string &LeaderReply,
                    bool OkOutcome, ServeErrorKind Kind) {
  // Snapshot and unregister under the lock: once the in-flight entry is
  // gone no new follower can attach, so the snapshot is complete.
  std::vector<std::pair<std::string, std::function<void(std::string)>>>
      Followers;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Inflight.erase(Op.Key);
    Followers.swap(Op.Followers);
    Pending -= 1 + Followers.size();
    if (Pending == 0)
      Drained.notify_all();
  }

  const uint64_t Outcomes = 1 + Followers.size();
  if (OkOutcome)
    OkReplies.fetch_add(Outcomes, std::memory_order_relaxed);
  else
    ErrorCount[static_cast<unsigned>(Kind)].fetch_add(
        Outcomes, std::memory_order_relaxed);

  Op.LeaderDone(LeaderReply);
  // Followers get the leader's reply re-addressed to their own id. Both
  // reply shapes keep the id in a fixed member, so rebuilding from the
  // leader's line is a parse + set.
  for (auto &[Id, Done] : Followers) {
    std::string Err;
    std::optional<JsonValue> Reply = parseJson(LeaderReply, Err);
    JsonValue V = Reply ? std::move(*Reply) : JsonValue::object();
    V.set("id", JsonValue(Id));
    Done(V.dump());
  }
}

size_t Server::pending() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Pending;
}

void Server::shutdown() {
  Draining.store(true, std::memory_order_release);
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Drained.wait(Lock, [this] { return Pending == 0; });
  }
  // Pending hits zero inside retire(); wait for the worker tasks
  // themselves to unwind before tearing anything down.
  Pool.wait();
}

JsonValue Server::statsJson() const {
  JsonValue S = JsonValue::object();
  S.set("received", JsonValue(Lines.load(std::memory_order_relaxed)));

  JsonValue Methods = JsonValue::object();
  for (unsigned M = 0; M != 6; ++M)
    Methods.set(serveMethodName(static_cast<ServeMethod>(M)),
                JsonValue(MethodCount[M].load(std::memory_order_relaxed)));
  S.set("methods", Methods);

  S.set("ok_replies", JsonValue(OkReplies.load(std::memory_order_relaxed)));
  JsonValue Errors = JsonValue::object();
  for (unsigned K = 0; K != 6; ++K)
    Errors.set(serveErrorKindName(static_cast<ServeErrorKind>(K)),
               JsonValue(ErrorCount[K].load(std::memory_order_relaxed)));
  S.set("errors", Errors);
  S.set("coalesced", JsonValue(Coalesced.load(std::memory_order_relaxed)));

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S.set("pending", JsonValue(static_cast<uint64_t>(Pending)));
    S.set("queue_high_water",
          JsonValue(static_cast<uint64_t>(QueueHighWater)));
  }
  S.set("queue_limit", JsonValue(static_cast<uint64_t>(Opts.QueueLimit)));
  S.set("draining", JsonValue(draining()));
  S.set("workers", JsonValue(Pool.size()));

  SessionCacheStats CS = Cache.stats();
  JsonValue C = JsonValue::object();
  C.set("reply_hits", JsonValue(CS.ReplyHits));
  C.set("session_hits", JsonValue(CS.SessionHits));
  C.set("misses", JsonValue(CS.Misses));
  C.set("evictions", JsonValue(CS.Evictions));
  C.set("entries", JsonValue(CS.Entries));
  C.set("capacity", JsonValue(static_cast<uint64_t>(Opts.CacheCapacity)));
  S.set("cache", C);

  // Value-context memo effectiveness across every session this server
  // has run (resident + evicted). The hit *rate* is the headline — raw
  // counters alone hid a 0-hit memo for three PRs — with the empty
  // denominator reported as 0 rather than NaN.
  JsonValue M = JsonValue::object();
  M.set("hits", JsonValue(CS.MemoHits));
  M.set("misses", JsonValue(CS.MemoMisses));
  uint64_t MemoTotal = CS.MemoHits + CS.MemoMisses;
  M.set("hit_rate",
        JsonValue(MemoTotal ? double(CS.MemoHits) / double(MemoTotal) : 0.0));
  S.set("solver_memo", M);
  return S;
}
