//===- serve/Protocol.h - ipcp-serve wire protocol --------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-delimited JSON protocol of the analysis server (documented
/// for humans in docs/SERVING.md). One request per line:
///
///   {"id":"r1","method":"analyze-source",
///    "params":{"source":"...","config":{"jf":"poly","rjf":true,...},
///              "report":{"stats":true},"deadline_ms":2000}}
///
/// One reply per line, matched by id (replies may arrive out of request
/// order):
///
///   {"id":"r1","ok":true,"result":{"output":"...","substituted":12,
///                                  "cached":false,...}}
///   {"id":"r1","ok":false,
///    "error":{"kind":"overloaded","message":"queue full (64 pending)"}}
///
/// Methods: analyze-source, analyze-suite-program, validate,
/// fuzz-replay, stats, shutdown. Error kinds: malformed, overloaded,
/// deadline, shutting-down, analysis-error, internal. Every malformed
/// or rejected request produces a structured error reply — never a
/// dropped connection, never a dead process.
///
/// This header also owns the canonical configuration key and the
/// content hash of (source, config, report): the cache and the
/// coalescing table key requests by it, so two textually different but
/// semantically identical config objects (key order, defaulted fields)
/// coalesce onto one computation.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_PROTOCOL_H
#define IPCP_SERVE_PROTOCOL_H

#include "exec/ExecEngine.h"
#include "ipcp/Pipeline.h"
#include "serve/Json.h"
#include "serve/Render.h"

#include <cstdint>
#include <string>

namespace ipcp {

/// Request methods, plus the parse failure states the dispatcher turns
/// into structured errors.
enum class ServeMethod : uint8_t {
  AnalyzeSource,
  AnalyzeSuiteProgram,
  Validate,
  FuzzReplay,
  Stats,
  Shutdown,
};

/// Structured error kinds (the protocol's `error.kind` values).
enum class ServeErrorKind : uint8_t {
  Malformed,     ///< Unparseable JSON / missing or bad fields.
  Overloaded,    ///< Admission control shed the request (queue full).
  Deadline,      ///< The request's deadline expired before completion.
  ShuttingDown,  ///< Arrived after a shutdown began draining.
  AnalysisError, ///< The pipeline/oracle/replay itself reported failure.
  Internal,      ///< Bug guard; should not happen.
};

const char *serveMethodName(ServeMethod M);
const char *serveErrorKindName(ServeErrorKind K);

/// One parsed request.
struct ServeRequest {
  /// Echoed verbatim into the reply ("" when the request had none).
  std::string Id;
  ServeMethod Method = ServeMethod::Stats;
  /// The analyzer configuration (analyze-*/validate).
  PipelineOptions Config;
  /// Report rendering flags (analyze-*).
  ReportOptions Report;
  /// MiniFort source text (analyze-source/validate) or serialized corpus
  /// entry (fuzz-replay).
  std::string Source;
  /// Suite program name (analyze-suite-program).
  std::string SuiteProgram;
  /// Per-request deadline in milliseconds; 0 = use the server default,
  /// negative = no deadline.
  double DeadlineMs = 0;
  /// READ seed / step budget (validate).
  uint64_t ReadSeed = 1;
  uint64_t MaxSteps = 0;
  /// Execution engine (validate/fuzz-replay): params.exec, "vm" (the
  /// default) or "ast". Part of the coalescing key.
  ExecEngine Exec = ExecEngine::Vm;
};

/// Parses one request line. On failure returns false and fills \p Error
/// with a message for the `malformed` reply.
bool parseServeRequest(const std::string &Line, ServeRequest &Out,
                       std::string &Error);

/// The canonical configuration key: every field that can change the
/// rendered reply, in a fixed order. Two requests with equal
/// (source, configKey) are interchangeable.
std::string configKey(const PipelineOptions &Opts, const ReportOptions &R);

/// 64-bit FNV-1a over the request's analysis content — the cache and
/// coalescing key.
uint64_t contentHash(const std::string &Source, const std::string &CfgKey);

/// The whole request's content key: contentHash over everything that
/// determines the reply (method class, source or suite-program name,
/// config, report flags, seeds, engine). The server coalesces identical
/// in-flight requests on it; the router rendezvous-hashes it across
/// backends so repeats of the same content land where the caches are
/// already warm. analyze-source and analyze-suite-program of the same
/// resolved source text share keys (the server hashes after resolving
/// the suite name to its source).
uint64_t requestContentKey(const ServeRequest &Req);

/// Reply builders (each returns one serialized line, no trailing '\n').
std::string makeOkReply(const std::string &Id, JsonValue Result);
std::string makeErrorReply(const std::string &Id, ServeErrorKind Kind,
                           const std::string &Message);

/// Serializes a request — the client-side mirror of parseServeRequest.
std::string serializeServeRequest(const ServeRequest &Req);

} // namespace ipcp

#endif // IPCP_SERVE_PROTOCOL_H
