//===- serve/Client.cpp - Client for a running ipcp-serve -----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ipcp;

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Buffer.clear();
}

bool ServeClient::connect(const std::string &Url, std::string &Error) {
  close();

  std::string Host = "127.0.0.1";
  std::string PortStr = Url;
  if (size_t Colon = Url.rfind(':'); Colon != std::string::npos) {
    Host = Url.substr(0, Colon);
    PortStr = Url.substr(Colon + 1);
  }
  if (Host == "localhost")
    Host = "127.0.0.1";

  int Port = 0;
  for (char C : PortStr) {
    if (C < '0' || C > '9') {
      Error = "bad port in server url '" + Url + "'";
      return false;
    }
    Port = Port * 10 + (C - '0');
  }
  if (Port <= 0 || Port > 65535) {
    Error = "bad port in server url '" + Url + "'";
    return false;
  }

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Error = "unsupported host '" + Host + "' (loopback addresses only)";
    return false;
  }

  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = "socket() failed";
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "cannot connect to " + Host + ":" + PortStr +
            " (is ipcp-serve running?)";
    close();
    return false;
  }
  return true;
}

bool ServeClient::call(const std::string &RequestLine, std::string &ReplyLine,
                       std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }

  std::string Out = RequestLine;
  Out += '\n';
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N <= 0) {
      Error = "send failed (server hung up?)";
      close();
      return false;
    }
    Off += static_cast<size_t>(N);
  }

  char Chunk[4096];
  size_t Nl;
  while ((Nl = Buffer.find('\n')) == std::string::npos) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0) {
      Error = "connection closed before reply";
      close();
      return false;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
  ReplyLine = Buffer.substr(0, Nl);
  Buffer.erase(0, Nl + 1);
  if (!ReplyLine.empty() && ReplyLine.back() == '\r')
    ReplyLine.pop_back();
  return true;
}
