//===- serve/Server.h - The ipcp analysis server ----------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived analysis service behind ipcp-serve. A Server owns a
/// worker pool, the content-addressed SessionCache, and the request
/// queue's admission control; transports (stdio, TCP — Transport.h) are
/// thin line pumps that hand request lines to submit() and write back
/// whatever reply line the completion callback delivers.
///
/// Robustness contract, in order of evaluation for each line:
///
///   1. Unparseable / ill-formed requests get a `malformed` error reply
///      (carrying the request id when one could be salvaged). The
///      process never dies on bad input.
///   2. `stats` and `shutdown` are control traffic: answered inline,
///      never queued, never shed.
///   3. After shutdown begins draining, new compute requests get
///      `shutting-down`; in-flight ones run to completion.
///   4. When admitted-but-unfinished compute requests reach QueueLimit,
///      new ones are shed with `overloaded` (admission control).
///   5. An admitted request identical (by content hash of source +
///      canonical config) to one already in flight coalesces: it is
///      recorded as a follower and answered from the leader's
///      computation, paying zero additional analysis.
///   6. Each admitted request carries a CancelToken whose deadline
///      starts at admission (queue wait counts). The pipeline polls it
///      cooperatively; expiry yields a `deadline` error reply and a
///      healthy server.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SERVE_SERVER_H
#define IPCP_SERVE_SERVER_H

#include "serve/Handler.h"
#include "serve/Protocol.h"
#include "serve/SessionCache.h"
#include "support/Cancellation.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

struct ServerOptions {
  /// Request-execution workers (0 = one per hardware thread).
  unsigned Workers = 2;
  /// Admitted-but-unfinished compute requests beyond which new ones are
  /// shed with `overloaded`.
  size_t QueueLimit = 64;
  /// SessionCache capacity (resident programs).
  size_t CacheCapacity = 16;
  /// Deadline applied to requests that do not set deadline_ms
  /// (milliseconds; 0 = none).
  double DefaultDeadlineMs = 0;
};

class Server : public RequestHandler {
public:
  explicit Server(ServerOptions Opts = {});
  ~Server() override;

  /// Parses and executes one request line asynchronously. \p Done is
  /// invoked exactly once — possibly on the calling thread (control
  /// traffic, rejections), possibly on a worker — with the serialized
  /// reply line (no trailing newline). \p Done must be thread-safe
  /// against other replies and must not block.
  void submit(std::string Line, std::function<void(std::string)> Done) override;

  /// Synchronous submit: blocks until the reply is ready. Convenience
  /// for tests and the in-process client.
  std::string handle(const std::string &Line) override;

  /// Begins draining (idempotent) and blocks until every admitted
  /// request has been answered. New compute requests are rejected with
  /// `shutting-down` from the moment drain begins.
  void shutdown() override;

  bool draining() const override {
    return Draining.load(std::memory_order_acquire);
  }

  /// The `stats` reply payload (also reachable without the protocol).
  JsonValue statsJson() const;

  /// Admitted-but-unfinished compute requests (leaders + followers).
  size_t pending() const;

  /// Test hook, called on the worker thread immediately before a
  /// leader's computation (after admission and coalescing decisions).
  /// Tests use it to hold a leader in place deterministically while
  /// followers pile up, queues fill, or deadlines expire. Set before
  /// submitting; never called under a server lock.
  std::function<void(const ServeRequest &)> TestHookBeforeCompute;

private:
  /// One in-flight computation: the leader's request plus every
  /// coalesced follower waiting for the same content.
  struct InflightOp {
    uint64_t Key = 0;
    ServeRequest Req; ///< The leader's parse (followers differ in id only).
    std::shared_ptr<CancelToken> Cancel;
    std::function<void(std::string)> LeaderDone;
    std::vector<std::pair<std::string, std::function<void(std::string)>>>
        Followers;
  };

  void compute(std::shared_ptr<InflightOp> Op);
  void computeAnalyze(InflightOp &Op);
  void computeValidate(InflightOp &Op);
  void computeFuzzReplay(InflightOp &Op);

  /// Delivers the outcome to the leader and every follower, retires the
  /// in-flight entry, and releases the queue slots.
  void completeOk(InflightOp &Op, const JsonValue &Payload);
  void completeError(InflightOp &Op, ServeErrorKind Kind,
                     const std::string &Message);
  void retire(InflightOp &Op, const std::string &LeaderReply, bool OkOutcome,
              ServeErrorKind Kind);

  void countError(ServeErrorKind Kind);

  const ServerOptions Opts;
  SessionCache Cache;
  ThreadPool Pool;

  mutable std::mutex Mutex;
  std::condition_variable Drained;
  std::unordered_map<uint64_t, std::shared_ptr<InflightOp>> Inflight;
  size_t Pending = 0; ///< Admitted compute requests not yet answered.
  size_t QueueHighWater = 0;
  std::atomic<bool> Draining{false};

  // Counters (relaxed; stats is a monitoring snapshot, not a barrier).
  std::atomic<uint64_t> Lines{0};
  std::atomic<uint64_t> MethodCount[6] = {};
  std::atomic<uint64_t> OkReplies{0};
  std::atomic<uint64_t> ErrorCount[6] = {};
  std::atomic<uint64_t> Coalesced{0};
};

} // namespace ipcp

#endif // IPCP_SERVE_SERVER_H
