//===- fuzz/Fuzzer.cpp - Coverage-guided fuzzing loop ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "exec/Oracle.h"
#include "fuzz/AstEdit.h"
#include "fuzz/FuzzRng.h"
#include "fuzz/Mutator.h"
#include "fuzz/Reducer.h"
#include "ipcp/Cloning.h"
#include "ipcp/Inliner.h"
#include "lang/Parser.h"
#include "support/FuzzFeedback.h"
#include "workloads/RandomProgram.h"

#include <chrono>
#include <cstdio>
#include <ostream>

using namespace ipcp;

const std::vector<FuzzConfig> &ipcp::fuzzConfigs() {
  static const std::vector<FuzzConfig> Configs = [] {
    std::vector<FuzzConfig> C;
    // Index 0 is the reference point of every hierarchy comparison.
    C.push_back({"poly", PipelineOptions()});
    {
      PipelineOptions O;
      O.Kind = JumpFunctionKind::Literal;
      C.push_back({"literal", O});
    }
    {
      PipelineOptions O;
      O.Kind = JumpFunctionKind::PassThrough;
      O.UseMod = false;
      C.push_back({"pass-nomod", O});
    }
    {
      PipelineOptions O;
      O.CompletePropagation = true;
      C.push_back({"poly-complete", O});
    }
    {
      PipelineOptions O;
      O.IntraproceduralOnly = true;
      C.push_back({"intra-only", O});
    }
    {
      PipelineOptions O;
      O.UseGatedSsa = true;
      C.push_back({"poly-gsa", O});
    }
    {
      PipelineOptions O;
      O.FlowSensitiveAlias = true;
      C.push_back({"poly-fsa", O});
    }
    {
      PipelineOptions O;
      O.OptimisticVn = true;
      C.push_back({"poly-ogvn", O});
    }
    {
      PipelineOptions O;
      O.CopyPropagation = true;
      C.push_back({"poly-copy", O});
    }
    {
      PipelineOptions O;
      O.Kind = JumpFunctionKind::PassThrough;
      O.CopyPropagation = true;
      C.push_back({"copy", O});
    }
    return C;
  }();
  return Configs;
}

namespace {

FuzzFailure makeFailure(std::string Kind, std::string Config,
                        std::string Detail, const std::string &Source) {
  FuzzFailure F;
  F.Kind = std::move(Kind);
  F.Config = std::move(Config);
  F.Detail = std::move(Detail);
  F.Source = Source;
  return F;
}

/// The "same result" notion solver strategies must agree on: everything
/// except timings (which FuzzTests also pins down for whole runs).
bool sameAnalysis(const PipelineResult &A, const PipelineResult &B) {
  return A.SubstitutedConstants == B.SubstitutedConstants &&
         A.PerProcSubstituted == B.PerProcSubstituted &&
         A.Constants == B.Constants && A.NeverCalled == B.NeverCalled;
}

/// True when every CONSTANTS(p) entry of \p Weak also appears in
/// \p Strong (procedures matched by name). This is the *sound* form of
/// the jump-function hierarchy: a weaker configuration may know fewer
/// entry constants, never more and never different values. Substituted
/// *counts* are deliberately not compared — knowing more constants can
/// fold a branch and unreach substitutable uses, so count monotonicity
/// has counterexamples (this fuzzer found them).
bool constantsSubset(const PipelineResult &Weak,
                     const PipelineResult &Strong, std::string &Witness) {
  for (size_t P = 0; P != Weak.ProcNames.size(); ++P) {
    if (Weak.Constants[P].empty())
      continue;
    const std::vector<std::pair<std::string, int64_t>> *Sup = nullptr;
    for (size_t Q = 0; Q != Strong.ProcNames.size(); ++Q)
      if (Strong.ProcNames[Q] == Weak.ProcNames[P]) {
        Sup = &Strong.Constants[Q];
        break;
      }
    for (const auto &Entry : Weak.Constants[P]) {
      bool Found = false;
      if (Sup)
        for (const auto &Have : *Sup)
          if (Have == Entry) {
            Found = true;
            break;
          }
      if (!Found) {
        Witness = Weak.ProcNames[P] + ": " + Entry.first + "=" +
                  std::to_string(Entry.second);
        return false;
      }
    }
  }
  return true;
}

} // namespace

std::optional<FuzzFailure>
ipcp::evaluateProgram(const std::string &Source, FuzzFeedback &FB,
                      const FuzzOptions &Opts) {
  const std::vector<FuzzConfig> &Configs = fuzzConfigs();
  std::vector<PipelineResult> Results;
  Results.reserve(Configs.size());
  for (const FuzzConfig &Cfg : Configs) {
    PipelineOptions PO = Cfg.Pipeline;
    PO.Feedback = &FB;
    PipelineResult R = runPipeline(Source, PO);
    if (!R.Ok)
      return makeFailure("pipeline-error", Cfg.Name, R.Error, Source);
    Results.push_back(std::move(R));
  }

  // Cross-config hierarchy, in its sound set-inclusion form: a weaker
  // configuration's CONSTANTS sets are contained in polynomial's, and
  // polynomial's in each refining configuration's — gated SSA,
  // flow-sensitive aliasing, and optimistic numbering. (Substituted
  // counts are NOT compared — see constantsSubset.) Complete propagation
  // that folded nothing must agree with the plain run exactly.
  std::string Witness;
  auto Violation = [&](size_t I, const char *Rel) {
    return makeFailure("hierarchy-violation",
                       Configs[I].Name + Rel + Configs[0].Name,
                       "CONSTANTS entry not contained: " + Witness, Source);
  };
  if (!constantsSubset(Results[1], Results[0], Witness))
    return Violation(1, "<=");
  if (!constantsSubset(Results[2], Results[0], Witness))
    return Violation(2, "<=");
  if (!constantsSubset(Results[0], Results[5], Witness))
    return Violation(5, ">=");
  if (!constantsSubset(Results[0], Results[6], Witness))
    return Violation(6, ">=");
  if (!constantsSubset(Results[0], Results[7], Witness))
    return Violation(7, ">=");
  // The copy lattice only upgrades loads that were BOTTOM classically,
  // so poly's sets are contained in poly-copy's, and the pass-through
  // copy config's sets in poly-copy's (polynomial refines pass-through).
  if (!constantsSubset(Results[0], Results[8], Witness))
    return Violation(8, ">=");
  if (!constantsSubset(Results[9], Results[8], Witness))
    return makeFailure("hierarchy-violation",
                       Configs[9].Name + "<=" + Configs[8].Name,
                       "CONSTANTS entry not contained: " + Witness, Source);
  if (Results[3].FoldedBranches == 0 &&
      Results[3].SubstitutedConstants != Results[0].SubstitutedConstants)
    return makeFailure(
        "hierarchy-violation", "poly-complete==poly",
        "complete propagation folded nothing yet counted " +
            std::to_string(Results[3].SubstitutedConstants) + " vs " +
            std::to_string(Results[0].SubstitutedConstants),
        Source);

  // Solver strategies are alternative fixpoint schedules over the same
  // equations; any visible difference is a solver bug.
  for (SolverStrategy S :
       {SolverStrategy::RoundRobin, SolverStrategy::BindingGraph}) {
    PipelineOptions PO = Configs[0].Pipeline;
    PO.Strategy = S;
    PipelineResult R = runPipeline(Source, PO);
    if (!R.Ok || !sameAnalysis(Results[0], R))
      return makeFailure(
          "strategy-disagreement",
          S == SolverStrategy::RoundRobin ? "round-robin" : "binding-graph",
          R.Ok ? "results differ from worklist solver" : R.Error, Source);
  }

  if (Opts.CheckTransforms) {
    // Feature-record the transforms' decisions and require their output
    // to stay analyzable; behavioral equivalence is the oracle's job.
    DiagnosticEngine Diags;
    auto Ctx = parseProgram(Source, Diags);
    SymbolTable Symbols;
    if (!Diags.hasErrors())
      Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors())
      return makeFailure("pipeline-error", "frontend", Diags.str(), Source);
    InlineResult Inlined = inlineProgram(*Ctx, Symbols);
    FB.hit(FuzzFeature::InlinedCalls, Inlined.InlinedCalls);
    FB.hit(FuzzFeature::InlineSkippedRecursive, Inlined.SkippedRecursive);
    FB.hit(FuzzFeature::InlineSkippedHasReturn, Inlined.SkippedHasReturn);
    PipelineResult InlinedRun = runPipeline(Inlined.Source, PipelineOptions());
    if (!InlinedRun.Ok)
      return makeFailure("transform-error", "inliner", InlinedRun.Error,
                         Source);

    CloneOptions CO;
    CO.MaxRounds = 2;
    CO.MaxClones = 8;
    CloneResult Cloned = cloneForConstants(Source, CO);
    if (!Cloned.Ok)
      return makeFailure("transform-error", "cloning", Cloned.Error, Source);
    FB.hit(FuzzFeature::ClonesCreated, Cloned.ClonesCreated);
    FB.hit(FuzzFeature::CloneRounds, Cloned.Rounds);
  }

  // Ground truth last (the expensive part): execution traces and claimed
  // constants must survive every configuration's transforms.
  for (size_t I = 0; I != Configs.size(); ++I) {
    OracleOptions OO;
    OO.Pipeline = Configs[I].Pipeline;
    OO.Limits.MaxSteps = Opts.MaxSteps;
    OO.Engine = Opts.Engine;
    OO.CheckInliner = OO.CheckCloning = I == 0 && Opts.CheckTransforms;
    OracleResult R = validateTranslation(Source, OO);
    if (!R.Ok)
      return makeFailure("oracle-mismatch", Configs[I].Name, R.Error,
                         Source);
  }
  return std::nullopt;
}

namespace {

/// Mutable campaign state shared by the corpus-replay phase and the
/// mutation loop.
class Campaign {
public:
  explicit Campaign(const FuzzOptions &Opts)
      : Opts(Opts), Start(std::chrono::steady_clock::now()) {}

  FuzzResult run() {
    std::vector<std::string> CorpusDiags;
    std::vector<CorpusEntry> Corpus =
        loadCorpusDir(Opts.CorpusDir, &CorpusDiags);
    if (Opts.Log)
      for (const std::string &D : CorpusDiags)
        *Opts.Log << "SKIP corpus " << D << "\n";
    FuzzRng Master(Opts.Seed);
    for (unsigned I = 0; I != Opts.SeedPrograms; ++I)
      Corpus.push_back(seedEntry(Master, I));
    if (Corpus.empty())
      return std::move(Result);

    // Replay the starting corpus: it charts the baseline bitmap, and a
    // checked-in reproducer that fails again is a regression.
    for (const CorpusEntry &E : Corpus)
      evaluate(E.Source, E.Trail, /*Iteration=*/0, /*Retain=*/nullptr);

    for (unsigned Iter = 1; Iter <= Opts.Runs; ++Iter) {
      if (overBudget())
        break;
      ++Result.Iterations;
      FuzzRng R = Master.derive(1000 + Iter);
      const CorpusEntry &Parent = Corpus[R.below(int(Corpus.size()))];
      std::string Src = Parent.Source;
      std::string Trail = Parent.Trail;
      if (!mutate(R, Src, Trail)) {
        ++Result.MutantsInvalid;
        continue;
      }
      CorpusEntry Retained;
      if (evaluate(Src, Trail, Iter, &Retained))
        Corpus.push_back(std::move(Retained));
    }
    Result.CorpusSize = Corpus.size();
    Result.FeatureBits = Global.countBits();
    return std::move(Result);
  }

private:
  bool overBudget() const {
    if (Opts.TimeBudgetSec <= 0)
      return false;
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    return Elapsed.count() >= Opts.TimeBudgetSec;
  }

  CorpusEntry seedEntry(const FuzzRng &Master, unsigned I) {
    FuzzRng R = Master.derive(I);
    RandomSpec Spec;
    Spec.Seed = R.next();
    Spec.Procs = 3 + R.below(5);
    Spec.Globals = 1 + R.below(4);
    Spec.MaxStmtsPerProc = 6 + R.below(8);
    Spec.AllowRecursion = R.chance(40);
    CorpusEntry E;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "seed-%03u", I);
    E.Name = Name;
    E.Source = generateRandomProgram(Spec);
    E.OriginSeed = Opts.Seed;
    return E;
  }

  /// Applies 1-3 chained mutations; false when no valid mutant emerged.
  bool mutate(FuzzRng &R, std::string &Src, std::string &Trail) {
    int Count = 1 + R.below(3);
    for (int M = 0; M != Count; ++M) {
      MutationOptions MO;
      MO.Seed = R.next();
      MutationResult MR = mutateProgram(Src, MO);
      if (!MR.Ok)
        return M != 0; // Partial chains still count as mutants.
      Src = MR.Source;
      Trail += (Trail.empty() ? "" : ",") + MR.Trail;
    }
    return true;
  }

  /// Full evaluation of one program: checks + features. Returns true
  /// (and fills \p Retained when non-null) when the program lit novel
  /// bits and should join the corpus.
  bool evaluate(const std::string &Src, const std::string &Trail,
                unsigned Iteration, CorpusEntry *Retained) {
    FuzzFeedback Local;
    std::optional<FuzzFailure> Fail = evaluateProgram(Src, Local, Opts);
    if (Fail) {
      Fail->Iteration = Iteration;
      Fail->Trail = Trail;
      recordFailure(std::move(*Fail));
      return false;
    }
    if (!Global.mergeNovel(Local))
      return false;
    Result.FeatureBitsTimeline.push_back(Global.countBits());
    if (Retained) {
      ++Result.MutantsRetained;
      char Name[32];
      std::snprintf(Name, sizeof(Name), "cov-%06u", Iteration);
      Retained->Name = Name;
      Retained->Source = Src;
      Retained->OriginSeed = Opts.Seed;
      Retained->Trail = Trail;
      if (!Opts.CorpusDir.empty())
        saveCorpusEntry(Opts.CorpusDir, *Retained);
      if (Opts.Log)
        *Opts.Log << "RETAIN iter=" << Iteration
                  << " bits=" << Global.countBits() << " trail=" << Trail
                  << "\n";
    }
    return true;
  }

  void recordFailure(FuzzFailure Fail) {
    // One reproducer per (kind, config) keeps the reduction bill sane; a
    // campaign that trips dozens of distinct checks is reported as such.
    for (const FuzzFailure &Seen : Result.Failures)
      if (Seen.Kind == Fail.Kind && Seen.Config == Fail.Config)
        return;
    if (Result.Failures.size() >= 8)
      return;
    if (Opts.Log)
      *Opts.Log << "FAILURE " << Fail.Kind << " (" << Fail.Config
                << ") iter=" << Fail.Iteration << ": " << Fail.Detail
                << "\n";
    if (Opts.Reduce) {
      FuzzOptions Sub = Opts;
      Sub.Reduce = false;
      Sub.Log = nullptr;
      ReduceOptions RO;
      RO.MaxChecks = Opts.ReduceMaxChecks;
      ReduceResult RR = reduceProgram(
          Fail.Source,
          [&](const std::string &Candidate) {
            FuzzFeedback Scratch;
            std::optional<FuzzFailure> G =
                evaluateProgram(Candidate, Scratch, Sub);
            return G && G->Kind == Fail.Kind && G->Config == Fail.Config;
          },
          RO);
      if (RR.Reduced)
        Fail.Source = RR.Source;
      if (Opts.Log)
        *Opts.Log << "REDUCED " << RR.OriginalBytes << " -> "
                  << RR.ReducedBytes << " bytes in " << RR.ChecksRun
                  << " checks\n";
    }
    if (!Opts.CorpusDir.empty()) {
      CorpusEntry E;
      char Name[48];
      std::snprintf(Name, sizeof(Name), "fail-%06u", Fail.Iteration);
      E.Name = std::string(Name) + "-" + Fail.Kind;
      E.Source = Fail.Source;
      E.OriginSeed = Opts.Seed;
      E.Trail = Fail.Trail;
      E.Failure = Fail.Kind + "/" + Fail.Config;
      saveCorpusEntry(Opts.CorpusDir, E);
    }
    Result.Failures.push_back(std::move(Fail));
  }

  const FuzzOptions &Opts;
  std::chrono::steady_clock::time_point Start;
  FuzzFeedback Global;
  FuzzResult Result;
};

} // namespace

FuzzResult ipcp::runFuzzer(const FuzzOptions &Opts) {
  return Campaign(Opts).run();
}
