//===- fuzz/Fuzzer.h - Coverage-guided fuzzing loop -------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coverage-guided fuzzing loop, libFuzzer-shaped but with the
/// analyzer's *behavior* as the coverage signal: each candidate program
/// is analyzed under ten pipeline configurations with a FuzzFeedback
/// sink attached, and a mutant joins the corpus only when its feature
/// bitmap (lattice transitions per jump-function form, solver memo
/// traffic, alias pairs, DCE rounds, inliner/cloning decisions, ...)
/// lights bits the accumulated corpus never has. Candidates are also
/// *checked* — config-hierarchy invariants, solver-strategy agreement,
/// and the translation-validation oracle — and failures are reduced to
/// minimal reproducers (fuzz/Reducer.h) and reported.
///
/// Everything is deterministic from FuzzOptions::Seed (given the same
/// starting corpus and no wall-clock budget): the PRNG chain derives one
/// child per iteration, corpus order is by name, and no decision reads a
/// clock except the optional TimeBudgetSec cutoff.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FUZZ_FUZZER_H
#define IPCP_FUZZ_FUZZER_H

#include "exec/ExecEngine.h"
#include "fuzz/Corpus.h"
#include "ipcp/Pipeline.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ipcp {
class FuzzFeedback;

/// One analyzer configuration under test, with a stable display name.
struct FuzzConfig {
  std::string Name;
  PipelineOptions Pipeline;
};

/// The ten configurations every candidate runs under: the four
/// jump-function kinds' extremes, complete propagation, the
/// intraprocedural baseline, gated SSA, the precision tier
/// (flow-sensitive aliasing and optimistic value numbering), and the
/// copy tier (polynomial and pass-through with the copy lattice).
const std::vector<FuzzConfig> &fuzzConfigs();

/// Parameters of one campaign.
struct FuzzOptions {
  /// Master seed; the whole campaign derives from it.
  uint64_t Seed = 1;
  /// Mutant evaluations to attempt (the loop bound).
  unsigned Runs = 200;
  /// Optional wall-clock cutoff in seconds (0 = none). A campaign under
  /// a time budget is *not* deterministic — use Runs for replayable
  /// campaigns.
  double TimeBudgetSec = 0;
  /// Directory to load the starting corpus from and save retained
  /// entries / reduced reproducers into (empty = in-memory only).
  std::string CorpusDir;
  /// Reduce failing programs before reporting them.
  bool Reduce = true;
  /// Predicate-check budget per reduction.
  unsigned ReduceMaxChecks = 150;
  /// Random seed programs generated to prime the corpus (in addition to
  /// anything loaded from CorpusDir).
  unsigned SeedPrograms = 6;
  /// Interpreter step budget per oracle execution.
  uint64_t MaxSteps = 30000;
  /// Engine executing the oracle runs. The bytecode VM is the default
  /// hot path; --exec=ast keeps the AST interpreter available so corpus
  /// replays and campaigns can be diffed across engines.
  ExecEngine Engine = ExecEngine::Vm;
  /// Also exercise the inliner and the cloning transform (records their
  /// decision features and validates them on the first config). The
  /// costliest part of an evaluation.
  bool CheckTransforms = true;
  /// Progress log (null = silent).
  std::ostream *Log = nullptr;
};

/// One check failure, reduced when reduction is enabled.
struct FuzzFailure {
  /// "pipeline-error", "hierarchy-violation", "strategy-disagreement",
  /// "oracle-mismatch", or "transform-error".
  std::string Kind;
  /// Which configuration (or comparison) tripped.
  std::string Config;
  /// Human-readable detail.
  std::string Detail;
  /// The reproducer (reduced when reduction ran).
  std::string Source;
  /// Mutation trail from its corpus parent.
  std::string Trail;
  /// Iteration that found it (0 for corpus replay failures).
  unsigned Iteration = 0;
};

/// Campaign outcome.
struct FuzzResult {
  unsigned Iterations = 0;
  /// Mutation attempts that produced no valid mutant.
  unsigned MutantsInvalid = 0;
  /// Mutants whose feature bitmaps lit novel bits and joined the corpus.
  unsigned MutantsRetained = 0;
  /// Final corpus size (loaded + seeded + retained).
  size_t CorpusSize = 0;
  /// Final accumulated feature-bit count.
  size_t FeatureBits = 0;
  /// Accumulated bit count after each retention event, in order; by
  /// construction strictly increasing (retention requires novelty).
  std::vector<size_t> FeatureBitsTimeline;
  std::vector<FuzzFailure> Failures;
};

/// Analyzes \p Source under every fuzz configuration, recording behavior
/// features into \p FB and running the cross-config checks and the
/// oracle. Returns the first failure, or nullopt when all checks pass.
/// This is the fuzzer's whole evaluation of one program; the corpus
/// replay test calls it directly.
std::optional<FuzzFailure> evaluateProgram(const std::string &Source,
                                           FuzzFeedback &FB,
                                           const FuzzOptions &Opts);

/// Runs one campaign.
FuzzResult runFuzzer(const FuzzOptions &Opts);

} // namespace ipcp

#endif // IPCP_FUZZ_FUZZER_H
