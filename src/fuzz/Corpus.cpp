//===- fuzz/Corpus.cpp - On-disk fuzz corpus ------------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

using namespace ipcp;

namespace fs = std::filesystem;

namespace {

constexpr std::string_view Magic = "! ipcp-fuzz corpus";

/// Returns the value of a "! key: value" metadata line, or nullopt.
std::optional<std::string_view> metaValue(std::string_view Line,
                                          std::string_view Key) {
  if (Line.substr(0, 2) != "! ")
    return std::nullopt;
  Line.remove_prefix(2);
  if (Line.substr(0, Key.size()) != Key)
    return std::nullopt;
  Line.remove_prefix(Key.size());
  if (Line.substr(0, 2) != ": ")
    return std::nullopt;
  return Line.substr(2);
}

} // namespace

std::string ipcp::serializeCorpusEntry(const CorpusEntry &Entry) {
  std::ostringstream OS;
  OS << Magic << "\n";
  OS << "! origin-seed: " << Entry.OriginSeed << "\n";
  if (!Entry.Trail.empty())
    OS << "! trail: " << Entry.Trail << "\n";
  if (!Entry.Failure.empty())
    OS << "! failure: " << Entry.Failure << "\n";
  OS << Entry.Source;
  if (!Entry.Source.empty() && Entry.Source.back() != '\n')
    OS << "\n";
  return OS.str();
}

CorpusEntry ipcp::parseCorpusEntry(std::string_view Text, std::string Name,
                                   std::string *Diag) {
  CorpusEntry Entry;
  Entry.Name = std::move(Name);
  auto Report = [&](std::string Msg) {
    if (Diag && Diag->empty())
      *Diag = std::move(Msg);
  };
  size_t Pos = 0;
  bool SawMagic = false;
  bool SawSeed = false;
  bool SawTrail = false;
  bool SawFailure = false;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    size_t Next = Eol == std::string_view::npos ? Text.size() : Eol + 1;
    if (!SawMagic) {
      if (Line != Magic) {
        // A line that starts like the magic but isn't it is a mangled
        // header, not a program that happens to open with a comment.
        if (Line.substr(0, 6) == "! ipcp")
          Report("garbled magic line '" + std::string(Line) + "'");
        break; // Bare program with no header.
      }
      SawMagic = true;
      Pos = Next;
      continue;
    }
    if (auto V = metaValue(Line, "origin-seed")) {
      if (SawSeed)
        Report("duplicate origin-seed line");
      else if (V->empty() ||
               V->find_first_not_of("0123456789") != std::string_view::npos)
        Report("garbled origin-seed '" + std::string(*V) + "'");
      else
        Entry.OriginSeed = std::strtoull(std::string(*V).c_str(), nullptr, 10);
      SawSeed = true;
    } else if (auto T = metaValue(Line, "trail")) {
      if (SawTrail)
        Report("duplicate trail line");
      Entry.Trail = std::string(*T);
      SawTrail = true;
    } else if (auto F = metaValue(Line, "failure")) {
      if (SawFailure)
        Report("duplicate failure line");
      Entry.Failure = std::string(*F);
      SawFailure = true;
    } else {
      break; // First non-metadata line starts the program.
    }
    Pos = Next;
  }
  Entry.Source = std::string(Text.substr(Pos));
  if (SawMagic && !SawSeed)
    Report("truncated header: no origin-seed line");
  if (SawMagic &&
      Entry.Source.find_first_not_of(" \t\r\n") == std::string::npos)
    Report("truncated entry: no program after metadata header");
  return Entry;
}

std::vector<CorpusEntry> ipcp::loadCorpusDir(const std::string &Dir,
                                             std::vector<std::string> *Diags) {
  std::vector<CorpusEntry> Entries;
  std::error_code Ec;
  if (!fs::is_directory(Dir, Ec))
    return Entries;
  std::vector<fs::path> Files;
  for (const auto &DirEnt : fs::directory_iterator(Dir, Ec))
    if (DirEnt.path().extension() == ".mf")
      Files.push_back(DirEnt.path());
  std::sort(Files.begin(), Files.end());
  for (const fs::path &File : Files) {
    std::ifstream In(File);
    if (!In) {
      if (Diags)
        Diags->push_back(File.filename().string() + ": cannot read");
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Diag;
    CorpusEntry Entry =
        parseCorpusEntry(Buf.str(), File.stem().string(), &Diag);
    if (!Diag.empty()) {
      if (Diags)
        Diags->push_back(File.filename().string() + ": " + Diag);
      continue; // Never replay a mangled entry.
    }
    Entries.push_back(std::move(Entry));
  }
  return Entries;
}

bool ipcp::saveCorpusEntry(const std::string &Dir, const CorpusEntry &Entry) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  std::ofstream Out(fs::path(Dir) / (Entry.Name + ".mf"));
  if (!Out)
    return false;
  Out << serializeCorpusEntry(Entry);
  return bool(Out);
}
