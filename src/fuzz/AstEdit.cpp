//===- fuzz/AstEdit.cpp - Shared AST surgery helpers ----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/AstEdit.h"

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Casting.h"

using namespace ipcp;
using namespace ipcp::fuzz;

namespace {

void collectFromList(std::vector<Stmt *> *List,
                     std::function<void(std::vector<Stmt *>)> Set,
                     ProcId Owner, std::vector<StmtListRef> &Out) {
  Out.push_back({*List, std::move(Set), Owner});
  for (Stmt *S : *List) {
    if (auto *If = dyn_cast<IfStmt>(S)) {
      collectFromList(
          const_cast<std::vector<Stmt *> *>(&If->thenBody()),
          [If](std::vector<Stmt *> B) { If->setThenBody(std::move(B)); },
          Owner, Out);
      collectFromList(
          const_cast<std::vector<Stmt *> *>(&If->elseBody()),
          [If](std::vector<Stmt *> B) { If->setElseBody(std::move(B)); },
          Owner, Out);
    } else if (auto *Do = dyn_cast<DoLoopStmt>(S)) {
      collectFromList(
          const_cast<std::vector<Stmt *> *>(&Do->body()),
          [Do](std::vector<Stmt *> B) { Do->setBody(std::move(B)); }, Owner,
          Out);
    } else if (auto *While = dyn_cast<WhileStmt>(S)) {
      collectFromList(
          const_cast<std::vector<Stmt *> *>(&While->body()),
          [While](std::vector<Stmt *> B) { While->setBody(std::move(B)); },
          Owner, Out);
    }
  }
}

} // namespace

std::vector<StmtListRef> ipcp::fuzz::collectStmtLists(Program &Prog) {
  std::vector<StmtListRef> Out;
  for (ProcId P = 0, E = static_cast<ProcId>(Prog.Procs.size()); P != E;
       ++P) {
    Proc *Pr = Prog.Procs[P].get();
    collectFromList(
        &Pr->Body, [Pr](std::vector<Stmt *> B) { Pr->Body = std::move(B); },
        P, Out);
  }
  return Out;
}

std::unique_ptr<AstContext>
ipcp::fuzz::parseChecked(std::string_view Source, std::string *Error) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    Sema::run(*Ctx, Diags);
  if (Diags.hasErrors()) {
    if (Error)
      *Error = Diags.str();
    return nullptr;
  }
  return Ctx;
}

std::string ipcp::fuzz::printProgram(const Program &Prog) {
  AstPrinter Printer;
  return Printer.programToString(Prog);
}

std::optional<std::string>
ipcp::fuzz::normalizeProgram(std::string_view Source) {
  auto Ctx = parseChecked(Source);
  if (!Ctx)
    return std::nullopt;
  return printProgram(Ctx->program());
}
