//===- fuzz/Mutator.h - MiniFort program mutation ---------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's mutation engine: structured edits over parsed MiniFort
/// ASTs, aimed at the analyzer's decision points rather than at syntax.
/// Each mutator targets a specific behavior: splicing calls reshapes the
/// call graph and jump-function meets, aliasing two actuals or passing a
/// global bare drives the RefAlias machinery, perturbing DO bounds flips
/// loop-analyzability, self-calls exercise recursion handling, and
/// clone-and-rename grows call-site partitions. Mutants are validated
/// (parse + sema) before they are returned, so consumers only ever see
/// programs the analyzer accepts.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FUZZ_MUTATOR_H
#define IPCP_FUZZ_MUTATOR_H

#include <cstdint>
#include <string>
#include <string_view>

namespace ipcp {

/// Parameters of one mutation attempt.
struct MutationOptions {
  /// Seed of the mutation's private PRNG chain; the same (source, seed)
  /// pair always yields the same mutant.
  uint64_t Seed = 1;
  /// How many candidate edits to try before giving up. An edit can fail
  /// validation (e.g. a dropped statement leaves a body empty) or
  /// produce text identical to the input; both count as one attempt.
  int Attempts = 12;
};

/// Outcome of one mutation.
struct MutationResult {
  bool Ok = false;
  /// The mutated program, canonically printed. Only set when Ok.
  std::string Source;
  /// Machine-readable description of the applied edit, e.g.
  /// "splice-call(w2@w0)"; corpus metadata accumulates these into the
  /// mutation trail.
  std::string Trail;
  /// Why no mutant was produced (when !Ok).
  std::string Error;
};

/// Applies one randomized semantic edit to \p Source. The input must be
/// a valid MiniFort program; the result (when Ok) is too, and its text
/// differs from the canonical print of the input.
MutationResult mutateProgram(std::string_view Source,
                             const MutationOptions &Opts);

} // namespace ipcp

#endif // IPCP_FUZZ_MUTATOR_H
