//===- fuzz/Mutator.cpp - MiniFort program mutation -----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "fuzz/AstEdit.h"
#include "fuzz/FuzzRng.h"
#include "lang/AstClone.h"
#include "support/Casting.h"

#include <string>
#include <vector>

using namespace ipcp;
using namespace ipcp::fuzz;

namespace {

/// One freshly parsed copy of the input plus the lookup structures every
/// edit needs. Rebuilt per attempt so edits start from pristine trees.
struct EditContext {
  std::unique_ptr<AstContext> Ctx;
  Program *Prog = nullptr;
  std::vector<StmtListRef> Lists;
  /// Every call statement with its position: (list index, item index).
  struct CallSite {
    size_t List;
    size_t Item;
    CallStmt *Call;
  };
  std::vector<CallSite> Calls;
  /// Every DO loop with its position.
  struct DoSite {
    size_t List;
    size_t Item;
    DoLoopStmt *Loop;
  };
  std::vector<DoSite> Dos;

  explicit EditContext(std::string_view Source) {
    Ctx = parseChecked(Source);
    if (!Ctx)
      return;
    Prog = &Ctx->program();
    Lists = collectStmtLists(*Prog);
    for (size_t L = 0; L != Lists.size(); ++L)
      for (size_t I = 0; I != Lists[L].Items.size(); ++I) {
        Stmt *S = Lists[L].Items[I];
        if (auto *C = dyn_cast<CallStmt>(S))
          Calls.push_back({L, I, C});
        else if (auto *D = dyn_cast<DoLoopStmt>(S))
          Dos.push_back({L, I, D});
      }
  }

  /// Scalar names visible inside procedure \p P: formals, locals, then
  /// globals (the pools every edit draws replacement operands from).
  std::vector<std::string> scalarsOf(ProcId P) const {
    std::vector<std::string> Names;
    const Proc &Pr = *Prog->Procs[P];
    Names.insert(Names.end(), Pr.formals().begin(), Pr.formals().end());
    Names.insert(Names.end(), Pr.Locals.begin(), Pr.Locals.end());
    for (const GlobalDecl &G : Prog->Globals)
      Names.push_back(G.Name);
    return Names;
  }

  /// Worker procedures (everything except main), as Program indices.
  std::vector<ProcId> workers() const {
    std::vector<ProcId> W;
    for (ProcId P = 0, E = static_cast<ProcId>(Prog->Procs.size()); P != E;
         ++P)
      if (Prog->Procs[P]->name() != "main")
        W.push_back(P);
    return W;
  }

  /// Replaces the statement at (\p List, \p Item) with \p With.
  void replaceStmt(size_t List, size_t Item, Stmt *With) {
    std::vector<Stmt *> Items = Lists[List].Items;
    Items[Item] = With;
    Lists[List].Set(std::move(Items));
  }

  /// Inserts \p S into list \p List at position \p At.
  void insertStmt(size_t List, size_t At, Stmt *S) {
    std::vector<Stmt *> Items = Lists[List].Items;
    Items.insert(Items.begin() + At, S);
    Lists[List].Set(std::move(Items));
  }
};

/// A literal or a visible scalar, the generic actual-argument filler.
Expr *randomActual(EditContext &E, FuzzRng &R,
                   const std::vector<std::string> &Scalars) {
  if (Scalars.empty() || R.chance(50))
    return E.Ctx->createExpr<IntLitExpr>(SourceLoc(), R.below(40) - 5);
  return E.Ctx->createExpr<VarRefExpr>(SourceLoc(),
                                       Scalars[R.below(int(Scalars.size()))]);
}

/// Builds a call to \p Callee with freshly chosen actuals visible in
/// procedure \p Owner.
CallStmt *buildCall(EditContext &E, FuzzRng &R, ProcId Callee,
                    ProcId Owner) {
  std::vector<std::string> Scalars = E.scalarsOf(Owner);
  std::vector<Expr *> Args;
  for (size_t A = 0, N = E.Prog->Procs[Callee]->formals().size(); A != N;
       ++A)
    Args.push_back(randomActual(E, R, Scalars));
  return E.Ctx->createStmt<CallStmt>(SourceLoc(),
                                     E.Prog->Procs[Callee]->name(),
                                     std::move(Args));
}

/// splice-call: insert a call to a random worker at a random program
/// point. Reshapes the call graph — new meets at the callee's formals,
/// possibly new recursion or previously-unreachable procedures becoming
/// reachable.
bool spliceCall(EditContext &E, FuzzRng &R, std::string &Trail) {
  std::vector<ProcId> Workers = E.workers();
  if (Workers.empty() || E.Lists.empty())
    return false;
  ProcId Callee = Workers[R.below(int(Workers.size()))];
  size_t L = size_t(R.below(int(E.Lists.size())));
  ProcId Owner = E.Lists[L].Owner;
  CallStmt *Call = buildCall(E, R, Callee, Owner);
  E.insertStmt(L, size_t(R.below(int(E.Lists[L].Items.size()) + 1)), Call);
  Trail = "splice-call(" + E.Prog->Procs[Callee]->name() + "@" +
          E.Prog->Procs[Owner]->name() + ")";
  return true;
}

/// alias-args: rewrite an existing call so the same variable binds two
/// reference formals, or a global binds one — the shapes RefAlias exists
/// to catch.
bool aliasArgs(EditContext &E, FuzzRng &R, std::string &Trail) {
  if (E.Calls.empty())
    return false;
  const auto &Site = E.Calls[R.below(int(E.Calls.size()))];
  size_t N = Site.Call->args().size();
  if (N == 0)
    return false;
  ProcId Owner = E.Lists[Site.List].Owner;
  std::vector<std::string> Scalars = E.scalarsOf(Owner);
  if (Scalars.empty())
    return false;
  std::vector<Expr *> Args;
  for (Expr *A : Site.Call->args())
    Args.push_back(cloneExpr(*E.Ctx, A, {}));
  bool SameVar = N >= 2 && R.chance(60);
  if (SameVar) {
    std::string V = Scalars[R.below(int(Scalars.size()))];
    size_t First = size_t(R.below(int(N)));
    size_t Second = (First + 1 + size_t(R.below(int(N) - 1))) % N;
    Args[First] = E.Ctx->createExpr<VarRefExpr>(SourceLoc(), V);
    Args[Second] = E.Ctx->createExpr<VarRefExpr>(SourceLoc(), V);
  } else {
    if (E.Prog->Globals.empty())
      return false;
    const std::string &G =
        E.Prog->Globals[R.below(int(E.Prog->Globals.size()))].Name;
    Args[R.below(int(N))] = E.Ctx->createExpr<VarRefExpr>(SourceLoc(), G);
  }
  CallStmt *New = E.Ctx->createStmt<CallStmt>(
      SourceLoc(), Site.Call->calleeName(), std::move(Args));
  E.replaceStmt(Site.List, Site.Item, New);
  Trail = std::string(SameVar ? "alias-args(" : "global-arg(") +
          Site.Call->calleeName() + ")";
  return true;
}

/// shield-arg: wrap a by-reference actual in (v + 0), turning it into a
/// by-value temporary — the aliasing flip in the other direction.
bool shieldArg(EditContext &E, FuzzRng &R, std::string &Trail) {
  if (E.Calls.empty())
    return false;
  const auto &Site = E.Calls[R.below(int(E.Calls.size()))];
  std::vector<size_t> VarArgs;
  for (size_t A = 0; A != Site.Call->args().size(); ++A)
    if (isa<VarRefExpr>(Site.Call->args()[A]))
      VarArgs.push_back(A);
  if (VarArgs.empty())
    return false;
  size_t Chosen = VarArgs[R.below(int(VarArgs.size()))];
  std::vector<Expr *> Args;
  for (size_t A = 0; A != Site.Call->args().size(); ++A) {
    Expr *Clone = cloneExpr(*E.Ctx, Site.Call->args()[A], {});
    if (A == Chosen)
      Clone = E.Ctx->createExpr<BinaryExpr>(
          SourceLoc(), BinaryOp::Add, Clone,
          E.Ctx->createExpr<IntLitExpr>(SourceLoc(), 0));
    Args.push_back(Clone);
  }
  CallStmt *New = E.Ctx->createStmt<CallStmt>(
      SourceLoc(), Site.Call->calleeName(), std::move(Args));
  E.replaceStmt(Site.List, Site.Item, New);
  Trail = "shield-arg(" + Site.Call->calleeName() + ")";
  return true;
}

/// perturb-do: replace a DO loop's bounds or stride. Constant bounds
/// make trip counts analyzable; an empty range, a stride of 2, or a
/// negative stride each hit a different corner of loop lowering.
bool perturbDo(EditContext &E, FuzzRng &R, std::string &Trail) {
  if (E.Dos.empty())
    return false;
  const auto &Site = E.Dos[R.below(int(E.Dos.size()))];
  DoLoopStmt *Old = Site.Loop;
  auto Lit = [&](int64_t V) {
    return E.Ctx->createExpr<IntLitExpr>(SourceLoc(), V);
  };
  Expr *Lo = cloneExpr(*E.Ctx, Old->lo(), {});
  Expr *Hi = cloneExpr(*E.Ctx, Old->hi(), {});
  Expr *Step = Old->step() ? cloneExpr(*E.Ctx, Old->step(), {}) : nullptr;
  const char *What = "";
  switch (R.below(4)) {
  case 0:
    Hi = Lit(R.below(6));
    What = "hi";
    break;
  case 1:
    Step = Lit(R.chance(50) ? 2 : -1);
    What = "step";
    break;
  case 2:
    Lo = Lit(3);
    Hi = Lit(1);
    What = "empty";
    break;
  default:
    Step = nullptr;
    What = "nostep";
    break;
  }
  DoLoopStmt *New = E.Ctx->createStmt<DoLoopStmt>(
      SourceLoc(), Old->var(), Lo, Hi, Step,
      std::vector<Stmt *>(Old->body()));
  E.replaceStmt(Site.List, Site.Item, New);
  Trail = std::string("perturb-do(") + What + ")";
  return true;
}

/// self-call: make a worker recursive with a guarded call to itself.
/// The guard keeps the common execution terminating; the analyzer must
/// still treat the procedure as a call-graph cycle.
bool toggleRecursion(EditContext &E, FuzzRng &R, std::string &Trail) {
  std::vector<ProcId> Workers = E.workers();
  if (Workers.empty())
    return false;
  ProcId P = Workers[R.below(int(Workers.size()))];
  std::vector<std::string> Scalars = E.scalarsOf(P);
  if (Scalars.empty())
    return false;
  Expr *Cond = E.Ctx->createExpr<BinaryExpr>(
      SourceLoc(), BinaryOp::CmpLt,
      E.Ctx->createExpr<VarRefExpr>(SourceLoc(),
                                    Scalars[R.below(int(Scalars.size()))]),
      E.Ctx->createExpr<IntLitExpr>(SourceLoc(), 1 + R.below(3)));
  CallStmt *Self = buildCall(E, R, P, P);
  IfStmt *Guard = E.Ctx->createStmt<IfStmt>(
      SourceLoc(), Cond, std::vector<Stmt *>{Self}, std::vector<Stmt *>{});
  // Insert into a list owned by P (its body or one of its nested lists).
  std::vector<size_t> Owned;
  for (size_t L = 0; L != E.Lists.size(); ++L)
    if (E.Lists[L].Owner == P)
      Owned.push_back(L);
  size_t L = Owned[R.below(int(Owned.size()))];
  E.insertStmt(L, size_t(R.below(int(E.Lists[L].Items.size()) + 1)), Guard);
  Trail = "self-call(" + E.Prog->Procs[P]->name() + ")";
  return true;
}

/// clone-proc: duplicate a worker under a fresh name and retarget one of
/// its call sites, splitting the formal's meet the way the cloning
/// transform does — but off-policy, wherever the dice land.
bool cloneProc(EditContext &E, FuzzRng &R, std::string &Trail) {
  std::vector<ProcId> Workers = E.workers();
  if (Workers.empty())
    return false;
  ProcId P = Workers[R.below(int(Workers.size()))];
  const Proc &Old = *E.Prog->Procs[P];
  std::string Base = Old.name();
  std::string NewName;
  for (int K = 0;; ++K) {
    NewName = Base + "_m" + std::to_string(K);
    if (!E.Prog->findProc(NewName))
      break;
  }
  auto Clone = std::make_unique<Proc>(SourceLoc(), NewName, Old.formals());
  Clone->Locals = Old.Locals;
  Clone->LocalArrays = Old.LocalArrays;
  Clone->Body = cloneStmts(*E.Ctx, Old.Body, {});
  E.Prog->Procs.push_back(std::move(Clone));
  std::vector<const EditContext::CallSite *> Sites;
  for (const auto &Site : E.Calls)
    if (Site.Call->calleeName() == Base)
      Sites.push_back(&Site);
  if (!Sites.empty())
    Sites[R.below(int(Sites.size()))]->Call->setCalleeName(NewName);
  Trail = "clone-proc(" + Base + "->" + NewName + ")";
  return true;
}

/// perturb-global: change or drop a global's compile-time initializer —
/// the entry-constant seed of the whole propagation.
bool perturbGlobal(EditContext &E, FuzzRng &R, std::string &Trail) {
  if (E.Prog->Globals.empty())
    return false;
  GlobalDecl &G = E.Prog->Globals[R.below(int(E.Prog->Globals.size()))];
  if (G.Init && R.chance(40))
    G.Init = std::nullopt;
  else
    G.Init = int64_t(R.below(100));
  Trail = "perturb-global(" + G.Name + ")";
  return true;
}

/// drop-stmt: delete one statement. Shrinks programs over time (the
/// counterweight to splice/clone growth) and removes defs/uses the
/// propagation depended on.
bool dropStmt(EditContext &E, FuzzRng &R, std::string &Trail) {
  std::vector<size_t> NonEmpty;
  for (size_t L = 0; L != E.Lists.size(); ++L)
    if (!E.Lists[L].Items.empty())
      NonEmpty.push_back(L);
  if (NonEmpty.empty())
    return false;
  size_t L = NonEmpty[R.below(int(NonEmpty.size()))];
  std::vector<Stmt *> Items = E.Lists[L].Items;
  Items.erase(Items.begin() + R.below(int(Items.size())));
  E.Lists[L].Set(std::move(Items));
  Trail = "drop-stmt";
  return true;
}

using EditFn = bool (*)(EditContext &, FuzzRng &, std::string &);

// Weighted toward the call-shape edits — they are the ones that move the
// interprocedural analysis; the rest keep the programs from ossifying.
constexpr EditFn Edits[] = {
    spliceCall, spliceCall, aliasArgs,       aliasArgs, shieldArg,
    perturbDo,  perturbDo,  toggleRecursion, cloneProc, perturbGlobal,
    dropStmt,
};

} // namespace

MutationResult ipcp::mutateProgram(std::string_view Source,
                                   const MutationOptions &Opts) {
  MutationResult Result;
  std::optional<std::string> Canonical = normalizeProgram(Source);
  if (!Canonical) {
    Result.Error = "input program is not valid MiniFort";
    return Result;
  }
  FuzzRng Master(Opts.Seed);
  for (int Attempt = 0; Attempt != Opts.Attempts; ++Attempt) {
    FuzzRng R = Master.derive(uint64_t(Attempt));
    EditContext E(Source);
    if (!E.Ctx) {
      Result.Error = "input program is not valid MiniFort";
      return Result;
    }
    std::string Trail;
    EditFn Edit = Edits[R.below(int(std::size(Edits)))];
    if (!Edit(E, R, Trail))
      continue;
    std::string Printed = printProgram(*E.Prog);
    // The edit worked on an unresolved tree; only mutants that re-check
    // cleanly (and actually changed the program) leave this function.
    std::optional<std::string> Checked = normalizeProgram(Printed);
    if (!Checked || *Checked == *Canonical)
      continue;
    Result.Ok = true;
    Result.Source = std::move(*Checked);
    Result.Trail = std::move(Trail);
    return Result;
  }
  Result.Error = "no valid mutant within attempt budget";
  return Result;
}
