//===- fuzz/FuzzRng.h - Deterministic PRNG chains ---------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's only randomness source: a splitmix64 generator with
/// explicit derivation. Every fuzz campaign is a pure function of its
/// master seed — iteration k derives its own child generator, each
/// mutation derives one from that, and the derivation path is what
/// corpus metadata records — so any corpus entry replays byte-identically
/// with no wall-clock or global RNG state involved (independent of the
/// C++ library, like workloads/RandomProgram's generator).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FUZZ_FUZZRNG_H
#define IPCP_FUZZ_FUZZRNG_H

#include <cstdint>

namespace ipcp {

class FuzzRng {
public:
  explicit FuzzRng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111eb;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound).
  int below(int Bound) {
    return Bound <= 1 ? 0 : static_cast<int>(next() % uint64_t(Bound));
  }

  bool chance(int Percent) { return below(100) < Percent; }

  /// An independent child generator for stream \p Stream; deriving never
  /// advances this generator, so sibling streams can't perturb each
  /// other (the property the replay guarantee rests on).
  FuzzRng derive(uint64_t Stream) const {
    FuzzRng Child(State ^ (0x94d049bb133111eb * (Stream + 1)));
    Child.next();
    return Child;
  }

private:
  uint64_t State;
};

} // namespace ipcp

#endif // IPCP_FUZZ_FUZZRNG_H
