//===- fuzz/AstEdit.h - Shared AST surgery helpers --------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plumbing the mutator and the reducer share: a flattened view of every
/// statement list in a program (with a writer that pushes an edited list
/// back into its owning node), and the parse/sema/print round-trip that
/// both use to validate and canonicalize candidate programs. AST nodes
/// have no parent links and statement lists live inside four different
/// node shapes, so edits go through this view instead of ad-hoc casts.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FUZZ_ASTEDIT_H
#define IPCP_FUZZ_ASTEDIT_H

#include "lang/Ast.h"

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipcp {
namespace fuzz {

/// One statement list somewhere in the program (a procedure body, an IF
/// arm, or a loop body), with a setter that writes a replacement list
/// back into the owning node.
struct StmtListRef {
  /// Snapshot of the list's contents at collection time.
  std::vector<Stmt *> Items;
  /// Writes a new list into the owning node. Using it invalidates the
  /// Items snapshots of lists nested inside statements that were
  /// dropped, so apply at most one structural edit per collection.
  std::function<void(std::vector<Stmt *>)> Set;
  /// Index into Program::Procs of the procedure containing the list.
  ProcId Owner = 0;
};

/// Collects every statement list of \p Prog, depth-first: each
/// procedure's body first, then the lists inside its nested statements.
std::vector<StmtListRef> collectStmtLists(Program &Prog);

/// Parses and sema-checks \p Source; returns the checked context or null
/// when the program is not valid MiniFort (with the first diagnostic in
/// \p Error when non-null).
std::unique_ptr<AstContext> parseChecked(std::string_view Source,
                                         std::string *Error = nullptr);

/// Pretty-prints \p Prog back to source (no substitutions).
std::string printProgram(const Program &Prog);

/// Parse + sema + print: the canonical text of \p Source, or nullopt
/// when it is not a valid program. Both the mutator and the reducer emit
/// canonical text, so "did this edit change anything" is a string
/// comparison.
std::optional<std::string> normalizeProgram(std::string_view Source);

} // namespace fuzz
} // namespace ipcp

#endif // IPCP_FUZZ_ASTEDIT_H
