//===- fuzz/Reducer.h - Failing-program reduction ---------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging for MiniFort reproducers: given a program and a
/// predicate that recognizes "still exhibits the failure", shrink the
/// program while keeping the predicate true. Reduction is hierarchical —
/// whole procedures (with their call sites) first, then statements (with
/// loop/branch body hoisting), then formals (with the matching actual at
/// every call site), arguments, and declarations — iterated to a fixed
/// point. Every candidate is parse- and sema-checked before the
/// predicate sees it, so predicates only ever judge valid programs.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FUZZ_REDUCER_H
#define IPCP_FUZZ_REDUCER_H

#include <functional>
#include <string>
#include <string_view>

namespace ipcp {

/// Judges one candidate: true when the candidate still exhibits the
/// failure being reduced. Candidates are always valid MiniFort.
using ReducePredicate = std::function<bool(const std::string &Source)>;

/// Limits for one reduction.
struct ReduceOptions {
  /// Predicate-invocation budget. The predicate typically re-runs the
  /// analyzer (and often the execution oracle), so it dominates cost;
  /// reduction stops — keeping the best program so far — when spent.
  unsigned MaxChecks = 400;
};

/// Outcome of one reduction.
struct ReduceResult {
  /// The smallest failing program found (canonically printed). When the
  /// input itself does not satisfy the predicate this is the canonical
  /// input and Reduced is false.
  std::string Source;
  /// True when the predicate held on the input (reduction ran).
  bool Reduced = false;
  unsigned ChecksRun = 0;
  /// Candidates that kept the failure and were adopted.
  unsigned StepsAccepted = 0;
  size_t OriginalBytes = 0;
  size_t ReducedBytes = 0;
};

/// Shrinks \p Source while \p StillFails holds.
ReduceResult reduceProgram(std::string_view Source,
                           const ReducePredicate &StillFails,
                           const ReduceOptions &Opts = ReduceOptions());

} // namespace ipcp

#endif // IPCP_FUZZ_REDUCER_H
