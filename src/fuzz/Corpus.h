//===- fuzz/Corpus.h - On-disk fuzz corpus ----------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's corpus: MiniFort programs stored as plain `.mf` files
/// with a metadata header of `!` comment lines, so every entry is
/// directly loadable by the driver, the tests, and a text editor. The
/// metadata records provenance — the origin seed and the mutation trail
/// that produced the entry — which, with the deterministic PRNG chain
/// (fuzz/FuzzRng.h), makes any entry reproducible from scratch. The
/// curated regression corpus under tests/corpus/ uses the same format;
/// check-fuzz replays it on every run.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FUZZ_CORPUS_H
#define IPCP_FUZZ_CORPUS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ipcp {

/// One corpus entry.
struct CorpusEntry {
  /// File stem (no directory, no extension).
  std::string Name;
  /// The program text, without the metadata header.
  std::string Source;
  /// Master seed of the campaign that produced the entry (0 = unknown /
  /// hand-written).
  uint64_t OriginSeed = 0;
  /// Comma-separated mutation trail from the campaign's seed program to
  /// this entry (empty for unmutated seed programs).
  std::string Trail;
  /// For reduced reproducers: the failure kind the entry originally
  /// triggered (empty for coverage-retained entries). A replayed corpus
  /// must be green — the field documents what regression it guards.
  std::string Failure;
};

/// Renders \p Entry in the on-disk format (header + source).
std::string serializeCorpusEntry(const CorpusEntry &Entry);

/// Parses the on-disk format; \p Name becomes the entry name. Text
/// without a metadata header is accepted as a bare program. When the
/// header is present but truncated or garbled (mangled magic line,
/// non-numeric or duplicate metadata, no program after the header) and
/// \p Diag is non-null, *Diag gets a one-line description and the
/// returned entry carries whatever could still be salvaged — callers
/// replaying untrusted files should skip entries with a diagnostic
/// rather than feed them to the evaluator.
CorpusEntry parseCorpusEntry(std::string_view Text, std::string Name,
                             std::string *Diag = nullptr);

/// Loads every `.mf` file under \p Dir, sorted by name so corpus order —
/// and therefore every downstream decision — is deterministic. Returns
/// an empty vector when the directory does not exist. Files with a
/// truncated or garbled metadata header are skipped, never loaded; if
/// \p Diags is non-null each skip appends a "<file>: <reason>" line.
std::vector<CorpusEntry> loadCorpusDir(const std::string &Dir,
                                       std::vector<std::string> *Diags =
                                           nullptr);

/// Writes \p Entry to `Dir/<Name>.mf`, creating \p Dir if needed.
/// Returns false on I/O failure.
bool saveCorpusEntry(const std::string &Dir, const CorpusEntry &Entry);

} // namespace ipcp

#endif // IPCP_FUZZ_CORPUS_H
