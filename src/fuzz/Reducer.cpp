//===- fuzz/Reducer.cpp - Failing-program reduction -----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "fuzz/AstEdit.h"
#include "support/Casting.h"

#include <string>
#include <vector>

using namespace ipcp;
using namespace ipcp::fuzz;

namespace {

/// State of one reduction run. Every pass generates candidates by
/// re-parsing Current, applying one edit, and printing; candidates that
/// are valid, smaller-or-different, and still failing become Current.
class Reduction {
public:
  Reduction(std::string_view Source, const ReducePredicate &StillFails,
            const ReduceOptions &Opts)
      : StillFails(StillFails), Opts(Opts) {
    Result.OriginalBytes = Source.size();
    std::optional<std::string> Norm = normalizeProgram(Source);
    if (!Norm) {
      Result.Source = std::string(Source);
      return;
    }
    Current = std::move(*Norm);
    Valid = true;
  }

  ReduceResult run() {
    if (!Valid)
      return std::move(Result);
    ++Result.ChecksRun;
    if (!StillFails(Current)) {
      finish();
      return std::move(Result);
    }
    Result.Reduced = true;
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      if (removeProcs())
        Progress = true;
      if (removeStmts())
        Progress = true;
      if (removeFormals())
        Progress = true;
      if (simplifyArgs())
        Progress = true;
      if (removeDecls())
        Progress = true;
    }
    finish();
    return std::move(Result);
  }

private:
  bool budgetLeft() const { return Result.ChecksRun < Opts.MaxChecks; }

  void finish() {
    Result.Source = Current;
    Result.ReducedBytes = Current.size();
  }

  /// Validates \p Printed and adopts it when the failure survives.
  bool tryAdopt(const std::string &Printed) {
    std::optional<std::string> Norm = normalizeProgram(Printed);
    if (!Norm || *Norm == Current || !budgetLeft())
      return false;
    ++Result.ChecksRun;
    if (!StillFails(*Norm))
      return false;
    Current = std::move(*Norm);
    ++Result.StepsAccepted;
    return true;
  }

  /// Pass 1: drop a whole procedure together with every call to it.
  bool removeProcs() {
    bool Any = false;
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      std::vector<std::string> Names;
      {
        auto Ctx = parseChecked(Current);
        for (const auto &P : Ctx->program().Procs)
          if (P->name() != "main")
            Names.push_back(P->name());
      }
      for (const std::string &Name : Names) {
        if (!budgetLeft())
          break;
        auto Ctx = parseChecked(Current);
        Program &Prog = Ctx->program();
        for (StmtListRef &L : collectStmtLists(Prog)) {
          std::vector<Stmt *> Kept;
          for (Stmt *S : L.Items) {
            auto *C = dyn_cast<CallStmt>(S);
            if (!C || C->calleeName() != Name)
              Kept.push_back(S);
          }
          if (Kept.size() != L.Items.size())
            L.Set(std::move(Kept));
        }
        for (size_t P = 0; P != Prog.Procs.size(); ++P)
          if (Prog.Procs[P]->name() == Name) {
            Prog.Procs.erase(Prog.Procs.begin() + P);
            break;
          }
        if (tryAdopt(printProgram(Prog))) {
          Any = Progress = true;
          break; // Names are stale; re-enumerate.
        }
      }
    }
    return Any;
  }

  /// Pass 2: drop single statements; for compound statements also try
  /// hoisting the body in place of the statement (keeps the interesting
  /// inner statements while shedding the control structure).
  bool removeStmts() {
    bool Any = false;
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      size_t NumLists;
      std::vector<size_t> ListSizes;
      {
        auto Ctx = parseChecked(Current);
        auto Lists = collectStmtLists(Ctx->program());
        NumLists = Lists.size();
        for (const StmtListRef &L : Lists)
          ListSizes.push_back(L.Items.size());
      }
      for (size_t LI = 0; LI != NumLists && !Progress; ++LI) {
        for (size_t SI = ListSizes[LI]; SI-- > 0 && !Progress;) {
          if (!budgetLeft())
            return Any;
          // Deleting first; hoisting only if the delete did not stick.
          for (int Hoist = 0; Hoist != 2 && !Progress; ++Hoist) {
            auto Ctx = parseChecked(Current);
            auto Lists = collectStmtLists(Ctx->program());
            std::vector<Stmt *> Items = Lists[LI].Items;
            Stmt *S = Items[SI];
            if (Hoist) {
              std::vector<Stmt *> Body;
              if (auto *If = dyn_cast<IfStmt>(S)) {
                Body = If->thenBody();
                Body.insert(Body.end(), If->elseBody().begin(),
                            If->elseBody().end());
              } else if (auto *Do = dyn_cast<DoLoopStmt>(S)) {
                Body = Do->body();
              } else if (auto *W = dyn_cast<WhileStmt>(S)) {
                Body = W->body();
              } else {
                continue;
              }
              if (Body.empty())
                continue;
              Items.erase(Items.begin() + SI);
              Items.insert(Items.begin() + SI, Body.begin(), Body.end());
            } else {
              Items.erase(Items.begin() + SI);
            }
            Lists[LI].Set(std::move(Items));
            if (tryAdopt(printProgram(Ctx->program())))
              Any = Progress = true; // Indices are stale; re-enumerate.
          }
        }
      }
    }
    return Any;
  }

  /// Pass 3: drop a formal parameter and the matching actual at every
  /// call site. Sema rejects the candidate if the body still reads the
  /// formal, so only genuinely removable parameters disappear.
  bool removeFormals() {
    bool Any = false;
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      std::vector<std::pair<std::string, size_t>> Targets;
      {
        auto Ctx = parseChecked(Current);
        for (const auto &P : Ctx->program().Procs)
          if (P->name() != "main")
            for (size_t F = P->formals().size(); F-- > 0;)
              Targets.push_back({P->name(), F});
      }
      for (const auto &[Name, F] : Targets) {
        if (!budgetLeft())
          return Any;
        auto Ctx = parseChecked(Current);
        Program &Prog = Ctx->program();
        auto Pid = Prog.findProc(Name);
        if (!Pid)
          continue;
        Proc &Old = *Prog.Procs[*Pid];
        std::vector<std::string> Formals = Old.formals();
        Formals.erase(Formals.begin() + F);
        auto New = std::make_unique<Proc>(Old.loc(), Name, std::move(Formals));
        New->Locals = Old.Locals;
        New->LocalArrays = Old.LocalArrays;
        New->Body = Old.Body;
        Prog.Procs[*Pid] = std::move(New);
        auto Lists = collectStmtLists(Prog);
        for (StmtListRef &L : Lists) {
          std::vector<Stmt *> Items = L.Items;
          bool Changed = false;
          for (size_t I = 0; I != Items.size(); ++I) {
            auto *C = dyn_cast<CallStmt>(Items[I]);
            if (!C || C->calleeName() != Name || F >= C->args().size())
              continue;
            std::vector<Expr *> Args = C->args();
            Args.erase(Args.begin() + F);
            Items[I] = Ctx->createStmt<CallStmt>(C->loc(), Name,
                                                 std::move(Args));
            Changed = true;
          }
          if (Changed)
            L.Set(std::move(Items));
        }
        if (tryAdopt(printProgram(Prog))) {
          Any = Progress = true;
          break;
        }
      }
    }
    return Any;
  }

  /// Pass 4: replace non-literal actuals with 0 — removes by-reference
  /// bindings and expression dependencies a failure may not need.
  bool simplifyArgs() {
    bool Any = false;
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      size_t NumCandidates;
      {
        auto Ctx = parseChecked(Current);
        NumCandidates = countNonLitArgs(Ctx->program());
      }
      for (size_t N = 0; N != NumCandidates && !Progress; ++N) {
        if (!budgetLeft())
          return Any;
        auto Ctx = parseChecked(Current);
        Program &Prog = Ctx->program();
        auto Lists = collectStmtLists(Prog);
        size_t Seen = 0;
        for (StmtListRef &L : Lists) {
          std::vector<Stmt *> Items = L.Items;
          bool Edited = false;
          for (size_t I = 0; I != Items.size() && !Edited; ++I) {
            auto *C = dyn_cast<CallStmt>(Items[I]);
            if (!C)
              continue;
            for (size_t A = 0; A != C->args().size(); ++A) {
              if (isa<IntLitExpr>(C->args()[A]))
                continue;
              if (Seen++ != N)
                continue;
              std::vector<Expr *> Args = C->args();
              Args[A] = Ctx->createExpr<IntLitExpr>(C->loc(), 0);
              Items[I] = Ctx->createStmt<CallStmt>(
                  C->loc(), C->calleeName(), std::move(Args));
              Edited = true;
              break;
            }
          }
          if (Edited) {
            L.Set(std::move(Items));
            if (tryAdopt(printProgram(Prog)))
              Any = Progress = true;
            break;
          }
        }
      }
    }
    return Any;
  }

  static size_t countNonLitArgs(Program &Prog) {
    size_t N = 0;
    for (StmtListRef &L : collectStmtLists(Prog))
      for (Stmt *S : L.Items)
        if (auto *C = dyn_cast<CallStmt>(S))
          for (Expr *A : C->args())
            if (!isa<IntLitExpr>(A))
              ++N;
    return N;
  }

  /// Pass 5: drop declarations — globals, global arrays, locals, local
  /// arrays. Sema rejects any candidate whose declaration is still used.
  bool removeDecls() {
    bool Any = false;
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      size_t NumCandidates;
      {
        auto Ctx = parseChecked(Current);
        NumCandidates = countDecls(Ctx->program());
      }
      for (size_t N = 0; N != NumCandidates && !Progress; ++N) {
        if (!budgetLeft())
          return Any;
        auto Ctx = parseChecked(Current);
        if (!eraseDecl(Ctx->program(), N))
          continue;
        if (tryAdopt(printProgram(Ctx->program())))
          Any = Progress = true;
      }
    }
    return Any;
  }

  static size_t countDecls(const Program &Prog) {
    size_t N = Prog.Globals.size() + Prog.GlobalArrays.size();
    for (const auto &P : Prog.Procs)
      N += P->Locals.size() + P->LocalArrays.size();
    return N;
  }

  /// Erases the \p N-th declaration in countDecls order.
  static bool eraseDecl(Program &Prog, size_t N) {
    if (N < Prog.Globals.size()) {
      Prog.Globals.erase(Prog.Globals.begin() + N);
      return true;
    }
    N -= Prog.Globals.size();
    if (N < Prog.GlobalArrays.size()) {
      Prog.GlobalArrays.erase(Prog.GlobalArrays.begin() + N);
      return true;
    }
    N -= Prog.GlobalArrays.size();
    for (const auto &P : Prog.Procs) {
      if (N < P->Locals.size()) {
        P->Locals.erase(P->Locals.begin() + N);
        return true;
      }
      N -= P->Locals.size();
      if (N < P->LocalArrays.size()) {
        P->LocalArrays.erase(P->LocalArrays.begin() + N);
        return true;
      }
      N -= P->LocalArrays.size();
    }
    return false;
  }

  const ReducePredicate &StillFails;
  const ReduceOptions &Opts;
  ReduceResult Result;
  std::string Current;
  bool Valid = false;
};

} // namespace

ReduceResult ipcp::reduceProgram(std::string_view Source,
                                 const ReducePredicate &StillFails,
                                 const ReduceOptions &Opts) {
  return Reduction(Source, StillFails, Opts).run();
}
