//===- ipcp/SummaryIO.h - Serializable jump-function summaries --*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distributed tier's interchange format: per-procedure jump-function
/// summaries as versioned, canonical JSON — the analogue of libosuction's
/// per-TU jump-function files, which cooperating compiler processes write
/// independently and a merge step folds into one whole-program
/// propagation. A summary carries, per procedure, the forward jump
/// functions of every call site, the return jump functions, and the
/// alias-unstable mask the builder saw; every jump function is stored as
/// its extensional fingerprint (JumpFunction::appendFingerprint), so
///
///   * serialization is deterministic: equal summaries produce equal
///     bytes (JsonValue keeps object keys sorted, fingerprints are exact
///     structural encodings, procedures and return entries are sorted);
///   * a load round-trips byte-identically under the existing
///     fingerprint machinery — re-fingerprinting a reconstituted jump
///     function reproduces the stored bytes, so the value-context memo
///     groups reconstituted functions with freshly built ones.
///
/// Robustness contract (summary files cross process boundaries, like the
/// fuzz corpus and the serve protocol): parseSummary, mergeSummaries and
/// reconstituteJumpFunctions never abort on malformed input. Truncated
/// files, version skew, unknown fields, out-of-range ids, fingerprint
/// garbage, stats that disagree with content, and overlapping or gapped
/// partitions all produce a diagnostic and a clean failure — a summary is
/// either loaded exactly or rejected loudly, never silently merged.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_SUMMARYIO_H
#define IPCP_IPCP_SUMMARYIO_H

#include "ipcp/JumpFunctionBuilder.h"
#include "ipcp/Solver.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ipcp {
class AnalysisSession;
class ThreadPool;

/// The on-disk format version serializeSummary writes and parseSummary
/// accepts. Bump on any schema change; loaders reject other versions.
inline constexpr int SummaryFormatVersion = 1;

/// The summary of one procedure's jump functions.
struct ProcSummary {
  ProcId Proc = 0;
  /// Procedure name — a cheap cross-process guard that the summary and
  /// the program it is applied to agree on procedure numbering.
  std::string Name;
  /// Parallel to CallGraph::callSitesIn(Proc); empty for procedures the
  /// builder skipped as unreachable.
  std::vector<CallSiteJumpFunctions> Sites;
  /// Return jump functions, sorted by callee-side SymbolId.
  std::vector<std::pair<SymbolId, JumpFunction>> Returns;
  /// Symbols RefAliasInfo marked unstable in this procedure (ascending):
  /// the alias mask the jump functions above were built under.
  std::vector<SymbolId> AliasUnstable;

  ProcSummary() = default;
  ProcSummary(ProcSummary &&) = default;
  ProcSummary &operator=(ProcSummary &&) = default;
};

/// A serializable (possibly partial) jump-function summary of one
/// program under one builder configuration.
struct ProgramSummary {
  std::string Program;
  /// FNV-1a of the program source; guards against applying a summary to
  /// a program that merely shares the name.
  uint64_t SourceHash = 0;
  JumpFunctionOptions Options;
  /// Whole-program shape guards: procedure and global-scalar counts.
  size_t NumProcs = 0;
  size_t NumGlobals = 0;
  /// Covered procedures, ascending by ProcId. A partial summary (one
  /// shard's slice) covers a subset; mergeSummaries assembles full ones.
  std::vector<ProcSummary> Procs;

  ProgramSummary() = default;
  ProgramSummary(ProgramSummary &&) = default;
  ProgramSummary &operator=(ProgramSummary &&) = default;

  /// True when every procedure 0..NumProcs-1 is covered.
  bool complete() const { return Procs.size() == NumProcs; }
};

/// Byte-wise FNV-1a of \p Source. Serialized into summary files, so its
/// values are pinned — do not change the mixing.
uint64_t summarySourceHash(std::string_view Source);

/// Canonical token of a jump-function kind ("literal", "intra", "pass",
/// "poly") and its inverse — shared by the summary format and the shard
/// job files so the two never drift.
const char *jumpFunctionKindToken(JumpFunctionKind K);
bool parseJumpFunctionKindToken(const std::string &Token,
                                JumpFunctionKind &Out);

/// True when the two configurations build identical jump functions.
bool sameJumpFunctionOptions(const JumpFunctionOptions &A,
                             const JumpFunctionOptions &B);

/// Statistics recomputed from a summary's content (deterministic in the
/// content alone; serialized alongside it and checked on load as a
/// structural checksum). Matches JumpFunctionStats' counting for the
/// fields derivable from the stored functions.
JumpFunctionStats summaryStats(const ProgramSummary &S);

/// Serializes to one canonical JSON line (no trailing newline). Equal
/// summaries produce equal bytes.
std::string serializeSummary(const ProgramSummary &S);

/// Strict parse + validation of one summary document. Returns false with
/// a diagnostic on any malformation (see the file comment's contract);
/// \p Out is unspecified then.
bool parseSummary(std::string_view Text, ProgramSummary &Out,
                  std::string &Error);

/// Extracts the summary of \p Procs (empty = every procedure) from a
/// built ProgramJumpFunctions. \p Aliases may be null (no by-reference
/// aliasing analyzed — the masks serialize empty).
ProgramSummary makeSummary(std::string ProgramName, uint64_t SourceHash,
                           const Module &M, const SymbolTable &Symbols,
                           const CallGraph &CG,
                           const ProgramJumpFunctions &Jfs,
                           const RefAliasInfo *Aliases,
                           const std::vector<ProcId> &Procs = {});

/// Builds the full summary of one checked program through \p Session's
/// caches (byte-identical to a cold build; see JumpFunctionBuilder).
ProgramSummary buildSummary(AnalysisSession &Session,
                            const JumpFunctionOptions &Opts,
                            std::string ProgramName, uint64_t SourceHash,
                            ThreadPool *Pool = nullptr);

/// Merges per-procedure partial summaries into one complete summary.
/// Every part must agree on program, source hash, configuration, and
/// shape; the covered procedure sets must neither overlap nor leave a
/// gap. Any violation fails loudly with a diagnostic naming the part.
bool mergeSummaries(std::vector<ProgramSummary> Parts, ProgramSummary &Out,
                    std::string &Error);

/// Reconstitutes a complete summary into solver-ready jump functions,
/// validating its shape against the program actually loaded: procedure
/// names, per-procedure call-site counts, per-site argument counts
/// against the callee's formals, and global counts must all line up.
bool reconstituteJumpFunctions(const ProgramSummary &S, const Module &M,
                               const SymbolTable &Symbols,
                               const CallGraph &CG,
                               ProgramJumpFunctions &Out, std::string &Error);

/// The loader's end state: reconstitutes \p S and runs the
/// interprocedural propagation over it — stage 3 from a file instead of
/// a same-process stage 2. \p Memo may be null.
bool solveSummary(const ProgramSummary &S, const Module &M,
                  const SymbolTable &Symbols, const CallGraph &CG,
                  SolverStrategy Strategy, SolveResult &Out,
                  std::string &Error, ValueContextMemo *Memo = nullptr);

} // namespace ipcp

#endif // IPCP_IPCP_SUMMARYIO_H
