//===- ipcp/ValueContextMemo.h - Shared value-context tables ----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver's value-context memo, re-keyed per Padhye & Khedker's
/// value-contexts method (arXiv 1304.6274) and hoisted out of per-solve
/// state so recorded evaluations are shared across call sites,
/// configurations, and serve requests.
///
/// A *group* is keyed by the exact extensional serialization of a
/// procedure's site jump-function list (JumpFunction::appendFingerprint):
/// two procedures — or the same procedure under two configurations —
/// whose jump functions serialize identically evaluate identically under
/// every environment, so they share one table. Within a group, a
/// *context* projects the caller's VAL onto the union of the jump
/// functions' support sets; the table maps each context to the vector of
/// evaluation results, in flat (site, arg, global) order. Recursive
/// re-entries and round-robin convergence sweeps resolve to the same
/// context node and replay it.
///
/// Replays are byte-identical to fresh evaluation by construction: a
/// recorded vector is a pure function of (fingerprint, context), both of
/// which pin every input the evaluations can read. The meets into the
/// callees always run, so worklist dynamics — and therefore VAL sets,
/// JfEvaluations, and every golden cell — never change. Only the
/// hit/miss counters are warmth-dependent, which is why they are
/// excluded from determinism fingerprints and rendered replies.
///
/// Thread safety: groups resolve under a per-shard mutex and context
/// lookup/record run under a per-group mutex (the shared suite runner
/// and the server analyze one session from many threads). Map nodes are
/// stable and recorded vectors are immutable after publication, so a
/// replay pointer stays valid without holding the lock. clear() — wired
/// to AnalysisSession::invalidate — requires exclusive use, exactly like
/// the rest of the session's invalidation path.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_VALUECONTEXTMEMO_H
#define IPCP_IPCP_VALUECONTEXTMEMO_H

#include "ipcp/Lattice.h"
#include "lang/Sema.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ipcp {

class ValueContextMemo {
public:
  /// One table shared by every procedure/config whose site jump-function
  /// list carries this group's fingerprint. KeySyms and NumSiteJfs are
  /// set once (under the shard lock) when the group is created and are
  /// immutable afterwards.
  struct Group {
    /// Sorted union of the support sets: the only VAL cells the
    /// evaluations can read, hence the context projection.
    std::vector<SymbolId> KeySyms;
    /// Flattened jump-function count — the length of every recorded
    /// vector.
    size_t NumSiteJfs = 0;

    /// The recorded evaluations for \p Context, or null on a miss.
    const std::vector<LatticeValue> *find(const std::vector<int64_t> &Context);

    /// Records a fresh evaluation vector (first writer wins; any
    /// concurrent loser computed the same bytes). Stops recording past
    /// MaxContexts so one pathological program cannot grow the table
    /// unboundedly; lookups keep hitting the retained contexts.
    void record(std::vector<int64_t> &&Context,
                std::vector<LatticeValue> &&Values);

    static constexpr size_t MaxContexts = 128;

  private:
    std::mutex M;
    std::map<std::vector<int64_t>, std::vector<LatticeValue>> Table;
  };

  ValueContextMemo() = default;
  ValueContextMemo(const ValueContextMemo &) = delete;
  ValueContextMemo &operator=(const ValueContextMemo &) = delete;

  /// Resolves (creating on first use) the group keyed by \p Fingerprint.
  /// \p Init runs under the shard lock exactly once, on creation, to
  /// populate KeySyms/NumSiteJfs. The reference stays valid until
  /// clear().
  Group &group(std::string &&Fingerprint,
               const std::function<void(Group &)> &Init);

  /// Cumulative counters across every solve that used this memo (the
  /// serve stats reply aggregates these over warm sessions).
  void noteHit() { HitCount.fetch_add(1, std::memory_order_relaxed); }
  void noteMiss() { MissCount.fetch_add(1, std::memory_order_relaxed); }
  uint64_t hits() const { return HitCount.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return MissCount.load(std::memory_order_relaxed);
  }

  /// Drops every group and context. Requires exclusive use (no solve may
  /// hold a Group reference across this call); the counters survive —
  /// they describe the session's history, not its current contents.
  void clear();

private:
  static constexpr size_t NumShards = 8;
  struct Shard {
    std::mutex M;
    std::map<std::string, Group> Groups;
  };
  Shard Shards[NumShards];
  std::atomic<uint64_t> HitCount{0};
  std::atomic<uint64_t> MissCount{0};
};

} // namespace ipcp

#endif // IPCP_IPCP_VALUECONTEXTMEMO_H
