//===- ipcp/AnalysisSession.cpp - Incremental per-program caches ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/AnalysisSession.h"

#include "ir/CfgBuilder.h"

#include <cassert>

using namespace ipcp;

AnalysisSession::AnalysisSession(AstContext &Ctx, const SymbolTable &Symbols)
    : Ctx(Ctx), Symbols(Symbols), NumProcs(Ctx.program().Procs.size()),
      SsaSlots(std::make_unique<SsaSlot[]>(NumProcs * 2)) {}

AnalysisSession::~AnalysisSession() = default;

const Module &AnalysisSession::moduleLocked() {
  if (AllLowered)
    return Mod;
  const Program &Prog = Ctx.program();
  if (Mod.Functions.empty())
    Mod.Functions.resize(NumProcs);
  for (ProcId P = 0, E = static_cast<ProcId>(NumProcs); P != E; ++P) {
    if (Mod.Functions[P])
      continue;
    Mod.Functions[P] = buildFunction(Prog, Symbols, P);
    C.ProcsLowered.fetch_add(1, std::memory_order_relaxed);
    if (EverInvalidated)
      C.ProcsRelowered.fetch_add(1, std::memory_order_relaxed);
  }
  AllLowered = true;
  return Mod;
}

const Module &AnalysisSession::module() {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  return moduleLocked();
}

const CallGraph &AnalysisSession::callGraph() {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  if (!CG) {
    auto Entry = Ctx.program().entryProc();
    assert(Entry && "session requires a checked program with an entry");
    CG.emplace(moduleLocked(), *Entry);
  }
  return *CG;
}

const ModRefInfo *AnalysisSession::modRefLocked(bool UseMod) {
  if (!UseMod)
    return nullptr;
  if (!MriBuilt) {
    const Module &M = moduleLocked();
    if (!CG) {
      auto Entry = Ctx.program().entryProc();
      assert(Entry && "session requires a checked program with an entry");
      CG.emplace(M, *Entry);
    }
    Mri.emplace(M, Symbols, *CG);
    MriBuilt = true;
  }
  return &*Mri;
}

const ModRefInfo *AnalysisSession::modRef(bool UseMod) {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  return modRefLocked(UseMod);
}

const RefAliasInfo &AnalysisSession::refAlias(bool UseMod) {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  auto &Slot = Aliases[UseMod];
  if (!Slot)
    Slot.emplace(moduleLocked(), Symbols, modRefLocked(UseMod));
  return *Slot;
}

const FlowAliasInfo &AnalysisSession::flowAlias(bool UseMod) {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  auto &Slot = FlowAliases[UseMod];
  if (!Slot) {
    auto &Base = Aliases[UseMod];
    if (!Base)
      Base.emplace(moduleLocked(), Symbols, modRefLocked(UseMod));
    Slot.emplace(moduleLocked(), Symbols, modRefLocked(UseMod), *Base);
  }
  return *Slot;
}

const CopyPropInfo &AnalysisSession::copyProp(bool UseMod) {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  auto &Slot = CopyProps[UseMod];
  if (!Slot) {
    auto &Base = Aliases[UseMod];
    if (!Base)
      Base.emplace(moduleLocked(), Symbols, modRefLocked(UseMod));
    Slot.emplace(moduleLocked(), Symbols, modRefLocked(UseMod), *Base);
  }
  return *Slot;
}

const SsaForm::KillOracle &AnalysisSession::killOracleLocked(bool UseMod) {
  auto &Slot = Oracles[UseMod];
  if (!Slot)
    Slot.emplace(makeKillOracle(Symbols, modRefLocked(UseMod)));
  return *Slot;
}

const SsaForm::KillOracle &AnalysisSession::killOracle(bool UseMod) {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  return killOracleLocked(UseMod);
}

const AnalysisSession::SsaBundle &AnalysisSession::ssa(ProcId P,
                                                       bool UseMod) {
  assert(P < NumProcs && "procedure id out of range");
  // Materialize the shared inputs before taking the slot lock, so slot
  // builds of distinct procedures never serialize on CoreMutex.
  const Function *F;
  const SsaForm::KillOracle *Kills;
  {
    std::lock_guard<std::mutex> Lock(CoreMutex);
    F = &moduleLocked().function(P);
    Kills = &killOracleLocked(UseMod);
  }
  SsaSlot &Slot = SsaSlots[P * 2 + (UseMod ? 1 : 0)];
  std::lock_guard<std::mutex> Lock(Slot.M);
  if (!Slot.B) {
    Slot.B = std::make_unique<SsaBundle>(*F, Symbols, *Kills);
    C.SsaBuilt.fetch_add(1, std::memory_order_relaxed);
  } else {
    C.SsaReused.fetch_add(1, std::memory_order_relaxed);
  }
  return *Slot.B;
}

const AnalysisSession::JfBase &
AnalysisSession::jfBase(const JumpFunctionOptions &Opts,
                        const std::function<void(JfBase &)> &Build) {
  unsigned Key = (Opts.UseMod ? 32u : 0u) |
                 (Opts.UseReturnJumpFunctions ? 16u : 0u) |
                 (Opts.UseGatedSsa ? 8u : 0u) |
                 (Opts.FlowSensitiveAlias ? 4u : 0u) |
                 (Opts.OptimisticVn ? 2u : 0u) |
                 (Opts.CopyPropagation ? 1u : 0u);
  std::lock_guard<std::mutex> Lock(JfMutex);
  auto &Slot = JfBases[Key];
  if (!Slot) {
    Slot = std::make_unique<JfBase>();
    Build(*Slot);
    C.JfBasesBuilt.fetch_add(1, std::memory_order_relaxed);
  } else {
    C.JfBasesReused.fetch_add(1, std::memory_order_relaxed);
  }
  return *Slot;
}

void AnalysisSession::invalidate(const std::vector<ProcId> &Dirty) {
  // Exclusive use: these sections are taken sequentially only to satisfy
  // the mutex API, not to order against concurrent readers (there are
  // none by contract).
  //
  // The value-context memo is fingerprint-keyed, so stale groups could
  // never be *replayed* against the mutated program's (different) jump
  // functions — clearing reclaims their memory and keeps the table's
  // lifetime tied to the artifacts it was recorded alongside.
  VcMemo.clear();
  {
    std::lock_guard<std::mutex> Lock(JfMutex);
    for (auto &Base : JfBases)
      Base.reset();
  }
  for (size_t I = 0, E = NumProcs * 2; I != E; ++I) {
    std::lock_guard<std::mutex> Lock(SsaSlots[I].M);
    SsaSlots[I].B.reset();
  }
  std::lock_guard<std::mutex> Lock(CoreMutex);
  EverInvalidated = true;
  for (ProcId P : Dirty) {
    assert(P < NumProcs && "dirty procedure id out of range");
    if (P < Mod.Functions.size() && Mod.Functions[P]) {
      Mod.Functions[P].reset();
      AllLowered = false;
    }
  }
  CG.reset();
  Mri.reset();
  MriBuilt = false;
  Aliases[0].reset();
  Aliases[1].reset();
  FlowAliases[0].reset();
  FlowAliases[1].reset();
  CopyProps[0].reset();
  CopyProps[1].reset();
  // The oracles capture the (now dead) ModRefInfo pointer.
  Oracles[0].reset();
  Oracles[1].reset();
}

SessionStats AnalysisSession::stats() const {
  SessionStats S;
  S.ProcsLowered = C.ProcsLowered.load(std::memory_order_relaxed);
  S.ProcsRelowered = C.ProcsRelowered.load(std::memory_order_relaxed);
  S.SsaBuilt = C.SsaBuilt.load(std::memory_order_relaxed);
  S.SsaReused = C.SsaReused.load(std::memory_order_relaxed);
  S.VnBuilt = C.VnBuilt.load(std::memory_order_relaxed);
  S.VnReused = C.VnReused.load(std::memory_order_relaxed);
  S.JfBasesBuilt = C.JfBasesBuilt.load(std::memory_order_relaxed);
  S.JfBasesReused = C.JfBasesReused.load(std::memory_order_relaxed);
  S.SolverMemoHits = VcMemo.hits();
  S.SolverMemoMisses = VcMemo.misses();
  return S;
}
