//===- ipcp/Cloning.cpp - Constant-directed procedure cloning -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Cloning.h"

#include "analysis/CallGraph.h"
#include "ipcp/Solver.h"
#include "ir/CfgBuilder.h"
#include "lang/AstClone.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include <map>
#include <sstream>

using namespace ipcp;

namespace {

/// One analysis round: returns true if any clone was made, leaving the
/// transformed source in \p Source.
bool cloneRound(std::string &Source, unsigned &ClonesCreated,
                unsigned MaxClones, std::string &Error, int &NameCounter) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols;
  if (!Diags.hasErrors())
    Symbols = Sema::run(*Ctx, Diags);
  if (Diags.hasErrors()) {
    Error = Diags.str();
    return false;
  }

  Program &Prog = Ctx->program();
  Module M = buildModule(Prog, Symbols);
  CallGraph CG(M, *Prog.entryProc());
  ModRefInfo MRI(M, Symbols, CG);
  JumpFunctionOptions JfOpts;
  ProgramJumpFunctions Jfs = buildJumpFunctions(M, Symbols, CG, &MRI,
                                                JfOpts);
  SolveResult Solve = solveConstants(Symbols, CG, Jfs);

  // Per procedure: the constant-vector signature each call site
  // delivers on the cloneable formals.
  struct SiteInfo {
    StmtId Stmt;            // The AST call statement to retarget.
    std::string Signature;  // Rendered constant vector.
  };

  bool AnyClone = false;
  // Procedures are processed in id order; clones are appended to the
  // program after the loop (ids stay stable during it).
  size_t OriginalProcCount = Prog.Procs.size();
  std::unordered_map<StmtId, std::string> Retarget;
  std::vector<std::unique_ptr<Proc>> NewProcs;

  for (ProcId P = 0; P != OriginalProcCount; ++P) {
    if (!CG.isReachable(P) || P == *Prog.entryProc())
      continue;
    const auto &Formals = Symbols.formals(P);
    if (Formals.empty())
      continue;

    // Cloneable formals: merged to BOTTOM though every edge delivers a
    // constant, with at least two distinct values.
    const auto &InEdges = CG.callSitesOf(P);
    if (InEdges.size() < 2)
      continue;

    // Evaluate every edge's jump functions once.
    struct EdgeValues {
      const CallSite *Site;
      std::vector<LatticeValue> PerFormal;
    };
    std::vector<EdgeValues> Edges;
    bool Recursive = CG.isRecursive(P);
    if (Recursive)
      continue; // Cloning a cycle would unroll it; skip.
    for (const CallSite &S : InEdges) {
      // Unreachable callers have no jump functions; their calls never
      // execute, so they impose no constraint on the signature split.
      if (!CG.isReachable(S.Caller))
        continue;
      // Locate the site's jump functions.
      const auto &Sites = CG.callSitesIn(S.Caller);
      const CallSiteJumpFunctions *SiteJfs = nullptr;
      for (size_t I = 0; I != Sites.size(); ++I)
        if (Sites[I].Block == S.Block && Sites[I].InstrIdx == S.InstrIdx &&
            Sites[I].Callee == P)
          SiteJfs = &Jfs.PerSite[S.Caller][I];
      if (!SiteJfs)
        continue;
      EdgeValues EV;
      EV.Site = &S;
      auto Env = [&](SymbolId Sym) { return Solve.valueOf(S.Caller, Sym); };
      for (uint32_t A = 0; A != Formals.size(); ++A)
        EV.PerFormal.push_back(SiteJfs->Args[A].eval(Env));
      Edges.push_back(std::move(EV));
    }

    std::vector<uint32_t> Cloneable;
    for (uint32_t A = 0; A != Formals.size(); ++A) {
      if (!Solve.valueOf(P, Formals[A]).isBottom())
        continue;
      bool AllConst = !Edges.empty();
      std::map<int64_t, unsigned> Values;
      for (const EdgeValues &EV : Edges) {
        if (!EV.PerFormal[A].isConst()) {
          AllConst = false;
          break;
        }
        ++Values[EV.PerFormal[A].value()];
      }
      if (AllConst && Values.size() >= 2)
        Cloneable.push_back(A);
    }
    if (Cloneable.empty())
      continue;

    // Partition call sites by signature over the cloneable formals.
    std::map<std::string, std::vector<const CallSite *>> Groups;
    for (const EdgeValues &EV : Edges) {
      std::string Sig;
      for (uint32_t A : Cloneable)
        Sig += std::to_string(EV.PerFormal[A].value()) + ",";
      Groups[Sig].push_back(EV.Site);
    }
    if (Groups.size() < 2)
      continue;

    // The first group keeps the original; each further group gets a
    // clone.
    bool First = true;
    for (const auto &[Sig, Sites] : Groups) {
      if (First) {
        First = false;
        continue;
      }
      if (ClonesCreated >= MaxClones)
        break;
      const Proc &Orig = *Prog.Procs[P];
      std::string CloneName =
          Orig.name() + "__c" + std::to_string(++NameCounter);
      auto Clone = std::make_unique<Proc>(Orig.loc(), CloneName,
                                          Orig.formals());
      Clone->Locals = Orig.Locals;
      Clone->LocalArrays = Orig.LocalArrays;
      for (ArrayDecl &A : Clone->LocalArrays)
        A.Symbol = InvalidSymbol; // Re-resolved by the next round's Sema.
      Clone->Body = cloneStmts(*Ctx, Orig.Body, NameSubst());
      NewProcs.push_back(std::move(Clone));
      ++ClonesCreated;
      AnyClone = true;

      for (const CallSite *S : Sites) {
        const Instr &Call =
            M.function(S->Caller).block(S->Block).Instrs[S->InstrIdx];
        Retarget[Call.SourceStmt] = CloneName;
      }
    }
  }

  if (!AnyClone)
    return false;

  // Retarget the chosen call statements, then append the clones.
  struct Rewriter {
    const std::unordered_map<StmtId, std::string> &Retarget;
    void walk(const std::vector<Stmt *> &Stmts) {
      for (Stmt *S : Stmts) {
        switch (S->kind()) {
        case StmtKind::Call: {
          auto It = Retarget.find(S->id());
          if (It != Retarget.end())
            cast<CallStmt>(S)->setCalleeName(It->second);
          break;
        }
        case StmtKind::If:
          walk(cast<IfStmt>(S)->thenBody());
          walk(cast<IfStmt>(S)->elseBody());
          break;
        case StmtKind::While:
          walk(cast<WhileStmt>(S)->body());
          break;
        case StmtKind::DoLoop:
          walk(cast<DoLoopStmt>(S)->body());
          break;
        default:
          break;
        }
      }
    }
  };
  Rewriter RW{Retarget};
  for (auto &P : Prog.Procs)
    RW.walk(P->Body);
  for (auto &Clone : NewProcs)
    Prog.Procs.push_back(std::move(Clone));

  AstPrinter Printer;
  Source = Printer.programToString(Prog);
  return true;
}

} // namespace

CloneResult ipcp::cloneForConstants(std::string_view Source,
                                    const CloneOptions &Opts) {
  CloneResult Result;
  Result.Source = std::string(Source);
  int NameCounter = 0;
  for (unsigned Round = 0; Round != Opts.MaxRounds; ++Round) {
    std::string Error;
    if (!cloneRound(Result.Source, Result.ClonesCreated, Opts.MaxClones,
                    Error, NameCounter)) {
      if (!Error.empty()) {
        Result.Error = std::move(Error);
        return Result;
      }
      break; // Fixed point.
    }
    ++Result.Rounds;
    if (Result.ClonesCreated >= Opts.MaxClones)
      break;
  }
  Result.Ok = true;
  return Result;
}
