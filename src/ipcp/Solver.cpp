//===- ipcp/Solver.cpp - Interprocedural propagation ----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Solver.h"

#include "ipcp/ValueContextMemo.h"
#include "support/Cancellation.h"
#include "support/FuzzFeedback.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <unordered_map>

using namespace ipcp;

std::vector<std::pair<SymbolId, int64_t>>
SolveResult::constants(ProcId P) const {
  std::vector<std::pair<SymbolId, int64_t>> Out;
  for (const auto &[Sym, V] : Val.at(P))
    if (V.isConst())
      Out.push_back({Sym, V.value()});
  std::sort(Out.begin(), Out.end());
  return Out;
}

LatticeValue SolveResult::valueOf(ProcId P, SymbolId Sym) const {
  if (P >= Val.size())
    return LatticeValue::top();
  auto It = Val[P].find(Sym);
  return It == Val[P].end() ? LatticeValue::top() : It->second;
}

size_t SolveResult::numConstantCells() const {
  size_t N = 0;
  for (const auto &Cells : Val)
    for (const auto &[Sym, V] : Cells)
      N += V.isConst();
  return N;
}

namespace {

/// Records one VAL-cell lowering with the jump function that caused it
/// (no-op without a feedback sink). Shared by both solver formulations
/// so the coverage signal is strategy-independent.
void recordLowering(FuzzFeedback *FB, const JumpFunction &J,
                    const LatticeValue &New) {
  if (!FB)
    return;
  FB->hit(FuzzFeature::LatticeLoweringByJfForm,
          static_cast<uint64_t>(J.form()));
  FB->hit(FuzzFeature::LatticeLoweringState, New.isConst() ? 0 : 1);
}

/// Rate-limited cancellation poll: reads the deadline clock only every
/// \p Stride calls so the fixpoint loops stay cheap. Stride is a power
/// of two; Tick is caller-owned loop state.
bool pollCancel(const CancelToken *Cancel, unsigned &Tick, unsigned Stride) {
  if (!Cancel)
    return false;
  if ((++Tick & (Stride - 1)) != 0)
    return false;
  return Cancel->expired();
}

/// Shared state of one propagation run.
class Propagation {
public:
  Propagation(const SymbolTable &Symbols, const CallGraph &CG,
              const ProgramJumpFunctions &Jfs, FuzzFeedback *Feedback,
              ValueContextMemo &Memo)
      : Symbols(Symbols), CG(CG), Jfs(Jfs), Feedback(Feedback), Memo(Memo) {
    Result.Val.resize(CG.numProcs());
    for (ProcId P = 0, E = static_cast<ProcId>(CG.numProcs()); P != E; ++P)
      for (SymbolId Sym : Symbols.interproceduralParams(P))
        Result.Val[P].emplace(Sym, LatticeValue::top());
    // The entry procedure runs with no caller: nothing is known about
    // the (uninitialized) globals.
    for (auto &[Sym, V] : Result.Val[CG.entry()])
      V = LatticeValue::bottom();
    Groups.resize(CG.numProcs(), nullptr);
  }

  /// Evaluates all call sites of \p Caller. Returns the callees whose
  /// VAL changed.
  ///
  /// Value-context memo: a full visit evaluates every site jump function
  /// of Caller, and those evaluations depend only on the caller-side
  /// cells in the functions' supports. The memo groups by the exact
  /// serialized jump-function list (shared across call sites, procedures,
  /// configs, and — through AnalysisSession — whole solves) and keys each
  /// group by the caller's VAL projected onto the supports' union. A
  /// visit under an already-recorded context replays the recorded values;
  /// the meets into the callees still run (they are idempotent and
  /// preserve the worklist dynamics bit for bit).
  std::vector<ProcId> processProc(ProcId Caller) {
    ++Result.ProcVisits;
    std::vector<ProcId> Changed;
    const auto &Sites = CG.callSitesIn(Caller);
    const auto &SiteJfs = Jfs.PerSite[Caller];
    assert(Sites.size() == SiteJfs.size() &&
           "jump functions out of sync with call graph");

    auto Env = [this, Caller](SymbolId Sym) {
      auto It = Result.Val[Caller].find(Sym);
      assert(It != Result.Val[Caller].end() &&
             "jump function support escapes the caller's parameters");
      return It->second;
    };

    ValueContextMemo::Group *G = nullptr;
    const std::vector<LatticeValue> *Replay = nullptr;
    std::vector<LatticeValue> Fresh;
    std::vector<int64_t> Key;
    if (!Sites.empty()) {
      G = Groups[Caller];
      if (!G)
        G = Groups[Caller] = &resolveGroup(SiteJfs);
      Key.reserve(G->KeySyms.size() * 2);
      for (SymbolId Sym : G->KeySyms) {
        LatticeValue V = Env(Sym);
        Key.push_back(V.isTop() ? 0 : V.isConst() ? 2 : 1);
        Key.push_back(V.isConst() ? V.value() : 0);
      }
      Replay = G->find(Key);
      if (Replay) {
        assert(Replay->size() == G->NumSiteJfs &&
               "memo group out of sync with its jump-function list");
        ++Result.MemoHits;
        Memo.noteHit();
        Result.JfEvaluations += static_cast<unsigned>(Replay->size());
      } else {
        ++Result.MemoMisses;
        Memo.noteMiss();
        Fresh.reserve(G->NumSiteJfs);
      }
    }
    size_t ReplayIdx = 0;

    for (uint32_t SI = 0, SE = static_cast<uint32_t>(Sites.size()); SI != SE;
         ++SI) {
      ProcId Callee = Sites[SI].Callee;
      bool CalleeChanged = false;

      auto meetInto = [&](SymbolId Sym, const JumpFunction &J) {
        LatticeValue V;
        if (Replay) {
          V = (*Replay)[ReplayIdx++];
        } else {
          ++Result.JfEvaluations;
          V = J.eval(Env);
          Fresh.push_back(V);
        }
        auto It = Result.Val[Callee].find(Sym);
        assert(It != Result.Val[Callee].end());
        LatticeValue New = It->second.meet(V);
        if (New != It->second) {
          It->second = New;
          ++Result.CellLowerings;
          CalleeChanged = true;
          recordLowering(Feedback, J, New);
        }
      };

      const auto &Formals = Symbols.formals(Callee);
      for (uint32_t I = 0, E = static_cast<uint32_t>(Formals.size()); I != E;
           ++I)
        meetInto(Formals[I], SiteJfs[SI].Args[I]);
      const auto &Globals = Symbols.globalScalars();
      for (uint32_t I = 0, E = static_cast<uint32_t>(Globals.size()); I != E;
           ++I)
        meetInto(Globals[I], SiteJfs[SI].Globals[I]);

      if (CalleeChanged)
        Changed.push_back(Callee);
    }
    if (G && !Replay)
      G->record(std::move(Key), std::move(Fresh));
    return Changed;
  }

  SolveResult take() { return std::move(Result); }

  const SymbolTable &Symbols;
  const CallGraph &CG;
  const ProgramJumpFunctions &Jfs;
  FuzzFeedback *Feedback;
  ValueContextMemo &Memo;
  SolveResult Result;

private:
  /// Per-procedure group handle, resolved once per solve. The group —
  /// keyed by the serialized jump-function list, not the procedure — may
  /// be shared with other procedures and other solves.
  std::vector<ValueContextMemo::Group *> Groups;

  /// Serializes the flat jump-function list and resolves its group,
  /// populating KeySyms (sorted support union — the only cells the
  /// evaluations read, hence the context projection) and NumSiteJfs on
  /// first creation.
  ValueContextMemo::Group &
  resolveGroup(const std::vector<CallSiteJumpFunctions> &SiteJfs) {
    std::string Fp;
    for (const auto &Site : SiteJfs) {
      for (const JumpFunction &J : Site.Args)
        J.appendFingerprint(Fp);
      for (const JumpFunction &J : Site.Globals)
        J.appendFingerprint(Fp);
    }
    return Memo.group(std::move(Fp), [&](ValueContextMemo::Group &G) {
      for (const auto &Site : SiteJfs) {
        for (const JumpFunction &J : Site.Args) {
          ++G.NumSiteJfs;
          for (SymbolId Sym : J.support())
            G.KeySyms.push_back(Sym);
        }
        for (const JumpFunction &J : Site.Globals) {
          ++G.NumSiteJfs;
          for (SymbolId Sym : J.support())
            G.KeySyms.push_back(Sym);
        }
      }
      std::sort(G.KeySyms.begin(), G.KeySyms.end());
      G.KeySyms.erase(std::unique(G.KeySyms.begin(), G.KeySyms.end()),
                      G.KeySyms.end());
    });
  }
};

} // namespace

namespace {

/// The binding multi-graph formulation: cells are (procedure, symbol)
/// pairs; each jump function J at a call edge (p, s) -> q for callee
/// cell (q, x) is a hyper-edge from its support cells {(p, z)} to
/// (q, x). Lowering a cell re-evaluates only the jump functions whose
/// support contains it — finer-grained than the procedure worklist.
class BindingGraphSolver {
public:
  BindingGraphSolver(const SymbolTable &Symbols, const CallGraph &CG,
                     const ProgramJumpFunctions &Jfs, SolveResult &Result,
                     FuzzFeedback *Feedback, const CancelToken *Cancel)
      : Symbols(Symbols), CG(CG), Jfs(Jfs), Result(Result),
        Feedback(Feedback), Cancel(Cancel) {
    buildCells();
    buildEdges();
  }

  void run() {
    // Every edge is evaluated once; afterwards only support-triggered
    // re-evaluations happen.
    for (uint32_t E = 0; E != Edges.size(); ++E)
      scheduleEdge(E);
    unsigned Tick = 0;
    while (!Work.empty()) {
      if (pollCancel(Cancel, Tick, 256)) {
        Result.Cancelled = true;
        return;
      }
      uint32_t E = Work.back();
      Work.pop_back();
      InWork[E] = 0;
      evaluateEdge(E);
    }
    // ProcVisits is not meaningful here; report cell count instead of 0
    // to keep the stats interpretable.
    Result.ProcVisits = static_cast<unsigned>(Cells.size());
  }

private:
  struct Cell {
    ProcId Proc;
    SymbolId Sym;
  };
  struct Edge {
    ProcId Caller;
    const JumpFunction *Jf;
    uint32_t Target; ///< Cell index.
  };

  uint32_t cellIndex(ProcId P, SymbolId Sym) {
    auto Key = (uint64_t(P) << 32) | Sym;
    auto It = CellIdx.find(Key);
    assert(It != CellIdx.end() && "unknown binding cell");
    return It->second;
  }

  void buildCells() {
    for (ProcId P = 0; P != CG.numProcs(); ++P)
      for (SymbolId Sym : Symbols.interproceduralParams(P)) {
        auto Key = (uint64_t(P) << 32) | Sym;
        CellIdx.emplace(Key, uint32_t(Cells.size()));
        Cells.push_back({P, Sym});
      }
  }

  void buildEdges() {
    UsersOf.assign(Cells.size(), {});
    for (ProcId P : CG.topDownOrder()) {
      const auto &Sites = CG.callSitesIn(P);
      const auto &SiteJfs = Jfs.PerSite[P];
      for (uint32_t SI = 0; SI != Sites.size(); ++SI) {
        ProcId Callee = Sites[SI].Callee;
        auto addEdge = [&](SymbolId TargetSym, const JumpFunction &J) {
          uint32_t E = static_cast<uint32_t>(Edges.size());
          Edges.push_back({P, &J, cellIndex(Callee, TargetSym)});
          for (SymbolId Support : J.support())
            UsersOf[cellIndex(P, Support)].push_back(E);
        };
        const auto &Formals = Symbols.formals(Callee);
        for (uint32_t I = 0; I != Formals.size(); ++I)
          addEdge(Formals[I], SiteJfs[SI].Args[I]);
        const auto &Globals = Symbols.globalScalars();
        for (uint32_t I = 0; I != Globals.size(); ++I)
          addEdge(Globals[I], SiteJfs[SI].Globals[I]);
      }
    }
    InWork.assign(Edges.size(), 0);
  }

  void scheduleEdge(uint32_t E) {
    if (!InWork[E]) {
      InWork[E] = 1;
      Work.push_back(E);
    }
  }

  void evaluateEdge(uint32_t E) {
    const Edge &Ed = Edges[E];
    ++Result.JfEvaluations;
    auto Env = [&](SymbolId Sym) {
      auto It = Result.Val[Ed.Caller].find(Sym);
      assert(It != Result.Val[Ed.Caller].end());
      return It->second;
    };
    LatticeValue V = Ed.Jf->eval(Env);
    Cell &Target = Cells[Ed.Target];
    auto It = Result.Val[Target.Proc].find(Target.Sym);
    assert(It != Result.Val[Target.Proc].end());
    LatticeValue New = It->second.meet(V);
    if (New == It->second)
      return;
    It->second = New;
    ++Result.CellLowerings;
    recordLowering(Feedback, *Ed.Jf, New);
    for (uint32_t User : UsersOf[Ed.Target])
      scheduleEdge(User);
  }

  const SymbolTable &Symbols;
  const CallGraph &CG;
  const ProgramJumpFunctions &Jfs;
  SolveResult &Result;
  FuzzFeedback *Feedback;
  const CancelToken *Cancel;
  std::vector<Cell> Cells;
  std::unordered_map<uint64_t, uint32_t> CellIdx;
  std::vector<Edge> Edges;
  std::vector<std::vector<uint32_t>> UsersOf;
  std::vector<uint32_t> Work;
  std::vector<uint8_t> InWork;
};

} // namespace

SolveResult ipcp::solveConstants(const SymbolTable &Symbols,
                                 const CallGraph &CG,
                                 const ProgramJumpFunctions &Jfs,
                                 SolverStrategy Strategy,
                                 FuzzFeedback *Feedback,
                                 const CancelToken *Cancel,
                                 ValueContextMemo *Memo) {
  // Callers without a session-owned memo still get within-solve
  // memoization (recursion, round-robin sweeps) from a private table.
  std::optional<ValueContextMemo> LocalMemo;
  if (!Memo)
    Memo = &LocalMemo.emplace();
  Propagation Prop(Symbols, CG, Jfs, Feedback, *Memo);
  unsigned Tick = 0;

  if (Strategy == SolverStrategy::BindingGraph) {
    BindingGraphSolver Solver(Symbols, CG, Jfs, Prop.Result, Feedback,
                              Cancel);
    Solver.run();
    return Prop.take();
  }

  if (Strategy == SolverStrategy::Worklist) {
    std::vector<uint8_t> InWork(CG.numProcs(), 0);
    std::vector<ProcId> Work;
    auto push = [&](ProcId P) {
      if (!InWork[P]) {
        InWork[P] = 1;
        Work.push_back(P);
      }
    };
    // Every reachable procedure is visited at least once (its call sites
    // must run even if nothing ever lowers its own cells — e.g. a
    // parameterless procedure in a program without globals). Top-down
    // initial order makes the common acyclic case converge in one pass.
    for (auto It = CG.topDownOrder().rbegin(),
              End = CG.topDownOrder().rend();
         It != End; ++It)
      push(*It); // Reversed: the stack pops entry first.
    while (!Work.empty()) {
      if (pollCancel(Cancel, Tick, 64)) {
        Prop.Result.Cancelled = true;
        break;
      }
      ProcId P = Work.back();
      Work.pop_back();
      InWork[P] = 0;
      // A callee whose cells changed must re-evaluate its own call
      // sites.
      for (ProcId Changed : Prop.processProc(P))
        push(Changed);
    }
  } else {
    bool AnyChange = true;
    while (AnyChange) {
      AnyChange = false;
      unsigned Before = Prop.Result.CellLowerings;
      for (ProcId P : CG.topDownOrder()) {
        if (pollCancel(Cancel, Tick, 64)) {
          Prop.Result.Cancelled = true;
          return Prop.take();
        }
        Prop.processProc(P);
      }
      AnyChange = Prop.Result.CellLowerings != Before;
    }
  }

  return Prop.take();
}
