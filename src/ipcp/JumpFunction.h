//===- ipcp/JumpFunction.h - Forward and return jump functions --*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The jump-function abstraction of Callahan, Cooper, Kennedy & Torczon,
/// and the four forward implementations this paper compares (§3.1):
///
///   literal           constant iff the actual is a literal at the site
///   intraprocedural   constant iff gcp(y, s) proves it constant
///   pass-through      + recognizes an unmodified formal passed onward
///   polynomial        + arbitrary integer expressions over the entry
///                       parameters ("all standard integer operations")
///
/// plus the single polynomial *return* jump function of §3.2. A jump
/// function is stored context-independently (the paper converts the
/// value-numbered expression tree into "a context-independent
/// representation", §4.1): it owns its expression and can be evaluated
/// long after the per-procedure SSA/VN structures are discarded.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_JUMPFUNCTION_H
#define IPCP_IPCP_JUMPFUNCTION_H

#include "analysis/ValueNumbering.h"
#include "ipcp/Lattice.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipcp {

/// Which forward jump-function implementation to build (§3.1), in
/// increasing order of power: the constants found by each kind are a
/// subset of those found by every later kind.
enum class JumpFunctionKind : uint8_t {
  Literal,
  IntraConst,
  PassThrough,
  Polynomial,
};

/// Returns the paper's name for \p Kind ("literal", "pass-through", ...).
const char *jumpFunctionKindName(JumpFunctionKind Kind);

/// A context-independent integer expression over entry parameters
/// (formals and globals) and constants; the stored form of polynomial
/// jump functions.
class JfExpr {
public:
  /// Gamma is the gated selector (paper §4.2 / reference [2]); Unknown
  /// marks a gamma arm whose value is unknowable — selecting it yields
  /// BOTTOM. Copy is the copy-lattice leaf (ipcp/CopyLattice.h): the
  /// entry value of one caller parameter recovered from an array cell —
  /// evaluated exactly like Param, serialized distinctly.
  enum class Node : uint8_t {
    Const,
    Param,
    Unary,
    Binary,
    Gamma,
    Unknown,
    Copy
  };

  /// Deep-copies \p E, which must satisfy isParamExpr() — or, when
  /// \p AllowGated, isGatedParamExpr() (opaque gamma arms become
  /// Unknown nodes).
  static std::unique_ptr<JfExpr> fromVn(const VnExpr *E,
                                        bool AllowGated = false);

  std::unique_ptr<JfExpr> clone() const;

  Node node() const { return Kind; }
  int64_t constValue() const { return ConstValue; }
  SymbolId param() const { return Param; }

  /// Evaluates under \p Env (maps each support parameter to a lattice
  /// value). Any BOTTOM input or division by zero yields BOTTOM; else any
  /// TOP input yields TOP; else the folded constant.
  LatticeValue eval(
      const std::function<LatticeValue(SymbolId)> &Env) const;

  /// Appends the distinct parameters mentioned to \p Support.
  void collectSupport(std::vector<SymbolId> &Support) const;

  /// Appends an exact structural serialization (value-context memo
  /// grouping key): equal bytes imply equal evaluation under every
  /// environment.
  void appendFingerprint(std::string &Out) const;

  /// Reverses appendFingerprint: parses one expression from the front of
  /// \p Text, consuming exactly the bytes that printed it. Returns null
  /// with a diagnostic in \p Error on malformed input — unknown node
  /// tags, out-of-range operators, truncation, or nesting past a fixed
  /// depth bound. Summary files cross process boundaries, so this parser
  /// is as defensive as serve/Json's.
  static std::unique_ptr<JfExpr> parseFingerprint(std::string_view &Text,
                                                  std::string &Error);

  /// Renders with symbol names.
  std::string str(const SymbolTable &Symbols) const;

private:
  static std::unique_ptr<JfExpr> parseFp(std::string_view &Text,
                                         std::string &Error, unsigned Depth);

  Node Kind = Node::Const;
  int64_t ConstValue = 0;
  SymbolId Param = InvalidSymbol;
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  std::unique_ptr<JfExpr> Lhs; ///< Unary/Binary; Gamma true arm.
  std::unique_ptr<JfExpr> Rhs; ///< Binary; Gamma false arm.
  std::unique_ptr<JfExpr> Cond; ///< Gamma predicate.
};

/// One jump function (forward or return). Move-only; the polynomial form
/// owns its expression tree.
class JumpFunction {
public:
  enum class Form : uint8_t {
    Bottom,      ///< Transmits no constant.
    Const,       ///< A known constant, independent of the caller.
    PassThrough, ///< The caller's entry value of one parameter.
    Poly,        ///< An expression over the caller's entry parameters.
    Copy,        ///< The entry value of one caller parameter, recovered
                 ///< through an array cell by the copy lattice (--copy).
  };

  JumpFunction() = default;
  JumpFunction(JumpFunction &&) = default;
  JumpFunction &operator=(JumpFunction &&) = default;

  static JumpFunction bottom() { return JumpFunction(); }
  static JumpFunction constant(int64_t Value);
  static JumpFunction passThrough(SymbolId Sym);
  static JumpFunction polynomial(std::unique_ptr<JfExpr> Expr);
  /// Form::Copy: evaluates like passThrough(Sym) but carries the
  /// copy-lattice provenance (fingerprint token `K<sym>;`), so classic
  /// and copy-recovered facts never collide in memo keys or summaries.
  static JumpFunction copyOf(SymbolId Sym);

  /// Builds the strongest jump function of kind \p Kind for a value whose
  /// value-numbered expression is \p E and whose source operand is a
  /// literal iff \p IsLiteralOperand (the literal kind is a textual
  /// property, not a semantic one). With \p AllowGated (polynomial kind
  /// only), gated expressions over the entry parameters are also
  /// transmitted (paper §4.2).
  static JumpFunction classify(JumpFunctionKind Kind, const VnExpr *E,
                               bool IsLiteralOperand,
                               bool AllowGated = false);

  Form form() const { return F; }
  bool isBottom() const { return F == Form::Bottom; }
  bool isConst() const { return F == Form::Const; }
  int64_t constValue() const;

  /// The support set (paper §2): the exact entry parameters whose values
  /// this function reads.
  const std::vector<SymbolId> &support() const { return Support; }

  /// Evaluates under \p Env (entry-parameter lattice values of the
  /// calling procedure).
  LatticeValue eval(
      const std::function<LatticeValue(SymbolId)> &Env) const;

  /// Appends an exact structural serialization to \p Out. Two jump
  /// functions that append equal bytes evaluate identically under every
  /// environment (form, constant values, support symbol ids, and
  /// expression structure are all pinned), so the value-context memo
  /// uses the bytes as its extensional grouping key — sharing tables
  /// across call sites, procedures, and configurations whose functions
  /// coincide.
  void appendFingerprint(std::string &Out) const;

  /// Reverses appendFingerprint: rebuilds a jump function from the exact
  /// bytes it prints (the summary files' on-disk encoding — SummaryIO.h).
  /// All of \p Text must be consumed. The rebuilt function re-derives its
  /// support through the normal factories, so a successful parse is
  /// structurally indistinguishable from the original: re-appending its
  /// fingerprint reproduces \p Text byte-for-byte. Returns false with a
  /// diagnostic on any malformation; \p Out is untouched then.
  static bool parseFingerprint(std::string_view Text, JumpFunction &Out,
                               std::string &Error);

  /// Renders for dumps: "7", "passthrough(n)", "poly(n + 1)", "_|_".
  std::string str(const SymbolTable &Symbols) const;

  JumpFunction clone() const;

private:
  Form F = Form::Bottom;
  int64_t ConstValue = 0;
  SymbolId Pass = InvalidSymbol;
  std::unique_ptr<JfExpr> Expr;
  std::vector<SymbolId> Support;
};

} // namespace ipcp

#endif // IPCP_IPCP_JUMPFUNCTION_H
