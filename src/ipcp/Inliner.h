//===- ipcp/Inliner.h - Procedure integration -------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedure integration, the competing approach to interprocedural
/// constant propagation discussed in the paper's Other Work section
/// (Wegman & Zadeck, reference [16]): inline procedures into their call
/// sites so every call-graph path is explicit, then let purely
/// intraprocedural constant propagation see the constants. The paper
/// notes this "potentially detects [more] constants than" jump-function
/// propagation, at the price of code growth — the comparison_wz bench
/// quantifies both sides on our suite.
///
/// The transform is source-to-source: callee bodies are cloned into
/// callers bottom-up over the call graph with fresh names for locals, a
/// by-reference name substitution for variable actuals, and by-value
/// temporaries for expression actuals (matching MiniFort call
/// semantics). The result is re-parsed by the caller, keeping every
/// later phase oblivious to inlining.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_INLINER_H
#define IPCP_IPCP_INLINER_H

#include "lang/Ast.h"
#include "lang/Sema.h"

#include <string>

namespace ipcp {

/// Limits for one inlining run.
struct InlineOptions {
  /// Stop cloning once the whole program holds this many statements
  /// (code-growth safety valve; generous by default).
  size_t MaxProgramStmts = 500000;
};

/// Outcome of one inlining run.
struct InlineResult {
  /// The transformed program, as re-parseable MiniFort source.
  std::string Source;
  unsigned InlinedCalls = 0;
  /// Calls left alone and why.
  unsigned SkippedRecursive = 0;
  unsigned SkippedHasReturn = 0;
  unsigned SkippedBudget = 0;

  bool fullyIntegrated() const {
    return SkippedRecursive + SkippedHasReturn + SkippedBudget == 0;
  }
};

/// Integrates every inlinable call of \p Ctx's (sema-checked) program.
/// Calls to recursive procedures and to procedures containing an early
/// 'return' are kept (the latter would need multi-exit splicing).
InlineResult inlineProgram(const AstContext &Ctx,
                           const SymbolTable &Symbols,
                           const InlineOptions &Opts = InlineOptions());

} // namespace ipcp

#endif // IPCP_IPCP_INLINER_H
