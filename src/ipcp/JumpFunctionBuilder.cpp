//===- ipcp/JumpFunctionBuilder.cpp - Jump function generation ------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/JumpFunctionBuilder.h"

#include "analysis/CopyProp.h"
#include "analysis/FlowAlias.h"
#include "ipcp/AnalysisSession.h"
#include "ir/Dominators.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace ipcp;

const JumpFunction *ProgramJumpFunctions::returnJf(ProcId Callee,
                                                   SymbolId CalleeKey) const {
  if (Callee >= ReturnJfs.size())
    return nullptr;
  auto It = ReturnJfs[Callee].find(CalleeKey);
  return It == ReturnJfs[Callee].end() ? nullptr : &It->second;
}

std::optional<SymbolId>
ProgramJumpFunctions::calleeKeyForKill(const Instr &Call, SymbolId Killed,
                                       const SymbolTable &Symbols) {
  assert(Call.Op == Opcode::Call);
  const auto &Formals = Symbols.formals(Call.Callee);
  std::optional<SymbolId> Key;
  unsigned Bindings = 0;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Call.Args.size());
       I != E && I < Formals.size(); ++I) {
    const Operand &Actual = Call.Args[I];
    if (Actual.isVar() && Actual.Sym == Killed) {
      ++Bindings;
      Key = Formals[I];
    }
  }
  const Symbol &S = Symbols.symbol(Killed);
  if (S.Kind == SymbolKind::Global) {
    // A global that is also passed by reference can be written through
    // either name: conservatively unknown.
    if (Bindings != 0)
      return std::nullopt;
    return Killed;
  }
  // A symbol passed in two positions aliases itself: unknown.
  if (Bindings != 1)
    return std::nullopt;
  return Key;
}

namespace {

/// Evaluates the return jump function covering \p Killed at \p Call under
/// a caller-side environment that maps each callee-side support symbol to
/// a lattice value.
LatticeValue evalReturnJf(const ProgramJumpFunctions &Jfs,
                          const SymbolTable &Symbols, const Instr &Call,
                          SymbolId Killed,
                          const std::function<LatticeValue(SymbolId)>
                              &CalleeSideEnv) {
  auto Key = ProgramJumpFunctions::calleeKeyForKill(Call, Killed, Symbols);
  if (!Key)
    return LatticeValue::bottom();
  const JumpFunction *Rjf = Jfs.returnJf(Call.Callee, *Key);
  if (!Rjf)
    return LatticeValue::bottom();
  return Rjf->eval(CalleeSideEnv);
}

/// Builds the callee-side environment for return-jump-function evaluation
/// at a call site: a callee formal maps to the value of the bound actual,
/// a global maps to the value of the global flowing into the call.
/// Values that are not constants become BOTTOM — the paper's rule that a
/// return jump function depending on the *calling* procedure's
/// parameters never evaluates to a constant (§3.2).
template <typename ActualFn, typename GlobalFn>
std::function<LatticeValue(SymbolId)>
makeCalleeSideEnv(const SymbolTable &Symbols, ProcId Callee,
                  ActualFn Actual, GlobalFn Global) {
  return [&Symbols, Callee, Actual, Global](SymbolId Sym) -> LatticeValue {
    const Symbol &S = Symbols.symbol(Sym);
    if (S.Kind == SymbolKind::Formal) {
      assert(S.Owner == Callee && "support symbol from the wrong procedure");
      (void)Callee;
      return Actual(S.FormalIndex);
    }
    assert(S.Kind == SymbolKind::Global && "unexpected support symbol");
    return Global(Sym);
  };
}

LatticeValue constOrBottom(const VnExpr *E) {
  return E->isConst() ? LatticeValue::constant(E->ConstValue)
                      : LatticeValue::bottom();
}

} // namespace

KillValueFn ipcp::makeVnKillFn(const ProgramJumpFunctions &Jfs,
                               const SymbolTable &Symbols) {
  return [&Jfs, &Symbols](const Instr &Call, SymbolId Killed,
                          const CallSiteValues &Values)
             -> std::optional<int64_t> {
    auto Env = makeCalleeSideEnv(
        Symbols, Call.Callee,
        [&](uint32_t Idx) { return constOrBottom(Values.actual(Idx)); },
        [&](SymbolId G) { return constOrBottom(Values.global(G)); });
    LatticeValue V = evalReturnJf(Jfs, Symbols, Call, Killed, Env);
    if (V.isConst())
      return V.value();
    return std::nullopt;
  };
}

SccpKillFn ipcp::makeSccpKillFn(const ProgramJumpFunctions &Jfs,
                                const SymbolTable &Symbols) {
  return [&Jfs, &Symbols](const Instr &Call, SymbolId Killed,
                          const SccpCallValues &Values) -> LatticeValue {
    auto Env = makeCalleeSideEnv(
        Symbols, Call.Callee,
        [&](uint32_t Idx) { return Values.actual(Idx); },
        [&](SymbolId G) { return Values.global(G); });
    LatticeValue V = evalReturnJf(Jfs, Symbols, Call, Killed, Env);
    // TOP can only arise from a TOP input, i.e. an unreached value; the
    // kill is then also unreached and TOP is the correct optimistic
    // answer.
    return V;
  };
}

std::vector<std::vector<size_t>>
ipcp::callAdjacencyWaves(const CallGraph &CG,
                         const std::vector<ProcId> &Order) {
  std::vector<uint32_t> Pos(CG.numProcs(), UINT32_MAX);
  for (size_t I = 0; I != Order.size(); ++I)
    Pos[Order[I]] = static_cast<uint32_t>(I);

  std::vector<uint32_t> Wave(CG.numProcs(), 0);
  std::vector<std::vector<size_t>> Waves;
  for (size_t I = 0; I != Order.size(); ++I) {
    ProcId P = Order[I];
    uint32_t W = 0;
    // Both call directions constrain: a pos-earlier callee must be fully
    // built before P runs; a pos-earlier caller must have finished its
    // read-as-absent lookup of P before P starts writing.
    auto Consider = [&](ProcId Q) {
      if (Q == P || Pos[Q] == UINT32_MAX || Pos[Q] >= I)
        return;
      W = std::max(W, Wave[Q] + 1);
    };
    for (const CallSite &S : CG.callSitesIn(P))
      Consider(S.Callee);
    for (const CallSite &S : CG.callSitesOf(P))
      Consider(S.Caller);
    Wave[P] = W;
    if (W >= Waves.size())
      Waves.resize(W + 1);
    Waves[W].push_back(I);
  }
  return Waves;
}

namespace {

/// Shared read-only inputs of the per-procedure builders.
struct BuildContext {
  const Module &M;
  const SymbolTable &Symbols;
  const CallGraph &CG;
  const ModRefInfo *MRI;
  const JumpFunctionOptions &Opts;
  const SsaForm::KillOracle &KillOracle;
  const KillValueFn *VnKillFnPtr;
  const RefAliasInfo *Aliases;
  const FlowAliasInfo *FlowAliases;
  const CopyPropInfo *CopyFacts;
  ProgramJumpFunctions &Jfs;
  AnalysisSession *Session;

  const std::vector<uint8_t> *unstableMask(ProcId P) const {
    return Aliases ? &Aliases->unstableMask(P) : nullptr;
  }

  /// The precision options of procedure \p P's numbering: in
  /// flow-sensitive mode the per-point dirty facts replace the
  /// whole-procedure mask (at most one of the two is set); copy facts
  /// compose with either.
  VnPrecision precision(ProcId P) const {
    VnPrecision Prec;
    if (Opts.FlowSensitiveAlias && FlowAliases)
      Prec.Flow = &FlowAliases->proc(P);
    else
      Prec.Unstable = unstableMask(P);
    Prec.Optimistic = Opts.OptimisticVn;
    if (Opts.CopyPropagation && CopyFacts)
      Prec.Copy = &CopyFacts->proc(P);
    return Prec;
  }
};

/// Dominator tree + SSA of one procedure: the session's cached bundle,
/// or a locally built pair kept alive by the out-params.
struct SsaView {
  const DominatorTree *DT;
  const SsaForm *Ssa;
};

SsaView getSsa(const BuildContext &BC, ProcId P,
               std::optional<DominatorTree> &LocalDT,
               std::optional<SsaForm> &LocalSsa) {
  if (BC.Session) {
    const AnalysisSession::SsaBundle &B =
        BC.Session->ssa(P, BC.Opts.UseMod);
    return {&B.DT, &B.Ssa};
  }
  const Function &F = BC.M.function(P);
  LocalDT.emplace(F);
  LocalSsa.emplace(F, BC.Symbols, *LocalDT, BC.KillOracle);
  return {&*LocalDT, &*LocalSsa};
}

/// Stage 1 for one procedure: fills Jfs.ReturnJfs[P]. Reads only the
/// ReturnJfs of call-adjacent procedures (via VnKillFnPtr), which wave
/// scheduling keeps race-free. Returns the stat deltas. With a non-null
/// \p CacheInto the value numbering is constructed inside it (and kept
/// for stage-2 reuse) instead of on the stack.
JumpFunctionStats buildReturnJfsForProc(const BuildContext &BC, ProcId P,
                                        AnalysisSession::VnBundle *CacheInto) {
  JumpFunctionStats Stats;
  std::optional<DominatorTree> LocalDT;
  std::optional<SsaForm> LocalSsa;
  SsaView View = getSsa(BC, P, LocalDT, LocalSsa);
  const SsaForm &Ssa = *View.Ssa;
  std::optional<VnContext> LocalCtx;
  std::optional<ValueNumbering> LocalVN;
  auto &VnSlot = CacheInto ? CacheInto->VN : LocalVN;
  VnSlot.emplace(Ssa, BC.Symbols,
                 CacheInto ? CacheInto->Ctx : LocalCtx.emplace(),
                 BC.VnKillFnPtr, BC.Opts.UseGatedSsa ? View.DT : nullptr,
                 BC.precision(P));
  const ValueNumbering &VN = *VnSlot;
  Stats.NumGvnPhiMerges += VN.numOptimisticPhiMerges();
  if (BC.Session)
    BC.Session->counters().VnBuilt.fetch_add(1, std::memory_order_relaxed);

  auto &Out = BC.Jfs.ReturnJfs[P];
  const auto &ExitSyms = Ssa.exitSymbols();
  for (uint32_t I = 0, E = static_cast<uint32_t>(ExitSyms.size()); I != E;
       ++I) {
    SymbolId Sym = ExitSyms[I];
    // With MOD: only modified symbols need an RJF (unmodified ones
    // are never killed). Without MOD: everything may be killed, so
    // every exit symbol gets one (identity RJFs recover pass-through
    // values at worst-case kills).
    if (BC.MRI && !BC.MRI->mods(P, Sym))
      continue;
    JumpFunction Rjf;
    if (Ssa.hasExitEnv()) {
      const VnExpr *Exit = VN.exitExpr(I);
      Rjf = JumpFunction::classify(JumpFunctionKind::Polynomial, Exit,
                                   /*IsLiteralOperand=*/false,
                                   BC.Opts.UseGatedSsa);
    }
    ++Stats.NumReturn;
    switch (Rjf.form()) {
    case JumpFunction::Form::Const:
      ++Stats.NumReturnConst;
      break;
    case JumpFunction::Form::Bottom:
      ++Stats.NumReturnBottom;
      break;
    default:
      ++Stats.NumReturnPoly;
      break;
    }
    Out.emplace(Sym, std::move(Rjf));
  }
  return Stats;
}

/// Stage 2 for one procedure: fills Jfs.PerSite[P]. Reads only the fully
/// built ReturnJfs, so every procedure is independent. Returns the stat
/// deltas. \p CachedVN, when non-null, is a numbering from the session's
/// jump-function base that is provably identical to a fresh build (see
/// buildJumpFunctions); null means build one locally.
JumpFunctionStats buildForwardJfsForProc(const BuildContext &BC, ProcId P,
                                         const ValueNumbering *CachedVN) {
  JumpFunctionStats Stats;
  const Function &F = BC.M.function(P);

  // The literal kind needs no intraprocedural analysis at all — "a
  // textual scan of the call sites provides all the required
  // information" (§3.1.5) — so it skips SSA and value numbering
  // entirely; every other kind pays for them.
  bool LiteralOnly = BC.Opts.Kind == JumpFunctionKind::Literal;
  std::optional<DominatorTree> LocalDT;
  std::optional<SsaForm> LocalSsa;
  std::optional<VnContext> Ctx;
  std::optional<ValueNumbering> LocalVN;
  const SsaForm *Ssa = nullptr;
  const ValueNumbering *VN = nullptr;
  if (!LiteralOnly) {
    if (CachedVN) {
      VN = CachedVN;
      Ssa = &CachedVN->ssa();
      if (BC.Session)
        BC.Session->counters().VnReused.fetch_add(1,
                                                  std::memory_order_relaxed);
    } else {
      SsaView View = getSsa(BC, P, LocalDT, LocalSsa);
      Ssa = View.Ssa;
      Ctx.emplace();
      LocalVN.emplace(*Ssa, BC.Symbols, *Ctx, BC.VnKillFnPtr,
                      BC.Opts.UseGatedSsa ? View.DT : nullptr,
                      BC.precision(P));
      VN = &*LocalVN;
      if (BC.Session)
        BC.Session->counters().VnBuilt.fetch_add(1,
                                                 std::memory_order_relaxed);
    }
    // Count as a fresh build would: a cached numbering is provably
    // identical to the rebuild it stands in for.
    Stats.NumGvnPhiMerges += VN->numOptimisticPhiMerges();
  }

  auto recordStats = [&](const JumpFunction &J) {
    ++Stats.NumForward;
    switch (J.form()) {
    case JumpFunction::Form::Const:
      ++Stats.NumForwardConst;
      break;
    case JumpFunction::Form::PassThrough:
      ++Stats.NumForwardPassThrough;
      break;
    case JumpFunction::Form::Poly:
      ++Stats.NumForwardPoly;
      Stats.TotalPolySupport += J.support().size();
      Stats.MaxPolySupport =
          std::max(Stats.MaxPolySupport, J.support().size());
      break;
    case JumpFunction::Form::Copy:
      ++Stats.NumForwardCopy;
      break;
    case JumpFunction::Form::Bottom:
      ++Stats.NumForwardBottom;
      break;
    }
  };

  auto &Sites = BC.Jfs.PerSite[P];
  for (const CallSite &S : BC.CG.callSitesIn(P)) {
    const Instr &Call = F.block(S.Block).Instrs[S.InstrIdx];
    CallSiteJumpFunctions SiteJfs;

    const auto &Formals = BC.Symbols.formals(S.Callee);
    for (uint32_t I = 0, E = static_cast<uint32_t>(Formals.size()); I != E;
         ++I) {
      JumpFunction J;
      if (I < Call.Args.size()) {
        if (LiteralOnly) {
          if (Call.Args[I].isConst())
            J = JumpFunction::constant(Call.Args[I].ConstValue);
        } else {
          const VnExpr *ArgExpr = VN->exprOfOperand(S.Block, S.InstrIdx, I);
          J = JumpFunction::classify(BC.Opts.Kind, ArgExpr,
                                     Call.Args[I].isConst(),
                                     BC.Opts.UseGatedSsa);
        }
      }
      recordStats(J);
      SiteJfs.Args.push_back(std::move(J));
    }

    const auto &Globals = BC.Symbols.globalScalars();
    for (uint32_t GI = 0, GE = static_cast<uint32_t>(Globals.size());
         GI != GE; ++GI) {
      JumpFunction J; // Literal: globals are never literal -> bottom.
      if (!LiteralOnly) {
        J = JumpFunction::classify(BC.Opts.Kind,
                                   VN->globalEnvExpr(S.Block, S.InstrIdx, GI),
                                   /*IsLiteralOperand=*/false,
                                   BC.Opts.UseGatedSsa);
      }
      recordStats(J);
      SiteJfs.Globals.push_back(std::move(J));
    }

    Sites.push_back(std::move(SiteJfs));
  }
  return Stats;
}

void foldStats(JumpFunctionStats &Into, const JumpFunctionStats &S);

/// Runs stage 1 over \p Order, either serially or in call-adjacency
/// waves over \p Pool, folding the per-procedure stat deltas in serial
/// order. \p CacheFor(P) returns the bundle to construct P's value
/// numbering into (null = stack-local).
template <typename CacheForFn>
void runStage1(const BuildContext &BC, ThreadPool *Pool,
               JumpFunctionStats &Into, CacheForFn CacheFor) {
  const auto &Order = BC.CG.bottomUpOrder();
  std::vector<JumpFunctionStats> PerProc(Order.size());
  auto BuildAt = [&](size_t I) {
    ProcId P = Order[I];
    PerProc[I] = buildReturnJfsForProc(BC, P, CacheFor(P));
  };
  if (!Pool) {
    for (size_t I = 0; I != Order.size(); ++I)
      BuildAt(I);
  } else {
    for (const auto &WaveIdx : callAdjacencyWaves(BC.CG, Order))
      parallelFor(Pool, WaveIdx.size(),
                  [&](size_t I) { BuildAt(WaveIdx[I]); });
  }
  for (const JumpFunctionStats &S : PerProc)
    foldStats(Into, S);
}

/// Builds the configuration-independent base shared by every
/// jump-function build with the same (UseMod, UseRjf, UseGatedSsa): the
/// stage-1 return jump functions, and one value numbering per procedure
/// wherever a later stage-2 rebuild would provably reproduce it — every
/// non-recursive procedure when return jump functions are on (bottom-up
/// order guarantees its callees' RJFs were complete when its numbering
/// ran), and every procedure when they are off (the numbering then has
/// no RJF input at all).
void buildJfBase(AnalysisSession::JfBase &B, const Module &M,
                 const SymbolTable &Symbols, const CallGraph &CG,
                 const ModRefInfo *MRI, const JumpFunctionOptions &Opts,
                 const RefAliasInfo *Aliases, const FlowAliasInfo *FlowAliases,
                 const CopyPropInfo *CopyFacts, ThreadPool *Pool,
                 AnalysisSession *Session) {
  B.Skeleton.Options = Opts;
  B.Skeleton.PerSite.resize(M.Functions.size());
  B.Skeleton.ReturnJfs.resize(M.Functions.size());
  B.Vn.resize(M.Functions.size());

  const SsaForm::KillOracle &KillOracle = Session->killOracle(Opts.UseMod);
  KillValueFn VnKillFn = makeVnKillFn(B.Skeleton, Symbols);
  const KillValueFn *VnKillFnPtr =
      Opts.UseReturnJumpFunctions ? &VnKillFn : nullptr;
  BuildContext BC{M,           Symbols, CG,          MRI,        Opts,
                  KillOracle,  VnKillFnPtr, Aliases, FlowAliases, CopyFacts,
                  B.Skeleton,  Session};

  if (Opts.UseReturnJumpFunctions) {
    runStage1(BC, Pool, B.Skeleton.Stats,
              [&](ProcId P) -> AnalysisSession::VnBundle * {
                if (CG.isRecursive(P))
                  return nullptr;
                B.Vn[P] = std::make_unique<AnalysisSession::VnBundle>();
                return B.Vn[P].get();
              });
    return;
  }

  // No stage 1: cache a kill-free numbering per reachable procedure so
  // every configuration sharing this base skips the rebuild.
  const auto &Order = CG.topDownOrder();
  parallelFor(Pool, Order.size(), [&](size_t I) {
    ProcId P = Order[I];
    auto Bundle = std::make_unique<AnalysisSession::VnBundle>();
    const AnalysisSession::SsaBundle &SB = Session->ssa(P, Opts.UseMod);
    Bundle->VN.emplace(SB.Ssa, Symbols, Bundle->Ctx, nullptr,
                       Opts.UseGatedSsa ? &SB.DT : nullptr,
                       BC.precision(P));
    Session->counters().VnBuilt.fetch_add(1, std::memory_order_relaxed);
    B.Vn[P] = std::move(Bundle);
  });
}

void foldStats(JumpFunctionStats &Into, const JumpFunctionStats &S) {
  Into.NumForward += S.NumForward;
  Into.NumForwardConst += S.NumForwardConst;
  Into.NumForwardPassThrough += S.NumForwardPassThrough;
  Into.NumForwardPoly += S.NumForwardPoly;
  Into.NumForwardBottom += S.NumForwardBottom;
  Into.NumForwardCopy += S.NumForwardCopy;
  Into.TotalPolySupport += S.TotalPolySupport;
  Into.MaxPolySupport = std::max(Into.MaxPolySupport, S.MaxPolySupport);
  Into.NumReturn += S.NumReturn;
  Into.NumReturnConst += S.NumReturnConst;
  Into.NumReturnPoly += S.NumReturnPoly;
  Into.NumReturnBottom += S.NumReturnBottom;
  Into.NumGvnPhiMerges += S.NumGvnPhiMerges;
}

} // namespace

ProgramJumpFunctions ipcp::buildJumpFunctions(
    const Module &M, const SymbolTable &Symbols, const CallGraph &CG,
    const ModRefInfo *MRI, const JumpFunctionOptions &Opts,
    const RefAliasInfo *Aliases, ThreadPool *Pool, AnalysisSession *Session,
    const FlowAliasInfo *FlowAliases, const CopyPropInfo *CopyFacts) {
  assert((Opts.UseMod == (MRI != nullptr)) &&
         "MOD info must be supplied exactly when UseMod is set");
  assert((!Opts.FlowSensitiveAlias || FlowAliases || !Aliases) &&
         "flow-sensitive mode needs the flow alias facts");
  assert((!Opts.CopyPropagation || CopyFacts) &&
         "copy mode needs the copy propagation facts");

  ProgramJumpFunctions Jfs;
  Jfs.Options = Opts;
  Jfs.PerSite.resize(M.Functions.size());
  Jfs.ReturnJfs.resize(M.Functions.size());

  // Return jump functions are built even without MOD summaries: the
  // bottom-up value numbering then runs under worst-case call effects, so
  // only leaf-ish procedures keep precise return jump functions — which
  // is how the paper's "without MOD" column still benefits from them.
  bool UseRjf = Opts.UseReturnJumpFunctions;

  // With a session, stage 1 lives in the shared base: build it once per
  // (UseMod, UseRjf, UseGatedSsa), then copy the skeleton's return jump
  // functions (JumpFunction is move-only, so clone) and stage-1 stats
  // into this configuration's result.
  const AnalysisSession::JfBase *Base = nullptr;
  if (Session) {
    Base = &Session->jfBase(Opts, [&](AnalysisSession::JfBase &B) {
      buildJfBase(B, M, Symbols, CG, MRI, Opts, Aliases, FlowAliases,
                  CopyFacts, Pool, Session);
    });
    for (size_t P = 0, E = Base->Skeleton.ReturnJfs.size(); P != E; ++P)
      for (const auto &[Sym, J] : Base->Skeleton.ReturnJfs[P])
        Jfs.ReturnJfs[P].emplace(Sym, J.clone());
    foldStats(Jfs.Stats, Base->Skeleton.Stats);
  }

  SsaForm::KillOracle LocalOracle;
  const SsaForm::KillOracle *KillOracle;
  if (Session) {
    KillOracle = &Session->killOracle(Opts.UseMod);
  } else {
    LocalOracle = makeKillOracle(Symbols, MRI);
    KillOracle = &LocalOracle;
  }
  KillValueFn VnKillFn = makeVnKillFn(Jfs, Symbols);
  const KillValueFn *VnKillFnPtr = UseRjf ? &VnKillFn : nullptr;

  BuildContext BC{M,           Symbols, CG,          MRI,         Opts,
                  *KillOracle, VnKillFnPtr, Aliases, FlowAliases, CopyFacts,
                  Jfs,         Session};

  // Stage 1: return jump functions, bottom-up so callee RJFs are ready
  // when a caller's value numbering wants them. Within a recursive SCC
  // the not-yet-built callee RJFs simply read as bottom (conservative).
  // In parallel mode, call-adjacent procedures run in separate ordered
  // waves so each procedure observes exactly the serial schedule's view
  // of its neighbours' RJF maps. (With a session, the base above already
  // ran this.)
  if (UseRjf && !Session)
    runStage1(BC, Pool, Jfs.Stats,
              [](ProcId) -> AnalysisSession::VnBundle * { return nullptr; });

  // Stage 2: forward jump functions for every call site of every
  // reachable procedure. The RJFs are now read-only, so every procedure
  // is independent: one flat parallelFor. Cached base numberings stand in
  // for a fresh build wherever the base proved them identical.
  {
    const auto &Order = CG.topDownOrder();
    std::vector<JumpFunctionStats> PerProc(Order.size());
    parallelFor(Pool, Order.size(), [&](size_t I) {
      ProcId P = Order[I];
      const ValueNumbering *Cached = nullptr;
      if (Base && P < Base->Vn.size() && Base->Vn[P] && Base->Vn[P]->VN)
        Cached = &*Base->Vn[P]->VN;
      PerProc[I] = buildForwardJfsForProc(BC, P, Cached);
    });
    for (const JumpFunctionStats &S : PerProc)
      foldStats(Jfs.Stats, S);
  }

  return Jfs;
}
