//===- ipcp/JumpFunctionBuilder.cpp - Jump function generation ------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/JumpFunctionBuilder.h"

#include "ir/Dominators.h"

#include <cassert>

using namespace ipcp;

const JumpFunction *ProgramJumpFunctions::returnJf(ProcId Callee,
                                                   SymbolId CalleeKey) const {
  if (Callee >= ReturnJfs.size())
    return nullptr;
  auto It = ReturnJfs[Callee].find(CalleeKey);
  return It == ReturnJfs[Callee].end() ? nullptr : &It->second;
}

std::optional<SymbolId>
ProgramJumpFunctions::calleeKeyForKill(const Instr &Call, SymbolId Killed,
                                       const SymbolTable &Symbols) {
  assert(Call.Op == Opcode::Call);
  const auto &Formals = Symbols.formals(Call.Callee);
  std::optional<SymbolId> Key;
  unsigned Bindings = 0;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Call.Args.size());
       I != E && I < Formals.size(); ++I) {
    const Operand &Actual = Call.Args[I];
    if (Actual.isVar() && Actual.Sym == Killed) {
      ++Bindings;
      Key = Formals[I];
    }
  }
  const Symbol &S = Symbols.symbol(Killed);
  if (S.Kind == SymbolKind::Global) {
    // A global that is also passed by reference can be written through
    // either name: conservatively unknown.
    if (Bindings != 0)
      return std::nullopt;
    return Killed;
  }
  // A symbol passed in two positions aliases itself: unknown.
  if (Bindings != 1)
    return std::nullopt;
  return Key;
}

namespace {

/// Evaluates the return jump function covering \p Killed at \p Call under
/// a caller-side environment that maps each callee-side support symbol to
/// a lattice value.
LatticeValue evalReturnJf(const ProgramJumpFunctions &Jfs,
                          const SymbolTable &Symbols, const Instr &Call,
                          SymbolId Killed,
                          const std::function<LatticeValue(SymbolId)>
                              &CalleeSideEnv) {
  auto Key = ProgramJumpFunctions::calleeKeyForKill(Call, Killed, Symbols);
  if (!Key)
    return LatticeValue::bottom();
  const JumpFunction *Rjf = Jfs.returnJf(Call.Callee, *Key);
  if (!Rjf)
    return LatticeValue::bottom();
  return Rjf->eval(CalleeSideEnv);
}

/// Builds the callee-side environment for return-jump-function evaluation
/// at a call site: a callee formal maps to the value of the bound actual,
/// a global maps to the value of the global flowing into the call.
/// Values that are not constants become BOTTOM — the paper's rule that a
/// return jump function depending on the *calling* procedure's
/// parameters never evaluates to a constant (§3.2).
template <typename ActualFn, typename GlobalFn>
std::function<LatticeValue(SymbolId)>
makeCalleeSideEnv(const SymbolTable &Symbols, ProcId Callee,
                  ActualFn Actual, GlobalFn Global) {
  return [&Symbols, Callee, Actual, Global](SymbolId Sym) -> LatticeValue {
    const Symbol &S = Symbols.symbol(Sym);
    if (S.Kind == SymbolKind::Formal) {
      assert(S.Owner == Callee && "support symbol from the wrong procedure");
      (void)Callee;
      return Actual(S.FormalIndex);
    }
    assert(S.Kind == SymbolKind::Global && "unexpected support symbol");
    return Global(Sym);
  };
}

LatticeValue constOrBottom(const VnExpr *E) {
  return E->isConst() ? LatticeValue::constant(E->ConstValue)
                      : LatticeValue::bottom();
}

} // namespace

KillValueFn ipcp::makeVnKillFn(const ProgramJumpFunctions &Jfs,
                               const SymbolTable &Symbols) {
  return [&Jfs, &Symbols](const Instr &Call, SymbolId Killed,
                          const CallSiteValues &Values)
             -> std::optional<int64_t> {
    auto Env = makeCalleeSideEnv(
        Symbols, Call.Callee,
        [&](uint32_t Idx) { return constOrBottom(Values.actual(Idx)); },
        [&](SymbolId G) { return constOrBottom(Values.global(G)); });
    LatticeValue V = evalReturnJf(Jfs, Symbols, Call, Killed, Env);
    if (V.isConst())
      return V.value();
    return std::nullopt;
  };
}

SccpKillFn ipcp::makeSccpKillFn(const ProgramJumpFunctions &Jfs,
                                const SymbolTable &Symbols) {
  return [&Jfs, &Symbols](const Instr &Call, SymbolId Killed,
                          const SccpCallValues &Values) -> LatticeValue {
    auto Env = makeCalleeSideEnv(
        Symbols, Call.Callee,
        [&](uint32_t Idx) { return Values.actual(Idx); },
        [&](SymbolId G) { return Values.global(G); });
    LatticeValue V = evalReturnJf(Jfs, Symbols, Call, Killed, Env);
    // TOP can only arise from a TOP input, i.e. an unreached value; the
    // kill is then also unreached and TOP is the correct optimistic
    // answer.
    return V;
  };
}

ProgramJumpFunctions ipcp::buildJumpFunctions(const Module &M,
                                              const SymbolTable &Symbols,
                                              const CallGraph &CG,
                                              const ModRefInfo *MRI,
                                              const JumpFunctionOptions &Opts) {
  assert((Opts.UseMod == (MRI != nullptr)) &&
         "MOD info must be supplied exactly when UseMod is set");

  ProgramJumpFunctions Jfs;
  Jfs.Options = Opts;
  Jfs.PerSite.resize(M.Functions.size());
  Jfs.ReturnJfs.resize(M.Functions.size());

  // Return jump functions are built even without MOD summaries: the
  // bottom-up value numbering then runs under worst-case call effects, so
  // only leaf-ish procedures keep precise return jump functions — which
  // is how the paper's "without MOD" column still benefits from them.
  bool UseRjf = Opts.UseReturnJumpFunctions;

  SsaForm::KillOracle KillOracle = makeKillOracle(Symbols, MRI);
  KillValueFn VnKillFn = makeVnKillFn(Jfs, Symbols);
  const KillValueFn *VnKillFnPtr = UseRjf ? &VnKillFn : nullptr;

  // Stage 1: return jump functions, bottom-up so callee RJFs are ready
  // when a caller's value numbering wants them. Within a recursive SCC
  // the not-yet-built callee RJFs simply read as bottom (conservative).
  if (UseRjf) {
    for (ProcId P : CG.bottomUpOrder()) {
      const Function &F = M.function(P);
      DominatorTree DT(F);
      SsaForm Ssa(F, Symbols, DT, KillOracle);
      VnContext Ctx;
      ValueNumbering VN(Ssa, Symbols, Ctx, VnKillFnPtr,
                        Opts.UseGatedSsa ? &DT : nullptr);

      auto &Out = Jfs.ReturnJfs[P];
      const auto &ExitSyms = Ssa.exitSymbols();
      for (uint32_t I = 0, E = static_cast<uint32_t>(ExitSyms.size());
           I != E; ++I) {
        SymbolId Sym = ExitSyms[I];
        // With MOD: only modified symbols need an RJF (unmodified ones
        // are never killed). Without MOD: everything may be killed, so
        // every exit symbol gets one (identity RJFs recover pass-through
        // values at worst-case kills).
        if (MRI && !MRI->mods(P, Sym))
          continue;
        JumpFunction Rjf;
        if (Ssa.hasExitEnv()) {
          const VnExpr *Exit = VN.exprOf(Ssa.exitEnv()[I]);
          Rjf = JumpFunction::classify(JumpFunctionKind::Polynomial, Exit,
                                       /*IsLiteralOperand=*/false,
                                       Opts.UseGatedSsa);
        }
        ++Jfs.Stats.NumReturn;
        switch (Rjf.form()) {
        case JumpFunction::Form::Const:
          ++Jfs.Stats.NumReturnConst;
          break;
        case JumpFunction::Form::Bottom:
          ++Jfs.Stats.NumReturnBottom;
          break;
        default:
          ++Jfs.Stats.NumReturnPoly;
          break;
        }
        Out.emplace(Sym, std::move(Rjf));
      }
    }
  }

  // Stage 2: forward jump functions for every call site of every
  // reachable procedure. The literal kind needs no intraprocedural
  // analysis at all — "a textual scan of the call sites provides all the
  // required information" (§3.1.5) — so it skips SSA and value numbering
  // entirely; every other kind pays for them.
  bool LiteralOnly = Opts.Kind == JumpFunctionKind::Literal;
  for (ProcId P : CG.topDownOrder()) {
    const Function &F = M.function(P);
    std::optional<DominatorTree> DT;
    std::optional<SsaForm> Ssa;
    std::optional<VnContext> Ctx;
    std::optional<ValueNumbering> VN;
    if (!LiteralOnly) {
      DT.emplace(F);
      Ssa.emplace(F, Symbols, *DT, KillOracle);
      Ctx.emplace();
      VN.emplace(*Ssa, Symbols, *Ctx, VnKillFnPtr,
                 Opts.UseGatedSsa ? &*DT : nullptr);
    }

    auto recordStats = [&](const JumpFunction &J) {
      ++Jfs.Stats.NumForward;
      switch (J.form()) {
      case JumpFunction::Form::Const:
        ++Jfs.Stats.NumForwardConst;
        break;
      case JumpFunction::Form::PassThrough:
        ++Jfs.Stats.NumForwardPassThrough;
        break;
      case JumpFunction::Form::Poly:
        ++Jfs.Stats.NumForwardPoly;
        Jfs.Stats.TotalPolySupport += J.support().size();
        Jfs.Stats.MaxPolySupport =
            std::max(Jfs.Stats.MaxPolySupport, J.support().size());
        break;
      case JumpFunction::Form::Bottom:
        ++Jfs.Stats.NumForwardBottom;
        break;
      }
    };

    auto &Sites = Jfs.PerSite[P];
    for (const CallSite &S : CG.callSitesIn(P)) {
      const Instr &Call = F.block(S.Block).Instrs[S.InstrIdx];
      CallSiteJumpFunctions SiteJfs;

      const auto &Formals = Symbols.formals(S.Callee);
      for (uint32_t I = 0, E = static_cast<uint32_t>(Formals.size());
           I != E; ++I) {
        JumpFunction J;
        if (I < Call.Args.size()) {
          if (LiteralOnly) {
            if (Call.Args[I].isConst())
              J = JumpFunction::constant(Call.Args[I].ConstValue);
          } else {
            const VnExpr *ArgExpr =
                VN->exprOfOperand(S.Block, S.InstrIdx, I);
            J = JumpFunction::classify(Opts.Kind, ArgExpr,
                                       Call.Args[I].isConst(),
                                       Opts.UseGatedSsa);
          }
        }
        recordStats(J);
        SiteJfs.Args.push_back(std::move(J));
      }

      const auto &Globals = Symbols.globalScalars();
      for (uint32_t GI = 0, GE = static_cast<uint32_t>(Globals.size());
           GI != GE; ++GI) {
        JumpFunction J; // Literal: globals are never literal -> bottom.
        if (!LiteralOnly) {
          const InstrSsaInfo &Info = Ssa->instrInfo(S.Block, S.InstrIdx);
          J = JumpFunction::classify(Opts.Kind, VN->exprOf(Info.GlobalEnv[GI]),
                                     /*IsLiteralOperand=*/false,
                                     Opts.UseGatedSsa);
        }
        recordStats(J);
        SiteJfs.Globals.push_back(std::move(J));
      }

      Sites.push_back(std::move(SiteJfs));
    }
  }

  return Jfs;
}
