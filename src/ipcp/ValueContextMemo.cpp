//===- ipcp/ValueContextMemo.cpp - Shared value-context tables ------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/ValueContextMemo.h"

using namespace ipcp;

const std::vector<LatticeValue> *
ValueContextMemo::Group::find(const std::vector<int64_t> &Context) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Table.find(Context);
  // The node (and the vector it holds) is never mutated or erased after
  // publication, so the pointer outlives the lock.
  return It == Table.end() ? nullptr : &It->second;
}

void ValueContextMemo::Group::record(std::vector<int64_t> &&Context,
                                     std::vector<LatticeValue> &&Values) {
  std::lock_guard<std::mutex> Lock(M);
  if (Table.size() >= MaxContexts)
    return;
  Table.emplace(std::move(Context), std::move(Values));
}

ValueContextMemo::Group &
ValueContextMemo::group(std::string &&Fingerprint,
                        const std::function<void(Group &)> &Init) {
  // FNV-1a over the fingerprint picks the shard; the exact string is the
  // map key, so distinct jump-function lists can never alias a group.
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Fingerprint) {
    H ^= C;
    H *= 1099511628211ull;
  }
  Shard &S = Shards[H % NumShards];
  std::lock_guard<std::mutex> Lock(S.M);
  auto [It, Created] = S.Groups.try_emplace(std::move(Fingerprint));
  if (Created)
    Init(It->second);
  return It->second;
}

void ValueContextMemo::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Groups.clear();
  }
}
