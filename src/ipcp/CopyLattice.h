//===- ipcp/CopyLattice.h - Copy-propagation lattice ------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four-point lattice the copy-propagation analysis (analysis/CopyProp)
/// computes over array cells, sitting alongside the constant lattice
/// (ipcp/Lattice.h) the solver runs on:
///
///               TOP           (cell not yet reached)
///       Copy(sym)   Const(c)  (cell provably holds the entry value of a
///                              stable symbol / the literal c)
///             BOTTOM          (cell may hold anything)
///
/// Copy(sym) is the element the constant lattice cannot express: "this
/// location holds whatever \p sym held at procedure entry". Jump functions
/// carry it interprocedurally (JumpFunction::Form::Copy), so the solver
/// rewrites copy chains down to their ultimate constant — Sreekala/Paleri's
/// observation that copy propagation subsumes constant propagation, realized
/// inside the paper's jump-function framework.
///
/// The meet is the standard must-analysis meet: TOP is the identity, equal
/// elements meet to themselves, everything else falls to BOTTOM. Distinct
/// Copy symbols never meet to a common copy (their entry values may differ),
/// and Copy(s) never meets Const(c) even if s is later proven to be c — that
/// discovery belongs to the solver, not the dataflow.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_COPYLATTICE_H
#define IPCP_IPCP_COPYLATTICE_H

#include "lang/Sema.h"

#include <cstdint>

namespace ipcp {

/// One element of the copy lattice.
class CopyValue {
public:
  enum class Kind : uint8_t { Top, Copy, Const, Bottom };

  CopyValue() = default;

  static CopyValue top() { return CopyValue(); }
  static CopyValue bottom() {
    CopyValue V;
    V.K = Kind::Bottom;
    return V;
  }
  static CopyValue constant(int64_t C) {
    CopyValue V;
    V.K = Kind::Const;
    V.Value = C;
    return V;
  }
  static CopyValue copyOf(SymbolId Sym) {
    CopyValue V;
    V.K = Kind::Copy;
    V.Sym = Sym;
    return V;
  }

  bool isTop() const { return K == Kind::Top; }
  bool isBottom() const { return K == Kind::Bottom; }
  bool isConst() const { return K == Kind::Const; }
  bool isCopy() const { return K == Kind::Copy; }
  /// True for the two informative elements a fact can be published from.
  bool isResolved() const { return isConst() || isCopy(); }

  int64_t constValue() const { return Value; }
  SymbolId copySym() const { return Sym; }

  friend bool operator==(const CopyValue &A, const CopyValue &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Const:
      return A.Value == B.Value;
    case Kind::Copy:
      return A.Sym == B.Sym;
    case Kind::Top:
    case Kind::Bottom:
      return true;
    }
    return false;
  }
  friend bool operator!=(const CopyValue &A, const CopyValue &B) {
    return !(A == B);
  }

  /// Lattice meet (greatest lower bound).
  static CopyValue meet(const CopyValue &A, const CopyValue &B) {
    if (A.isTop())
      return B;
    if (B.isTop())
      return A;
    if (A == B)
      return A;
    return bottom();
  }

private:
  Kind K = Kind::Top;
  SymbolId Sym = InvalidSymbol; ///< For Copy.
  int64_t Value = 0;            ///< For Const.
};

} // namespace ipcp

#endif // IPCP_IPCP_COPYLATTICE_H
