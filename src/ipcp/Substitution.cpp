//===- ipcp/Substitution.cpp - Constant substitution counting -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Substitution.h"

#include "analysis/CopyProp.h"
#include "analysis/FlowAlias.h"
#include "analysis/Sccp.h"
#include "ipcp/AnalysisSession.h"
#include "ir/Dominators.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace ipcp;

namespace {

/// One procedure's share of the substitution pass.
struct ProcSubstitutions {
  unsigned Count = 0;
  unsigned ConstantPrints = 0;
  SubstitutionMap Map;
  DeadCodeElim::Decisions Branches;
};

ProcSubstitutions countProc(const Module &M, const SymbolTable &Symbols,
                            const SolveResult *Solve,
                            const SsaForm::KillOracle &KillOracle,
                            const SccpKillFn *KillFnPtr,
                            const RefAliasInfo *Aliases,
                            const FlowAliasInfo *FlowAliases,
                            const CopyPropInfo *CopyFacts, ProcId P,
                            const SsaForm *CachedSsa) {
  ProcSubstitutions Out;
  const Function &F = M.function(P);
  std::optional<DominatorTree> LocalDT;
  std::optional<SsaForm> LocalSsa;
  if (!CachedSsa) {
    LocalDT.emplace(F);
    LocalSsa.emplace(F, Symbols, *LocalDT, KillOracle);
  }
  const SsaForm &Ssa = CachedSsa ? *CachedSsa : *LocalSsa;

  // Seed the entry lattice with this procedure's CONSTANTS set.
  SccpSeeds Seeds;
  if (Solve)
    for (const auto &[Sym, V] : Solve->Val.at(P))
      Seeds.emplace(Sym, V);

  // Flow-sensitive mode replaces the whole-procedure mask with per-point
  // dirty gating; at most one of the two reaches the SCCP run.
  Sccp Analysis(Ssa, Symbols, Solve ? &Seeds : nullptr, KillFnPtr,
                FlowAliases ? nullptr
                            : (Aliases ? &Aliases->unstableMask(P) : nullptr),
                FlowAliases ? &FlowAliases->proc(P) : nullptr,
                CopyFacts ? &CopyFacts->proc(P) : nullptr);

  for (BlockId B = 0, BE = static_cast<BlockId>(F.numBlocks()); B != BE;
       ++B) {
    if (!Analysis.blockExecutable(B))
      continue;
    const auto &Instrs = F.block(B).Instrs;
    for (uint32_t I = 0, IE = static_cast<uint32_t>(Instrs.size());
         I != IE; ++I) {
      const Instr &In = Instrs[I];
      const InstrSsaInfo &Info = Ssa.instrInfo(B, I);

      // A by-reference actual the callee may modify must stay a
      // variable.
      auto unsubstitutable = [&](const Operand &Op) {
        if (In.Op != Opcode::Call || !Op.isVar())
          return false;
        for (const auto &[Killed, Def] : Info.Kills)
          if (Killed == Op.Sym)
            return true;
        return false;
      };

      if (In.Op == Opcode::Print &&
          Analysis.operandValue(B, I, 0).isConst())
        ++Out.ConstantPrints;

      uint32_t Slot = 0;
      In.forEachUse([&](const Operand &Op) {
        uint32_t S = Slot++;
        if (!Op.isVar() || Op.SourceExpr == 0 || unsubstitutable(Op))
          return;
        // Read through the gate: in flow-sensitive mode a use at a dirty
        // point must not be substituted even when its SSA value is known.
        LatticeValue V = Analysis.operandValue(B, I, S);
        if (!V.isConst())
          return;
        ++Out.Count;
        Out.Map.emplace(Op.SourceExpr, V.value());
      });
    }
  }

  for (auto [StmtId, Taken] : Analysis.constantBranches())
    Out.Branches.emplace(StmtId, Taken);
  return Out;
}

} // namespace

SubstitutionResult ipcp::countSubstitutions(
    const Module &M, const SymbolTable &Symbols, const CallGraph &CG,
    const SolveResult *Solve, const ModRefInfo *MRI,
    const ProgramJumpFunctions *Jfs, const RefAliasInfo *Aliases,
    ThreadPool *Pool, AnalysisSession *Session,
    const FlowAliasInfo *FlowAliases, const CopyPropInfo *CopyFacts) {
  SubstitutionResult Result;
  Result.PerProc.assign(M.Functions.size(), 0);

  SsaForm::KillOracle KillOracle = makeKillOracle(Symbols, MRI);
  SccpKillFn KillFn;
  const SccpKillFn *KillFnPtr = nullptr;
  if (Jfs) {
    KillFn = makeSccpKillFn(*Jfs, Symbols);
    KillFnPtr = &KillFn;
  }

  // Fan the procedures out (each reads only immutable state and writes
  // its own slot), then merge serially in the fixed top-down order. The
  // merged maps are keyed by program-unique expression/statement ids, so
  // the merge is disjoint and the result identical to the serial pass.
  const auto &Order = CG.topDownOrder();
  std::vector<ProcSubstitutions> PerProc(Order.size());
  parallelFor(Pool, Order.size(), [&](size_t I) {
    const SsaForm *CachedSsa =
        Session ? &Session->ssa(Order[I], MRI != nullptr).Ssa : nullptr;
    PerProc[I] = countProc(M, Symbols, Solve, KillOracle, KillFnPtr,
                           Aliases, FlowAliases, CopyFacts, Order[I],
                           CachedSsa);
  });

  for (size_t I = 0; I != Order.size(); ++I) {
    ProcSubstitutions &PS = PerProc[I];
    Result.Total += PS.Count;
    Result.PerProc[Order[I]] = PS.Count;
    Result.ConstantPrints += PS.ConstantPrints;
    Result.Map.insert(PS.Map.begin(), PS.Map.end());
    Result.Branches.insert(PS.Branches.begin(), PS.Branches.end());
  }

  return Result;
}
