//===- ipcp/Solver.h - Interprocedural propagation --------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 3 of the analyzer: propagating the VAL sets around the call
/// graph (paper §2, §4.1). For every procedure p and every
/// interprocedural parameter x (formal or global scalar), VAL(p, x)
/// approximates x's value on entry to p. Each call edge contributes
/// meet(VAL, eval(jump function)); iteration runs to a fixed point,
/// which the shallow lattice bounds (each cell lowers at most twice).
///
/// Two strategies are provided: the worklist scheme the paper used, and
/// a naive round-robin sweep for the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_SOLVER_H
#define IPCP_IPCP_SOLVER_H

#include "analysis/CallGraph.h"
#include "ipcp/JumpFunctionBuilder.h"
#include "ipcp/Lattice.h"

#include <unordered_map>
#include <vector>

namespace ipcp {
class CancelToken;
class FuzzFeedback;
class ValueContextMemo;

/// Fixpoint strategy.
enum class SolverStrategy : uint8_t {
  /// Re-evaluate only the call sites of procedures whose VAL changed
  /// (procedure-granular; what the paper's implementation used).
  Worklist,
  /// Sweep every call site of every reachable procedure until a full
  /// pass changes nothing (the ablation baseline).
  RoundRobin,
  /// Propagate over the binding multi-graph (paper §2 / reference [7]):
  /// one node per (procedure, parameter) cell, one edge per jump
  /// function from each support cell, so lowering a cell re-evaluates
  /// exactly the jump functions that read it.
  BindingGraph,
};

/// Result of one propagation: the VAL sets plus effort counters.
struct SolveResult {
  /// Val[p] maps each of p's interprocedural parameters to its value on
  /// entry. Procedures never invoked keep all cells at TOP (paper §2).
  std::vector<std::unordered_map<SymbolId, LatticeValue>> Val;

  /// CONSTANTS(p): the (symbol, value) pairs with constant VAL, in
  /// SymbolId order.
  std::vector<std::pair<SymbolId, int64_t>> constants(ProcId P) const;

  /// Entry value of \p Sym at \p P (TOP if untracked).
  LatticeValue valueOf(ProcId P, SymbolId Sym) const;

  /// Total constant cells across all procedures.
  size_t numConstantCells() const;

  unsigned ProcVisits = 0;      ///< Procedure-level worklist pops/sweeps.
  unsigned JfEvaluations = 0;   ///< Individual jump-function evaluations.
  unsigned CellLowerings = 0;   ///< VAL cell changes (≤ 2 per cell).

  /// Value-context memoization (after Padhye & Khedker): visits of a
  /// procedure whose jump-function list and projected entry context were
  /// seen before — by any call site, configuration, or earlier solve
  /// sharing the same ValueContextMemo — replay the recorded evaluations
  /// instead of re-evaluating. JfEvaluations still counts replayed
  /// evaluations — it is the paper's effort metric and stays identical
  /// with or without the memo — so MemoHits * (site JFs of the
  /// procedure) of them were free. Worklist/RoundRobin only; the
  /// binding-graph strategy is already edge-granular and bypasses the
  /// memo (both counters stay 0). 64-bit: when the memo is shared across
  /// warm serve sessions these accumulate like SessionCache's counters
  /// and 32 bits can wrap in a long-lived server. Warmth-dependent by
  /// design — everything else in a SolveResult is deterministic.
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;

  /// True when the run was abandoned through a CancelToken (the server's
  /// deadline machinery). Val and the counters are partial; callers must
  /// not use them.
  bool Cancelled = false;
};

/// Runs the interprocedural propagation.
///
/// Initial information: every cell starts at TOP except the entry
/// procedure, whose formals (none, for 'main') and globals start at
/// BOTTOM — globals are uninitialized until the entry prologue runs.
///
/// A non-null \p Feedback receives one coverage feature per VAL-cell
/// lowering, tagged with the form of the jump function that caused it
/// and the cell's new lattice state (the coverage-guided fuzzer's
/// cheapest behavior signal). Recording never changes the propagation.
///
/// A non-null \p Cancel is polled periodically (rate-limited, so the
/// deadline clock read stays off the per-evaluation path); when it
/// expires the solve stops where it is and returns Cancelled=true.
///
/// A non-null \p Memo shares recorded jump-function evaluations with
/// every other solve over the same memo (AnalysisSession owns one, so
/// warm suite cells and repeat serve requests replay instead of
/// re-evaluating). Null runs with a private memo — identical results,
/// no cross-solve reuse.
SolveResult solveConstants(const SymbolTable &Symbols, const CallGraph &CG,
                           const ProgramJumpFunctions &Jfs,
                           SolverStrategy Strategy = SolverStrategy::Worklist,
                           FuzzFeedback *Feedback = nullptr,
                           const CancelToken *Cancel = nullptr,
                           ValueContextMemo *Memo = nullptr);

} // namespace ipcp

#endif // IPCP_IPCP_SOLVER_H
