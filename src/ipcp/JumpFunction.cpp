//===- ipcp/JumpFunction.cpp - Forward and return jump functions ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/JumpFunction.h"

#include <cassert>

using namespace ipcp;

const char *ipcp::jumpFunctionKindName(JumpFunctionKind Kind) {
  switch (Kind) {
  case JumpFunctionKind::Literal:
    return "literal";
  case JumpFunctionKind::IntraConst:
    return "intraprocedural";
  case JumpFunctionKind::PassThrough:
    return "pass-through";
  case JumpFunctionKind::Polynomial:
    return "polynomial";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// JfExpr
//===----------------------------------------------------------------------===//

std::unique_ptr<JfExpr> JfExpr::fromVn(const VnExpr *E, bool AllowGated) {
  assert(E && (AllowGated ? isGatedParamExpr(E) : isParamExpr(E)) &&
         "jump function expression must be evaluable");
  auto Out = std::make_unique<JfExpr>();
  switch (E->Kind) {
  case VnKind::Const:
    Out->Kind = Node::Const;
    Out->ConstValue = E->ConstValue;
    break;
  case VnKind::Param:
    Out->Kind = Node::Param;
    Out->Param = E->Param;
    break;
  case VnKind::Unary:
    Out->Kind = Node::Unary;
    Out->UOp = E->UOp;
    Out->Lhs = fromVn(E->Lhs, AllowGated);
    break;
  case VnKind::Binary:
    Out->Kind = Node::Binary;
    Out->BOp = E->BOp;
    Out->Lhs = fromVn(E->Lhs, AllowGated);
    Out->Rhs = fromVn(E->Rhs, AllowGated);
    break;
  case VnKind::Gamma: {
    Out->Kind = Node::Gamma;
    Out->Cond = fromVn(E->Cond, AllowGated);
    auto arm = [&](const VnExpr *Arm) -> std::unique_ptr<JfExpr> {
      if (Arm->isOpaque()) {
        auto U = std::make_unique<JfExpr>();
        U->Kind = Node::Unknown;
        return U;
      }
      return fromVn(Arm, AllowGated);
    };
    Out->Lhs = arm(E->Lhs);
    Out->Rhs = arm(E->Rhs);
    break;
  }
  case VnKind::Opaque:
    assert(false && "unreachable: opacity checked above");
    break;
  }
  return Out;
}

std::unique_ptr<JfExpr> JfExpr::clone() const {
  auto Out = std::make_unique<JfExpr>();
  Out->Kind = Kind;
  Out->ConstValue = ConstValue;
  Out->Param = Param;
  Out->UOp = UOp;
  Out->BOp = BOp;
  if (Lhs)
    Out->Lhs = Lhs->clone();
  if (Rhs)
    Out->Rhs = Rhs->clone();
  if (Cond)
    Out->Cond = Cond->clone();
  return Out;
}

LatticeValue
JfExpr::eval(const std::function<LatticeValue(SymbolId)> &Env) const {
  switch (Kind) {
  case Node::Const:
    return LatticeValue::constant(ConstValue);
  case Node::Param:
    return Env(Param);
  case Node::Unary: {
    LatticeValue V = Lhs->eval(Env);
    if (V.isConst())
      return LatticeValue::constant(evalUnaryOp(UOp, V.value()));
    return V;
  }
  case Node::Binary: {
    LatticeValue L = Lhs->eval(Env);
    LatticeValue R = Rhs->eval(Env);
    if (L.isBottom() || R.isBottom())
      return LatticeValue::bottom();
    if (L.isTop() || R.isTop())
      return LatticeValue::top();
    int64_t Result;
    if (!evalBinaryOp(BOp, L.value(), R.value(), Result))
      return LatticeValue::bottom(); // Division by zero at evaluation.
    return LatticeValue::constant(Result);
  }
  case Node::Gamma: {
    LatticeValue C = Cond->eval(Env);
    if (C.isTop())
      return LatticeValue::top();
    if (C.isConst())
      return (C.value() != 0 ? Lhs : Rhs)->eval(Env);
    // Unknown predicate: sound to take the meet of both arms.
    return Lhs->eval(Env).meet(Rhs->eval(Env));
  }
  case Node::Unknown:
    return LatticeValue::bottom();
  }
  return LatticeValue::bottom();
}

void JfExpr::collectSupport(std::vector<SymbolId> &Support) const {
  switch (Kind) {
  case Node::Const:
    return;
  case Node::Param:
    for (SymbolId S : Support)
      if (S == Param)
        return;
    Support.push_back(Param);
    return;
  case Node::Unary:
    Lhs->collectSupport(Support);
    return;
  case Node::Binary:
    Lhs->collectSupport(Support);
    Rhs->collectSupport(Support);
    return;
  case Node::Gamma:
    Cond->collectSupport(Support);
    Lhs->collectSupport(Support);
    Rhs->collectSupport(Support);
    return;
  case Node::Unknown:
    return;
  }
}

void JfExpr::appendFingerprint(std::string &Out) const {
  switch (Kind) {
  case Node::Const:
    Out += 'c';
    Out += std::to_string(ConstValue);
    Out += ';';
    return;
  case Node::Param:
    Out += 'p';
    Out += std::to_string(Param);
    Out += ';';
    return;
  case Node::Unary:
    Out += 'u';
    Out += std::to_string(static_cast<unsigned>(UOp));
    Out += '(';
    Lhs->appendFingerprint(Out);
    Out += ')';
    return;
  case Node::Binary:
    Out += 'b';
    Out += std::to_string(static_cast<unsigned>(BOp));
    Out += '(';
    Lhs->appendFingerprint(Out);
    Rhs->appendFingerprint(Out);
    Out += ')';
    return;
  case Node::Gamma:
    Out += "g(";
    Cond->appendFingerprint(Out);
    Lhs->appendFingerprint(Out);
    Rhs->appendFingerprint(Out);
    Out += ')';
    return;
  case Node::Unknown:
    Out += '?';
    return;
  }
}

std::string JfExpr::str(const SymbolTable &Symbols) const {
  switch (Kind) {
  case Node::Const:
    return std::to_string(ConstValue);
  case Node::Param:
    return Symbols.symbol(Param).Name;
  case Node::Unary:
    return std::string(unaryOpSpelling(UOp)) + "(" + Lhs->str(Symbols) + ")";
  case Node::Binary:
    return "(" + Lhs->str(Symbols) + " " + binaryOpSpelling(BOp) + " " +
           Rhs->str(Symbols) + ")";
  case Node::Gamma:
    return "gamma(" + Cond->str(Symbols) + ", " + Lhs->str(Symbols) +
           ", " + Rhs->str(Symbols) + ")";
  case Node::Unknown:
    return "?";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// JumpFunction
//===----------------------------------------------------------------------===//

JumpFunction JumpFunction::constant(int64_t Value) {
  JumpFunction J;
  J.F = Form::Const;
  J.ConstValue = Value;
  return J;
}

JumpFunction JumpFunction::passThrough(SymbolId Sym) {
  JumpFunction J;
  J.F = Form::PassThrough;
  J.Pass = Sym;
  J.Support = {Sym};
  return J;
}

JumpFunction JumpFunction::polynomial(std::unique_ptr<JfExpr> Expr) {
  JumpFunction J;
  J.F = Form::Poly;
  J.Expr = std::move(Expr);
  J.Expr->collectSupport(J.Support);
  return J;
}

int64_t JumpFunction::constValue() const {
  assert(F == Form::Const && "constValue() on a non-constant jump function");
  return ConstValue;
}

JumpFunction JumpFunction::classify(JumpFunctionKind Kind, const VnExpr *E,
                                    bool IsLiteralOperand,
                                    bool AllowGated) {
  // Literal: a textual scan of the call site, no value numbering at all
  // (§3.1.1). It therefore misses constants that only gcp discovers and
  // all implicitly-passed globals.
  if (Kind == JumpFunctionKind::Literal) {
    if (IsLiteralOperand) {
      assert(E->isConst() && "literal operand must number to a constant");
      return constant(E->ConstValue);
    }
    return bottom();
  }

  // Every other kind starts from gcp(y, s): a value-numbered constant.
  if (E->isConst())
    return constant(E->ConstValue);
  if (Kind == JumpFunctionKind::IntraConst)
    return bottom();

  // Pass-through: an entry parameter transmitted unmodified (§3.1.3).
  if (E->isParam())
    return passThrough(E->Param);
  if (Kind == JumpFunctionKind::PassThrough)
    return bottom();

  // Polynomial: any opaque-free expression over the entry parameters
  // (§3.1.4).
  if (isParamExpr(E))
    return polynomial(JfExpr::fromVn(E));
  // Gated polynomial (§4.2): gamma arms may be unknowable as long as the
  // predicates are evaluable.
  if (AllowGated && isGatedParamExpr(E))
    return polynomial(JfExpr::fromVn(E, /*AllowGated=*/true));
  return bottom();
}

LatticeValue
JumpFunction::eval(const std::function<LatticeValue(SymbolId)> &Env) const {
  switch (F) {
  case Form::Bottom:
    return LatticeValue::bottom();
  case Form::Const:
    return LatticeValue::constant(ConstValue);
  case Form::PassThrough:
    return Env(Pass);
  case Form::Poly:
    return Expr->eval(Env);
  }
  return LatticeValue::bottom();
}

void JumpFunction::appendFingerprint(std::string &Out) const {
  switch (F) {
  case Form::Bottom:
    Out += 'B';
    return;
  case Form::Const:
    Out += 'C';
    Out += std::to_string(ConstValue);
    Out += ';';
    return;
  case Form::PassThrough:
    Out += 'P';
    Out += std::to_string(Pass);
    Out += ';';
    return;
  case Form::Poly:
    Out += 'Y';
    Expr->appendFingerprint(Out);
    return;
  }
}

std::string JumpFunction::str(const SymbolTable &Symbols) const {
  switch (F) {
  case Form::Bottom:
    return "_|_";
  case Form::Const:
    return std::to_string(ConstValue);
  case Form::PassThrough:
    return "passthrough(" + Symbols.symbol(Pass).Name + ")";
  case Form::Poly:
    return "poly(" + Expr->str(Symbols) + ")";
  }
  return "?";
}

JumpFunction JumpFunction::clone() const {
  JumpFunction J;
  J.F = F;
  J.ConstValue = ConstValue;
  J.Pass = Pass;
  if (Expr)
    J.Expr = Expr->clone();
  J.Support = Support;
  return J;
}
