//===- ipcp/JumpFunction.cpp - Forward and return jump functions ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/JumpFunction.h"

#include <cassert>
#include <charconv>

using namespace ipcp;

namespace {

/// Nesting bound for fingerprint parsing. Generated fingerprints nest
/// proportionally to source-expression depth, far below this; the bound
/// exists so a hostile summary file cannot overflow the parser's stack.
constexpr unsigned MaxFingerprintDepth = 200;

/// Consumes "<int64>;" (std::to_string form, as appendFingerprint emits).
bool consumeInt(std::string_view &T, int64_t &V, std::string &Error) {
  auto [Ptr, Ec] = std::from_chars(T.data(), T.data() + T.size(), V);
  if (Ec != std::errc()) {
    Error = "bad integer in fingerprint";
    return false;
  }
  T.remove_prefix(static_cast<size_t>(Ptr - T.data()));
  if (T.empty() || T.front() != ';') {
    Error = "missing ';' after integer in fingerprint";
    return false;
  }
  T.remove_prefix(1);
  return true;
}

/// Consumes an unsigned operator code (no sign, no delimiter).
bool consumeOpCode(std::string_view &T, unsigned &V, std::string &Error) {
  auto [Ptr, Ec] = std::from_chars(T.data(), T.data() + T.size(), V);
  if (Ec != std::errc() || Ptr == T.data()) {
    Error = "bad operator code in fingerprint";
    return false;
  }
  T.remove_prefix(static_cast<size_t>(Ptr - T.data()));
  return true;
}

bool expectChar(std::string_view &T, char C, std::string &Error) {
  if (T.empty() || T.front() != C) {
    Error = std::string("expected '") + C + "' in fingerprint";
    return false;
  }
  T.remove_prefix(1);
  return true;
}

/// Consumes "<symbol-id>;" with the SymbolId range check.
bool consumeSymbol(std::string_view &T, SymbolId &Sym, std::string &Error) {
  int64_t V = 0;
  if (!consumeInt(T, V, Error))
    return false;
  if (V < 0 || V >= static_cast<int64_t>(InvalidSymbol)) {
    Error = "symbol id out of range in fingerprint";
    return false;
  }
  Sym = static_cast<SymbolId>(V);
  return true;
}

} // namespace

const char *ipcp::jumpFunctionKindName(JumpFunctionKind Kind) {
  switch (Kind) {
  case JumpFunctionKind::Literal:
    return "literal";
  case JumpFunctionKind::IntraConst:
    return "intraprocedural";
  case JumpFunctionKind::PassThrough:
    return "pass-through";
  case JumpFunctionKind::Polynomial:
    return "polynomial";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// JfExpr
//===----------------------------------------------------------------------===//

std::unique_ptr<JfExpr> JfExpr::fromVn(const VnExpr *E, bool AllowGated) {
  assert(E && (AllowGated ? isGatedParamExpr(E) : isParamExpr(E)) &&
         "jump function expression must be evaluable");
  auto Out = std::make_unique<JfExpr>();
  switch (E->Kind) {
  case VnKind::Const:
    Out->Kind = Node::Const;
    Out->ConstValue = E->ConstValue;
    break;
  case VnKind::Param:
    Out->Kind = Node::Param;
    Out->Param = E->Param;
    break;
  case VnKind::CopyOf:
    Out->Kind = Node::Copy;
    Out->Param = E->Param;
    break;
  case VnKind::Unary:
    Out->Kind = Node::Unary;
    Out->UOp = E->UOp;
    Out->Lhs = fromVn(E->Lhs, AllowGated);
    break;
  case VnKind::Binary:
    Out->Kind = Node::Binary;
    Out->BOp = E->BOp;
    Out->Lhs = fromVn(E->Lhs, AllowGated);
    Out->Rhs = fromVn(E->Rhs, AllowGated);
    break;
  case VnKind::Gamma: {
    Out->Kind = Node::Gamma;
    Out->Cond = fromVn(E->Cond, AllowGated);
    auto arm = [&](const VnExpr *Arm) -> std::unique_ptr<JfExpr> {
      if (Arm->isOpaque()) {
        auto U = std::make_unique<JfExpr>();
        U->Kind = Node::Unknown;
        return U;
      }
      return fromVn(Arm, AllowGated);
    };
    Out->Lhs = arm(E->Lhs);
    Out->Rhs = arm(E->Rhs);
    break;
  }
  case VnKind::Opaque:
    assert(false && "unreachable: opacity checked above");
    break;
  }
  return Out;
}

std::unique_ptr<JfExpr> JfExpr::clone() const {
  auto Out = std::make_unique<JfExpr>();
  Out->Kind = Kind;
  Out->ConstValue = ConstValue;
  Out->Param = Param;
  Out->UOp = UOp;
  Out->BOp = BOp;
  if (Lhs)
    Out->Lhs = Lhs->clone();
  if (Rhs)
    Out->Rhs = Rhs->clone();
  if (Cond)
    Out->Cond = Cond->clone();
  return Out;
}

LatticeValue
JfExpr::eval(const std::function<LatticeValue(SymbolId)> &Env) const {
  switch (Kind) {
  case Node::Const:
    return LatticeValue::constant(ConstValue);
  case Node::Param:
  case Node::Copy:
    return Env(Param);
  case Node::Unary: {
    LatticeValue V = Lhs->eval(Env);
    if (V.isConst())
      return LatticeValue::constant(evalUnaryOp(UOp, V.value()));
    return V;
  }
  case Node::Binary: {
    LatticeValue L = Lhs->eval(Env);
    LatticeValue R = Rhs->eval(Env);
    if (L.isBottom() || R.isBottom())
      return LatticeValue::bottom();
    if (L.isTop() || R.isTop())
      return LatticeValue::top();
    int64_t Result;
    if (!evalBinaryOp(BOp, L.value(), R.value(), Result))
      return LatticeValue::bottom(); // Division by zero at evaluation.
    return LatticeValue::constant(Result);
  }
  case Node::Gamma: {
    LatticeValue C = Cond->eval(Env);
    if (C.isTop())
      return LatticeValue::top();
    if (C.isConst())
      return (C.value() != 0 ? Lhs : Rhs)->eval(Env);
    // Unknown predicate: sound to take the meet of both arms.
    return Lhs->eval(Env).meet(Rhs->eval(Env));
  }
  case Node::Unknown:
    return LatticeValue::bottom();
  }
  return LatticeValue::bottom();
}

void JfExpr::collectSupport(std::vector<SymbolId> &Support) const {
  switch (Kind) {
  case Node::Const:
    return;
  case Node::Param:
  case Node::Copy:
    for (SymbolId S : Support)
      if (S == Param)
        return;
    Support.push_back(Param);
    return;
  case Node::Unary:
    Lhs->collectSupport(Support);
    return;
  case Node::Binary:
    Lhs->collectSupport(Support);
    Rhs->collectSupport(Support);
    return;
  case Node::Gamma:
    Cond->collectSupport(Support);
    Lhs->collectSupport(Support);
    Rhs->collectSupport(Support);
    return;
  case Node::Unknown:
    return;
  }
}

void JfExpr::appendFingerprint(std::string &Out) const {
  switch (Kind) {
  case Node::Const:
    Out += 'c';
    Out += std::to_string(ConstValue);
    Out += ';';
    return;
  case Node::Param:
    Out += 'p';
    Out += std::to_string(Param);
    Out += ';';
    return;
  case Node::Copy:
    Out += 'k';
    Out += std::to_string(Param);
    Out += ';';
    return;
  case Node::Unary:
    Out += 'u';
    Out += std::to_string(static_cast<unsigned>(UOp));
    Out += '(';
    Lhs->appendFingerprint(Out);
    Out += ')';
    return;
  case Node::Binary:
    Out += 'b';
    Out += std::to_string(static_cast<unsigned>(BOp));
    Out += '(';
    Lhs->appendFingerprint(Out);
    Rhs->appendFingerprint(Out);
    Out += ')';
    return;
  case Node::Gamma:
    Out += "g(";
    Cond->appendFingerprint(Out);
    Lhs->appendFingerprint(Out);
    Rhs->appendFingerprint(Out);
    Out += ')';
    return;
  case Node::Unknown:
    Out += '?';
    return;
  }
}

std::unique_ptr<JfExpr> JfExpr::parseFingerprint(std::string_view &Text,
                                                std::string &Error) {
  return parseFp(Text, Error, 0);
}

std::unique_ptr<JfExpr> JfExpr::parseFp(std::string_view &T,
                                        std::string &Error, unsigned Depth) {
  if (Depth > MaxFingerprintDepth) {
    Error = "fingerprint expression nests too deep";
    return nullptr;
  }
  if (T.empty()) {
    Error = "truncated fingerprint expression";
    return nullptr;
  }
  char Tag = T.front();
  T.remove_prefix(1);
  auto Out = std::make_unique<JfExpr>();
  switch (Tag) {
  case 'c':
    Out->Kind = Node::Const;
    if (!consumeInt(T, Out->ConstValue, Error))
      return nullptr;
    return Out;
  case 'p':
    Out->Kind = Node::Param;
    if (!consumeSymbol(T, Out->Param, Error))
      return nullptr;
    return Out;
  case 'k':
    Out->Kind = Node::Copy;
    if (!consumeSymbol(T, Out->Param, Error))
      return nullptr;
    return Out;
  case 'u': {
    unsigned Op = 0;
    if (!consumeOpCode(T, Op, Error))
      return nullptr;
    if (Op > static_cast<unsigned>(UnaryOp::LogicalNot)) {
      Error = "unary operator code out of range in fingerprint";
      return nullptr;
    }
    Out->Kind = Node::Unary;
    Out->UOp = static_cast<UnaryOp>(Op);
    if (!expectChar(T, '(', Error))
      return nullptr;
    if (!(Out->Lhs = parseFp(T, Error, Depth + 1)))
      return nullptr;
    if (!expectChar(T, ')', Error))
      return nullptr;
    return Out;
  }
  case 'b': {
    unsigned Op = 0;
    if (!consumeOpCode(T, Op, Error))
      return nullptr;
    if (Op > static_cast<unsigned>(BinaryOp::LogicalOr)) {
      Error = "binary operator code out of range in fingerprint";
      return nullptr;
    }
    Out->Kind = Node::Binary;
    Out->BOp = static_cast<BinaryOp>(Op);
    if (!expectChar(T, '(', Error))
      return nullptr;
    if (!(Out->Lhs = parseFp(T, Error, Depth + 1)))
      return nullptr;
    if (!(Out->Rhs = parseFp(T, Error, Depth + 1)))
      return nullptr;
    if (!expectChar(T, ')', Error))
      return nullptr;
    return Out;
  }
  case 'g':
    Out->Kind = Node::Gamma;
    if (!expectChar(T, '(', Error))
      return nullptr;
    if (!(Out->Cond = parseFp(T, Error, Depth + 1)))
      return nullptr;
    if (!(Out->Lhs = parseFp(T, Error, Depth + 1)))
      return nullptr;
    if (!(Out->Rhs = parseFp(T, Error, Depth + 1)))
      return nullptr;
    if (!expectChar(T, ')', Error))
      return nullptr;
    return Out;
  case '?':
    Out->Kind = Node::Unknown;
    return Out;
  default:
    Error = std::string("unknown expression node tag '") + Tag +
            "' in fingerprint";
    return nullptr;
  }
}

std::string JfExpr::str(const SymbolTable &Symbols) const {
  switch (Kind) {
  case Node::Const:
    return std::to_string(ConstValue);
  case Node::Param:
    return Symbols.symbol(Param).Name;
  case Node::Copy:
    return "copy(" + Symbols.symbol(Param).Name + ")";
  case Node::Unary:
    return std::string(unaryOpSpelling(UOp)) + "(" + Lhs->str(Symbols) + ")";
  case Node::Binary:
    return "(" + Lhs->str(Symbols) + " " + binaryOpSpelling(BOp) + " " +
           Rhs->str(Symbols) + ")";
  case Node::Gamma:
    return "gamma(" + Cond->str(Symbols) + ", " + Lhs->str(Symbols) +
           ", " + Rhs->str(Symbols) + ")";
  case Node::Unknown:
    return "?";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// JumpFunction
//===----------------------------------------------------------------------===//

JumpFunction JumpFunction::constant(int64_t Value) {
  JumpFunction J;
  J.F = Form::Const;
  J.ConstValue = Value;
  return J;
}

JumpFunction JumpFunction::passThrough(SymbolId Sym) {
  JumpFunction J;
  J.F = Form::PassThrough;
  J.Pass = Sym;
  J.Support = {Sym};
  return J;
}

JumpFunction JumpFunction::polynomial(std::unique_ptr<JfExpr> Expr) {
  JumpFunction J;
  J.F = Form::Poly;
  J.Expr = std::move(Expr);
  J.Expr->collectSupport(J.Support);
  return J;
}

JumpFunction JumpFunction::copyOf(SymbolId Sym) {
  JumpFunction J;
  J.F = Form::Copy;
  J.Pass = Sym;
  J.Support = {Sym};
  return J;
}

int64_t JumpFunction::constValue() const {
  assert(F == Form::Const && "constValue() on a non-constant jump function");
  return ConstValue;
}

JumpFunction JumpFunction::classify(JumpFunctionKind Kind, const VnExpr *E,
                                    bool IsLiteralOperand,
                                    bool AllowGated) {
  // Literal: a textual scan of the call site, no value numbering at all
  // (§3.1.1). It therefore misses constants that only gcp discovers and
  // all implicitly-passed globals.
  if (Kind == JumpFunctionKind::Literal) {
    if (IsLiteralOperand) {
      assert(E->isConst() && "literal operand must number to a constant");
      return constant(E->ConstValue);
    }
    return bottom();
  }

  // Every other kind starts from gcp(y, s): a value-numbered constant.
  if (E->isConst())
    return constant(E->ConstValue);
  if (Kind == JumpFunctionKind::IntraConst)
    return bottom();

  // Pass-through: an entry parameter transmitted unmodified (§3.1.3).
  if (E->isParam())
    return passThrough(E->Param);
  // Copy lattice: an array cell proven to hold the entry value of one
  // caller parameter. CopyOf expressions only exist when the copy
  // propagation is on, so classic configurations are byte-unaffected.
  if (E->isCopyOf())
    return copyOf(E->Param);
  if (Kind == JumpFunctionKind::PassThrough)
    return bottom();

  // Polynomial: any opaque-free expression over the entry parameters
  // (§3.1.4).
  if (isParamExpr(E))
    return polynomial(JfExpr::fromVn(E));
  // Gated polynomial (§4.2): gamma arms may be unknowable as long as the
  // predicates are evaluable.
  if (AllowGated && isGatedParamExpr(E))
    return polynomial(JfExpr::fromVn(E, /*AllowGated=*/true));
  return bottom();
}

LatticeValue
JumpFunction::eval(const std::function<LatticeValue(SymbolId)> &Env) const {
  switch (F) {
  case Form::Bottom:
    return LatticeValue::bottom();
  case Form::Const:
    return LatticeValue::constant(ConstValue);
  case Form::PassThrough:
  case Form::Copy:
    return Env(Pass);
  case Form::Poly:
    return Expr->eval(Env);
  }
  return LatticeValue::bottom();
}

void JumpFunction::appendFingerprint(std::string &Out) const {
  switch (F) {
  case Form::Bottom:
    Out += 'B';
    return;
  case Form::Const:
    Out += 'C';
    Out += std::to_string(ConstValue);
    Out += ';';
    return;
  case Form::PassThrough:
    Out += 'P';
    Out += std::to_string(Pass);
    Out += ';';
    return;
  case Form::Copy:
    Out += 'K';
    Out += std::to_string(Pass);
    Out += ';';
    return;
  case Form::Poly:
    Out += 'Y';
    Expr->appendFingerprint(Out);
    return;
  }
}

bool JumpFunction::parseFingerprint(std::string_view Text, JumpFunction &Out,
                                    std::string &Error) {
  std::string_view T = Text;
  if (T.empty()) {
    Error = "empty jump-function fingerprint";
    return false;
  }
  char Tag = T.front();
  T.remove_prefix(1);
  JumpFunction Parsed;
  switch (Tag) {
  case 'B':
    break;
  case 'C': {
    int64_t V = 0;
    if (!consumeInt(T, V, Error))
      return false;
    Parsed = constant(V);
    break;
  }
  case 'P': {
    SymbolId Sym = InvalidSymbol;
    if (!consumeSymbol(T, Sym, Error))
      return false;
    Parsed = passThrough(Sym);
    break;
  }
  case 'K': {
    SymbolId Sym = InvalidSymbol;
    if (!consumeSymbol(T, Sym, Error))
      return false;
    Parsed = copyOf(Sym);
    break;
  }
  case 'Y': {
    auto E = JfExpr::parseFingerprint(T, Error);
    if (!E)
      return false;
    Parsed = polynomial(std::move(E));
    break;
  }
  default:
    Error = std::string("unknown jump-function form tag '") + Tag + "'";
    return false;
  }
  if (!T.empty()) {
    Error = "trailing bytes after jump-function fingerprint";
    return false;
  }
  Out = std::move(Parsed);
  return true;
}

std::string JumpFunction::str(const SymbolTable &Symbols) const {
  switch (F) {
  case Form::Bottom:
    return "_|_";
  case Form::Const:
    return std::to_string(ConstValue);
  case Form::PassThrough:
    return "passthrough(" + Symbols.symbol(Pass).Name + ")";
  case Form::Copy:
    return "copy(" + Symbols.symbol(Pass).Name + ")";
  case Form::Poly:
    return "poly(" + Expr->str(Symbols) + ")";
  }
  return "?";
}

JumpFunction JumpFunction::clone() const {
  JumpFunction J;
  J.F = F;
  J.ConstValue = ConstValue;
  J.Pass = Pass;
  if (Expr)
    J.Expr = Expr->clone();
  J.Support = Support;
  return J;
}
