//===- ipcp/Substitution.h - Constant substitution counting -----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 4 of the analyzer: recording the results. Following Metzger &
/// Stroud (paper §4.1), effectiveness is measured as the number of
/// constants actually substituted into the code — "known but irrelevant"
/// constants do not count. We count, uniformly for every configuration,
/// the source-level variable uses that the configuration proves to carry
/// a known constant (see DESIGN.md §3 "Metric"): an SCCP pass seeded with
/// the interprocedural CONSTANTS sets (or with BOTTOM for the purely
/// intraprocedural baseline) runs over each reachable procedure, and
/// every executable, substitutable use with a constant lattice value
/// counts once.
///
/// A use is *not* substitutable when it is a by-reference actual the
/// callee may modify — replacing the variable with a literal would break
/// the binding.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_SUBSTITUTION_H
#define IPCP_IPCP_SUBSTITUTION_H

#include "analysis/CallGraph.h"
#include "analysis/DeadCodeElim.h"
#include "analysis/ModRef.h"
#include "analysis/RefAlias.h"
#include "ipcp/JumpFunctionBuilder.h"
#include "ipcp/Solver.h"
#include "lang/AstPrinter.h"

#include <vector>

namespace ipcp {
class AnalysisSession;
class CopyPropInfo;
class FlowAliasInfo;

/// Outcome of the substitution pass over one program.
struct SubstitutionResult {
  /// Total substituted (constant-valued) variable uses.
  unsigned Total = 0;
  /// Per-procedure breakdown, indexed by ProcId.
  std::vector<unsigned> PerProc;
  /// VarRefExpr id -> constant, for emitting transformed source.
  SubstitutionMap Map;
  /// Branches proven constant by the seeded SCCP (input to DCE in the
  /// complete-propagation loop).
  DeadCodeElim::Decisions Branches;
  /// Executable print statements whose operand is a known constant — a
  /// transform-stable effectiveness metric (print sites survive
  /// procedure integration, unlike call-argument use sites).
  unsigned ConstantPrints = 0;
};

/// Runs the seeded-SCCP substitution pass.
///
/// \p Solve supplies the entry seeds (CONSTANTS sets); pass null for the
/// purely intraprocedural baseline (all entries BOTTOM). \p MRI controls
/// call kill sets (null = worst case). \p Jfs supplies return jump
/// functions for call-kill recovery; pass null to disable them.
/// \p Aliases supplies by-reference alias pairs; symbols it marks
/// unstable propagate as BOTTOM (null = no aliasing, only sound for
/// programs that never pass a modified variable by reference). With a
/// non-null \p FlowAliases the whole-procedure masks are replaced by
/// per-point dirty gating (analysis/FlowAlias.h): only reads at points
/// where an aliased store may have happened resolve to BOTTOM, so uses
/// of an aliased symbol before the first interfering store still count.
///
/// Each procedure's SCCP run is independent (it reads only the immutable
/// module and the frozen CONSTANTS sets), so with a non-null \p Pool the
/// procedures fan out across the workers; per-procedure partial results
/// are merged on the calling thread in the serial order, making the
/// outcome bit-identical to the serial run.
///
/// With a non-null \p Session each procedure's dominator tree and SSA
/// form come from the session's per-procedure cache (keyed by MOD
/// presence, which the kill oracle depends on) instead of being rebuilt;
/// the result is byte-identical either way.
///
/// With a non-null \p CopyFacts each procedure's SCCP run consumes the
/// copy-propagation facts (analysis/CopyProp.h): array loads whose cell
/// provably holds a literal or the (seeded) entry value of a stable
/// symbol resolve instead of going BOTTOM — the substitution-side half
/// of --copy.
SubstitutionResult countSubstitutions(const Module &M,
                                      const SymbolTable &Symbols,
                                      const CallGraph &CG,
                                      const SolveResult *Solve,
                                      const ModRefInfo *MRI,
                                      const ProgramJumpFunctions *Jfs,
                                      const RefAliasInfo *Aliases = nullptr,
                                      ThreadPool *Pool = nullptr,
                                      AnalysisSession *Session = nullptr,
                                      const FlowAliasInfo *FlowAliases =
                                          nullptr,
                                      const CopyPropInfo *CopyFacts =
                                          nullptr);

} // namespace ipcp

#endif // IPCP_IPCP_SUBSTITUTION_H
