//===- ipcp/Pipeline.cpp - Whole-program analysis driver ------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"

#include "analysis/CopyProp.h"
#include "ipcp/AnalysisSession.h"
#include "ir/CfgBuilder.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "support/Cancellation.h"
#include "support/FuzzFeedback.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <memory>
#include <string>

using namespace ipcp;

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds elapsed since \p Start; advances Start to now so callers
/// can chain phase measurements.
double lapMs(Clock::time_point &Start) {
  Clock::time_point Now = Clock::now();
  double Ms = std::chrono::duration<double, std::milli>(Now - Start).count();
  Start = Now;
  return Ms;
}

/// Feeds the run-level counters of a finished pipeline run into the
/// coverage sink (the per-lowering features were recorded live by the
/// solver). Timings are deliberately excluded: they are the one
/// nondeterministic part of a result.
void recordRunFeatures(FuzzFeedback *FB, const PipelineResult &R) {
  if (!FB)
    return;
  FB->hit(FuzzFeature::SolverProcVisits, R.SolverProcVisits);
  FB->hit(FuzzFeature::SolverJfEvaluations, R.SolverJfEvaluations);
  FB->hit(FuzzFeature::SolverCellLowerings, R.SolverCellLowerings);
  FB->hit(FuzzFeature::SolverMemoHits, R.SolverMemoHits);
  FB->hit(FuzzFeature::SolverMemoMisses, R.SolverMemoMisses);
  FB->hit(FuzzFeature::AliasPairs, R.AliasPairs);
  FB->hit(FuzzFeature::AliasUnstableSymbols, R.AliasUnstableSymbols);
  FB->hit(FuzzFeature::DceRounds, R.DceRounds);
  FB->hit(FuzzFeature::FoldedBranches, R.FoldedBranches);
  FB->hit(FuzzFeature::JfForwardConst, R.JfStats.NumForwardConst);
  FB->hit(FuzzFeature::JfForwardPassThrough,
          R.JfStats.NumForwardPassThrough);
  FB->hit(FuzzFeature::JfForwardPoly, R.JfStats.NumForwardPoly);
  FB->hit(FuzzFeature::JfForwardBottom, R.JfStats.NumForwardBottom);
  FB->hit(FuzzFeature::JfReturnConst, R.JfStats.NumReturnConst);
  FB->hit(FuzzFeature::JfReturnPoly, R.JfStats.NumReturnPoly);
  FB->hit(FuzzFeature::JfMaxPolySupport, R.JfStats.MaxPolySupport);
  FB->hit(FuzzFeature::SubstitutedConstants, R.SubstitutedConstants);
  FB->hit(FuzzFeature::KnownButIrrelevant, R.KnownButIrrelevant);
  FB->hit(FuzzFeature::NeverCalledProcs, R.NeverCalled.size());
}

} // namespace

PipelineResult ipcp::runPipelineOnSession(AnalysisSession &Session,
                                          const PipelineOptions &Opts) {
  return runPipelineOnSession(Session, Opts, nullptr);
}

PipelineResult
ipcp::runPipelineOnSession(AnalysisSession &Session,
                           const PipelineOptions &Opts,
                           const ProgramJumpFunctions *PreloadedJfs) {
  PipelineResult Result;
  AstContext &Ctx = Session.ast();
  const SymbolTable &Symbols = Session.symbols();
  const Program &Prog = Ctx.program();
  if (!Prog.entryProc()) {
    Result.Error = "program has no 'main' procedure";
    return Result;
  }
  if (PreloadedJfs && (Opts.CompletePropagation || Opts.IntraproceduralOnly)) {
    Result.Error = Opts.CompletePropagation
                       ? "preloaded jump functions cannot drive complete "
                         "propagation (its rounds rebuild them from a "
                         "mutated program)"
                       : "intraprocedural-only propagation uses no jump "
                         "functions to preload";
    return Result;
  }

  Clock::time_point RunStart = Clock::now();

  // The pool outlives the complete-propagation rounds, so its workers
  // are spawned once per pipeline run — or not at all when the caller
  // injects a shared one.
  std::unique_ptr<ThreadPool> OwnedPool;
  ThreadPool *Pool = Opts.Pool;
  if (!Pool && Opts.Threads != 1) {
    OwnedPool = std::make_unique<ThreadPool>(Opts.Threads);
    Pool = OwnedPool.get();
  }

  for (const auto &P : Prog.Procs)
    Result.ProcNames.push_back(P->name());
  Result.Constants.resize(Prog.Procs.size());
  Result.PerProcSubstituted.assign(Prog.Procs.size(), 0);

  // Complete propagation iterates the whole analysis; each round resets
  // every CONSTANTS cell to TOP and starts over on the DCE'd program
  // (paper §4.2). The bound is a safety net against a non-converging
  // propagate/DCE cycle; it must be a real runtime check (not an
  // assert) so a Release build reports the failure instead of looping
  // forever. The paper observed — and our tests assert — convergence
  // after a single DCE round.
  // Abandons a deadline-expired run. One lambda so every phase-boundary
  // poll reports identically.
  auto Abandon = [&Result] {
    Result.Ok = false;
    Result.Cancelled = true;
    Result.Error = "analysis cancelled (deadline expired)";
    return Result;
  };

  for (unsigned Round = 0;; ++Round) {
    if (Round > Opts.MaxDceRounds) {
      Result.Ok = false;
      Result.Error = "complete propagation failed to converge within " +
                     std::to_string(Opts.MaxDceRounds) +
                     " dead-code elimination rounds";
      return Result;
    }
    if (isCancelled(Opts.Cancel))
      return Abandon();

    Clock::time_point Phase = Clock::now();

    const Module &M = Session.module();
    const CallGraph &CG = Session.callGraph();

    const ModRefInfo *MRI = Session.modRef(Opts.UseMod);
    // By-reference aliasing is soundness, not a configuration: every
    // per-procedure analysis below must know which formals may share a
    // location with a modified global or sibling formal.
    const RefAliasInfo &Aliases = Session.refAlias(Opts.UseMod);
    Result.AliasPairs = Aliases.numAliasPairs();
    Result.AliasUnstableSymbols = Aliases.numUnstable();
    // Flow-sensitive mode refines (never widens) those baseline facts
    // with per-point dirty states; the baseline counts above stay, so
    // the table columns remain comparable across configurations.
    const FlowAliasInfo *FlowAliases = nullptr;
    if (Opts.FlowSensitiveAlias) {
      FlowAliases = &Session.flowAlias(Opts.UseMod);
      Result.AliasPointsRefined = FlowAliases->numRefinedPoints();
    }
    // Copy propagation strictly refines every configuration: loads the
    // copy lattice resolves stop reading as unknown in both the jump
    // functions and the substitution SCCP below.
    const CopyPropInfo *CopyFacts = nullptr;
    if (Opts.CopyPropagation) {
      CopyFacts = &Session.copyProp(Opts.UseMod);
      Result.CopyLoadsResolved = CopyFacts->numResolvedLoads();
    }
    Result.Timings.LowerMs += lapMs(Phase);

    ProgramJumpFunctions Jfs;
    const ProgramJumpFunctions *ActiveJfs = &Jfs;
    SolveResult Solve;
    bool UseRjfInSccp = false;
    if (!Opts.IntraproceduralOnly) {
      if (PreloadedJfs) {
        ActiveJfs = PreloadedJfs;
      } else {
        JumpFunctionOptions JfOpts;
        JfOpts.Kind = Opts.Kind;
        JfOpts.UseReturnJumpFunctions = Opts.UseReturnJumpFunctions;
        JfOpts.UseMod = Opts.UseMod;
        JfOpts.UseGatedSsa = Opts.UseGatedSsa;
        JfOpts.FlowSensitiveAlias = Opts.FlowSensitiveAlias;
        JfOpts.OptimisticVn = Opts.OptimisticVn;
        JfOpts.CopyPropagation = Opts.CopyPropagation;
        Jfs = buildJumpFunctions(M, Symbols, CG, MRI, JfOpts, &Aliases, Pool,
                                 &Session, FlowAliases, CopyFacts);
      }
      Result.Timings.JumpFunctionsMs += lapMs(Phase);
      if (isCancelled(Opts.Cancel))
        return Abandon();
      Solve = solveConstants(Symbols, CG, *ActiveJfs, Opts.Strategy,
                             Opts.Feedback, Opts.Cancel,
                             &Session.solverMemo());
      Result.Timings.SolveMs += lapMs(Phase);
      if (Solve.Cancelled)
        return Abandon();
      UseRjfInSccp = Opts.UseReturnJumpFunctions;
    }
    if (isCancelled(Opts.Cancel))
      return Abandon();

    SubstitutionResult Subs = countSubstitutions(
        M, Symbols, CG, Opts.IntraproceduralOnly ? nullptr : &Solve, MRI,
        UseRjfInSccp ? ActiveJfs : nullptr, &Aliases, Pool, &Session,
        FlowAliases, CopyFacts);
    Result.Timings.SubstituteMs += lapMs(Phase);

    bool FinalRound = true;
    if (Opts.CompletePropagation && !Subs.Branches.empty()) {
      std::vector<ProcId> Dirty;
      unsigned Folded = DeadCodeElim::run(Ctx, Subs.Branches, &Dirty);
      if (Folded != 0) {
        Result.FoldedBranches += Folded;
        ++Result.DceRounds;
        FinalRound = false;
        // Only the procedures DCE mutated are re-lowered next round; the
        // session drops everything derived from them.
        Session.invalidate(Dirty);
      }
    }
    if (!FinalRound)
      continue;

    // Record the results of the final round.
    Result.Ok = true;
    Result.SubstitutedConstants = Subs.Total;
    Result.ConstantPrints = Subs.ConstantPrints;
    Result.PerProcSubstituted = Subs.PerProc;
    Result.JfStats = ActiveJfs->Stats;
    Result.GvnPhiMerges = ActiveJfs->Stats.NumGvnPhiMerges;
    Result.CopyForwardJfs = ActiveJfs->Stats.NumForwardCopy;
    Result.SolverProcVisits = Solve.ProcVisits;
    Result.SolverJfEvaluations = Solve.JfEvaluations;
    Result.SolverCellLowerings = Solve.CellLowerings;
    Result.SolverMemoHits = Solve.MemoHits;
    Result.SolverMemoMisses = Solve.MemoMisses;

    if (!Opts.IntraproceduralOnly) {
      for (ProcId P = 0, E = static_cast<ProcId>(Prog.Procs.size()); P != E;
           ++P) {
        if (!CG.isReachable(P)) {
          Result.NeverCalled.push_back(Prog.Procs[P]->name());
          continue;
        }
        for (auto [Sym, Value] : Solve.constants(P)) {
          Result.Constants[P].push_back(
              {Symbols.symbol(Sym).Name, Value});
          // Metzger & Stroud's observation: many constant globals are
          // known on entry but never referenced by the procedure.
          if (MRI && Symbols.symbol(Sym).Kind == SymbolKind::Global &&
              !MRI->refs(P, Sym))
            ++Result.KnownButIrrelevant;
        }
      }
    }

    if (Opts.EmitTransformedSource) {
      AstPrinter Printer(&Subs.Map);
      Result.TransformedSource = Printer.programToString(Prog);
    }
    Result.Substitutions = std::move(Subs.Map);
    recordRunFeatures(Opts.Feedback, Result);
    Result.Timings.TotalMs +=
        std::chrono::duration<double, std::milli>(Clock::now() - RunStart)
            .count();
    return Result;
  }
}

PipelineResult ipcp::runPipelineOnAst(AstContext &Ctx,
                                      const SymbolTable &Symbols,
                                      const PipelineOptions &Opts) {
  AnalysisSession Session(Ctx, Symbols);
  return runPipelineOnSession(Session, Opts);
}

PipelineResult ipcp::runPipeline(std::string_view Source,
                                 const PipelineOptions &Opts) {
  Clock::time_point Start = Clock::now();
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols;
  if (!Diags.hasErrors())
    Symbols = Sema::run(*Ctx, Diags);
  if (Diags.hasErrors()) {
    PipelineResult Result;
    Result.Error = Diags.str();
    return Result;
  }
  double FrontendMs = lapMs(Start);
  PipelineResult Result = runPipelineOnAst(*Ctx, Symbols, Opts);
  Result.Timings.FrontendMs = FrontendMs;
  Result.Timings.TotalMs += FrontendMs;
  return Result;
}
