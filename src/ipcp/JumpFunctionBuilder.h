//===- ipcp/JumpFunctionBuilder.h - Jump function generation ----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the jump functions for a whole program, following the
/// paper's four-stage execution (§4.1):
///
///   1. return jump functions, in a bottom-up walk over the call graph
///      (SSA + value numbering per procedure, discarded afterwards);
///   2. forward jump functions for every call site, using the return
///      jump functions built in stage 1;
///   (stages 3 and 4 — propagation and recording — live in Solver and
///   Pipeline).
///
/// MOD information is a parameter: with UseMod=false the builder assumes
/// every call clobbers every global and by-reference actual — the
/// "without MOD" column of Table 3. Return jump functions are still
/// built in that mode (the paper's column 1 uses them), but their own
/// generation then also runs under worst-case kills, so only procedures
/// without calls keep precise ones; this reproduces the paper's
/// observation that "the presence of any call in a routine eliminated
/// potential constants along paths leaving the call site".
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_JUMPFUNCTIONBUILDER_H
#define IPCP_IPCP_JUMPFUNCTIONBUILDER_H

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "analysis/RefAlias.h"
#include "analysis/Sccp.h"
#include "ipcp/JumpFunction.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace ipcp {
class AnalysisSession;
class CopyPropInfo;
class FlowAliasInfo;
class ThreadPool;
}

namespace ipcp {

/// Configuration of one jump-function generation run.
struct JumpFunctionOptions {
  JumpFunctionKind Kind = JumpFunctionKind::Polynomial;
  /// Build and use return jump functions (§3.2).
  bool UseReturnJumpFunctions = true;
  /// Use interprocedural MOD summaries; false = worst-case call effects.
  bool UseMod = true;
  /// Build jump functions over gated SSA (paper §4.2): two-way join phis
  /// with evaluable predicates become gamma selectors, so constants
  /// behind statically-decidable branches propagate without iterated
  /// dead-code elimination. Only strengthens the polynomial kind.
  bool UseGatedSsa = false;
  /// Replace the whole-procedure by-reference alias masks with
  /// flow-/context-sensitive per-point gating (analysis/FlowAlias.h): a
  /// symbol in an alias pair only reads as Opaque at points where an
  /// aliased store may actually have happened. Strictly refines the
  /// baseline masking.
  bool FlowSensitiveAlias = false;
  /// Number values with Pai-style optimistic iteration instead of the
  /// pessimistic single pass: phis optimistically ignore not-yet-known
  /// inputs and re-evaluate to a fixpoint, recovering merges the single
  /// pass gives up on. Strictly refines the pessimistic numbering.
  bool OptimisticVn = false;
  /// Run the copy lattice (ipcp/CopyLattice.h, analysis/CopyProp.h):
  /// array loads whose cell provably holds a literal or the entry value
  /// of a stable parameter resolve instead of staying Opaque, and jump
  /// functions carry the recovered facts as Form::Copy / Copy leaves.
  /// Strictly refines every kind above IntraConst; byte-identical off.
  bool CopyPropagation = false;
};

/// Aggregate statistics over one generation run (feeds the §3.1.5 cost
/// discussion benches).
struct JumpFunctionStats {
  size_t NumForward = 0;
  size_t NumForwardConst = 0;
  size_t NumForwardPassThrough = 0;
  size_t NumForwardPoly = 0;
  size_t NumForwardBottom = 0;
  /// Copy propagation only: forward functions of Form::Copy.
  size_t NumForwardCopy = 0;
  size_t TotalPolySupport = 0;
  size_t MaxPolySupport = 0;
  size_t NumReturn = 0;
  size_t NumReturnConst = 0;
  size_t NumReturnPoly = 0;
  size_t NumReturnBottom = 0;
  /// Optimistic numbering only: phi merges that ignored an unavailable
  /// input and still converged to a non-Opaque value.
  size_t NumGvnPhiMerges = 0;

  /// Mean |support| over non-trivial polynomial forward jump functions;
  /// the paper observes this "approaches 1" in practice (§3.1.5).
  double avgPolySupport() const {
    return NumForwardPoly ? double(TotalPolySupport) / double(NumForwardPoly)
                          : 0.0;
  }
};

/// The jump functions of one call site.
struct CallSiteJumpFunctions {
  /// One forward jump function per callee formal, in parameter order.
  std::vector<JumpFunction> Args;
  /// One forward jump function per global scalar, parallel to
  /// SymbolTable::globalScalars() (globals are implicit parameters).
  std::vector<JumpFunction> Globals;
};

/// All jump functions of one program, plus evaluation helpers.
class ProgramJumpFunctions {
public:
  JumpFunctionOptions Options;

  /// PerSite[p] is parallel to CallGraph::callSitesIn(p); empty for
  /// procedures unreachable from the entry.
  std::vector<std::vector<CallSiteJumpFunctions>> PerSite;

  /// ReturnJfs[p] maps each symbol in MOD(p) (formals of p and globals)
  /// to its return jump function.
  std::vector<std::unordered_map<SymbolId, JumpFunction>> ReturnJfs;

  JumpFunctionStats Stats;

  /// The return jump function of \p Callee for callee-side symbol
  /// \p CalleeKey, or null.
  const JumpFunction *returnJf(ProcId Callee, SymbolId CalleeKey) const;

  /// Maps a killed caller-side symbol at \p Call to the callee-side key
  /// its return jump function is indexed by: the bound formal for a
  /// by-reference actual, the global itself otherwise. Returns nullopt
  /// for ambiguous bindings (a symbol passed twice, or a global that is
  /// also passed by reference), which are treated conservatively.
  static std::optional<SymbolId> calleeKeyForKill(const Instr &Call,
                                                  SymbolId Killed,
                                                  const SymbolTable &Symbols);
};

/// Runs stages 1 and 2. \p MRI must be non-null iff Opts.UseMod.
///
/// With a non-null \p Pool the per-procedure work (SSA, value numbering,
/// classification) runs across the pool's workers; the result is
/// bit-identical to the serial run. Stage 1's bottom-up dependency —
/// value numbering reads the return jump functions of callees built
/// earlier in CallGraph::bottomUpOrder(), and reads not-yet-built ones
/// as absent — is preserved by scheduling call-adjacent procedures into
/// ordered waves (see callAdjacencyWaves); stage 2 has no cross-procedure
/// dependency at all. Statistics are accumulated per procedure and folded
/// in the serial order.
/// \p Aliases supplies by-reference alias pairs (analysis/RefAlias.h);
/// the value numbering treats symbols it marks unstable as Opaque, so no
/// jump function transmits a value that an aliased store could rewrite.
/// Null means "no aliasing", only sound for programs that never pass a
/// modified variable by reference. With Opts.FlowSensitiveAlias,
/// \p FlowAliases must also be non-null; the numbering then gates only
/// the reads at dirty program points instead of masking whole symbols.
///
/// With a non-null \p Session the builder memoizes everything that does
/// not depend on the forward jump-function Kind: SSA comes from the
/// session's per-procedure cache, and the stage-1 return jump functions
/// plus the value numberings built along the way are computed once per
/// (UseMod, UseReturnJumpFunctions, UseGatedSsa, FlowSensitiveAlias,
/// OptimisticVn) and reused by every later configuration — stage 2 only
/// rebuilds the numbering of recursive procedures, whose stage-1
/// numbering saw an incomplete view of their SCC's return jump
/// functions. The result is byte-identical to the session-less build.
/// With Opts.CopyPropagation, \p CopyFacts must be non-null; value
/// numbering then resolves the loads the copy lattice proves.
ProgramJumpFunctions buildJumpFunctions(const Module &M,
                                        const SymbolTable &Symbols,
                                        const CallGraph &CG,
                                        const ModRefInfo *MRI,
                                        const JumpFunctionOptions &Opts,
                                        const RefAliasInfo *Aliases = nullptr,
                                        ThreadPool *Pool = nullptr,
                                        AnalysisSession *Session = nullptr,
                                        const FlowAliasInfo *FlowAliases =
                                            nullptr,
                                        const CopyPropInfo *CopyFacts =
                                            nullptr);

/// Partitions \p Order (a serial processing order over procedures) into
/// waves such that running each wave's members concurrently, with a
/// barrier between waves, observes exactly the serial schedule's
/// cross-procedure reads: for every call edge between two procedures, the
/// one later in \p Order lands in a strictly later wave, so the earlier
/// one's output is either fully built (earlier wave) or untouched (later
/// wave) whenever an adjacent procedure looks at it. Procedures not
/// call-adjacent carry no constraint and pack into early waves. Returned
/// waves hold indices into \p Order; concatenated they are a permutation
/// of it. Exposed for testing.
std::vector<std::vector<size_t>>
callAdjacencyWaves(const CallGraph &CG, const std::vector<ProcId> &Order);

/// Kill-value callback for ValueNumbering: evaluates the callee's return
/// jump function with the intraprocedural constants flowing into the
/// call (paper §3.2: "evaluated exactly twice at each call site").
KillValueFn makeVnKillFn(const ProgramJumpFunctions &Jfs,
                         const SymbolTable &Symbols);

/// Kill-value callback for Sccp: the same evaluation against lattice
/// values, used by the constant-substitution pass.
SccpKillFn makeSccpKillFn(const ProgramJumpFunctions &Jfs,
                          const SymbolTable &Symbols);

} // namespace ipcp

#endif // IPCP_IPCP_JUMPFUNCTIONBUILDER_H
