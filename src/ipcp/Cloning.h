//===- ipcp/Cloning.h - Constant-directed procedure cloning -----*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Goal-directed procedure cloning in the style of Metzger & Stroud
/// (paper reference [13]) and Cooper, Hall & Kennedy (reference [6]):
/// when distinct call sites pass *different* constants to the same
/// formal, the meet destroys them all. Cloning the procedure per
/// constant signature lets each clone keep its own CONSTANTS set; the
/// paper reports this "can substantially increase the number of
/// interprocedural constants available".
///
/// The transform is source-to-source and iterative: each round runs the
/// full analyzer, partitions every cloneable procedure's call sites by
/// the vector of constants their jump functions deliver, duplicates the
/// procedure per additional signature, retargets the calls, and
/// re-analyzes — cloning can cascade, so rounds repeat until a fixed
/// point or the budget.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_CLONING_H
#define IPCP_IPCP_CLONING_H

#include <string>
#include <string_view>

namespace ipcp {

/// Limits for one cloning run.
struct CloneOptions {
  unsigned MaxRounds = 4;
  unsigned MaxClones = 64;
};

/// Outcome of one cloning run.
struct CloneResult {
  bool Ok = false;
  std::string Error;
  /// The transformed program (original when nothing was cloned).
  std::string Source;
  unsigned ClonesCreated = 0;
  unsigned Rounds = 0;
};

/// Clones procedures of \p Source until every formal that can be made
/// constant by duplication is constant (or the budget runs out).
CloneResult cloneForConstants(std::string_view Source,
                              const CloneOptions &Opts = CloneOptions());

} // namespace ipcp

#endif // IPCP_IPCP_CLONING_H
