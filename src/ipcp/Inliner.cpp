//===- ipcp/Inliner.cpp - Procedure integration ---------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Inliner.h"

#include "analysis/CallGraph.h"
#include "ir/CfgBuilder.h"
#include "lang/AstPrinter.h"

#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace ipcp;

namespace {

/// True if any statement (recursively) is an early return.
bool containsReturn(const std::vector<Stmt *> &Stmts) {
  for (const Stmt *S : Stmts) {
    switch (S->kind()) {
    case StmtKind::Return:
      return true;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      if (containsReturn(I->thenBody()) || containsReturn(I->elseBody()))
        return true;
      break;
    }
    case StmtKind::While:
      if (containsReturn(cast<WhileStmt>(S)->body()))
        return true;
      break;
    case StmtKind::DoLoop:
      if (containsReturn(cast<DoLoopStmt>(S)->body()))
        return true;
      break;
    default:
      break;
    }
  }
  return false;
}

/// One procedure after integration: its (possibly spliced) body plus the
/// scalar/array locals accumulated from inlined callees.
struct IntegratedProc {
  std::vector<Stmt *> Body;
  std::vector<std::string> ExtraLocals;
  std::vector<std::pair<std::string, int64_t>> ExtraArrays;
  bool HasReturn = false;
};

class Inliner {
public:
  Inliner(const AstContext &Ctx, const SymbolTable &Symbols,
          const InlineOptions &Opts)
      : Prog(Ctx.program()), Symbols(Symbols), Opts(Opts) {}

  InlineResult run();

private:
  using NameMap = std::unordered_map<std::string, std::string>;

  std::string freshName(const std::string &Base) {
    return Base + "__i" + std::to_string(++Counter);
  }

  std::string substName(const NameMap &Subst, const std::string &Name) {
    auto It = Subst.find(Name);
    return It == Subst.end() ? Name : It->second;
  }

  Expr *cloneExpr(const Expr *E, const NameMap &Subst);
  VarRefExpr *cloneVarRef(const VarRefExpr *V, const NameMap &Subst);
  std::vector<Stmt *> cloneStmts(ProcId Host, const std::vector<Stmt *> &In,
                                 const NameMap &Subst);
  Stmt *cloneStmt(ProcId Host, const Stmt *S, const NameMap &Subst);

  /// Splices the integrated body of \p Callee in place of a call with
  /// (already-cloned) argument expressions \p Args, appending statements
  /// to \p Out.
  void spliceCall(ProcId Host, ProcId Callee, std::vector<Expr *> Args,
                  std::vector<Stmt *> &Out);

  bool shouldInline(ProcId Callee) const {
    return Done.at(Callee) && !Recursive.at(Callee) &&
           !Integrated.at(Callee).HasReturn && !BudgetExhausted;
  }

  const Program &Prog;
  const SymbolTable &Symbols;
  InlineOptions Opts;
  AstContext Work; ///< Owns every cloned node.
  std::vector<IntegratedProc> Integrated;
  std::vector<uint8_t> Recursive;
  std::vector<uint8_t> Done; ///< Procedure already integrated.
  size_t ClonedStmts = 0;
  bool BudgetExhausted = false;
  int Counter = 0;
  InlineResult Result;
};

VarRefExpr *Inliner::cloneVarRef(const VarRefExpr *V, const NameMap &Subst) {
  return Work.createExpr<VarRefExpr>(V->loc(), substName(Subst, V->name()));
}

Expr *Inliner::cloneExpr(const Expr *E, const NameMap &Subst) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Work.createExpr<IntLitExpr>(E->loc(),
                                       cast<IntLitExpr>(E)->value());
  case ExprKind::VarRef:
    return cloneVarRef(cast<VarRefExpr>(E), Subst);
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    return Work.createExpr<ArrayRefExpr>(A->loc(),
                                         substName(Subst, A->name()),
                                         cloneExpr(A->index(), Subst));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return Work.createExpr<UnaryExpr>(U->loc(), U->op(),
                                      cloneExpr(U->operand(), Subst));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Work.createExpr<BinaryExpr>(B->loc(), B->op(),
                                       cloneExpr(B->lhs(), Subst),
                                       cloneExpr(B->rhs(), Subst));
  }
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

void Inliner::spliceCall(ProcId Host, ProcId Callee,
                         std::vector<Expr *> Args,
                         std::vector<Stmt *> &Out) {
  ++Result.InlinedCalls;
  const Proc &CalleeProc = *Prog.Procs[Callee];
  const IntegratedProc &Body = Integrated[Callee];

  // Build the splice substitution: formals bind to variable actuals by
  // name (by-reference) or to fresh by-value temporaries; every
  // callee-local name gets a fresh identity.
  NameMap Subst;
  for (size_t I = 0; I != CalleeProc.formals().size(); ++I) {
    Expr *Actual = Args[I];
    if (auto *V = dyn_cast<VarRefExpr>(Actual)) {
      Subst[CalleeProc.formals()[I]] = V->name();
      continue;
    }
    // By-value: t = <actual>; formal -> t.
    std::string Temp = freshName(CalleeProc.formals()[I]);
    Integrated[Host].ExtraLocals.push_back(Temp);
    auto *Target = Work.createExpr<VarRefExpr>(Actual->loc(), Temp);
    Out.push_back(Work.createStmt<AssignStmt>(Actual->loc(), Target,
                                              Actual));
    ++ClonedStmts;
    Subst[CalleeProc.formals()[I]] = Temp;
  }
  for (const std::string &Local : CalleeProc.Locals) {
    std::string Fresh = freshName(Local);
    Subst[Local] = Fresh;
    Integrated[Host].ExtraLocals.push_back(Fresh);
  }
  for (const std::string &Local : Body.ExtraLocals) {
    std::string Fresh = freshName(Local);
    Subst[Local] = Fresh;
    Integrated[Host].ExtraLocals.push_back(Fresh);
  }
  for (const ArrayDecl &A : CalleeProc.LocalArrays) {
    std::string Fresh = freshName(A.Name);
    Subst[A.Name] = Fresh;
    Integrated[Host].ExtraArrays.push_back({Fresh, A.Size});
  }
  for (const auto &[Name, Size] : Body.ExtraArrays) {
    std::string Fresh = freshName(Name);
    Subst[Name] = Fresh;
    Integrated[Host].ExtraArrays.push_back({Fresh, Size});
  }

  for (Stmt *S : cloneStmts(Host, Body.Body, Subst))
    Out.push_back(S);
}

std::vector<Stmt *> Inliner::cloneStmts(ProcId Host,
                                        const std::vector<Stmt *> &In,
                                        const NameMap &Subst) {
  std::vector<Stmt *> Out;
  for (const Stmt *S : In) {
    if (S->kind() == StmtKind::Call) {
      const auto *C = cast<CallStmt>(S);
      std::vector<Expr *> Args;
      for (const Expr *Arg : C->args())
        Args.push_back(cloneExpr(Arg, Subst));
      if (ClonedStmts >= Opts.MaxProgramStmts)
        BudgetExhausted = true;
      if (shouldInline(C->callee())) {
        spliceCall(Host, C->callee(), std::move(Args), Out);
        continue;
      }
      if (Recursive.at(C->callee()))
        ++Result.SkippedRecursive;
      else if (Integrated.at(C->callee()).HasReturn)
        ++Result.SkippedHasReturn;
      else
        ++Result.SkippedBudget;
      auto *Kept = Work.createStmt<CallStmt>(C->loc(), C->calleeName(),
                                             std::move(Args));
      // The clone must stay resolved: an integrated body containing a
      // skipped call is itself spliced into callers, and that second
      // cloneStmts pass indexes Recursive/Integrated by callee() again.
      Kept->setCallee(C->callee());
      Out.push_back(Kept);
      ++ClonedStmts;
      continue;
    }
    Out.push_back(cloneStmt(Host, S, Subst));
  }
  return Out;
}

Stmt *Inliner::cloneStmt(ProcId Host, const Stmt *S, const NameMap &Subst) {
  ++ClonedStmts;
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    return Work.createStmt<AssignStmt>(A->loc(),
                                       cloneExpr(A->target(), Subst),
                                       cloneExpr(A->value(), Subst));
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    return Work.createStmt<IfStmt>(I->loc(), cloneExpr(I->cond(), Subst),
                                   cloneStmts(Host, I->thenBody(), Subst),
                                   cloneStmts(Host, I->elseBody(), Subst));
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    return Work.createStmt<WhileStmt>(W->loc(),
                                      cloneExpr(W->cond(), Subst),
                                      cloneStmts(Host, W->body(), Subst));
  }
  case StmtKind::DoLoop: {
    const auto *D = cast<DoLoopStmt>(S);
    return Work.createStmt<DoLoopStmt>(
        D->loc(), cloneVarRef(D->var(), Subst), cloneExpr(D->lo(), Subst),
        cloneExpr(D->hi(), Subst),
        D->step() ? cloneExpr(D->step(), Subst) : nullptr,
        cloneStmts(Host, D->body(), Subst));
  }
  case StmtKind::Print:
    return Work.createStmt<PrintStmt>(
        S->loc(), cloneExpr(cast<PrintStmt>(S)->value(), Subst));
  case StmtKind::Read:
    return Work.createStmt<ReadStmt>(
        S->loc(), cloneVarRef(cast<ReadStmt>(S)->target(), Subst));
  case StmtKind::Return:
    return Work.createStmt<ReturnStmt>(S->loc());
  case StmtKind::Call:
    assert(false && "calls handled by cloneStmts");
    return nullptr;
  }
  assert(false && "unknown statement kind");
  return nullptr;
}

InlineResult Inliner::run() {
  // Recursion facts come from the lowered call graph.
  Module M = buildModule(Prog, Symbols);
  CallGraph CG(M, Prog.entryProc().value_or(0));
  Recursive.assign(Prog.Procs.size(), 0);
  for (ProcId P = 0; P != Prog.Procs.size(); ++P)
    Recursive[P] = CG.isRecursive(P);

  Integrated.resize(Prog.Procs.size());
  for (ProcId P = 0; P != Prog.Procs.size(); ++P)
    Integrated[P].HasReturn = containsReturn(Prog.Procs[P]->Body);

  // Integrate bottom-up so every callee body is already fully inlined
  // when its callers splice it; unreachable procedures are integrated
  // afterwards (splicing only already-integrated callees).
  Done.assign(Prog.Procs.size(), 0);
  for (ProcId P : CG.bottomUpOrder()) {
    Integrated[P].Body = cloneStmts(P, Prog.Procs[P]->Body, NameMap());
    Done[P] = 1;
  }
  for (ProcId P = 0; P != Prog.Procs.size(); ++P)
    if (!Done[P]) {
      Integrated[P].Body = cloneStmts(P, Prog.Procs[P]->Body, NameMap());
      Done[P] = 1;
    }

  // Render the transformed program.
  std::ostringstream OS;
  if (!Prog.Name.empty())
    OS << "program " << Prog.Name << "\n";
  for (const GlobalDecl &G : Prog.Globals) {
    OS << "global " << G.Name;
    if (G.Init)
      OS << " = " << *G.Init;
    OS << "\n";
  }
  for (const ArrayDecl &A : Prog.GlobalArrays)
    OS << "array " << A.Name << "(" << A.Size << ")\n";

  AstPrinter Printer;
  for (ProcId P = 0; P != Prog.Procs.size(); ++P) {
    const Proc &Pr = *Prog.Procs[P];
    OS << "\nproc " << Pr.name() << "(";
    for (size_t I = 0; I != Pr.formals().size(); ++I)
      OS << (I ? ", " : "") << Pr.formals()[I];
    OS << ")\n";
    std::vector<std::string> Locals = Pr.Locals;
    Locals.insert(Locals.end(), Integrated[P].ExtraLocals.begin(),
                  Integrated[P].ExtraLocals.end());
    if (!Locals.empty()) {
      OS << "  integer ";
      for (size_t I = 0; I != Locals.size(); ++I)
        OS << (I ? ", " : "") << Locals[I];
      OS << "\n";
    }
    for (const ArrayDecl &A : Pr.LocalArrays)
      OS << "  array " << A.Name << "(" << A.Size << ")\n";
    for (const auto &[Name, Size] : Integrated[P].ExtraArrays)
      OS << "  array " << Name << "(" << Size << ")\n";
    for (const Stmt *S : Integrated[P].Body)
      Printer.printStmt(S, OS, 1);
    OS << "end\n";
  }

  Result.Source = OS.str();
  return std::move(Result);
}

} // namespace

InlineResult ipcp::inlineProgram(const AstContext &Ctx,
                                 const SymbolTable &Symbols,
                                 const InlineOptions &Opts) {
  Inliner I(Ctx, Symbols, Opts);
  return I.run();
}
