//===- ipcp/Pipeline.h - Whole-program analysis driver ----------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the public API: runs the complete analyzer over MiniFort
/// source under one configuration and reports everything the paper's
/// experiments measure. Every column of Tables 2 and 3 is one
/// PipelineOptions setting:
///
///   Table 2: Kind x UseReturnJumpFunctions (UseMod on)
///   Table 3: {Polynomial, no MOD} / {Polynomial, MOD} /
///            {Polynomial, MOD, CompletePropagation} /
///            {IntraproceduralOnly}
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_PIPELINE_H
#define IPCP_IPCP_PIPELINE_H

#include "ipcp/JumpFunctionBuilder.h"
#include "ipcp/Solver.h"
#include "ipcp/Substitution.h"
#include "lang/Sema.h"

#include <string>
#include <string_view>
#include <vector>

namespace ipcp {
class AnalysisSession;
class CancelToken;
class FuzzFeedback;
class ThreadPool;

/// One analyzer configuration.
struct PipelineOptions {
  /// Which forward jump function to build (§3.1).
  JumpFunctionKind Kind = JumpFunctionKind::Polynomial;
  /// Build/use return jump functions (§3.2).
  bool UseReturnJumpFunctions = true;
  /// Use interprocedural MOD summaries (Table 3 toggles this).
  bool UseMod = true;
  /// Iterate {propagate, dead-code eliminate, reset to TOP} to a fixed
  /// point — the paper's "complete propagation" (Table 3, column 3).
  /// Mutates the AST.
  bool CompletePropagation = false;
  /// Skip the interprocedural phases entirely: SCCP per procedure with
  /// BOTTOM entries but MOD-aware call effects (Table 3, column 4).
  bool IntraproceduralOnly = false;
  /// Build jump functions over gated SSA (paper §4.2); an alternative to
  /// CompletePropagation that needs no iteration.
  bool UseGatedSsa = false;
  /// Flow-/context-sensitive by-reference aliasing (analysis/FlowAlias.h)
  /// instead of whole-procedure unstable masks: aliased symbols only read
  /// as unknown at points where an aliased store may actually have
  /// happened. Never loses a constant relative to the baseline.
  bool FlowSensitiveAlias = false;
  /// Pai-style optimistic iterative value numbering instead of the
  /// pessimistic single pass: phi merges ignore unavailable inputs and
  /// iterate to a fixpoint. Never loses a constant relative to the
  /// pessimistic pass.
  bool OptimisticVn = false;
  /// Interprocedural copy propagation (ipcp/CopyLattice.h,
  /// analysis/CopyProp.h): array loads whose cell provably holds a
  /// literal or the entry value of a stable parameter resolve instead of
  /// staying unknown, and jump functions carry the recovered facts as
  /// copy forms through call sites, returns, and globals. Never loses a
  /// constant relative to the same configuration without it.
  bool CopyPropagation = false;
  /// Convergence bound for CompletePropagation: the maximum number of
  /// propagate/DCE rounds before the pipeline gives up with Result.Error
  /// set (a real runtime check, not an assertion — it must hold in
  /// Release builds too). The paper observed convergence after a single
  /// round; the default is a generous safety net.
  unsigned MaxDceRounds = 16;
  /// Fixpoint strategy for the interprocedural solver.
  SolverStrategy Strategy = SolverStrategy::Worklist;
  /// Also render the transformed source with constants substituted.
  bool EmitTransformedSource = false;
  /// Worker threads for the per-procedure phases (SSA, value numbering,
  /// jump-function generation, substitution counting). 1 = serial; 0 =
  /// one per hardware thread. The interprocedural solver's fixpoint
  /// always runs serially, and results are bit-identical at any count
  /// (see README "Threading model").
  unsigned Threads = 1;
  /// Externally owned worker pool. When set, the pipeline fans out over
  /// this pool instead of spawning its own and Threads is ignored — the
  /// suite runner injects one shared pool so N cells don't create N
  /// pools (hardware oversubscription). Must outlive the run.
  ThreadPool *Pool = nullptr;
  /// Optional analyzer-behavior coverage sink (support/FuzzFeedback.h).
  /// The solver records per-lowering features into it and the pipeline
  /// adds its run-level counters; the coverage-guided fuzzer uses the
  /// resulting bitmap for corpus retention. Never changes any result.
  /// Must outlive the run. Only meaningful for serial runs (the sink is
  /// not thread-safe; the phases that record are serial anyway).
  FuzzFeedback *Feedback = nullptr;
  /// Optional cooperative cancellation (support/Cancellation.h). Polled
  /// at every phase boundary, at every complete-propagation round, and
  /// inside the solver's fixpoint loops; an expired token abandons the
  /// run with Result.Cancelled set (the analysis server's per-request
  /// deadline machinery). Must outlive the run.
  const CancelToken *Cancel = nullptr;
};

/// Wall-clock cost of each pipeline phase, in milliseconds. Accumulated
/// across complete-propagation rounds. The only PipelineResult fields
/// that legitimately vary between reruns or thread counts.
struct PhaseTimings {
  double FrontendMs = 0;      ///< Parse + sema (runPipeline entry only).
  double LowerMs = 0;         ///< CFG lowering + call graph + MOD/REF.
  double JumpFunctionsMs = 0; ///< Stages 1 and 2 (parallelizable).
  double SolveMs = 0;         ///< Interprocedural fixpoint (serial).
  double SubstituteMs = 0;    ///< Seeded SCCP + counting (parallelizable).
  double TotalMs = 0;         ///< Everything, including DCE and printing.
};

/// Everything one run reports.
struct PipelineResult {
  bool Ok = false;
  /// Diagnostics text when !Ok.
  std::string Error;
  /// True when the run was abandoned because PipelineOptions::Cancel
  /// expired (deadline or explicit cancel). Ok is false and every other
  /// field is partial/meaningless.
  bool Cancelled = false;

  /// The paper's headline metric: constants substituted into the code.
  unsigned SubstitutedConstants = 0;
  /// Executable prints with a known constant operand (transform-stable
  /// effectiveness metric; see comparison_wz).
  unsigned ConstantPrints = 0;
  /// CONSTANTS entries for globals the procedure never references —
  /// "known but irrelevant" in Metzger & Stroud's terms (§4.1), the very
  /// reason the paper counts substitutions rather than set sizes.
  unsigned KnownButIrrelevant = 0;
  /// Per-procedure breakdown, indexed by ProcId.
  std::vector<unsigned> PerProcSubstituted;
  /// Procedure names, indexed by ProcId.
  std::vector<std::string> ProcNames;
  /// CONSTANTS(p) rendered as (symbol name, value), per procedure.
  std::vector<std::vector<std::pair<std::string, int64_t>>> Constants;
  /// Procedures never invoked (all VAL cells remained TOP).
  std::vector<std::string> NeverCalled;

  /// Complete propagation: how many DCE rounds ran (0 when the first
  /// propagation already found no foldable branch) and how many branches
  /// they folded.
  unsigned DceRounds = 0;
  unsigned FoldedBranches = 0;

  JumpFunctionStats JfStats;
  unsigned SolverProcVisits = 0;
  unsigned SolverJfEvaluations = 0;
  unsigned SolverCellLowerings = 0;
  /// Value-context memo effectiveness (see SolveResult::MemoHits):
  /// procedure visits served by replaying recorded evaluations.
  /// SolverJfEvaluations includes the replayed ones, so it stays the
  /// comparable effort metric with or without memoization. 64-bit and
  /// warmth-dependent: a warm session's shared memo legitimately hits
  /// more than a cold run's, so these two fields — alone in a
  /// PipelineResult besides Timings — are excluded from determinism
  /// fingerprints and rendered replies.
  uint64_t SolverMemoHits = 0;
  uint64_t SolverMemoMisses = 0;

  /// By-reference aliasing (analysis/RefAlias.h): distinct may-alias
  /// pairs found, and (procedure, symbol) entries the analyses had to
  /// treat as unknowable because an aliased store could rewrite them.
  size_t AliasPairs = 0;
  size_t AliasUnstableSymbols = 0;
  /// FlowSensitiveAlias only: (instruction point, symbol) facts the
  /// baseline masked but the flow-sensitive analysis proved clean.
  size_t AliasPointsRefined = 0;
  /// OptimisticVn only: phi merges the pessimistic pass would have given
  /// up on that converged to a usable value (JfStats.NumGvnPhiMerges).
  size_t GvnPhiMerges = 0;
  /// CopyPropagation only: array loads the copy lattice resolved to a
  /// literal or a stable symbol's entry value, program-wide under the
  /// active MOD setting (analysis/CopyProp.h).
  size_t CopyLoadsResolved = 0;
  /// CopyPropagation only: forward jump functions classified Form::Copy
  /// (JfStats.NumForwardCopy).
  size_t CopyForwardJfs = 0;

  /// VarRefExpr id -> proven constant, for every substituted use. Keyed
  /// on the analyzed AST, so only meaningful to callers that hold it
  /// (runPipelineOnAst users and the examples).
  SubstitutionMap Substitutions;

  /// Transformed source (only when EmitTransformedSource).
  std::string TransformedSource;

  /// Per-phase wall-clock timings. Excluded from determinism
  /// comparisons — every other field is bit-identical across thread
  /// counts and solver strategies.
  PhaseTimings Timings;
};

/// Parses, checks, and analyzes \p Source under \p Opts.
PipelineResult runPipeline(std::string_view Source,
                           const PipelineOptions &Opts);

/// Runs the analysis phases over an already-checked program. Mutates the
/// AST when Opts.CompletePropagation. Exposed for the driver and tests.
/// Constructs a fresh AnalysisSession internally; use
/// runPipelineOnSession to share caches across configurations.
PipelineResult runPipelineOnAst(AstContext &Ctx, const SymbolTable &Symbols,
                                const PipelineOptions &Opts);

/// Runs the analysis phases against a (possibly shared, possibly warm)
/// AnalysisSession. Lowered IR, call graph, MOD/REF, SSA, and the
/// configuration-independent jump-function base come from the session's
/// caches; the result is byte-identical to a cold runPipelineOnAst
/// (timings excepted). Configurations that never mutate the AST
/// (!CompletePropagation) may share one session concurrently; complete
/// propagation mutates the session's AST and invalidates its caches, so
/// it requires a session no other run is using (the suite runner gives
/// it a private clone of the program).
PipelineResult runPipelineOnSession(AnalysisSession &Session,
                                    const PipelineOptions &Opts);

/// Like runPipelineOnSession, but stage 2 comes from \p PreloadedJfs —
/// typically a reconstituted summary (ipcp/SummaryIO.h) — instead of
/// being built; solve, substitution, and reporting are identical, so the
/// result is byte-identical to a local run whose builder produced the
/// same jump functions. The preloaded functions must match Opts' jump
/// function configuration (the summary loader checks that) and the AST
/// they were built from. Fails with a diagnostic under
/// CompletePropagation (its DCE rounds rebuild jump functions from a
/// mutated AST) and IntraproceduralOnly (no jump functions at all).
PipelineResult runPipelineOnSession(AnalysisSession &Session,
                                    const PipelineOptions &Opts,
                                    const ProgramJumpFunctions *PreloadedJfs);

} // namespace ipcp

#endif // IPCP_IPCP_PIPELINE_H
