//===- ipcp/Lattice.h - The constant propagation lattice --------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-level constant propagation lattice of the paper's Figure 1:
/// TOP (no information yet / never executed), a constant value c, and
/// BOTTOM (not provably constant). The lattice is infinite but has
/// bounded depth: any value can be lowered at most twice, which is what
/// bounds the interprocedural propagation time (paper §2, §3.1.5).
///
/// Header-only so both the intraprocedural SCCP engine and the
/// interprocedural solver share one definition.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_LATTICE_H
#define IPCP_IPCP_LATTICE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace ipcp {

/// One element of the constant propagation lattice.
class LatticeValue {
public:
  enum Kind : uint8_t { Top, Const, Bottom };

  /// Default-constructs TOP, the initial optimistic approximation.
  LatticeValue() = default;

  static LatticeValue top() { return LatticeValue(); }
  static LatticeValue bottom() {
    LatticeValue V;
    V.K = Bottom;
    return V;
  }
  static LatticeValue constant(int64_t Value) {
    LatticeValue V;
    V.K = Const;
    V.Value = Value;
    return V;
  }

  Kind kind() const { return K; }
  bool isTop() const { return K == Top; }
  bool isConst() const { return K == Const; }
  bool isBottom() const { return K == Bottom; }

  int64_t value() const {
    assert(K == Const && "value() on a non-constant lattice element");
    return Value;
  }

  /// The meet operation of Figure 1:
  ///   any ^ TOP = any,  any ^ BOTTOM = BOTTOM,
  ///   ci ^ cj = ci if ci == cj, else BOTTOM.
  LatticeValue meet(const LatticeValue &Other) const {
    if (isTop())
      return Other;
    if (Other.isTop())
      return *this;
    if (isBottom() || Other.isBottom())
      return bottom();
    return Value == Other.Value ? *this : bottom();
  }

  bool operator==(const LatticeValue &Other) const {
    if (K != Other.K)
      return false;
    return K != Const || Value == Other.Value;
  }
  bool operator!=(const LatticeValue &Other) const {
    return !(*this == Other);
  }

  /// Renders as "T", "_|_", or the constant.
  std::string str() const {
    switch (K) {
    case Top:
      return "T";
    case Bottom:
      return "_|_";
    case Const:
      return std::to_string(Value);
    }
    return "?";
  }

private:
  Kind K = Top;
  int64_t Value = 0;
};

} // namespace ipcp

#endif // IPCP_IPCP_LATTICE_H
