//===- ipcp/AnalysisSession.h - Incremental per-program caches --*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An AnalysisSession owns every analysis artifact derivable from one
/// checked program — lowered IR, call graph, MOD/REF and alias
/// summaries, per-procedure SSA and value numberings, and the
/// configuration-independent "base" of a jump-function build — and hands
/// them out memoized, so that
///
///   * the thirteen suite configurations of one program share one frontend,
///     one Module, and one SSA/VN per (procedure, UseMod) instead of
///     rebuilding them per cell (Tables 2/3 rerun the same programs);
///   * complete-propagation rounds re-lower only the procedures the
///     dead-code eliminator actually mutated (its dirty-set), via
///     invalidate();
///   * the expensive stage-1 value numberings (Pai: GVN dominates the
///     analysis cost) are reused by stage 2 and by later configurations
///     whenever provably identical to a fresh build.
///
/// The cache-validity reasoning, enforced by the cold-vs-warm
/// fingerprint tests:
///
///   * SSA depends on (Function, SymbolTable, kill oracle); the oracle
///     depends only on whether MOD summaries are in use, so slots are
///     keyed (ProcId, UseMod).
///   * A jump-function base — stage-1 return jump functions plus the
///     value numberings built along the way — depends on
///     (UseMod, UseReturnJumpFunctions, UseGatedSsa, FlowSensitiveAlias,
///     OptimisticVn) but NOT on the forward jump-function kind, which
///     only classifies stage-2 output.
///   * A stage-1 value numbering equals a stage-2 rebuild only for
///     non-recursive procedures (bottom-up order guarantees their
///     callees' return jump functions were complete); recursive ones are
///     rebuilt per configuration (JumpFunctionBuilder enforces this).
///   * invalidate() keeps only the lowered Functions of clean
///     procedures: a mutated body can change MOD sets, and through them
///     the kill sets — hence SSA — of every caller, so everything
///     downstream of lowering is dropped wholesale.
///
/// Read accessors are thread-safe (the shared-suite runner analyzes one
/// session from many cells concurrently); invalidate() and ast() require
/// exclusive use, which the complete-propagation loop — the only mutator
/// — provides by running on a private clone of the program.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IPCP_ANALYSISSESSION_H
#define IPCP_IPCP_ANALYSISSESSION_H

#include "analysis/CallGraph.h"
#include "analysis/CopyProp.h"
#include "analysis/FlowAlias.h"
#include "analysis/ModRef.h"
#include "analysis/RefAlias.h"
#include "analysis/ValueNumbering.h"
#include "ipcp/JumpFunctionBuilder.h"
#include "ipcp/ValueContextMemo.h"
#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/Ssa.h"
#include "lang/Ast.h"
#include "lang/Sema.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace ipcp {

/// Snapshot of a session's cache-effectiveness counters (plain values;
/// the live counters are atomics). Feeds BENCH_suite.json and the cache
/// tests.
struct SessionStats {
  uint64_t ProcsLowered = 0;   ///< buildFunction calls (initial + re-lowers).
  uint64_t ProcsRelowered = 0; ///< Subset rebuilt after an invalidate().
  uint64_t SsaBuilt = 0;       ///< SSA bundles constructed.
  uint64_t SsaReused = 0;      ///< ssa() calls served from the cache.
  uint64_t VnBuilt = 0;        ///< Value numberings constructed.
  uint64_t VnReused = 0;       ///< Stage-2 uses of a cached numbering.
  uint64_t JfBasesBuilt = 0;   ///< Jump-function bases constructed.
  uint64_t JfBasesReused = 0;  ///< jfBase() calls served from the cache.
  uint64_t SolverMemoHits = 0;   ///< Value-context memo replays (all solves).
  uint64_t SolverMemoMisses = 0; ///< Contexts evaluated fresh (all solves).
};

/// Memoizing home of every analysis artifact of one checked program.
class AnalysisSession {
public:
  /// The session keeps references to both arguments; they must outlive
  /// it, and \p Ctx must already be checked by Sema against \p Symbols.
  AnalysisSession(AstContext &Ctx, const SymbolTable &Symbols);
  ~AnalysisSession();

  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  /// The analyzed program. Mutating it (DCE) requires exclusive use and
  /// a matching invalidate() before the next analysis read.
  AstContext &ast() { return Ctx; }
  const SymbolTable &symbols() const { return Symbols; }

  /// The lowered Module, rebuilding only procedures with no current
  /// Function (initially: all; after invalidate(Dirty): Dirty only).
  const Module &module();

  /// The call graph of module() (built on demand).
  const CallGraph &callGraph();

  /// MOD/REF summaries, or null when \p UseMod is false — matching the
  /// "MRI present iff UseMod" contract of the analysis passes.
  const ModRefInfo *modRef(bool UseMod);

  /// By-reference alias summaries under the given MOD setting.
  const RefAliasInfo &refAlias(bool UseMod);

  /// Flow-/context-sensitive alias facts under the given MOD setting
  /// (analysis/FlowAlias.h), built on first use over the baseline
  /// summaries of the same setting.
  const FlowAliasInfo &flowAlias(bool UseMod);

  /// Copy-propagation facts (analysis/CopyProp.h) under the given MOD
  /// setting, built on first use over the MOD and baseline alias
  /// summaries of the same setting.
  const CopyPropInfo &copyProp(bool UseMod);

  /// The call kill oracle under the given MOD setting.
  const SsaForm::KillOracle &killOracle(bool UseMod);

  /// Dominator tree + SSA of one procedure (SSA retains references to
  /// both the Function and the tree it was built over).
  struct SsaBundle {
    DominatorTree DT;
    SsaForm Ssa;
    SsaBundle(const Function &F, const SymbolTable &Symbols,
              const SsaForm::KillOracle &Kills)
        : DT(F), Ssa(F, Symbols, DT, Kills) {}
  };

  /// The SSA bundle of \p P under the given MOD setting, built on first
  /// use.
  const SsaBundle &ssa(ProcId P, bool UseMod);

  /// A cached value numbering and the arena backing its expressions.
  struct VnBundle {
    VnContext Ctx;
    std::optional<ValueNumbering> VN;
  };

  /// The configuration-independent base of a jump-function build: the
  /// stage-1 return jump functions (Skeleton.ReturnJfs, with stage-1
  /// stats in Skeleton.Stats) and the per-procedure value numberings
  /// whose reuse is provably sound (null entries must be rebuilt).
  struct JfBase {
    ProgramJumpFunctions Skeleton;
    std::vector<std::unique_ptr<VnBundle>> Vn;
  };

  /// The base keyed by (UseMod, UseReturnJumpFunctions, UseGatedSsa,
  /// FlowSensitiveAlias, OptimisticVn, CopyPropagation) of \p Opts,
  /// running \p Build under the cache lock on first use.
  const JfBase &jfBase(const JumpFunctionOptions &Opts,
                       const std::function<void(JfBase &)> &Build);

  /// The session-shared value-context memo: every solve over this
  /// session records and replays jump-function evaluations here, so warm
  /// suite cells and repeat serve requests (same program, different
  /// config) reuse each other's contexts. Thread-safe; cleared by
  /// invalidate().
  ValueContextMemo &solverMemo() { return VcMemo; }

  /// Drops every artifact invalidated by a structural change to the
  /// procedures in \p Dirty (typically DeadCodeElim's dirty-set): their
  /// lowered Functions, plus all derived analyses of every procedure
  /// (see file comment). Requires exclusive use of the session.
  void invalidate(const std::vector<ProcId> &Dirty);

  /// Snapshot of the cache counters.
  SessionStats stats() const;

  /// Live counters, bumped by the session and by JumpFunctionBuilder's
  /// cached stage 2.
  struct Counters {
    std::atomic<uint64_t> ProcsLowered{0};
    std::atomic<uint64_t> ProcsRelowered{0};
    std::atomic<uint64_t> SsaBuilt{0};
    std::atomic<uint64_t> SsaReused{0};
    std::atomic<uint64_t> VnBuilt{0};
    std::atomic<uint64_t> VnReused{0};
    std::atomic<uint64_t> JfBasesBuilt{0};
    std::atomic<uint64_t> JfBasesReused{0};
  };
  Counters &counters() { return C; }

private:
  /// Callers hold CoreMutex.
  const Module &moduleLocked();
  const ModRefInfo *modRefLocked(bool UseMod);
  const SsaForm::KillOracle &killOracleLocked(bool UseMod);

  AstContext &Ctx;
  const SymbolTable &Symbols;
  const size_t NumProcs;

  /// Guards the module and the whole-program summaries below.
  std::mutex CoreMutex;
  Module Mod;
  bool AllLowered = false;
  bool EverInvalidated = false;
  std::optional<CallGraph> CG;
  bool MriBuilt = false;
  std::optional<ModRefInfo> Mri;
  std::optional<RefAliasInfo> Aliases[2];    // [UseMod]
  std::optional<FlowAliasInfo> FlowAliases[2];   // [UseMod]
  std::optional<CopyPropInfo> CopyProps[2];      // [UseMod]
  std::optional<SsaForm::KillOracle> Oracles[2]; // [UseMod]

  /// Per-(procedure, UseMod) SSA slots; each has its own lock so
  /// concurrent cells build distinct procedures in parallel.
  struct SsaSlot {
    std::mutex M;
    std::unique_ptr<SsaBundle> B;
  };
  std::unique_ptr<SsaSlot[]> SsaSlots;

  /// Jump-function bases keyed (UseMod << 5) | (UseRjf << 4) |
  /// (Gated << 3) | (Fsa << 2) | (Ogvn << 1) | Copy.
  std::mutex JfMutex;
  std::unique_ptr<JfBase> JfBases[64];

  ValueContextMemo VcMemo;

  Counters C;
};

} // namespace ipcp

#endif // IPCP_IPCP_ANALYSISSESSION_H
