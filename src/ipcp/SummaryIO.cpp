//===- ipcp/SummaryIO.cpp - Serializable jump-function summaries ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/SummaryIO.h"

#include "ipcp/AnalysisSession.h"
#include "serve/Json.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

using namespace ipcp;

uint64_t ipcp::summarySourceHash(std::string_view Source) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Source) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

bool ipcp::sameJumpFunctionOptions(const JumpFunctionOptions &A,
                                   const JumpFunctionOptions &B) {
  return A.Kind == B.Kind &&
         A.UseReturnJumpFunctions == B.UseReturnJumpFunctions &&
         A.UseMod == B.UseMod && A.UseGatedSsa == B.UseGatedSsa &&
         A.FlowSensitiveAlias == B.FlowSensitiveAlias &&
         A.OptimisticVn == B.OptimisticVn &&
         A.CopyPropagation == B.CopyPropagation;
}

const char *ipcp::jumpFunctionKindToken(JumpFunctionKind K) {
  switch (K) {
  case JumpFunctionKind::Literal:
    return "literal";
  case JumpFunctionKind::IntraConst:
    return "intra";
  case JumpFunctionKind::PassThrough:
    return "pass";
  case JumpFunctionKind::Polynomial:
    return "poly";
  }
  return "?";
}

bool ipcp::parseJumpFunctionKindToken(const std::string &Token,
                                      JumpFunctionKind &Out) {
  for (JumpFunctionKind K :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraConst,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial})
    if (Token == jumpFunctionKindToken(K)) {
      Out = K;
      return true;
    }
  return false;
}

namespace {

const char *kindToken(JumpFunctionKind K) {
  return jumpFunctionKindToken(K);
}

bool parseKindToken(const std::string &S, JumpFunctionKind &Out) {
  return parseJumpFunctionKindToken(S, Out);
}

std::string hex64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool parseHex64(const std::string &S, uint64_t &V) {
  if (S.size() != 16)
    return false;
  auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), V, 16);
  return Ec == std::errc() && Ptr == S.data() + S.size();
}

std::string fingerprintOf(const JumpFunction &J) {
  std::string Fp;
  J.appendFingerprint(Fp);
  return Fp;
}

void tallyForward(const JumpFunction &J, JumpFunctionStats &S) {
  ++S.NumForward;
  switch (J.form()) {
  case JumpFunction::Form::Bottom:
    ++S.NumForwardBottom;
    break;
  case JumpFunction::Form::Const:
    ++S.NumForwardConst;
    break;
  case JumpFunction::Form::PassThrough:
    ++S.NumForwardPassThrough;
    break;
  case JumpFunction::Form::Poly:
    ++S.NumForwardPoly;
    S.TotalPolySupport += J.support().size();
    S.MaxPolySupport = std::max(S.MaxPolySupport, J.support().size());
    break;
  case JumpFunction::Form::Copy:
    ++S.NumForwardCopy;
    break;
  }
}

JsonValue statsJson(const JumpFunctionStats &S) {
  JsonValue J = JsonValue::object();
  J.set("forward", uint64_t(S.NumForward));
  J.set("forward_const", uint64_t(S.NumForwardConst));
  J.set("forward_pass", uint64_t(S.NumForwardPassThrough));
  J.set("forward_poly", uint64_t(S.NumForwardPoly));
  J.set("forward_bottom", uint64_t(S.NumForwardBottom));
  // Elided at zero so pre-copy summaries keep their exact byte layout
  // (the stats block is compared as a dumped string on load).
  if (S.NumForwardCopy)
    J.set("forward_copy", uint64_t(S.NumForwardCopy));
  J.set("poly_support_total", uint64_t(S.TotalPolySupport));
  J.set("poly_support_max", uint64_t(S.MaxPolySupport));
  J.set("returns", uint64_t(S.NumReturn));
  J.set("return_const", uint64_t(S.NumReturnConst));
  J.set("return_poly", uint64_t(S.NumReturnPoly));
  J.set("return_bottom", uint64_t(S.NumReturnBottom));
  return J;
}

/// Exact-key-set check: serialization never emits unknown members, so a
/// loader that meets one is reading a different (or corrupted) schema.
bool checkKeys(const JsonValue &Obj, std::initializer_list<const char *> Keys,
               const char *What, std::string &Error) {
  for (const auto &[K, V] : Obj.members()) {
    (void)V;
    if (std::find_if(Keys.begin(), Keys.end(), [&](const char *Want) {
          return K == Want;
        }) == Keys.end()) {
      Error = std::string("unknown ") + What + " field '" + K + "'";
      return false;
    }
  }
  for (const char *Want : Keys)
    if (!Obj.find(Want)) {
      Error = std::string("missing ") + What + " field '" + Want + "'";
      return false;
    }
  return true;
}

/// checkKeys with an extra set of keys that may be absent. The precision
/// flags ride on this: a pre-precision (v1-layout) summary omits them and
/// parses to the defaults, a precision-era summary spells them out, and
/// any *other* unknown field still rejects.
bool checkKeysOpt(const JsonValue &Obj,
                  std::initializer_list<const char *> Required,
                  std::initializer_list<const char *> Optional,
                  const char *What, std::string &Error) {
  for (const auto &[K, V] : Obj.members()) {
    (void)V;
    auto Known = [&](std::initializer_list<const char *> Keys) {
      return std::find_if(Keys.begin(), Keys.end(), [&](const char *Want) {
               return K == Want;
             }) != Keys.end();
    };
    if (!Known(Required) && !Known(Optional)) {
      Error = std::string("unknown ") + What + " field '" + K + "'";
      return false;
    }
  }
  for (const char *Want : Required)
    if (!Obj.find(Want)) {
      Error = std::string("missing ") + What + " field '" + Want + "'";
      return false;
    }
  return true;
}

/// Reads an optional boolean member, defaulting to false when absent.
bool parseOptBool(const JsonValue &Obj, const char *Key, bool &Out,
                  const char *What, std::string &Error) {
  const JsonValue *B = Obj.find(Key);
  if (!B) {
    Out = false;
    return true;
  }
  if (!B->isBool()) {
    Error = std::string(What) + "." + Key + " must be a boolean";
    return false;
  }
  Out = B->boolean();
  return true;
}

bool parseJf(const JsonValue &V, JumpFunction &Out, const char *What,
             std::string &Error) {
  if (!V.isString()) {
    Error = std::string(What) + " must be a fingerprint string";
    return false;
  }
  std::string FpError;
  if (!JumpFunction::parseFingerprint(V.str(), Out, FpError)) {
    Error = std::string("bad ") + What + ": " + FpError;
    return false;
  }
  return true;
}

} // namespace

JumpFunctionStats ipcp::summaryStats(const ProgramSummary &S) {
  JumpFunctionStats Out;
  for (const ProcSummary &P : S.Procs) {
    for (const CallSiteJumpFunctions &Site : P.Sites) {
      for (const JumpFunction &J : Site.Args)
        tallyForward(J, Out);
      for (const JumpFunction &J : Site.Globals)
        tallyForward(J, Out);
    }
    for (const auto &[Sym, J] : P.Returns) {
      (void)Sym;
      ++Out.NumReturn;
      switch (J.form()) {
      case JumpFunction::Form::Const:
        ++Out.NumReturnConst;
        break;
      case JumpFunction::Form::Poly:
        ++Out.NumReturnPoly;
        break;
      case JumpFunction::Form::Bottom:
        ++Out.NumReturnBottom;
        break;
      case JumpFunction::Form::Copy:
        // Matches the builder: a copy-form return counts as polynomial.
        ++Out.NumReturnPoly;
        break;
      case JumpFunction::Form::PassThrough:
        break; // Counted in NumReturn only.
      }
    }
  }
  return Out;
}

std::string ipcp::serializeSummary(const ProgramSummary &S) {
  JsonValue Doc = JsonValue::object();
  Doc.set("format", "ipcp-jf-summary");
  Doc.set("version", SummaryFormatVersion);
  Doc.set("program", S.Program);
  Doc.set("source_fnv", hex64(S.SourceHash));

  JsonValue Cfg = JsonValue::object();
  Cfg.set("jf", kindToken(S.Options.Kind));
  Cfg.set("rjf", JsonValue(S.Options.UseReturnJumpFunctions));
  Cfg.set("mod", JsonValue(S.Options.UseMod));
  Cfg.set("gsa", JsonValue(S.Options.UseGatedSsa));
  // Precision flags are elided at their defaults so summaries of
  // pre-precision configurations stay byte-identical to the v1 layout.
  if (S.Options.FlowSensitiveAlias)
    Cfg.set("fsa", JsonValue(true));
  if (S.Options.OptimisticVn)
    Cfg.set("ogvn", JsonValue(true));
  if (S.Options.CopyPropagation)
    Cfg.set("copy", JsonValue(true));
  Doc.set("config", std::move(Cfg));

  Doc.set("num_procs", uint64_t(S.NumProcs));
  Doc.set("num_globals", uint64_t(S.NumGlobals));

  JsonValue Procs = JsonValue::array();
  for (const ProcSummary &P : S.Procs) {
    JsonValue PJ = JsonValue::object();
    PJ.set("id", uint64_t(P.Proc));
    PJ.set("name", P.Name);
    JsonValue Sites = JsonValue::array();
    for (const CallSiteJumpFunctions &Site : P.Sites) {
      JsonValue SJ = JsonValue::object();
      JsonValue Args = JsonValue::array();
      for (const JumpFunction &J : Site.Args)
        Args.push(fingerprintOf(J));
      JsonValue Globals = JsonValue::array();
      for (const JumpFunction &J : Site.Globals)
        Globals.push(fingerprintOf(J));
      SJ.set("args", std::move(Args));
      SJ.set("globals", std::move(Globals));
      Sites.push(std::move(SJ));
    }
    PJ.set("sites", std::move(Sites));
    JsonValue Returns = JsonValue::array();
    for (const auto &[Sym, J] : P.Returns) {
      JsonValue Pair = JsonValue::array();
      Pair.push(uint64_t(Sym));
      Pair.push(fingerprintOf(J));
      Returns.push(std::move(Pair));
    }
    PJ.set("returns", std::move(Returns));
    JsonValue Unstable = JsonValue::array();
    for (SymbolId Sym : P.AliasUnstable)
      Unstable.push(uint64_t(Sym));
    PJ.set("alias_unstable", std::move(Unstable));
    Procs.push(std::move(PJ));
  }
  Doc.set("procs", std::move(Procs));
  Doc.set("stats", statsJson(summaryStats(S)));
  return Doc.dump();
}

bool ipcp::parseSummary(std::string_view Text, ProgramSummary &Out,
                        std::string &Error) {
  std::optional<JsonValue> Doc = parseJson(Text, Error);
  if (!Doc) {
    Error = "summary is not valid JSON: " + Error;
    return false;
  }
  if (!Doc->isObject()) {
    Error = "summary must be a JSON object";
    return false;
  }
  if (!checkKeys(*Doc,
                 {"format", "version", "program", "source_fnv", "config",
                  "num_procs", "num_globals", "procs", "stats"},
                 "summary", Error))
    return false;

  const JsonValue *Format = Doc->find("format");
  if (!Format->isString() || Format->str() != "ipcp-jf-summary") {
    Error = "not an ipcp jump-function summary (bad 'format')";
    return false;
  }
  const JsonValue *Version = Doc->find("version");
  if (!Version->isInt() || Version->integer() != SummaryFormatVersion) {
    Error = "summary format version mismatch (got " +
            (Version->isInt() ? std::to_string(Version->integer())
                              : std::string("non-integer")) +
            ", want " + std::to_string(SummaryFormatVersion) + ")";
    return false;
  }

  ProgramSummary S;
  const JsonValue *Program = Doc->find("program");
  if (!Program->isString() || Program->str().empty()) {
    Error = "summary 'program' must be a non-empty string";
    return false;
  }
  S.Program = Program->str();

  const JsonValue *Fnv = Doc->find("source_fnv");
  if (!Fnv->isString() || !parseHex64(Fnv->str(), S.SourceHash)) {
    Error = "summary 'source_fnv' must be a 16-digit hex string";
    return false;
  }

  const JsonValue *Cfg = Doc->find("config");
  if (!Cfg->isObject()) {
    Error = "summary 'config' must be an object";
    return false;
  }
  if (!checkKeysOpt(*Cfg, {"jf", "rjf", "mod", "gsa"},
                    {"fsa", "ogvn", "copy"}, "config", Error))
    return false;
  const JsonValue *Jf = Cfg->find("jf");
  if (!Jf->isString() || !parseKindToken(Jf->str(), S.Options.Kind)) {
    Error = "config.jf must be literal|intra|pass|poly";
    return false;
  }
  for (const char *Key : {"rjf", "mod", "gsa"}) {
    const JsonValue *B = Cfg->find(Key);
    if (!B->isBool()) {
      Error = std::string("config.") + Key + " must be a boolean";
      return false;
    }
  }
  S.Options.UseReturnJumpFunctions = Cfg->find("rjf")->boolean();
  S.Options.UseMod = Cfg->find("mod")->boolean();
  S.Options.UseGatedSsa = Cfg->find("gsa")->boolean();
  if (!parseOptBool(*Cfg, "fsa", S.Options.FlowSensitiveAlias, "config",
                    Error) ||
      !parseOptBool(*Cfg, "ogvn", S.Options.OptimisticVn, "config", Error) ||
      !parseOptBool(*Cfg, "copy", S.Options.CopyPropagation, "config", Error))
    return false;

  const JsonValue *NumProcs = Doc->find("num_procs");
  const JsonValue *NumGlobals = Doc->find("num_globals");
  if (!NumProcs->isInt() || NumProcs->integer() < 0 || !NumGlobals->isInt() ||
      NumGlobals->integer() < 0) {
    Error = "summary proc/global counts must be non-negative integers";
    return false;
  }
  S.NumProcs = size_t(NumProcs->integer());
  S.NumGlobals = size_t(NumGlobals->integer());

  const JsonValue *Procs = Doc->find("procs");
  if (!Procs->isArray()) {
    Error = "summary 'procs' must be an array";
    return false;
  }
  int64_t PrevId = -1;
  for (const JsonValue &PJ : Procs->elements()) {
    if (!PJ.isObject()) {
      Error = "summary procedure entries must be objects";
      return false;
    }
    if (!checkKeys(PJ, {"id", "name", "sites", "returns", "alias_unstable"},
                   "procedure", Error))
      return false;
    ProcSummary P;
    const JsonValue *Id = PJ.find("id");
    if (!Id->isInt() || Id->integer() <= PrevId ||
        Id->integer() >= int64_t(S.NumProcs)) {
      Error = "procedure ids must be ascending and below num_procs";
      return false;
    }
    PrevId = Id->integer();
    P.Proc = ProcId(Id->integer());
    const JsonValue *Name = PJ.find("name");
    if (!Name->isString() || Name->str().empty()) {
      Error = "procedure 'name' must be a non-empty string";
      return false;
    }
    P.Name = Name->str();

    const JsonValue *Sites = PJ.find("sites");
    if (!Sites->isArray()) {
      Error = "procedure 'sites' must be an array";
      return false;
    }
    for (const JsonValue &SJ : Sites->elements()) {
      if (!SJ.isObject()) {
        Error = "call-site entries must be objects";
        return false;
      }
      if (!checkKeys(SJ, {"args", "globals"}, "site", Error))
        return false;
      CallSiteJumpFunctions Site;
      const JsonValue *Args = SJ.find("args");
      const JsonValue *Globals = SJ.find("globals");
      if (!Args->isArray() || !Globals->isArray()) {
        Error = "site 'args'/'globals' must be arrays";
        return false;
      }
      for (const JsonValue &V : Args->elements()) {
        JumpFunction J;
        if (!parseJf(V, J, "argument jump function", Error))
          return false;
        Site.Args.push_back(std::move(J));
      }
      if (Globals->elements().size() != S.NumGlobals) {
        Error = "site global jump-function count disagrees with num_globals";
        return false;
      }
      for (const JsonValue &V : Globals->elements()) {
        JumpFunction J;
        if (!parseJf(V, J, "global jump function", Error))
          return false;
        Site.Globals.push_back(std::move(J));
      }
      P.Sites.push_back(std::move(Site));
    }

    const JsonValue *Returns = PJ.find("returns");
    if (!Returns->isArray()) {
      Error = "procedure 'returns' must be an array";
      return false;
    }
    int64_t PrevSym = -1;
    for (const JsonValue &Pair : Returns->elements()) {
      if (!Pair.isArray() || Pair.elements().size() != 2 ||
          !Pair.elements()[0].isInt()) {
        Error = "return entries must be [symbol-id, fingerprint] pairs";
        return false;
      }
      int64_t Sym = Pair.elements()[0].integer();
      if (Sym <= PrevSym || Sym < 0 || Sym >= int64_t(InvalidSymbol)) {
        Error = "return symbol ids must be ascending and in range";
        return false;
      }
      PrevSym = Sym;
      JumpFunction J;
      if (!parseJf(Pair.elements()[1], J, "return jump function", Error))
        return false;
      P.Returns.emplace_back(SymbolId(Sym), std::move(J));
    }

    const JsonValue *Unstable = PJ.find("alias_unstable");
    if (!Unstable->isArray()) {
      Error = "procedure 'alias_unstable' must be an array";
      return false;
    }
    PrevSym = -1;
    for (const JsonValue &V : Unstable->elements()) {
      if (!V.isInt() || V.integer() <= PrevSym ||
          V.integer() >= int64_t(InvalidSymbol)) {
        Error = "alias_unstable ids must be ascending symbol ids";
        return false;
      }
      PrevSym = V.integer();
      P.AliasUnstable.push_back(SymbolId(V.integer()));
    }
    S.Procs.push_back(std::move(P));
  }

  // The stats block is a structural checksum: recompute from what we
  // parsed and require agreement, so content corruption that still
  // parses (a dropped procedure, a swapped fingerprint file) is caught.
  const JsonValue *Stats = Doc->find("stats");
  if (!Stats->isObject()) {
    Error = "summary 'stats' must be an object";
    return false;
  }
  std::string Expect = statsJson(summaryStats(S)).dump();
  if (Stats->dump() != Expect) {
    Error = "summary stats disagree with content (corrupted or hand-edited "
            "summary)";
    return false;
  }

  Out = std::move(S);
  return true;
}

ProgramSummary ipcp::makeSummary(std::string ProgramName, uint64_t SourceHash,
                                 const Module &M, const SymbolTable &Symbols,
                                 const CallGraph &CG,
                                 const ProgramJumpFunctions &Jfs,
                                 const RefAliasInfo *Aliases,
                                 const std::vector<ProcId> &Procs) {
  ProgramSummary S;
  S.Program = std::move(ProgramName);
  S.SourceHash = SourceHash;
  S.Options = Jfs.Options;
  S.NumProcs = CG.numProcs();
  S.NumGlobals = Symbols.globalScalars().size();

  std::vector<ProcId> Cover = Procs;
  if (Cover.empty())
    for (ProcId P = 0; P < S.NumProcs; ++P)
      Cover.push_back(P);
  std::sort(Cover.begin(), Cover.end());

  for (ProcId P : Cover) {
    ProcSummary PS;
    PS.Proc = P;
    PS.Name = M.function(P).name();
    for (const CallSiteJumpFunctions &Site : Jfs.PerSite.at(P)) {
      CallSiteJumpFunctions Copy;
      for (const JumpFunction &J : Site.Args)
        Copy.Args.push_back(J.clone());
      for (const JumpFunction &J : Site.Globals)
        Copy.Globals.push_back(J.clone());
      PS.Sites.push_back(std::move(Copy));
    }
    for (const auto &[Sym, J] : Jfs.ReturnJfs.at(P))
      PS.Returns.emplace_back(Sym, J.clone());
    std::sort(PS.Returns.begin(), PS.Returns.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    if (Aliases) {
      const std::vector<uint8_t> &Mask = Aliases->unstableMask(P);
      for (SymbolId Sym = 0; Sym < Mask.size(); ++Sym)
        if (Mask[Sym])
          PS.AliasUnstable.push_back(Sym);
    }
    S.Procs.push_back(std::move(PS));
  }
  return S;
}

ProgramSummary ipcp::buildSummary(AnalysisSession &Session,
                                  const JumpFunctionOptions &Opts,
                                  std::string ProgramName, uint64_t SourceHash,
                                  ThreadPool *Pool) {
  const Module &M = Session.module();
  const CallGraph &CG = Session.callGraph();
  const ModRefInfo *MRI = Session.modRef(Opts.UseMod);
  const RefAliasInfo &Aliases = Session.refAlias(Opts.UseMod);
  const FlowAliasInfo *FlowAliases =
      Opts.FlowSensitiveAlias ? &Session.flowAlias(Opts.UseMod) : nullptr;
  const CopyPropInfo *CopyFacts =
      Opts.CopyPropagation ? &Session.copyProp(Opts.UseMod) : nullptr;
  ProgramJumpFunctions Jfs =
      buildJumpFunctions(M, Session.symbols(), CG, MRI, Opts, &Aliases, Pool,
                         &Session, FlowAliases, CopyFacts);
  return makeSummary(std::move(ProgramName), SourceHash, M, Session.symbols(),
                     CG, Jfs, &Aliases);
}

bool ipcp::mergeSummaries(std::vector<ProgramSummary> Parts,
                          ProgramSummary &Out, std::string &Error) {
  if (Parts.empty()) {
    Error = "no summary parts to merge";
    return false;
  }
  ProgramSummary Merged;
  const ProgramSummary &First = Parts.front();
  Merged.Program = First.Program;
  Merged.SourceHash = First.SourceHash;
  Merged.Options = First.Options;
  Merged.NumProcs = First.NumProcs;
  Merged.NumGlobals = First.NumGlobals;

  std::vector<int> Owner(Merged.NumProcs, -1);
  for (size_t I = 0; I < Parts.size(); ++I) {
    ProgramSummary &Part = Parts[I];
    if (Part.Program != Merged.Program) {
      Error = "part " + std::to_string(I) + " summarizes program '" +
              Part.Program + "', not '" + Merged.Program + "'";
      return false;
    }
    if (Part.SourceHash != Merged.SourceHash) {
      Error = "part " + std::to_string(I) +
              " was built from different source text (hash mismatch)";
      return false;
    }
    if (!sameJumpFunctionOptions(Part.Options, Merged.Options)) {
      Error = "part " + std::to_string(I) +
              " was built under a different configuration";
      return false;
    }
    if (Part.NumProcs != Merged.NumProcs ||
        Part.NumGlobals != Merged.NumGlobals) {
      Error = "part " + std::to_string(I) + " disagrees on program shape";
      return false;
    }
    for (ProcSummary &P : Part.Procs) {
      if (P.Proc >= Merged.NumProcs) {
        Error = "part " + std::to_string(I) + " covers out-of-range procedure";
        return false;
      }
      if (Owner[P.Proc] >= 0) {
        Error = "procedure '" + P.Name + "' (id " + std::to_string(P.Proc) +
                ") appears in parts " + std::to_string(Owner[P.Proc]) +
                " and " + std::to_string(I) + " — overlapping partition";
        return false;
      }
      Owner[P.Proc] = int(I);
      Merged.Procs.push_back(std::move(P));
    }
  }
  for (ProcId P = 0; P < Merged.NumProcs; ++P)
    if (Owner[P] < 0) {
      Error = "no part covers procedure id " + std::to_string(P) +
              " — gapped partition";
      return false;
    }
  std::sort(Merged.Procs.begin(), Merged.Procs.end(),
            [](const ProcSummary &A, const ProcSummary &B) {
              return A.Proc < B.Proc;
            });
  Out = std::move(Merged);
  return true;
}

bool ipcp::reconstituteJumpFunctions(const ProgramSummary &S, const Module &M,
                                     const SymbolTable &Symbols,
                                     const CallGraph &CG,
                                     ProgramJumpFunctions &Out,
                                     std::string &Error) {
  if (!S.complete()) {
    Error = "summary of '" + S.Program + "' is partial (" +
            std::to_string(S.Procs.size()) + " of " +
            std::to_string(S.NumProcs) + " procedures); merge before solving";
    return false;
  }
  if (S.NumProcs != CG.numProcs()) {
    Error = "summary procedure count (" + std::to_string(S.NumProcs) +
            ") disagrees with the loaded program (" +
            std::to_string(CG.numProcs()) + ")";
    return false;
  }
  if (S.NumGlobals != Symbols.globalScalars().size()) {
    Error = "summary global count disagrees with the loaded program";
    return false;
  }

  ProgramJumpFunctions Jfs;
  Jfs.Options = S.Options;
  Jfs.PerSite.resize(S.NumProcs);
  Jfs.ReturnJfs.resize(S.NumProcs);
  for (const ProcSummary &P : S.Procs) {
    if (M.function(P.Proc).name() != P.Name) {
      Error = "summary procedure " + std::to_string(P.Proc) + " is named '" +
              P.Name + "' but the loaded program has '" +
              M.function(P.Proc).name() + "'";
      return false;
    }
    const std::vector<CallSite> &Sites = CG.callSitesIn(P.Proc);
    // The builder leaves unreachable procedures' site lists empty; accept
    // exactly that shape or the full one.
    if (!P.Sites.empty() && P.Sites.size() != Sites.size()) {
      Error = "summary call-site count for '" + P.Name +
              "' disagrees with the loaded program";
      return false;
    }
    if (P.Sites.empty() && !Sites.empty() && CG.isReachable(P.Proc)) {
      Error = "summary covers reachable procedure '" + P.Name +
              "' without its call sites";
      return false;
    }
    for (size_t I = 0; I < P.Sites.size(); ++I) {
      const CallSiteJumpFunctions &Site = P.Sites[I];
      if (Site.Args.size() != Symbols.formals(Sites[I].Callee).size()) {
        Error = "summary argument count at a call in '" + P.Name +
                "' disagrees with the callee's formals";
        return false;
      }
      CallSiteJumpFunctions Copy;
      for (const JumpFunction &J : Site.Args)
        Copy.Args.push_back(J.clone());
      for (const JumpFunction &J : Site.Globals)
        Copy.Globals.push_back(J.clone());
      Jfs.PerSite[P.Proc].push_back(std::move(Copy));
    }
    for (const auto &[Sym, J] : P.Returns) {
      if (Sym >= Symbols.size()) {
        Error = "summary return jump function in '" + P.Name +
                "' names an out-of-range symbol";
        return false;
      }
      Jfs.ReturnJfs[P.Proc].emplace(Sym, J.clone());
    }
  }
  Jfs.Stats = summaryStats(S);
  Out = std::move(Jfs);
  return true;
}

bool ipcp::solveSummary(const ProgramSummary &S, const Module &M,
                        const SymbolTable &Symbols, const CallGraph &CG,
                        SolverStrategy Strategy, SolveResult &Out,
                        std::string &Error, ValueContextMemo *Memo) {
  ProgramJumpFunctions Jfs;
  if (!reconstituteJumpFunctions(S, M, Symbols, CG, Jfs, Error))
    return false;
  Out = solveConstants(Symbols, CG, Jfs, Strategy, /*Feedback=*/nullptr,
                       /*Cancel=*/nullptr, Memo);
  return true;
}
