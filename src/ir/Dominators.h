//===- ir/Dominators.h - Dominator tree and frontiers -----------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree and dominance frontiers via the iterative algorithm of
/// Cooper, Harvey & Kennedy ("A Simple, Fast Dominance Algorithm"), used
/// by the SSA construction of Cytron et al. (paper reference [8]).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_DOMINATORS_H
#define IPCP_IR_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace ipcp {

/// Dominator information for one function. All queries refer to blocks
/// reachable from the entry (the CFG builder prunes the rest; the exit
/// block of a non-terminating function may still be unreachable and then
/// has no dominator data).
class DominatorTree {
public:
  /// Builds the tree for \p F. Requires up-to-date predecessor lists.
  explicit DominatorTree(const Function &F);

  /// Immediate dominator of \p B; the entry is its own idom. InvalidBlock
  /// for unreachable blocks.
  BlockId idom(BlockId B) const { return Idom[B]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

  /// Children of \p B in the dominator tree.
  const std::vector<BlockId> &children(BlockId B) const {
    return Children[B];
  }

  /// Dominance frontier of \p B.
  const std::vector<BlockId> &frontier(BlockId B) const {
    return Frontier[B];
  }

  /// The reverse postorder used to build the tree (reachable blocks only).
  const std::vector<BlockId> &reversePostOrder() const { return Rpo; }

  bool isReachable(BlockId B) const { return Idom[B] != InvalidBlock; }

private:
  std::vector<BlockId> Idom;
  std::vector<std::vector<BlockId>> Children;
  std::vector<std::vector<BlockId>> Frontier;
  std::vector<BlockId> Rpo;
  std::vector<uint32_t> RpoNumber;
};

} // namespace ipcp

#endif // IPCP_IR_DOMINATORS_H
