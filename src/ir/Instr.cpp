//===- ir/Instr.cpp - Quad instructions and operands ----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Instr.h"

using namespace ipcp;

bool ipcp::evalBinaryOp(BinaryOp Op, int64_t Lhs, int64_t Rhs,
                        int64_t &Result) {
  switch (Op) {
  case BinaryOp::Add:
    Result = Lhs + Rhs;
    return true;
  case BinaryOp::Sub:
    Result = Lhs - Rhs;
    return true;
  case BinaryOp::Mul:
    Result = Lhs * Rhs;
    return true;
  case BinaryOp::Div:
    if (Rhs == 0)
      return false;
    Result = Lhs / Rhs;
    return true;
  case BinaryOp::Mod:
    if (Rhs == 0)
      return false;
    Result = Lhs % Rhs;
    return true;
  case BinaryOp::CmpEq:
    Result = Lhs == Rhs;
    return true;
  case BinaryOp::CmpNe:
    Result = Lhs != Rhs;
    return true;
  case BinaryOp::CmpLt:
    Result = Lhs < Rhs;
    return true;
  case BinaryOp::CmpLe:
    Result = Lhs <= Rhs;
    return true;
  case BinaryOp::CmpGt:
    Result = Lhs > Rhs;
    return true;
  case BinaryOp::CmpGe:
    Result = Lhs >= Rhs;
    return true;
  case BinaryOp::LogicalAnd:
    Result = (Lhs != 0) && (Rhs != 0);
    return true;
  case BinaryOp::LogicalOr:
    Result = (Lhs != 0) || (Rhs != 0);
    return true;
  }
  return false;
}

int64_t ipcp::evalUnaryOp(UnaryOp Op, int64_t Value) {
  switch (Op) {
  case UnaryOp::Neg:
    return -Value;
  case UnaryOp::LogicalNot:
    return Value == 0;
  }
  return 0;
}
