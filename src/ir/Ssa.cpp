//===- ir/Ssa.cpp - SSA overlay over the quad CFG -------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Ssa.h"

#include <cassert>

using namespace ipcp;

std::vector<SymbolId> ipcp::noCallKills(const Function &, const Instr &) {
  return {};
}

namespace ipcp {

/// Performs phi placement and renaming for one SsaForm.
class SsaBuilder {
public:
  SsaBuilder(SsaForm &Ssa, const SymbolTable &Symbols,
             const DominatorTree &DT, const SsaForm::KillOracle &Kills)
      : Ssa(Ssa), F(Ssa.F), Symbols(Symbols), DT(DT), Kills(Kills) {}

  void run() {
    collectScalars();
    Ssa.BlockPhis.assign(F.numBlocks(), {});
    Ssa.InstrInfo.assign(F.numBlocks(), {});
    for (BlockId B = 0, E = static_cast<BlockId>(F.numBlocks()); B != E; ++B)
      Ssa.InstrInfo[B].resize(F.block(B).Instrs.size());
    TempSsa.assign(F.numTemps(), InvalidSsa);
    precomputeKills();
    placePhis();
    rename();
    buildUseLists();
  }

private:
  /// Dense per-function index of each scalar symbol visible here. The
  /// table is a flat array keyed by SymbolId (symbol ids are dense per
  /// program); this lookup sits on the renaming inner loop.
  uint32_t scalarIndex(SymbolId Sym) const {
    uint32_t Idx = ScalarIdx[Sym];
    assert(Idx != UINT32_MAX && "symbol not visible in this function");
    return Idx;
  }

  void collectScalars() {
    ProcId P = F.proc();
    ScalarIdx.assign(Symbols.size(), UINT32_MAX);
    auto add = [&](SymbolId Id) {
      if (ScalarIdx[Id] == UINT32_MAX) {
        ScalarIdx[Id] = static_cast<uint32_t>(Scalars.size());
        Scalars.push_back(Id);
      }
    };
    for (SymbolId Id : Symbols.formals(P))
      add(Id);
    for (SymbolId Id : Symbols.locals(P))
      add(Id);
    for (SymbolId Id : Symbols.globalScalars())
      add(Id);

    Ssa.ExitSymbols = Symbols.formals(P);
    Ssa.ExitSymbols.insert(Ssa.ExitSymbols.end(),
                           Symbols.globalScalars().begin(),
                           Symbols.globalScalars().end());
  }

  /// Evaluates the kill oracle once per call; the result is reused by phi
  /// placement and renaming so both see identical kill sets.
  void precomputeKills() {
    CallKillSets.assign(F.numBlocks(), {});
    for (BlockId B = 0, E = static_cast<BlockId>(F.numBlocks()); B != E;
         ++B) {
      const auto &Instrs = F.block(B).Instrs;
      CallKillSets[B].resize(Instrs.size());
      for (uint32_t I = 0, IE = static_cast<uint32_t>(Instrs.size());
           I != IE; ++I)
        if (Instrs[I].Op == Opcode::Call)
          CallKillSets[B][I] = Kills(F, Instrs[I]);
    }
  }

  SsaId newDef(SsaDef Def) {
    Ssa.Defs.push_back(Def);
    return static_cast<SsaId>(Ssa.Defs.size() - 1);
  }

  void placePhis() {
    size_t NumScalars = Scalars.size();
    // Def blocks per scalar.
    std::vector<std::vector<BlockId>> DefBlocks(NumScalars);
    for (BlockId B : DT.reversePostOrder()) {
      for (uint32_t I = 0, E = static_cast<uint32_t>(F.block(B).Instrs.size());
           I != E; ++I) {
        const Instr &In = F.block(B).Instrs[I];
        if (const Operand *Def = In.def(); Def && Def->isVar())
          DefBlocks[scalarIndex(Def->Sym)].push_back(B);
        for (SymbolId Killed : CallKillSets[B][I])
          DefBlocks[scalarIndex(Killed)].push_back(B);
      }
    }

    // Iterated dominance frontier per scalar (standard worklist).
    std::vector<uint32_t> HasPhi(F.numBlocks(), UINT32_MAX);
    for (uint32_t SI = 0; SI != NumScalars; ++SI) {
      std::vector<BlockId> Work = DefBlocks[SI];
      while (!Work.empty()) {
        BlockId B = Work.back();
        Work.pop_back();
        if (!DT.isReachable(B))
          continue;
        for (BlockId Join : DT.frontier(B)) {
          if (HasPhi[Join] == SI)
            continue;
          HasPhi[Join] = SI;
          Phi P;
          P.Sym = Scalars[SI];
          P.Incoming.assign(F.block(Join).Preds.size(), InvalidSsa);
          Ssa.BlockPhis[Join].push_back(std::move(P));
          Work.push_back(Join);
        }
      }
    }
  }

  void rename() {
    size_t NumScalars = Scalars.size();
    std::vector<std::vector<SsaId>> Stacks(NumScalars);

    // Entry values for every visible scalar.
    for (uint32_t SI = 0; SI != NumScalars; ++SI) {
      SsaDef D;
      D.Kind = SsaDefKind::Entry;
      D.Sym = Scalars[SI];
      D.Block = F.entry();
      SsaId Id = newDef(D);
      Stacks[SI].push_back(Id);
      Ssa.EntryDefs.push_back({Scalars[SI], Id});
    }

    // Iterative dominator-tree walk. The scalar indices pushed per block
    // live in one shared stack segmented by frame (PushedBase), not in a
    // per-frame heap vector.
    struct Frame {
      BlockId Block;
      size_t NextChild;
      size_t PushedBase; // First entry of this frame in PushedStorage.
    };
    std::vector<uint32_t> PushedStorage;
    std::vector<Frame> Stack;
    Stack.push_back({F.entry(), 0, 0});
    processBlock(F.entry(), Stacks, PushedStorage);

    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      const auto &Kids = DT.children(Top.Block);
      if (Top.NextChild < Kids.size()) {
        BlockId Child = Kids[Top.NextChild++];
        Stack.push_back({Child, 0, PushedStorage.size()});
        processBlock(Child, Stacks, PushedStorage);
        continue;
      }
      while (PushedStorage.size() > Top.PushedBase) {
        Stacks[PushedStorage.back()].pop_back();
        PushedStorage.pop_back();
      }
      Stack.pop_back();
    }
  }

  void processBlock(BlockId B, std::vector<std::vector<SsaId>> &Stacks,
                    std::vector<uint32_t> &Pushed) {
    auto pushDef = [&](SymbolId Sym, SsaId Id) {
      uint32_t SI = scalarIndex(Sym);
      Stacks[SI].push_back(Id);
      Pushed.push_back(SI);
    };
    auto top = [&](SymbolId Sym) -> SsaId {
      return Stacks[scalarIndex(Sym)].back();
    };

    // Phi definitions first.
    auto &Phis = Ssa.BlockPhis[B];
    for (uint32_t PI = 0, PE = static_cast<uint32_t>(Phis.size()); PI != PE;
         ++PI) {
      SsaDef D;
      D.Kind = SsaDefKind::Phi;
      D.Sym = Phis[PI].Sym;
      D.Block = B;
      D.PhiIdx = PI;
      SsaId Id = newDef(D);
      Phis[PI].Def = Id;
      pushDef(Phis[PI].Sym, Id);
    }

    auto &Instrs = F.block(B).Instrs;
    for (uint32_t I = 0, E = static_cast<uint32_t>(Instrs.size()); I != E;
         ++I) {
      const Instr &In = Instrs[I];
      InstrSsaInfo &Info = Ssa.InstrInfo[B][I];

      // Uses read the pre-instruction environment.
      In.forEachUse([&](const Operand &Op) {
        switch (Op.Kind) {
        case OperandKind::Var:
          Info.UseSsa.push_back(top(Op.Sym));
          break;
        case OperandKind::Temp:
          assert(TempSsa[Op.Temp] != InvalidSsa &&
                 "temporary used before definition");
          Info.UseSsa.push_back(TempSsa[Op.Temp]);
          break;
        default:
          Info.UseSsa.push_back(InvalidSsa);
          break;
        }
      });

      if (In.Op == Opcode::Call) {
        // Values of globals flowing into the call (pre-kill).
        for (SymbolId G : Symbols.globalScalars())
          Info.GlobalEnv.push_back(top(G));
        // The call defines fresh values for everything it may modify.
        for (SymbolId Killed : CallKillSets[B][I]) {
          SsaDef D;
          D.Kind = SsaDefKind::CallKill;
          D.Sym = Killed;
          D.Block = B;
          D.InstrIdx = I;
          SsaId Id = newDef(D);
          Info.Kills.push_back({Killed, Id});
          pushDef(Killed, Id);
        }
      } else if (const Operand *Def = In.def()) {
        if (Def->isVar()) {
          SsaDef D;
          D.Kind = SsaDefKind::InstrDef;
          D.Sym = Def->Sym;
          D.Block = B;
          D.InstrIdx = I;
          SsaId Id = newDef(D);
          Info.DefSsa = Id;
          pushDef(Def->Sym, Id);
        } else {
          assert(Def->isTemp() && "definition of a constant?");
          SsaDef D;
          D.Kind = SsaDefKind::TempDef;
          D.Temp = Def->Temp;
          D.Block = B;
          D.InstrIdx = I;
          SsaId Id = newDef(D);
          Info.DefSsa = Id;
          TempSsa[Def->Temp] = Id;
        }
      }

      if (In.Op == Opcode::Ret) {
        Ssa.HasExitEnv = true;
        for (SymbolId Sym : Ssa.ExitSymbols)
          Ssa.ExitEnv.push_back(top(Sym));
      }
    }

    // Fill phi inputs of successors.
    for (BlockId Succ : F.block(B).Succs) {
      const auto &Preds = F.block(Succ).Preds;
      for (auto &P : Ssa.BlockPhis[Succ]) {
        SsaId Incoming = top(P.Sym);
        for (uint32_t PI = 0, PE = static_cast<uint32_t>(Preds.size());
             PI != PE; ++PI)
          if (Preds[PI] == B)
            P.Incoming[PI] = Incoming;
      }
    }
  }

  void buildUseLists() {
    Ssa.Uses.assign(Ssa.Defs.size(), {});
    auto addUse = [&](SsaId Id, SsaUse Use) {
      if (Id != InvalidSsa)
        Ssa.Uses[Id].push_back(Use);
    };
    for (BlockId B = 0, E = static_cast<BlockId>(F.numBlocks()); B != E;
         ++B) {
      const auto &Phis = Ssa.BlockPhis[B];
      for (uint32_t PI = 0, PE = static_cast<uint32_t>(Phis.size());
           PI != PE; ++PI)
        for (uint32_t S = 0, SE = static_cast<uint32_t>(
                                  Phis[PI].Incoming.size());
             S != SE; ++S)
          addUse(Phis[PI].Incoming[S],
                 {SsaUse::PhiUse, B, PI, S});
      const auto &Infos = Ssa.InstrInfo[B];
      for (uint32_t I = 0, IE = static_cast<uint32_t>(Infos.size()); I != IE;
           ++I)
        for (uint32_t S = 0,
                      SE = static_cast<uint32_t>(Infos[I].UseSsa.size());
             S != SE; ++S)
          addUse(Infos[I].UseSsa[S], {SsaUse::InstrUse, B, I, S});
    }
  }

  SsaForm &Ssa;
  const Function &F;
  const SymbolTable &Symbols;
  const DominatorTree &DT;
  const SsaForm::KillOracle &Kills;

  std::vector<SymbolId> Scalars;
  std::vector<uint32_t> ScalarIdx; // SymbolId -> dense index, UINT32_MAX if absent.
  std::vector<SsaId> TempSsa;
  std::vector<std::vector<std::vector<SymbolId>>> CallKillSets;
};

} // namespace ipcp

SsaForm::SsaForm(const Function &F, const SymbolTable &Symbols,
                 const DominatorTree &DT, const KillOracle &Kills)
    : F(F) {
  SsaBuilder Builder(*this, Symbols, DT, Kills);
  Builder.run();
}

SsaId SsaForm::entryValue(SymbolId Sym) const {
  for (const auto &[S, Id] : EntryDefs)
    if (S == Sym)
      return Id;
  assert(false && "symbol has no entry value in this function");
  return InvalidSsa;
}

size_t SsaForm::numPhis() const {
  size_t N = 0;
  for (const auto &Phis : BlockPhis)
    N += Phis.size();
  return N;
}
