//===- ir/IrPrinter.h - Textual IR dumps ------------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of the quad CFG and its SSA overlay, for tests
/// and the --dump-ir mode of the driver.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_IRPRINTER_H
#define IPCP_IR_IRPRINTER_H

#include "ir/Function.h"
#include "ir/Ssa.h"

#include <iosfwd>
#include <string>

namespace ipcp {

/// Prints \p F block by block ("bb0: ...").
void printFunction(const Function &F, const SymbolTable &Symbols,
                   std::ostream &OS);

/// Renders \p F into a string.
std::string functionToString(const Function &F, const SymbolTable &Symbols);

/// Prints \p F with SSA annotations (phi nodes, value numbers on defs and
/// uses, call kills).
void printSsa(const SsaForm &Ssa, const SymbolTable &Symbols,
              std::ostream &OS);

/// Renders the SSA form into a string.
std::string ssaToString(const SsaForm &Ssa, const SymbolTable &Symbols);

/// Renders one operand ("7", "n", "t3").
std::string operandToString(const Operand &Op, const SymbolTable &Symbols);

} // namespace ipcp

#endif // IPCP_IR_IRPRINTER_H
