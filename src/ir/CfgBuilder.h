//===- ir/CfgBuilder.h - AST to CFG lowering --------------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers semantically-checked MiniFort procedures to the quad CFG.
///
/// Lowering invariants relied on elsewhere:
///  * every source variable use lowers to exactly one Var operand tagged
///    with its VarRefExpr id;
///  * literal call arguments stay Const operands (the literal jump
///    function is a textual property, paper §3.1.1);
///  * DO-loop bounds are captured in temporaries at loop entry (FORTRAN
///    semantics);
///  * each function has a single exit block holding the only Ret;
///  * global initializers are lowered into a prologue of the entry
///    procedure (the analogue of DATA statements).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_CFGBUILDER_H
#define IPCP_IR_CFGBUILDER_H

#include "ir/Function.h"
#include "lang/Ast.h"
#include "lang/Sema.h"

#include <memory>

namespace ipcp {

/// Lowers every procedure of \p Prog. Requires error-free Sema results.
Module buildModule(const Program &Prog, const SymbolTable &Symbols);

/// Lowers a single procedure (exposed for unit tests).
std::unique_ptr<Function> buildFunction(const Program &Prog,
                                        const SymbolTable &Symbols,
                                        ProcId Proc);

} // namespace ipcp

#endif // IPCP_IR_CFGBUILDER_H
