//===- ir/Function.cpp - Basic blocks, functions, modules -----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace ipcp;

void Function::computePreds() {
  for (auto &BB : Blocks)
    BB->Preds.clear();
  for (auto &BB : Blocks)
    for (BlockId Succ : BB->Succs)
      block(Succ).Preds.push_back(BB->Id);
}

std::vector<BlockId> Function::reversePostOrder() const {
  std::vector<BlockId> PostOrder;
  std::vector<uint8_t> Visited(Blocks.size(), 0);
  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::vector<std::pair<BlockId, size_t>> Stack;
  Stack.push_back({entry(), 0});
  Visited[entry()] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    const auto &Succs = block(Block).Succs;
    if (NextSucc < Succs.size()) {
      BlockId S = Succs[NextSucc++];
      if (!Visited[S]) {
        Visited[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    PostOrder.push_back(Block);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

void Function::removeUnreachableBlocks() {
  std::vector<BlockId> Order = reversePostOrder();
  std::vector<uint8_t> Reachable(Blocks.size(), 0);
  for (BlockId B : Order)
    Reachable[B] = 1;
  // Keep the exit block alive so every function has one, even when all
  // paths diverge.
  if (Exit != InvalidBlock && !Reachable[Exit]) {
    Reachable[Exit] = 1;
    Order.push_back(Exit);
  }

  if (Order.size() == Blocks.size()) {
    computePreds(); // Nothing to prune, but callers rely on fresh preds.
    return;
  }

  std::vector<BlockId> Remap(Blocks.size(), InvalidBlock);
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  Kept.reserve(Order.size());
  // Preserve original relative order so block ids remain stable-ish and
  // entry stays 0.
  for (BlockId Old = 0, E = static_cast<BlockId>(Blocks.size()); Old != E;
       ++Old) {
    if (!Reachable[Old])
      continue;
    Remap[Old] = static_cast<BlockId>(Kept.size());
    Kept.push_back(std::move(Blocks[Old]));
  }
  for (auto &BB : Kept) {
    BB->Id = Remap[BB->Id];
    for (BlockId &S : BB->Succs)
      S = Remap[S];
  }
  Blocks = std::move(Kept);
  Exit = Remap[Exit];
  computePreds();
}

size_t Function::numInstrs() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->Instrs.size();
  return N;
}
