//===- ir/Instr.h - Quad instructions and operands --------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quad-style IR that MiniFort procedures lower to. Operands reference
/// scalar symbols, compiler temporaries, or integer constants; every
/// source-level variable *use* lowers to exactly one Var operand tagged
/// with the originating VarRefExpr id, which is what lets the substitution
/// pass count "constants substituted into the code" the way the paper does.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_INSTR_H
#define IPCP_IR_INSTR_H

#include "lang/Ast.h"
#include "lang/Sema.h"

#include <cstdint>
#include <vector>

namespace ipcp {

/// Id of a compiler temporary within one function. Each temporary is
/// defined exactly once, so temporaries are born in SSA form.
using TempId = uint32_t;

/// What an operand denotes.
enum class OperandKind : uint8_t {
  None,  ///< Absent (e.g. unused slot).
  Const, ///< Integer literal.
  Var,   ///< Scalar variable (global, formal, or local).
  Temp,  ///< Compiler temporary.
};

/// One instruction operand.
struct Operand {
  OperandKind Kind = OperandKind::None;
  int64_t ConstValue = 0;      ///< For Const.
  SymbolId Sym = InvalidSymbol; ///< For Var.
  TempId Temp = 0;             ///< For Temp.
  /// The VarRefExpr this operand lowered from, or 0. Only set on Var
  /// operands that represent a source-level variable use.
  ExprId SourceExpr = 0;

  static Operand makeConst(int64_t Value) {
    Operand Op;
    Op.Kind = OperandKind::Const;
    Op.ConstValue = Value;
    return Op;
  }
  static Operand makeVar(SymbolId Sym, ExprId Source = 0) {
    Operand Op;
    Op.Kind = OperandKind::Var;
    Op.Sym = Sym;
    Op.SourceExpr = Source;
    return Op;
  }
  static Operand makeTemp(TempId Temp) {
    Operand Op;
    Op.Kind = OperandKind::Temp;
    Op.Temp = Temp;
    return Op;
  }

  bool isConst() const { return Kind == OperandKind::Const; }
  bool isVar() const { return Kind == OperandKind::Var; }
  bool isTemp() const { return Kind == OperandKind::Temp; }
  bool isNone() const { return Kind == OperandKind::None; }
};

/// Instruction opcodes. Branch/Jump/Ret are block terminators.
enum class Opcode : uint8_t {
  Copy,   ///< Dst = Src1
  Unary,  ///< Dst = UnOp Src1
  Binary, ///< Dst = Src1 BinOp Src2
  Load,   ///< Dst = Array[Src1]           (opaque to constants)
  Store,  ///< Array[Src1] = Src2
  Call,   ///< call Callee(Args...)
  Read,   ///< Dst = <runtime input>        (source of BOTTOM)
  Print,  ///< print Src1                   (pure use)
  Branch, ///< if Src1 != 0 goto succ[0] else succ[1]
  Jump,   ///< goto succ[0]
  Ret,    ///< procedure return
};

/// One quad. A plain struct: the set of meaningful fields depends on the
/// opcode (see the per-opcode comments above).
struct Instr {
  Opcode Op = Opcode::Ret;
  /// Destination (Var or Temp) for Copy/Unary/Binary/Load/Read.
  Operand Dst;
  /// First source: Copy/Unary src, Binary lhs, Load/Store index, Branch
  /// condition, Print value.
  Operand Src1;
  /// Second source: Binary rhs, Store value.
  Operand Src2;
  UnaryOp UnOp = UnaryOp::Neg;   ///< For Unary.
  BinaryOp BinOp = BinaryOp::Add; ///< For Binary.
  SymbolId Array = InvalidSymbol; ///< For Load/Store.
  ProcId Callee = UINT32_MAX;     ///< For Call.
  std::vector<Operand> Args;      ///< For Call, in parameter order.
  /// The source statement this instruction lowered from (0 if synthetic).
  /// Branch instructions use it to map back to IfStmt/WhileStmt/DoLoopStmt
  /// nodes for dead-code elimination.
  StmtId SourceStmt = 0;

  bool isTerminator() const {
    return Op == Opcode::Branch || Op == Opcode::Jump || Op == Opcode::Ret;
  }

  /// Invokes \p Fn on every source operand (not Dst), in slot order. For
  /// calls, the arguments are the source operands.
  template <typename FnT> void forEachUse(FnT Fn) {
    switch (Op) {
    case Opcode::Copy:
    case Opcode::Unary:
    case Opcode::Print:
    case Opcode::Branch:
      Fn(Src1);
      break;
    case Opcode::Binary:
    case Opcode::Store:
      Fn(Src1);
      Fn(Src2);
      break;
    case Opcode::Load:
      Fn(Src1);
      break;
    case Opcode::Call:
      for (Operand &Arg : Args)
        Fn(Arg);
      break;
    case Opcode::Read:
    case Opcode::Jump:
    case Opcode::Ret:
      break;
    }
  }

  template <typename FnT> void forEachUse(FnT Fn) const {
    const_cast<Instr *>(this)->forEachUse(
        [&](Operand &Op) { Fn(static_cast<const Operand &>(Op)); });
  }

  /// Returns the destination operand if this instruction defines a scalar
  /// (variable or temporary), else null. Call kill-defs are not included;
  /// they live in the SSA overlay because they depend on MOD information.
  const Operand *def() const {
    switch (Op) {
    case Opcode::Copy:
    case Opcode::Unary:
    case Opcode::Binary:
    case Opcode::Load:
    case Opcode::Read:
      return &Dst;
    default:
      return nullptr;
    }
  }
};

/// Evaluates \p Op applied to \p Lhs and \p Rhs with MiniFort semantics
/// (truncating division; relational/logical results are 0/1). Returns
/// false (and leaves \p Result alone) for division/modulo by zero, which
/// the analyses treat as BOTTOM.
bool evalBinaryOp(BinaryOp Op, int64_t Lhs, int64_t Rhs, int64_t &Result);

/// Evaluates \p Op applied to \p Value.
int64_t evalUnaryOp(UnaryOp Op, int64_t Value);

} // namespace ipcp

#endif // IPCP_IR_INSTR_H
