//===- ir/IrPrinter.cpp - Textual IR dumps --------------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"

#include <ostream>
#include <sstream>

using namespace ipcp;

std::string ipcp::operandToString(const Operand &Op,
                                  const SymbolTable &Symbols) {
  switch (Op.Kind) {
  case OperandKind::None:
    return "<none>";
  case OperandKind::Const:
    return std::to_string(Op.ConstValue);
  case OperandKind::Var:
    return Symbols.symbol(Op.Sym).Name;
  case OperandKind::Temp:
    return "t" + std::to_string(Op.Temp);
  }
  return "<bad>";
}

namespace {

void printInstr(const Instr &In, const SymbolTable &Symbols,
                const BasicBlock &BB, std::ostream &OS) {
  auto Op = [&](const Operand &O) { return operandToString(O, Symbols); };
  switch (In.Op) {
  case Opcode::Copy:
    OS << Op(In.Dst) << " = " << Op(In.Src1);
    break;
  case Opcode::Unary:
    OS << Op(In.Dst) << " = " << unaryOpSpelling(In.UnOp) << ' '
       << Op(In.Src1);
    break;
  case Opcode::Binary:
    OS << Op(In.Dst) << " = " << Op(In.Src1) << ' '
       << binaryOpSpelling(In.BinOp) << ' ' << Op(In.Src2);
    break;
  case Opcode::Load:
    OS << Op(In.Dst) << " = " << Symbols.symbol(In.Array).Name << '['
       << Op(In.Src1) << ']';
    break;
  case Opcode::Store:
    OS << Symbols.symbol(In.Array).Name << '[' << Op(In.Src1)
       << "] = " << Op(In.Src2);
    break;
  case Opcode::Call: {
    OS << "call @" << In.Callee << '(';
    bool First = true;
    for (const Operand &Arg : In.Args) {
      if (!First)
        OS << ", ";
      First = false;
      OS << Op(Arg);
    }
    OS << ')';
    break;
  }
  case Opcode::Read:
    OS << Op(In.Dst) << " = read";
    break;
  case Opcode::Print:
    OS << "print " << Op(In.Src1);
    break;
  case Opcode::Branch:
    OS << "br " << Op(In.Src1) << ", bb" << BB.Succs[0] << ", bb"
       << BB.Succs[1];
    break;
  case Opcode::Jump:
    OS << "jmp bb" << BB.Succs[0];
    break;
  case Opcode::Ret:
    OS << "ret";
    break;
  }
}

} // namespace

void ipcp::printFunction(const Function &F, const SymbolTable &Symbols,
                         std::ostream &OS) {
  OS << "func " << F.name() << " (proc " << F.proc() << ", exit bb"
     << F.exitBlock() << ")\n";
  for (BlockId B = 0, E = static_cast<BlockId>(F.numBlocks()); B != E; ++B) {
    const BasicBlock &BB = F.block(B);
    OS << "bb" << B << ":";
    if (!BB.Preds.empty()) {
      OS << "  ; preds:";
      for (BlockId P : BB.Preds)
        OS << " bb" << P;
    }
    OS << '\n';
    for (const Instr &In : BB.Instrs) {
      OS << "  ";
      printInstr(In, Symbols, BB, OS);
      OS << '\n';
    }
  }
}

std::string ipcp::functionToString(const Function &F,
                                   const SymbolTable &Symbols) {
  std::ostringstream OS;
  printFunction(F, Symbols, OS);
  return OS.str();
}

void ipcp::printSsa(const SsaForm &Ssa, const SymbolTable &Symbols,
                    std::ostream &OS) {
  const Function &F = Ssa.function();
  auto valName = [&](SsaId Id) {
    if (Id == InvalidSsa)
      return std::string("<imm>");
    const SsaDef &D = Ssa.def(Id);
    std::string Base = D.Kind == SsaDefKind::TempDef
                           ? "t" + std::to_string(D.Temp)
                           : Symbols.symbol(D.Sym).Name;
    return Base + "." + std::to_string(Id);
  };

  OS << "func " << F.name() << " [ssa]\n";
  OS << "  entry:";
  for (auto [Sym, Id] : Ssa.entryDefs())
    OS << ' ' << valName(Id);
  OS << '\n';
  for (BlockId B = 0, E = static_cast<BlockId>(F.numBlocks()); B != E; ++B) {
    const BasicBlock &BB = F.block(B);
    OS << "bb" << B << ":\n";
    for (const Phi &P : Ssa.phis(B)) {
      OS << "  " << valName(P.Def) << " = phi";
      for (uint32_t I = 0, PE = static_cast<uint32_t>(P.Incoming.size());
           I != PE; ++I)
        OS << " [bb" << BB.Preds[I] << ": " << valName(P.Incoming[I]) << ']';
      OS << '\n';
    }
    for (uint32_t I = 0, IE = static_cast<uint32_t>(BB.Instrs.size());
         I != IE; ++I) {
      const Instr &In = BB.Instrs[I];
      const InstrSsaInfo &Info = Ssa.instrInfo(B, I);
      OS << "  ";
      printInstr(In, Symbols, BB, OS);
      OS << "  ; uses:";
      for (SsaId Use : Info.UseSsa)
        OS << ' ' << valName(Use);
      if (Info.DefSsa != InvalidSsa)
        OS << "  def: " << valName(Info.DefSsa);
      for (auto [Sym, Id] : Info.Kills)
        OS << "  kill: " << valName(Id);
      OS << '\n';
    }
  }
  if (Ssa.hasExitEnv()) {
    OS << "  exit:";
    for (SsaId Id : Ssa.exitEnv())
      OS << ' ' << valName(Id);
    OS << '\n';
  }
}

std::string ipcp::ssaToString(const SsaForm &Ssa,
                              const SymbolTable &Symbols) {
  std::ostringstream OS;
  printSsa(Ssa, Symbols, OS);
  return OS.str();
}
