//===- ir/Ssa.h - SSA overlay over the quad CFG -----------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSA construction in the style of Cytron et al. (paper reference [8]),
/// built as an *overlay*: the quad CFG is immutable and the SSA form maps
/// every variable def and use to a dense SsaId. The analyzer follows the
/// paper's discipline of building SSA per procedure, using it, and
/// discarding it (§4.1).
///
/// Two IPCP-specific features live here:
///  * Call instructions define fresh SSA values for every scalar the
///    callee may modify. The kill set is supplied by a callback so the
///    same construction serves the with-MOD, without-MOD, and
///    worst-case configurations of the study.
///  * Each call records the SSA values of all global scalars flowing into
///    it, and each function records the SSA values of its formals and the
///    globals reaching the exit. These snapshots are what forward and
///    return jump functions are generated from.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_SSA_H
#define IPCP_IR_SSA_H

#include "ir/Dominators.h"
#include "ir/Function.h"
#include "support/SmallVec.h"

#include <functional>
#include <vector>

namespace ipcp {

/// Id of an SSA value within one function.
using SsaId = uint32_t;
/// Sentinel for "no SSA value" (e.g. the slot of a Const operand).
inline constexpr SsaId InvalidSsa = UINT32_MAX;

/// How an SSA value is defined.
enum class SsaDefKind : uint8_t {
  Entry,    ///< Value of a symbol on entry to the function.
  Phi,      ///< Phi node at a join point.
  InstrDef, ///< Destination of a Copy/Unary/Binary/Load/Read.
  CallKill, ///< Value of a symbol after a call that may modify it.
  TempDef,  ///< Destination of an instruction writing a temporary.
};

/// Where and how one SSA value is defined.
struct SsaDef {
  SsaDefKind Kind;
  /// Defined symbol; InvalidSymbol for TempDef.
  SymbolId Sym = InvalidSymbol;
  /// Defined temporary (TempDef only).
  TempId Temp = 0;
  /// Defining block (for Entry: the entry block).
  BlockId Block = InvalidBlock;
  /// Defining instruction index within Block (InstrDef/CallKill/TempDef).
  uint32_t InstrIdx = 0;
  /// Index into the block's phi list (Phi only).
  uint32_t PhiIdx = 0;
};

/// A phi node: one per (join block, symbol) where needed.
struct Phi {
  SymbolId Sym;
  SsaId Def = InvalidSsa;
  /// Incoming values, parallel to the block's Preds list.
  SmallVec<SsaId, 2> Incoming;
};

/// One (killed symbol, fresh SSA value) entry of a call's kill set.
/// A plain aggregate rather than std::pair so it stays trivially
/// copyable (std::pair's assignment operator is not trivial).
struct KillDef {
  SymbolId Sym;
  SsaId Def;
};

/// SSA facts attached to one instruction. The per-instruction arrays use
/// inline storage: almost every instruction has at most two operands and
/// joins have at most two predecessors, so the whole overlay builds and
/// tears down without per-instruction heap traffic.
struct InstrSsaInfo {
  /// SSA values of the source operands, parallel to Instr::forEachUse
  /// slot order. InvalidSsa for Const operands.
  SmallVec<SsaId, 2> UseSsa;
  /// SSA value defined by Dst (InstrDef/TempDef), or InvalidSsa.
  SsaId DefSsa = InvalidSsa;
  /// For calls: the symbols the call may modify, each with the fresh SSA
  /// value it defines (CallKill defs).
  SmallVec<KillDef, 2> Kills;
  /// For calls: SSA values of all global scalars flowing *into* the call,
  /// parallel to SymbolTable::globalScalars().
  SmallVec<SsaId, 4> GlobalEnv;
};

/// One SSA use site, for def-use chains.
struct SsaUse {
  enum UseKind : uint8_t { InstrUse, PhiUse };
  UseKind Kind;
  BlockId Block;
  uint32_t Index; ///< Instruction index or phi index.
  uint32_t Slot;  ///< Operand slot or phi incoming index.
};

/// The SSA overlay for one function.
class SsaForm {
public:
  /// Returns the scalar symbols a call instruction may modify, in a
  /// deterministic order. This is where interprocedural MOD information
  /// (or its absence) enters the intraprocedural analyses.
  using KillOracle =
      std::function<std::vector<SymbolId>(const Function &, const Instr &)>;

  /// Builds SSA for \p F. \p Kills supplies call kill sets.
  SsaForm(const Function &F, const SymbolTable &Symbols,
          const DominatorTree &DT, const KillOracle &Kills);

  const Function &function() const { return F; }

  /// All SSA defs; SsaIds index this densely.
  const std::vector<SsaDef> &defs() const { return Defs; }
  const SsaDef &def(SsaId Id) const { return Defs.at(Id); }
  size_t numValues() const { return Defs.size(); }

  /// Phi nodes of \p B.
  const std::vector<Phi> &phis(BlockId B) const { return BlockPhis.at(B); }

  /// SSA facts for instruction \p InstrIdx of block \p B.
  const InstrSsaInfo &instrInfo(BlockId B, uint32_t InstrIdx) const {
    return InstrInfo.at(B).at(InstrIdx);
  }

  /// (symbol, entry SSA value) for every scalar visible in the function,
  /// i.e. formals, locals, and global scalars.
  const std::vector<std::pair<SymbolId, SsaId>> &entryDefs() const {
    return EntryDefs;
  }

  /// Entry SSA value of \p Sym (must be visible in the function).
  SsaId entryValue(SymbolId Sym) const;

  /// The symbols whose exit values are recorded: the function's formals
  /// followed by all global scalars (= interproceduralParams).
  const std::vector<SymbolId> &exitSymbols() const { return ExitSymbols; }

  /// True if the exit block is reachable (some path returns).
  bool hasExitEnv() const { return HasExitEnv; }

  /// SSA values of exitSymbols() reaching the Ret instruction. Only valid
  /// if hasExitEnv().
  const std::vector<SsaId> &exitEnv() const { return ExitEnv; }

  /// All uses of SSA value \p Id (instruction operands and phi inputs).
  const SmallVec<SsaUse, 2> &usesOf(SsaId Id) const { return Uses.at(Id); }

  /// Total number of phi nodes (statistics).
  size_t numPhis() const;

private:
  friend class SsaBuilder;

  const Function &F;
  std::vector<SsaDef> Defs;
  std::vector<std::vector<Phi>> BlockPhis;
  std::vector<std::vector<InstrSsaInfo>> InstrInfo;
  std::vector<std::pair<SymbolId, SsaId>> EntryDefs;
  std::vector<SymbolId> ExitSymbols;
  std::vector<SsaId> ExitEnv;
  bool HasExitEnv = false;
  std::vector<SmallVec<SsaUse, 2>> Uses;
};

/// A KillOracle that kills nothing (for functions without calls, or unit
/// tests that do not care about calls).
std::vector<SymbolId> noCallKills(const Function &, const Instr &);

} // namespace ipcp

#endif // IPCP_IR_SSA_H
