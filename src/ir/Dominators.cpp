//===- ir/Dominators.cpp - Dominator tree and frontiers -------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include <cassert>

using namespace ipcp;

DominatorTree::DominatorTree(const Function &F) {
  size_t N = F.numBlocks();
  Idom.assign(N, InvalidBlock);
  Children.assign(N, {});
  Frontier.assign(N, {});
  RpoNumber.assign(N, UINT32_MAX);

  Rpo = F.reversePostOrder();
  for (uint32_t I = 0, E = static_cast<uint32_t>(Rpo.size()); I != E; ++I)
    RpoNumber[Rpo[I]] = I;

  // Cooper-Harvey-Kennedy: intersect along idom chains until fixpoint.
  auto intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = Idom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = Idom[B];
    }
    return A;
  };

  BlockId Entry = F.entry();
  Idom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Rpo) {
      if (B == Entry)
        continue;
      BlockId NewIdom = InvalidBlock;
      for (BlockId P : F.block(B).Preds) {
        if (Idom[P] == InvalidBlock)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == InvalidBlock ? P : intersect(P, NewIdom);
      }
      assert(NewIdom != InvalidBlock && "reachable block with no "
                                        "processed predecessor");
      if (Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }

  for (BlockId B : Rpo)
    if (B != Entry)
      Children[Idom[B]].push_back(B);

  // Dominance frontiers (CHK): walk up from each join point's preds.
  for (BlockId B : Rpo) {
    const auto &Preds = F.block(B).Preds;
    if (Preds.size() < 2)
      continue;
    for (BlockId P : Preds) {
      if (Idom[P] == InvalidBlock)
        continue;
      BlockId Runner = P;
      while (Runner != Idom[B]) {
        Frontier[Runner].push_back(B);
        Runner = Idom[Runner];
      }
    }
  }
  // Deduplicate frontier entries (a node can reach the same join through
  // several predecessors).
  for (auto &DF : Frontier) {
    std::vector<uint8_t> Seen(N, 0);
    std::vector<BlockId> Unique;
    for (BlockId B : DF)
      if (!Seen[B]) {
        Seen[B] = 1;
        Unique.push_back(B);
      }
    DF = std::move(Unique);
  }
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  assert(isReachable(A) && isReachable(B) &&
         "dominance query on unreachable block");
  while (B != A && B != Idom[B])
    B = Idom[B];
  return B == A;
}
