//===- ir/Function.h - Basic blocks, functions, modules ---------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control-flow-graph containers: BasicBlock, Function (one lowered
/// procedure), and Module (one lowered program).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_FUNCTION_H
#define IPCP_IR_FUNCTION_H

#include "ir/Instr.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace ipcp {

/// Index of a basic block within its function.
using BlockId = uint32_t;
/// Sentinel for "no block".
inline constexpr BlockId InvalidBlock = UINT32_MAX;

/// A straight-line sequence of instructions ending in one terminator.
struct BasicBlock {
  BlockId Id = InvalidBlock;
  std::vector<Instr> Instrs;
  /// Successor blocks. Branch: [true-target, false-target]; Jump:
  /// [target]; Ret: [].
  std::vector<BlockId> Succs;
  /// Predecessor blocks, in a deterministic order (filled by
  /// Function::computePreds). Phi incoming values are parallel to this.
  std::vector<BlockId> Preds;

  const Instr &terminator() const {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block has no terminator");
    return Instrs.back();
  }
};

/// One lowered procedure. Block 0 is the entry; ExitBlock holds the
/// single Ret instruction (lowering funnels every return through it).
class Function {
public:
  Function(ProcId Proc, std::string Name)
      : Proc(Proc), Name(std::move(Name)) {}

  ProcId proc() const { return Proc; }
  const std::string &name() const { return Name; }

  BlockId entry() const { return 0; }
  BlockId exitBlock() const { return Exit; }
  void setExitBlock(BlockId B) { Exit = B; }

  BasicBlock &block(BlockId Id) { return *Blocks.at(Id); }
  const BasicBlock &block(BlockId Id) const { return *Blocks.at(Id); }
  size_t numBlocks() const { return Blocks.size(); }

  BlockId addBlock() {
    auto BB = std::make_unique<BasicBlock>();
    BB->Id = static_cast<BlockId>(Blocks.size());
    // Typical lowered blocks carry a handful of quads; reserving here
    // avoids the 1->2->4 regrowth copies on every block the frontend
    // emits (lowering is on the serve cold path).
    BB->Instrs.reserve(4);
    Blocks.push_back(std::move(BB));
    return Blocks.back()->Id;
  }

  TempId newTemp() { return NumTemps++; }
  TempId numTemps() const { return NumTemps; }

  /// Recomputes every block's predecessor list from the successor lists.
  void computePreds();

  /// Removes blocks not reachable from the entry, compacting block ids
  /// and rewriting successor lists. Recomputes predecessors. The exit
  /// block is preserved even if unreachable (a function that loops
  /// forever), as analyses assume it exists.
  void removeUnreachableBlocks();

  /// Returns the reachable blocks in reverse postorder. The entry block
  /// is first; every dominator appears before the blocks it dominates.
  std::vector<BlockId> reversePostOrder() const;

  size_t numInstrs() const;

private:
  ProcId Proc;
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  BlockId Exit = InvalidBlock;
  TempId NumTemps = 0;
};

/// One lowered program: one Function per Proc, in ProcId order.
struct Module {
  std::vector<std::unique_ptr<Function>> Functions;

  Function &function(ProcId P) { return *Functions.at(P); }
  const Function &function(ProcId P) const { return *Functions.at(P); }
};

} // namespace ipcp

#endif // IPCP_IR_FUNCTION_H
