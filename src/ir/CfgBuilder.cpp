//===- ir/CfgBuilder.cpp - AST to CFG lowering ----------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/CfgBuilder.h"

#include <cassert>

using namespace ipcp;

namespace {

/// Lowers one procedure.
class FunctionBuilder {
public:
  FunctionBuilder(const Program &Prog, const SymbolTable &Symbols,
                  ProcId Proc)
      : Prog(Prog), Symbols(Symbols), ProcIdx(Proc),
        F(std::make_unique<Function>(Proc, Prog.Procs[Proc]->name())) {}

  std::unique_ptr<Function> run() {
    Cur = F->addBlock();
    BlockId Exit = F->addBlock();
    F->setExitBlock(Exit);

    // Global initializers become a prologue of the entry procedure, the
    // MiniFort analogue of FORTRAN DATA statements.
    if (Prog.entryProc() && *Prog.entryProc() == ProcIdx) {
      for (const GlobalDecl &G : Prog.Globals) {
        if (!G.Init)
          continue;
        Instr I;
        I.Op = Opcode::Copy;
        I.Dst = Operand::makeVar(G.Symbol);
        I.Src1 = Operand::makeConst(*G.Init);
        emit(std::move(I));
      }
    }

    lowerStmts(Prog.Procs[ProcIdx]->Body);
    if (Cur != InvalidBlock)
      setJump(Exit);

    Instr Ret;
    Ret.Op = Opcode::Ret;
    F->block(Exit).Instrs.push_back(std::move(Ret));

    F->removeUnreachableBlocks();
    return std::move(F);
  }

private:
  void emit(Instr I) {
    assert(Cur != InvalidBlock && "emission without a current block");
    assert(F->block(Cur).Instrs.empty() ||
           !F->block(Cur).Instrs.back().isTerminator());
    F->block(Cur).Instrs.push_back(std::move(I));
  }

  /// Terminates the current block with an unconditional jump to \p Target
  /// and leaves no current block.
  void setJump(BlockId Target) {
    Instr I;
    I.Op = Opcode::Jump;
    emit(std::move(I));
    F->block(Cur).Succs = {Target};
    Cur = InvalidBlock;
  }

  /// Terminates the current block with a conditional branch.
  void setBranch(Operand Cond, BlockId TrueBlock, BlockId FalseBlock,
                 StmtId Source) {
    Instr I;
    I.Op = Opcode::Branch;
    I.Src1 = Cond;
    I.SourceStmt = Source;
    emit(std::move(I));
    F->block(Cur).Succs = {TrueBlock, FalseBlock};
    Cur = InvalidBlock;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Lowers \p E into the current block and returns the operand holding
  /// its value. Literals stay Const operands; variable references stay Var
  /// operands (consumed directly by the using instruction).
  Operand lowerExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Operand::makeConst(cast<IntLitExpr>(E)->value());
    case ExprKind::VarRef: {
      const auto *V = cast<VarRefExpr>(E);
      return Operand::makeVar(V->symbol(), V->id());
    }
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRefExpr>(E);
      Operand Index = lowerExpr(A->index());
      Instr I;
      I.Op = Opcode::Load;
      I.Array = A->symbol();
      I.Src1 = Index;
      I.Dst = Operand::makeTemp(F->newTemp());
      Operand Result = I.Dst;
      emit(std::move(I));
      return Result;
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Operand Src = lowerExpr(U->operand());
      // Negated literals fold to constant operands so "-1" behaves as a
      // literal everywhere a positive literal would (DO steps, literal
      // jump functions). Binary expressions are deliberately NOT folded:
      // "0 + 0" at a call site is not a textual literal (§3.1.1).
      if (Src.isConst())
        return Operand::makeConst(evalUnaryOp(U->op(), Src.ConstValue));
      Instr I;
      I.Op = Opcode::Unary;
      I.UnOp = U->op();
      I.Src1 = Src;
      I.Dst = Operand::makeTemp(F->newTemp());
      Operand Result = I.Dst;
      emit(std::move(I));
      return Result;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      Operand Lhs = lowerExpr(B->lhs());
      Operand Rhs = lowerExpr(B->rhs());
      Instr I;
      I.Op = Opcode::Binary;
      I.BinOp = B->op();
      I.Src1 = Lhs;
      I.Src2 = Rhs;
      I.Dst = Operand::makeTemp(F->newTemp());
      Operand Result = I.Dst;
      emit(std::move(I));
      return Result;
    }
    }
    assert(false && "unknown expression kind");
    return Operand();
  }

  /// Like lowerExpr, but guarantees the result is immune to later variable
  /// assignments: Var operands are copied into a fresh temporary. Used for
  /// DO-loop bounds, which FORTRAN captures once at loop entry.
  Operand lowerExprCaptured(const Expr *E) {
    Operand Op = lowerExpr(E);
    if (!Op.isVar())
      return Op;
    Instr I;
    I.Op = Opcode::Copy;
    I.Src1 = Op;
    I.Dst = Operand::makeTemp(F->newTemp());
    Operand Result = I.Dst;
    emit(std::move(I));
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerStmts(const std::vector<Stmt *> &Stmts) {
    for (const Stmt *S : Stmts) {
      if (Cur == InvalidBlock) {
        // Code after a 'return' in the same statement list: unreachable.
        // Lower it into a detached block so diagnostics still see it; the
        // final unreachable-block sweep deletes it.
        Cur = F->addBlock();
      }
      lowerStmt(S);
    }
  }

  void lowerStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign:
      return lowerAssign(cast<AssignStmt>(S));
    case StmtKind::Call:
      return lowerCall(cast<CallStmt>(S));
    case StmtKind::If:
      return lowerIf(cast<IfStmt>(S));
    case StmtKind::DoLoop:
      return lowerDo(cast<DoLoopStmt>(S));
    case StmtKind::While:
      return lowerWhile(cast<WhileStmt>(S));
    case StmtKind::Print: {
      Instr I;
      I.Op = Opcode::Print;
      I.Src1 = lowerExpr(cast<PrintStmt>(S)->value());
      I.SourceStmt = S->id();
      emit(std::move(I));
      return;
    }
    case StmtKind::Read: {
      Instr I;
      I.Op = Opcode::Read;
      I.Dst = Operand::makeVar(cast<ReadStmt>(S)->target()->symbol());
      I.SourceStmt = S->id();
      emit(std::move(I));
      return;
    }
    case StmtKind::Return:
      setJump(F->exitBlock());
      return;
    }
  }

  void lowerAssign(const AssignStmt *S) {
    if (const auto *V = dyn_cast<VarRefExpr>(S->target())) {
      Operand Value = lowerExpr(S->value());
      Instr I;
      I.Op = Opcode::Copy;
      I.Dst = Operand::makeVar(V->symbol()); // Definition: no SourceExpr.
      I.Src1 = Value;
      I.SourceStmt = S->id();
      emit(std::move(I));
      return;
    }
    const auto *A = cast<ArrayRefExpr>(S->target());
    Operand Index = lowerExpr(A->index());
    Operand Value = lowerExpr(S->value());
    Instr I;
    I.Op = Opcode::Store;
    I.Array = A->symbol();
    I.Src1 = Index;
    I.Src2 = Value;
    I.SourceStmt = S->id();
    emit(std::move(I));
  }

  void lowerCall(const CallStmt *S) {
    Instr I;
    I.Op = Opcode::Call;
    I.Callee = S->callee();
    I.SourceStmt = S->id();
    for (const Expr *Arg : S->args())
      I.Args.push_back(lowerExpr(Arg));
    emit(std::move(I));
  }

  void lowerIf(const IfStmt *S) {
    Operand Cond = lowerExpr(S->cond());
    BlockId ThenBlock = F->addBlock();
    BlockId ElseBlock = S->elseBody().empty() ? InvalidBlock : F->addBlock();
    BlockId JoinBlock = F->addBlock();
    setBranch(Cond, ThenBlock,
              ElseBlock == InvalidBlock ? JoinBlock : ElseBlock, S->id());

    Cur = ThenBlock;
    lowerStmts(S->thenBody());
    if (Cur != InvalidBlock)
      setJump(JoinBlock);

    if (ElseBlock != InvalidBlock) {
      Cur = ElseBlock;
      lowerStmts(S->elseBody());
      if (Cur != InvalidBlock)
        setJump(JoinBlock);
    }
    Cur = JoinBlock;
  }

  void lowerWhile(const WhileStmt *S) {
    BlockId Header = F->addBlock();
    setJump(Header);

    Cur = Header;
    Operand Cond = lowerExpr(S->cond());
    BlockId Body = F->addBlock();
    BlockId Exit = F->addBlock();
    setBranch(Cond, Body, Exit, S->id());

    Cur = Body;
    lowerStmts(S->body());
    if (Cur != InvalidBlock)
      setJump(Header);
    Cur = Exit;
  }

  void lowerDo(const DoLoopStmt *S) {
    // Bounds and step are captured once, before the loop (FORTRAN
    // semantics). A constant step selects the comparison direction; a
    // non-constant step is assumed positive (documented MiniFort rule).
    Operand Lo = lowerExpr(S->lo());
    Operand Hi = lowerExprCaptured(S->hi());
    Operand Step = S->step() ? lowerExprCaptured(S->step())
                             : Operand::makeConst(1);
    bool Descending = Step.isConst() && Step.ConstValue < 0;

    SymbolId Var = S->var()->symbol();
    Instr Init;
    Init.Op = Opcode::Copy;
    Init.Dst = Operand::makeVar(Var);
    Init.Src1 = Lo;
    Init.SourceStmt = S->id();
    emit(std::move(Init));

    BlockId Header = F->addBlock();
    setJump(Header);

    Cur = Header;
    Instr Cmp;
    Cmp.Op = Opcode::Binary;
    Cmp.BinOp = Descending ? BinaryOp::CmpGe : BinaryOp::CmpLe;
    // The loop-variable read in the header is compiler-generated, so it
    // carries no SourceExpr and is never counted as a substitutable use.
    Cmp.Src1 = Operand::makeVar(Var);
    Cmp.Src2 = Hi;
    Cmp.Dst = Operand::makeTemp(F->newTemp());
    Operand Cond = Cmp.Dst;
    emit(std::move(Cmp));

    BlockId Body = F->addBlock();
    BlockId Exit = F->addBlock();
    setBranch(Cond, Body, Exit, S->id());

    Cur = Body;
    lowerStmts(S->body());
    if (Cur != InvalidBlock) {
      Instr Inc;
      Inc.Op = Opcode::Binary;
      Inc.BinOp = BinaryOp::Add;
      Inc.Src1 = Operand::makeVar(Var);
      Inc.Src2 = Step;
      Inc.Dst = Operand::makeTemp(F->newTemp());
      Operand Next = Inc.Dst;
      emit(std::move(Inc));
      Instr Upd;
      Upd.Op = Opcode::Copy;
      Upd.Dst = Operand::makeVar(Var);
      Upd.Src1 = Next;
      emit(std::move(Upd));
      setJump(Header);
    }
    Cur = Exit;
  }

  const Program &Prog;
  const SymbolTable &Symbols;
  ProcId ProcIdx;
  std::unique_ptr<Function> F;
  BlockId Cur = InvalidBlock;
};

} // namespace

std::unique_ptr<Function> ipcp::buildFunction(const Program &Prog,
                                              const SymbolTable &Symbols,
                                              ProcId Proc) {
  FunctionBuilder Builder(Prog, Symbols, Proc);
  return Builder.run();
}

Module ipcp::buildModule(const Program &Prog, const SymbolTable &Symbols) {
  Module M;
  for (ProcId P = 0, E = static_cast<ProcId>(Prog.Procs.size()); P != E; ++P)
    M.Functions.push_back(buildFunction(Prog, Symbols, P));
  return M;
}
