file(REMOVE_RECURSE
  "CMakeFiles/subscript_linearity.dir/subscript_linearity.cpp.o"
  "CMakeFiles/subscript_linearity.dir/subscript_linearity.cpp.o.d"
  "subscript_linearity"
  "subscript_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscript_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
