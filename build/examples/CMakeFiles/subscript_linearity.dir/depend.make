# Empty dependencies file for subscript_linearity.
# This may be replaced when dependencies are built.
