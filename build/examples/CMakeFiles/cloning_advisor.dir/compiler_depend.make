# Empty compiler generated dependencies file for cloning_advisor.
# This may be replaced when dependencies are built.
