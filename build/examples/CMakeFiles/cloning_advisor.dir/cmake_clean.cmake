file(REMOVE_RECURSE
  "CMakeFiles/cloning_advisor.dir/cloning_advisor.cpp.o"
  "CMakeFiles/cloning_advisor.dir/cloning_advisor.cpp.o.d"
  "cloning_advisor"
  "cloning_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloning_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
