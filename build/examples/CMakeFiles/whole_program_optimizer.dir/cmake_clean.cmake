file(REMOVE_RECURSE
  "CMakeFiles/whole_program_optimizer.dir/whole_program_optimizer.cpp.o"
  "CMakeFiles/whole_program_optimizer.dir/whole_program_optimizer.cpp.o.d"
  "whole_program_optimizer"
  "whole_program_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_program_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
