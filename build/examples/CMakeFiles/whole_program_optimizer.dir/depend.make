# Empty dependencies file for whole_program_optimizer.
# This may be replaced when dependencies are built.
