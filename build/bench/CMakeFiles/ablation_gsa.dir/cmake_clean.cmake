file(REMOVE_RECURSE
  "CMakeFiles/ablation_gsa.dir/ablation_gsa.cpp.o"
  "CMakeFiles/ablation_gsa.dir/ablation_gsa.cpp.o.d"
  "ablation_gsa"
  "ablation_gsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
