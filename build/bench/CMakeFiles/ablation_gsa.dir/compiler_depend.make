# Empty compiler generated dependencies file for ablation_gsa.
# This may be replaced when dependencies are built.
