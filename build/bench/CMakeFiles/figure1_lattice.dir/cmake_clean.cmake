file(REMOVE_RECURSE
  "CMakeFiles/figure1_lattice.dir/figure1_lattice.cpp.o"
  "CMakeFiles/figure1_lattice.dir/figure1_lattice.cpp.o.d"
  "figure1_lattice"
  "figure1_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
