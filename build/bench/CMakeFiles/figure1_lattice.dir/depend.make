# Empty dependencies file for figure1_lattice.
# This may be replaced when dependencies are built.
