file(REMOVE_RECURSE
  "CMakeFiles/cloning_study.dir/cloning_study.cpp.o"
  "CMakeFiles/cloning_study.dir/cloning_study.cpp.o.d"
  "cloning_study"
  "cloning_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloning_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
