# Empty compiler generated dependencies file for cloning_study.
# This may be replaced when dependencies are built.
