
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/cloning_study.cpp" "bench/CMakeFiles/cloning_study.dir/cloning_study.cpp.o" "gcc" "bench/CMakeFiles/cloning_study.dir/cloning_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
