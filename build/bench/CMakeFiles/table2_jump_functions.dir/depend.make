# Empty dependencies file for table2_jump_functions.
# This may be replaced when dependencies are built.
