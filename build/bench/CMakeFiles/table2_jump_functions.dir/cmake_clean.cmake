file(REMOVE_RECURSE
  "CMakeFiles/table2_jump_functions.dir/table2_jump_functions.cpp.o"
  "CMakeFiles/table2_jump_functions.dir/table2_jump_functions.cpp.o.d"
  "table2_jump_functions"
  "table2_jump_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_jump_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
