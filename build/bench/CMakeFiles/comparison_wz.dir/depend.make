# Empty dependencies file for comparison_wz.
# This may be replaced when dependencies are built.
