file(REMOVE_RECURSE
  "CMakeFiles/comparison_wz.dir/comparison_wz.cpp.o"
  "CMakeFiles/comparison_wz.dir/comparison_wz.cpp.o.d"
  "comparison_wz"
  "comparison_wz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_wz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
