file(REMOVE_RECURSE
  "CMakeFiles/jf_cost_timing.dir/jf_cost_timing.cpp.o"
  "CMakeFiles/jf_cost_timing.dir/jf_cost_timing.cpp.o.d"
  "jf_cost_timing"
  "jf_cost_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jf_cost_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
