# Empty compiler generated dependencies file for jf_cost_timing.
# This may be replaced when dependencies are built.
