# Empty dependencies file for table3_mod_dce.
# This may be replaced when dependencies are built.
