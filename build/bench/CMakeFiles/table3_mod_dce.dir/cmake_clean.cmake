file(REMOVE_RECURSE
  "CMakeFiles/table3_mod_dce.dir/table3_mod_dce.cpp.o"
  "CMakeFiles/table3_mod_dce.dir/table3_mod_dce.cpp.o.d"
  "table3_mod_dce"
  "table3_mod_dce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mod_dce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
