# Empty dependencies file for ipcp_lang.
# This may be replaced when dependencies are built.
