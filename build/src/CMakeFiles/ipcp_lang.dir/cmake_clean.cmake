file(REMOVE_RECURSE
  "CMakeFiles/ipcp_lang.dir/lang/Ast.cpp.o"
  "CMakeFiles/ipcp_lang.dir/lang/Ast.cpp.o.d"
  "CMakeFiles/ipcp_lang.dir/lang/AstClone.cpp.o"
  "CMakeFiles/ipcp_lang.dir/lang/AstClone.cpp.o.d"
  "CMakeFiles/ipcp_lang.dir/lang/AstPrinter.cpp.o"
  "CMakeFiles/ipcp_lang.dir/lang/AstPrinter.cpp.o.d"
  "CMakeFiles/ipcp_lang.dir/lang/Lexer.cpp.o"
  "CMakeFiles/ipcp_lang.dir/lang/Lexer.cpp.o.d"
  "CMakeFiles/ipcp_lang.dir/lang/Parser.cpp.o"
  "CMakeFiles/ipcp_lang.dir/lang/Parser.cpp.o.d"
  "CMakeFiles/ipcp_lang.dir/lang/Sema.cpp.o"
  "CMakeFiles/ipcp_lang.dir/lang/Sema.cpp.o.d"
  "libipcp_lang.a"
  "libipcp_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
