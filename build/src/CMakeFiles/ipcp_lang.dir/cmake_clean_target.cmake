file(REMOVE_RECURSE
  "libipcp_lang.a"
)
