
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/Ast.cpp" "src/CMakeFiles/ipcp_lang.dir/lang/Ast.cpp.o" "gcc" "src/CMakeFiles/ipcp_lang.dir/lang/Ast.cpp.o.d"
  "/root/repo/src/lang/AstClone.cpp" "src/CMakeFiles/ipcp_lang.dir/lang/AstClone.cpp.o" "gcc" "src/CMakeFiles/ipcp_lang.dir/lang/AstClone.cpp.o.d"
  "/root/repo/src/lang/AstPrinter.cpp" "src/CMakeFiles/ipcp_lang.dir/lang/AstPrinter.cpp.o" "gcc" "src/CMakeFiles/ipcp_lang.dir/lang/AstPrinter.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/ipcp_lang.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/ipcp_lang.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/ipcp_lang.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/ipcp_lang.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/lang/Sema.cpp" "src/CMakeFiles/ipcp_lang.dir/lang/Sema.cpp.o" "gcc" "src/CMakeFiles/ipcp_lang.dir/lang/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
