file(REMOVE_RECURSE
  "libipcp_core.a"
)
