file(REMOVE_RECURSE
  "CMakeFiles/ipcp_core.dir/ipcp/Cloning.cpp.o"
  "CMakeFiles/ipcp_core.dir/ipcp/Cloning.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ipcp/Inliner.cpp.o"
  "CMakeFiles/ipcp_core.dir/ipcp/Inliner.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ipcp/JumpFunction.cpp.o"
  "CMakeFiles/ipcp_core.dir/ipcp/JumpFunction.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ipcp/JumpFunctionBuilder.cpp.o"
  "CMakeFiles/ipcp_core.dir/ipcp/JumpFunctionBuilder.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ipcp/Pipeline.cpp.o"
  "CMakeFiles/ipcp_core.dir/ipcp/Pipeline.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ipcp/Solver.cpp.o"
  "CMakeFiles/ipcp_core.dir/ipcp/Solver.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ipcp/Substitution.cpp.o"
  "CMakeFiles/ipcp_core.dir/ipcp/Substitution.cpp.o.d"
  "libipcp_core.a"
  "libipcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
