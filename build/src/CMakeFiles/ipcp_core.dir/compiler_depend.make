# Empty compiler generated dependencies file for ipcp_core.
# This may be replaced when dependencies are built.
