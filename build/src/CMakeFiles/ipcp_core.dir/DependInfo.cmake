
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipcp/Cloning.cpp" "src/CMakeFiles/ipcp_core.dir/ipcp/Cloning.cpp.o" "gcc" "src/CMakeFiles/ipcp_core.dir/ipcp/Cloning.cpp.o.d"
  "/root/repo/src/ipcp/Inliner.cpp" "src/CMakeFiles/ipcp_core.dir/ipcp/Inliner.cpp.o" "gcc" "src/CMakeFiles/ipcp_core.dir/ipcp/Inliner.cpp.o.d"
  "/root/repo/src/ipcp/JumpFunction.cpp" "src/CMakeFiles/ipcp_core.dir/ipcp/JumpFunction.cpp.o" "gcc" "src/CMakeFiles/ipcp_core.dir/ipcp/JumpFunction.cpp.o.d"
  "/root/repo/src/ipcp/JumpFunctionBuilder.cpp" "src/CMakeFiles/ipcp_core.dir/ipcp/JumpFunctionBuilder.cpp.o" "gcc" "src/CMakeFiles/ipcp_core.dir/ipcp/JumpFunctionBuilder.cpp.o.d"
  "/root/repo/src/ipcp/Pipeline.cpp" "src/CMakeFiles/ipcp_core.dir/ipcp/Pipeline.cpp.o" "gcc" "src/CMakeFiles/ipcp_core.dir/ipcp/Pipeline.cpp.o.d"
  "/root/repo/src/ipcp/Solver.cpp" "src/CMakeFiles/ipcp_core.dir/ipcp/Solver.cpp.o" "gcc" "src/CMakeFiles/ipcp_core.dir/ipcp/Solver.cpp.o.d"
  "/root/repo/src/ipcp/Substitution.cpp" "src/CMakeFiles/ipcp_core.dir/ipcp/Substitution.cpp.o" "gcc" "src/CMakeFiles/ipcp_core.dir/ipcp/Substitution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
