# Empty compiler generated dependencies file for ipcp_ir.
# This may be replaced when dependencies are built.
