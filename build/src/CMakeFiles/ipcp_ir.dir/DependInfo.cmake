
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/CfgBuilder.cpp" "src/CMakeFiles/ipcp_ir.dir/ir/CfgBuilder.cpp.o" "gcc" "src/CMakeFiles/ipcp_ir.dir/ir/CfgBuilder.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "src/CMakeFiles/ipcp_ir.dir/ir/Dominators.cpp.o" "gcc" "src/CMakeFiles/ipcp_ir.dir/ir/Dominators.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/ipcp_ir.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/ipcp_ir.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/Instr.cpp" "src/CMakeFiles/ipcp_ir.dir/ir/Instr.cpp.o" "gcc" "src/CMakeFiles/ipcp_ir.dir/ir/Instr.cpp.o.d"
  "/root/repo/src/ir/IrPrinter.cpp" "src/CMakeFiles/ipcp_ir.dir/ir/IrPrinter.cpp.o" "gcc" "src/CMakeFiles/ipcp_ir.dir/ir/IrPrinter.cpp.o.d"
  "/root/repo/src/ir/Ssa.cpp" "src/CMakeFiles/ipcp_ir.dir/ir/Ssa.cpp.o" "gcc" "src/CMakeFiles/ipcp_ir.dir/ir/Ssa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipcp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
