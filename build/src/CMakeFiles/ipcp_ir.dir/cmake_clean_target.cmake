file(REMOVE_RECURSE
  "libipcp_ir.a"
)
