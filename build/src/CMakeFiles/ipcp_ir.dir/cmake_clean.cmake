file(REMOVE_RECURSE
  "CMakeFiles/ipcp_ir.dir/ir/CfgBuilder.cpp.o"
  "CMakeFiles/ipcp_ir.dir/ir/CfgBuilder.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/ir/Dominators.cpp.o"
  "CMakeFiles/ipcp_ir.dir/ir/Dominators.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/ir/Function.cpp.o"
  "CMakeFiles/ipcp_ir.dir/ir/Function.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/ir/Instr.cpp.o"
  "CMakeFiles/ipcp_ir.dir/ir/Instr.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/ir/IrPrinter.cpp.o"
  "CMakeFiles/ipcp_ir.dir/ir/IrPrinter.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/ir/Ssa.cpp.o"
  "CMakeFiles/ipcp_ir.dir/ir/Ssa.cpp.o.d"
  "libipcp_ir.a"
  "libipcp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
