file(REMOVE_RECURSE
  "libipcp_workloads.a"
)
