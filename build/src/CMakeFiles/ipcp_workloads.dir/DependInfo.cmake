
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ProgramGen.cpp" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramGen.cpp.o" "gcc" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramGen.cpp.o.d"
  "/root/repo/src/workloads/ProgramsA.cpp" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramsA.cpp.o" "gcc" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramsA.cpp.o.d"
  "/root/repo/src/workloads/ProgramsB.cpp" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramsB.cpp.o" "gcc" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramsB.cpp.o.d"
  "/root/repo/src/workloads/ProgramsC.cpp" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramsC.cpp.o" "gcc" "src/CMakeFiles/ipcp_workloads.dir/workloads/ProgramsC.cpp.o.d"
  "/root/repo/src/workloads/RandomProgram.cpp" "src/CMakeFiles/ipcp_workloads.dir/workloads/RandomProgram.cpp.o" "gcc" "src/CMakeFiles/ipcp_workloads.dir/workloads/RandomProgram.cpp.o.d"
  "/root/repo/src/workloads/Suite.cpp" "src/CMakeFiles/ipcp_workloads.dir/workloads/Suite.cpp.o" "gcc" "src/CMakeFiles/ipcp_workloads.dir/workloads/Suite.cpp.o.d"
  "/root/repo/src/workloads/Synthetic.cpp" "src/CMakeFiles/ipcp_workloads.dir/workloads/Synthetic.cpp.o" "gcc" "src/CMakeFiles/ipcp_workloads.dir/workloads/Synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
