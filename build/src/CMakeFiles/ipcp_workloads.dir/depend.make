# Empty dependencies file for ipcp_workloads.
# This may be replaced when dependencies are built.
