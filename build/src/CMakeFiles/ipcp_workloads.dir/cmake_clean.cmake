file(REMOVE_RECURSE
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramGen.cpp.o"
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramGen.cpp.o.d"
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramsA.cpp.o"
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramsA.cpp.o.d"
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramsB.cpp.o"
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramsB.cpp.o.d"
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramsC.cpp.o"
  "CMakeFiles/ipcp_workloads.dir/workloads/ProgramsC.cpp.o.d"
  "CMakeFiles/ipcp_workloads.dir/workloads/RandomProgram.cpp.o"
  "CMakeFiles/ipcp_workloads.dir/workloads/RandomProgram.cpp.o.d"
  "CMakeFiles/ipcp_workloads.dir/workloads/Suite.cpp.o"
  "CMakeFiles/ipcp_workloads.dir/workloads/Suite.cpp.o.d"
  "CMakeFiles/ipcp_workloads.dir/workloads/Synthetic.cpp.o"
  "CMakeFiles/ipcp_workloads.dir/workloads/Synthetic.cpp.o.d"
  "libipcp_workloads.a"
  "libipcp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
