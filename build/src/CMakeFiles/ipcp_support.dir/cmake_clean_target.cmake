file(REMOVE_RECURSE
  "libipcp_support.a"
)
