file(REMOVE_RECURSE
  "CMakeFiles/ipcp_support.dir/support/Diagnostics.cpp.o"
  "CMakeFiles/ipcp_support.dir/support/Diagnostics.cpp.o.d"
  "CMakeFiles/ipcp_support.dir/support/TablePrinter.cpp.o"
  "CMakeFiles/ipcp_support.dir/support/TablePrinter.cpp.o.d"
  "libipcp_support.a"
  "libipcp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
