file(REMOVE_RECURSE
  "CMakeFiles/ipcp_analysis.dir/analysis/CallGraph.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/analysis/CallGraph.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/analysis/DeadCodeElim.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/analysis/DeadCodeElim.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/analysis/ModRef.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/analysis/ModRef.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/analysis/Sccp.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/analysis/Sccp.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/analysis/ValueNumbering.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/analysis/ValueNumbering.cpp.o.d"
  "libipcp_analysis.a"
  "libipcp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
