file(REMOVE_RECURSE
  "libipcp_analysis.a"
)
