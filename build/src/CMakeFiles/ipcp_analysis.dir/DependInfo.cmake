
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CallGraph.cpp" "src/CMakeFiles/ipcp_analysis.dir/analysis/CallGraph.cpp.o" "gcc" "src/CMakeFiles/ipcp_analysis.dir/analysis/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/DeadCodeElim.cpp" "src/CMakeFiles/ipcp_analysis.dir/analysis/DeadCodeElim.cpp.o" "gcc" "src/CMakeFiles/ipcp_analysis.dir/analysis/DeadCodeElim.cpp.o.d"
  "/root/repo/src/analysis/ModRef.cpp" "src/CMakeFiles/ipcp_analysis.dir/analysis/ModRef.cpp.o" "gcc" "src/CMakeFiles/ipcp_analysis.dir/analysis/ModRef.cpp.o.d"
  "/root/repo/src/analysis/Sccp.cpp" "src/CMakeFiles/ipcp_analysis.dir/analysis/Sccp.cpp.o" "gcc" "src/CMakeFiles/ipcp_analysis.dir/analysis/Sccp.cpp.o.d"
  "/root/repo/src/analysis/ValueNumbering.cpp" "src/CMakeFiles/ipcp_analysis.dir/analysis/ValueNumbering.cpp.o" "gcc" "src/CMakeFiles/ipcp_analysis.dir/analysis/ValueNumbering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
