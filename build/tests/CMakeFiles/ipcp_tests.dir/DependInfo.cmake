
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AstPrinterTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/AstPrinterTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/AstPrinterTests.cpp.o.d"
  "/root/repo/tests/CallGraphTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/CallGraphTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/CallGraphTests.cpp.o.d"
  "/root/repo/tests/CfgTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/CfgTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/CfgTests.cpp.o.d"
  "/root/repo/tests/CloningTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/CloningTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/CloningTests.cpp.o.d"
  "/root/repo/tests/DeadCodeElimTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/DeadCodeElimTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/DeadCodeElimTests.cpp.o.d"
  "/root/repo/tests/DominatorTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/DominatorTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/DominatorTests.cpp.o.d"
  "/root/repo/tests/EdgeCaseTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/EdgeCaseTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/EdgeCaseTests.cpp.o.d"
  "/root/repo/tests/EndToEndTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/EndToEndTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/EndToEndTests.cpp.o.d"
  "/root/repo/tests/FunctionTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/FunctionTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/FunctionTests.cpp.o.d"
  "/root/repo/tests/FuzzTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/FuzzTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/FuzzTests.cpp.o.d"
  "/root/repo/tests/GatedSsaTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/GatedSsaTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/GatedSsaTests.cpp.o.d"
  "/root/repo/tests/InlinerTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/InlinerTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/InlinerTests.cpp.o.d"
  "/root/repo/tests/IrPrinterTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/IrPrinterTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/IrPrinterTests.cpp.o.d"
  "/root/repo/tests/JumpFunctionBuilderTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/JumpFunctionBuilderTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/JumpFunctionBuilderTests.cpp.o.d"
  "/root/repo/tests/JumpFunctionTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/JumpFunctionTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/JumpFunctionTests.cpp.o.d"
  "/root/repo/tests/LatticeTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/LatticeTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/LatticeTests.cpp.o.d"
  "/root/repo/tests/LexerTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/LexerTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/LexerTests.cpp.o.d"
  "/root/repo/tests/ModRefTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ModRefTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ModRefTests.cpp.o.d"
  "/root/repo/tests/ParserTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ParserTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ParserTests.cpp.o.d"
  "/root/repo/tests/PipelineTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/PipelineTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/PipelineTests.cpp.o.d"
  "/root/repo/tests/ProgramGenTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ProgramGenTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ProgramGenTests.cpp.o.d"
  "/root/repo/tests/SccpTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SccpTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SccpTests.cpp.o.d"
  "/root/repo/tests/SemaTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SemaTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SemaTests.cpp.o.d"
  "/root/repo/tests/SolverTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SolverTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SolverTests.cpp.o.d"
  "/root/repo/tests/SsaTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SsaTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SsaTests.cpp.o.d"
  "/root/repo/tests/SubstitutionTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SubstitutionTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SubstitutionTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SupportTests.cpp.o.d"
  "/root/repo/tests/ValueNumberingTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ValueNumberingTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ValueNumberingTests.cpp.o.d"
  "/root/repo/tests/WorkloadTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/WorkloadTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/WorkloadTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
