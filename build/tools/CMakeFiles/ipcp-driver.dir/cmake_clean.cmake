file(REMOVE_RECURSE
  "CMakeFiles/ipcp-driver.dir/ipcp-driver.cpp.o"
  "CMakeFiles/ipcp-driver.dir/ipcp-driver.cpp.o.d"
  "ipcp-driver"
  "ipcp-driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp-driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
