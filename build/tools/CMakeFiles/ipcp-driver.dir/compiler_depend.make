# Empty compiler generated dependencies file for ipcp-driver.
# This may be replaced when dependencies are built.
