//===- examples/loop_bounds.cpp - Constant loop bounds for parallelism ----===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's introduction (citing Eigenmann & Blume) motivates IPCP
/// with loop bounds: "interprocedural constants are often used as loop
/// bounds", and knowing them lets a parallelizing compiler judge both
/// dependence structure and profitability. This example runs the
/// analyzer over a solver-style program whose loop bounds arrive through
/// procedure parameters, then reports — with and without
/// interprocedural constants — which DO loops have compile-time-known
/// trip counts and what scheduling decision a parallelizer could make.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "lang/Parser.h"

#include <iostream>

using namespace ipcp;

static const char *Source = R"(program stencil
global nx, ny

proc main()
  nx = 512
  ny = 4
  call relax(nx, 100)
  call edges(ny)
end

proc relax(n, iters)
  integer i, t
  do i = 1, n              ! trip count known only interprocedurally
    call smooth(i, n)
  end do
  do t = 1, iters          ! same
    call smooth(t, n)
  end do
end

proc edges(m)
  integer j, acc
  acc = 0
  do j = 1, m              ! tiny loop: not worth parallelizing
    acc = acc + j
  end do
  print acc
end

proc smooth(row, n)
  integer k, s
  s = row
  do k = 2, n - 1          ! bound is a polynomial of a parameter
    s = s + k
  end do
  print s
end
)";

namespace {

/// Evaluates \p E using literal values plus the analyzer's proven
/// constants for variable uses. Returns nullopt when any leaf is
/// unknown.
std::optional<int64_t> evalWith(const SubstitutionMap &Consts,
                                const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return cast<IntLitExpr>(E)->value();
  case ExprKind::VarRef: {
    auto It = Consts.find(E->id());
    if (It == Consts.end())
      return std::nullopt;
    return It->second;
  }
  case ExprKind::Unary: {
    auto V = evalWith(Consts, cast<UnaryExpr>(E)->operand());
    if (!V)
      return std::nullopt;
    return evalUnaryOp(cast<UnaryExpr>(E)->op(), *V);
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = evalWith(Consts, B->lhs());
    auto R = evalWith(Consts, B->rhs());
    if (!L || !R)
      return std::nullopt;
    int64_t Result;
    if (!evalBinaryOp(B->op(), *L, *R, Result))
      return std::nullopt;
    return Result;
  }
  case ExprKind::ArrayRef:
    return std::nullopt;
  }
  return std::nullopt;
}

struct LoopReport {
  unsigned Known = 0;
  unsigned Unknown = 0;
};

void inspectLoops(const SubstitutionMap &Consts,
                  const std::vector<Stmt *> &Stmts,
                  const std::string &ProcName, bool Print,
                  LoopReport &Report) {
  for (const Stmt *S : Stmts) {
    switch (S->kind()) {
    case StmtKind::DoLoop: {
      const auto *D = cast<DoLoopStmt>(S);
      auto Lo = evalWith(Consts, D->lo());
      auto Hi = evalWith(Consts, D->hi());
      auto Step = D->step() ? evalWith(Consts, D->step())
                            : std::optional<int64_t>(1);
      if (Lo && Hi && Step && *Step != 0) {
        int64_t Trips = *Step > 0 ? (*Hi - *Lo + *Step) / *Step
                                  : (*Lo - *Hi - *Step) / -*Step;
        if (Trips < 0)
          Trips = 0;
        ++Report.Known;
        if (Print) {
          std::cout << "  " << ProcName << ": do " << D->var()->name()
                    << " -> " << Trips << " iterations; ";
          if (Trips >= 64)
            std::cout << "parallelize (wide enough for all workers)\n";
          else if (Trips > 1)
            std::cout << "keep serial (too few iterations)\n";
          else
            std::cout << "eliminate (degenerate loop)\n";
        }
      } else {
        ++Report.Unknown;
        if (Print)
          std::cout << "  " << ProcName << ": do " << D->var()->name()
                    << " -> unknown trip count; must stay serial or "
                       "use a runtime test\n";
      }
      inspectLoops(Consts, D->body(), ProcName, Print, Report);
      break;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      inspectLoops(Consts, I->thenBody(), ProcName, Print, Report);
      inspectLoops(Consts, I->elseBody(), ProcName, Print, Report);
      break;
    }
    case StmtKind::While:
      inspectLoops(Consts, cast<WhileStmt>(S)->body(), ProcName, Print,
                   Report);
      break;
    default:
      break;
    }
  }
}

LoopReport analyze(AstContext &Ctx, const SymbolTable &Symbols,
                   bool Interprocedural, bool Print) {
  PipelineOptions Opts;
  Opts.IntraproceduralOnly = !Interprocedural;
  PipelineResult Result = runPipelineOnAst(Ctx, Symbols, Opts);
  if (!Result.Ok) {
    std::cerr << Result.Error;
    exit(1);
  }
  LoopReport Report;
  for (const auto &P : Ctx.program().Procs)
    inspectLoops(Result.Substitutions, P->Body, P->name(), Print, Report);
  return Report;
}

} // namespace

int main() {
  std::cout << "=== loop bounds: what a parallelizer learns from IPCP "
               "===\n\n";

  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    return 1;
  }

  std::cout << "without interprocedural constants:\n";
  LoopReport Before = analyze(*Ctx, Symbols, false, true);

  std::cout << "\nwith interprocedural constants (polynomial + return "
               "JFs):\n";
  LoopReport After = analyze(*Ctx, Symbols, true, true);

  std::cout << "\nsummary: " << Before.Known << "/"
            << Before.Known + Before.Unknown
            << " loops had known trip counts before IPCP, " << After.Known
            << "/" << After.Known + After.Unknown << " after\n";
  return After.Known > Before.Known ? 0 : 1;
}
