//===- examples/subscript_linearity.cpp - Dependence-analysis payoff ------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shen, Li & Yew (paper reference [14]) found that with interprocedural
/// constants "approximately 50 percent of the subscripts which had
/// previously been considered nonlinear were found to be linear" — and
/// many dependence analyzers simply give up on nonlinear subscripts.
///
/// This example classifies every array subscript of a linear-algebra-
/// style program as LINEAR (affine in enclosing loop variables with
/// known integer coefficients) or NONLINEAR, first without and then with
/// the interprocedural constants, and reports the recovered fraction.
/// The classic culprit is column-major indexing a(i + (j-1)*lda): linear
/// only when the leading dimension lda is a compile-time constant.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "lang/Parser.h"

#include <iostream>
#include <set>

using namespace ipcp;

static const char *Source = R"(program blas
array a(65536)
array b(65536)

proc main()
  call scale(256, 3)
  call copyblock(256, 128)
end

proc scale(lda, s)
  integer i, j
  do j = 1, 64
    do i = 1, 64
      a(i + (j - 1) * lda) = a(i + (j - 1) * lda) * s
    end do
  end do
end

proc copyblock(lda, off)
  integer i, j
  do j = 1, 32
    do i = 1, 32
      b(i + (j - 1) * lda + off) = a(i + (j - 1) * lda)
    end do
  end do
end
)";

namespace {

/// A subscript is linear when it is a sum of terms, each either a known
/// integer or loopvar * known integer. \p LoopVars holds the symbols of
/// enclosing DO variables; \p Consts the analyzer's proven constant
/// uses.
bool isKnownConst(const SubstitutionMap &Consts, const Expr *E,
                  const std::set<uint32_t> &LoopVars) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return true;
  case ExprKind::VarRef:
    return Consts.count(E->id()) != 0;
  case ExprKind::Unary:
    return isKnownConst(Consts, cast<UnaryExpr>(E)->operand(), LoopVars);
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return isKnownConst(Consts, B->lhs(), LoopVars) &&
           isKnownConst(Consts, B->rhs(), LoopVars);
  }
  case ExprKind::ArrayRef:
    return false;
  }
  return false;
}

bool isLinear(const SubstitutionMap &Consts, const Expr *E,
              const std::set<uint32_t> &LoopVars) {
  if (isKnownConst(Consts, E, LoopVars))
    return true;
  switch (E->kind()) {
  case ExprKind::VarRef:
    return LoopVars.count(cast<VarRefExpr>(E)->symbol()) != 0;
  case ExprKind::Unary:
    return isLinear(Consts, cast<UnaryExpr>(E)->operand(), LoopVars);
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    switch (B->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return isLinear(Consts, B->lhs(), LoopVars) &&
             isLinear(Consts, B->rhs(), LoopVars);
    case BinaryOp::Mul:
      // linear * known-constant stays linear.
      return (isLinear(Consts, B->lhs(), LoopVars) &&
              isKnownConst(Consts, B->rhs(), LoopVars)) ||
             (isKnownConst(Consts, B->lhs(), LoopVars) &&
              isLinear(Consts, B->rhs(), LoopVars));
    default:
      return false;
    }
  }
  default:
    return false;
  }
}

struct SubscriptCounts {
  unsigned Linear = 0;
  unsigned Nonlinear = 0;
};

void visitExpr(const SubstitutionMap &Consts, const Expr *E,
               std::set<uint32_t> &LoopVars, SubscriptCounts &Counts) {
  switch (E->kind()) {
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    if (isLinear(Consts, A->index(), LoopVars))
      ++Counts.Linear;
    else
      ++Counts.Nonlinear;
    visitExpr(Consts, A->index(), LoopVars, Counts);
    break;
  }
  case ExprKind::Unary:
    visitExpr(Consts, cast<UnaryExpr>(E)->operand(), LoopVars, Counts);
    break;
  case ExprKind::Binary:
    visitExpr(Consts, cast<BinaryExpr>(E)->lhs(), LoopVars, Counts);
    visitExpr(Consts, cast<BinaryExpr>(E)->rhs(), LoopVars, Counts);
    break;
  default:
    break;
  }
}

void visitStmts(const SubstitutionMap &Consts,
                const std::vector<Stmt *> &Stmts,
                std::set<uint32_t> &LoopVars, SubscriptCounts &Counts) {
  for (const Stmt *S : Stmts) {
    switch (S->kind()) {
    case StmtKind::Assign:
      visitExpr(Consts, cast<AssignStmt>(S)->target(), LoopVars, Counts);
      visitExpr(Consts, cast<AssignStmt>(S)->value(), LoopVars, Counts);
      break;
    case StmtKind::Call:
      for (const Expr *Arg : cast<CallStmt>(S)->args())
        visitExpr(Consts, Arg, LoopVars, Counts);
      break;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      visitExpr(Consts, I->cond(), LoopVars, Counts);
      visitStmts(Consts, I->thenBody(), LoopVars, Counts);
      visitStmts(Consts, I->elseBody(), LoopVars, Counts);
      break;
    }
    case StmtKind::DoLoop: {
      const auto *D = cast<DoLoopStmt>(S);
      bool Inserted = LoopVars.insert(D->var()->symbol()).second;
      visitStmts(Consts, D->body(), LoopVars, Counts);
      if (Inserted)
        LoopVars.erase(D->var()->symbol());
      break;
    }
    case StmtKind::While:
      visitStmts(Consts, cast<WhileStmt>(S)->body(), LoopVars, Counts);
      break;
    case StmtKind::Print:
      visitExpr(Consts, cast<PrintStmt>(S)->value(), LoopVars, Counts);
      break;
    default:
      break;
    }
  }
}

SubscriptCounts classify(AstContext &Ctx, const SymbolTable &Symbols,
                         bool Interprocedural) {
  PipelineOptions Opts;
  Opts.IntraproceduralOnly = !Interprocedural;
  PipelineResult Result = runPipelineOnAst(Ctx, Symbols, Opts);
  if (!Result.Ok) {
    std::cerr << Result.Error;
    exit(1);
  }
  SubscriptCounts Counts;
  std::set<uint32_t> LoopVars;
  for (const auto &P : Ctx.program().Procs)
    visitStmts(Result.Substitutions, P->Body, LoopVars, Counts);
  return Counts;
}

} // namespace

int main() {
  std::cout << "=== subscript linearity: the dependence-analysis payoff "
               "===\n\n";

  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    return 1;
  }

  SubscriptCounts Before = classify(*Ctx, Symbols, false);
  SubscriptCounts After = classify(*Ctx, Symbols, true);

  unsigned Total = Before.Linear + Before.Nonlinear;
  std::cout << "subscripts: " << Total << "\n";
  std::cout << "  linear without IPCP: " << Before.Linear << " ("
            << Before.Nonlinear << " nonlinear)\n";
  std::cout << "  linear with IPCP:    " << After.Linear << " ("
            << After.Nonlinear << " nonlinear)\n";
  if (Before.Nonlinear) {
    double Recovered =
        100.0 * double(Before.Nonlinear - After.Nonlinear) /
        double(Before.Nonlinear);
    std::cout << "  nonlinear subscripts recovered: " << Recovered
              << "% (Shen/Li/Yew report ~50% on FORTRAN libraries)\n";
  }
  return After.Linear > Before.Linear ? 0 : 1;
}
