//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: analyze a small program with each of the paper's four
/// forward jump functions and watch the CONSTANTS sets grow.
///
/// The program below exercises the three interesting flows:
///   * a literal argument  (every kind finds it),
///   * a computed constant argument (needs gcp: intraprocedural+),
///   * a forwarded formal  (needs pass-through+),
///   * an out-parameter set by a callee (needs return jump functions).
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"

#include <iostream>

using namespace ipcp;

static const char *Source = R"(program quickstart
global size

proc main()
  integer blocks
  size = 8 * 16              ! a computed constant global
  call setup(blocks)         ! blocks becomes 4 via a return jump function
  call grid(32, blocks)      ! 32 is a literal actual
end

proc setup(nblocks)
  nblocks = 4
end

proc grid(width, depth)
  print width                ! constant for every jump function kind
  print size                 ! needs gcp (intraprocedural constants)
  print depth                ! needs the return jump function for setup
  call tile(width)           ! forwards a formal: needs pass-through
end

proc tile(w)
  print w * 2
end
)";

int main() {
  std::cout << "=== quickstart: one program, four jump functions ===\n\n";
  std::cout << Source << '\n';

  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraConst,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial}) {
    PipelineOptions Opts;
    Opts.Kind = Kind;
    PipelineResult Result = runPipeline(Source, Opts);
    if (!Result.Ok) {
      std::cerr << Result.Error;
      return 1;
    }

    std::cout << "--- " << jumpFunctionKindName(Kind)
              << " jump function: " << Result.SubstitutedConstants
              << " constants substituted\n";
    for (size_t P = 0; P != Result.Constants.size(); ++P) {
      if (Result.Constants[P].empty())
        continue;
      std::cout << "    CONSTANTS(" << Result.ProcNames[P] << ") = {";
      bool First = true;
      for (const auto &[Name, Value] : Result.Constants[P]) {
        if (!First)
          std::cout << ", ";
        First = false;
        std::cout << '(' << Name << ", " << Value << ')';
      }
      std::cout << "}\n";
    }
  }

  // Finally, show the paper's stage 4: the transformed source.
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  PipelineResult Result = runPipeline(Source, Opts);
  std::cout << "\n--- transformed source (polynomial + return JFs) ---\n"
            << Result.TransformedSource;
  return 0;
}
