//===- examples/cloning_advisor.cpp - Goal-directed procedure cloning -----===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metzger & Stroud (paper reference [13]) used interprocedural
/// constants to guide procedure cloning in the CONVEX Application
/// Compiler: when different call sites pass *different* constants to the
/// same procedure, the meet drives the parameter to BOTTOM and every
/// constant is lost — unless the procedure is cloned per constant value.
///
/// This example drops below the pipeline API: it builds jump functions,
/// runs the solver, then re-evaluates each call edge's jump function
/// under the final VAL sets to find parameters that are constant along
/// every edge individually but BOTTOM after the meet. Those are the
/// cloning opportunities, reported with the value each clone would see.
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "ipcp/Pipeline.h"
#include "ir/CfgBuilder.h"
#include "lang/Parser.h"

#include <iostream>
#include <map>
#include <set>

using namespace ipcp;

static const char *Source = R"(program fft
global logn

proc main()
  logn = 10
  call pass(2, 1)            ! radix-2 pass
  call pass(4, 0)            ! radix-4 pass
  call pass(2, 0)
  call finish(1024)
end

proc pass(radix, first)
  integer stride, i
  stride = radix * 2
  if (first == 1) then
    print stride
  end if
  do i = 1, stride
    call butterfly(radix, i)
  end do
end

proc butterfly(r, idx)
  print r * idx
end

proc finish(n)
  print n
end
)";

int main() {
  std::cout << "=== cloning advisor: constants lost to the meet ===\n\n"
            << Source << '\n';

  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    return 1;
  }

  Module M = buildModule(Ctx->program(), Symbols);
  CallGraph CG(M, *Ctx->program().entryProc());
  ModRefInfo MRI(M, Symbols, CG);
  JumpFunctionOptions JfOpts;
  ProgramJumpFunctions Jfs = buildJumpFunctions(M, Symbols, CG, &MRI,
                                                JfOpts);
  SolveResult Solve = solveConstants(Symbols, CG, Jfs);

  // For every BOTTOM cell, gather the per-edge values.
  unsigned Opportunities = 0;
  for (ProcId P = 0; P != CG.numProcs(); ++P) {
    if (!CG.isReachable(P))
      continue;
    const auto &Formals = Symbols.formals(P);

    // Map each formal index to the set of constants individual edges
    // deliver.
    std::map<uint32_t, std::set<int64_t>> EdgeConstants;
    std::map<uint32_t, unsigned> NonConstEdges;
    for (const CallSite &S : CG.callSitesOf(P)) {
      ProcId Caller = S.Caller;
      // Locate this site's jump functions (PerSite is parallel to
      // callSitesIn(Caller)).
      const auto &Sites = CG.callSitesIn(Caller);
      for (size_t I = 0; I != Sites.size(); ++I) {
        if (Sites[I].Block != S.Block || Sites[I].InstrIdx != S.InstrIdx)
          continue;
        const CallSiteJumpFunctions &SiteJfs = Jfs.PerSite[Caller][I];
        auto Env = [&](SymbolId Sym) { return Solve.valueOf(Caller, Sym); };
        for (uint32_t A = 0; A != Formals.size(); ++A) {
          LatticeValue V = SiteJfs.Args[A].eval(Env);
          if (V.isConst())
            EdgeConstants[A].insert(V.value());
          else
            ++NonConstEdges[A];
        }
      }
    }

    for (uint32_t A = 0; A != Formals.size(); ++A) {
      LatticeValue Merged = Solve.valueOf(P, Formals[A]);
      if (!Merged.isBottom())
        continue; // Already constant (or never called): nothing to gain.
      const auto &Values = EdgeConstants[A];
      if (Values.size() < 2 || NonConstEdges[A] != 0)
        continue; // Not every edge is constant: cloning will not help.
      ++Opportunities;
      std::cout << "clone candidate: " << Ctx->program().Procs[P]->name()
                << " on parameter '"
                << Symbols.symbol(Formals[A]).Name << "' — "
                << Values.size() << " clones would see {";
      bool First = true;
      for (int64_t V : Values) {
        if (!First)
          std::cout << ", ";
        First = false;
        std::cout << V;
      }
      std::cout << "}\n";
    }
  }

  std::cout << "\n" << Opportunities
            << " cloning opportunities found (expected: pass.radix {2,4} "
               "and pass.first {0,1})\n";
  return Opportunities == 2 ? 0 : 1;
}
