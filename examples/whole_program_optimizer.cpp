//===- examples/whole_program_optimizer.cpp - Everything together ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A capstone tour: drive the whole library as a source-to-source
/// whole-program optimizer, the way the CONVEX Application Compiler used
/// these ideas (paper reference [13]). The pipeline is
///
///   1. constant-directed procedure cloning  (split conflicting meets)
///   2. interprocedural constant propagation (polynomial + return JFs)
///   3. complete propagation                  (fold decided branches)
///   4. constant substitution                 (rewrite the source)
///
/// run over a small "application" whose configuration flows from main
/// through a dispatch layer into shared kernels. The example prints the
/// constants found at each stage and the final specialized program.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Cloning.h"
#include "ipcp/Pipeline.h"

#include <iostream>

using namespace ipcp;

static const char *Source = R"(program app
global tracing

proc main()
  tracing = 0
  call run(32, 1)            ! small problem, fast path
  call run(1024, 0)          ! big problem, precise path
end

proc run(size, fast)
  integer iters
  iters = 100
  if (tracing == 1) then
    read iters               ! never happens: tracing is 0
  end if
  call solve(size, fast, iters)
end

proc solve(n, fastpath, steps)
  integer t
  do t = 1, steps
    if (fastpath == 1) then
      call kernel(n, 2)
    else
      call kernel(n, 8)
    end if
  end do
end

proc kernel(n, unroll)
  integer i
  do i = 1, n / unroll
    print i * unroll
  end do
end
)";

namespace {

unsigned countAt(const std::string &Text, const PipelineOptions &Opts) {
  PipelineResult R = runPipeline(Text, Opts);
  if (!R.Ok) {
    std::cerr << R.Error;
    exit(1);
  }
  return R.SubstitutedConstants;
}

} // namespace

int main() {
  std::cout << "=== whole-program optimizer: cloning + IPCP + DCE + "
               "substitution ===\n\n";
  std::cout << Source << '\n';

  // Stage 0: plain polynomial IPCP as the baseline.
  unsigned Baseline = countAt(Source, PipelineOptions());
  std::cout << "baseline IPCP: " << Baseline
            << " constants substituted (the meet destroys size/fast at "
               "'run' and n/unroll at 'kernel')\n";

  // Stage 1: cloning splits 'run', then cascades into solve and kernel.
  CloneResult Cloned = cloneForConstants(Source);
  if (!Cloned.Ok) {
    std::cerr << Cloned.Error;
    return 1;
  }
  std::cout << "after cloning (" << Cloned.ClonesCreated << " clones, "
            << Cloned.Rounds
            << " rounds): " << countAt(Cloned.Source, PipelineOptions())
            << " constants\n";

  // Stage 2: complete propagation removes the tracing branch and
  // substitutes everything that is now constant.
  PipelineOptions Final;
  Final.CompletePropagation = true;
  Final.EmitTransformedSource = true;
  PipelineResult R = runPipeline(Cloned.Source, Final);
  if (!R.Ok) {
    std::cerr << R.Error;
    return 1;
  }
  std::cout << "after complete propagation: " << R.SubstitutedConstants
            << " constants (" << R.FoldedBranches
            << " branches folded)\n\n";

  std::cout << "--- specialized program ---\n" << R.TransformedSource;

  // The payoff the paper's intro promises: every kernel clone now has a
  // compile-time loop bound.
  bool Specialized =
      R.TransformedSource.find("do t = 1, 100") != std::string::npos;
  std::cout << "\nloop bounds specialized: "
            << (Specialized ? "yes" : "no") << '\n';
  return R.SubstitutedConstants > Baseline && Specialized ? 0 : 1;
}
