//===- tests/SsaTests.cpp - ir/Ssa unit tests -----------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Ssa.h"

#include "TestHelpers.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

struct SsaBundle {
  FullAnalysis A;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<SsaForm> Ssa;
};

SsaBundle buildSsa(const std::string &Source, const std::string &Proc,
                   bool WithMod = true) {
  SsaBundle B;
  B.A = analyze(Source);
  const Function &F = B.A.function(Proc);
  B.DT = std::make_unique<DominatorTree>(F);
  B.Ssa = std::make_unique<SsaForm>(
      F, B.A.Symbols, *B.DT,
      makeKillOracle(B.A.Symbols, WithMod ? B.A.MRI.get() : nullptr));
  return B;
}

} // namespace

TEST(Ssa, EveryVisibleScalarHasAnEntryDef) {
  SsaBundle B = buildSsa("global g\nproc main()\n  integer a, b\n  a = "
                         "1\n  b = a\n  g = b\nend\n",
                         "main");
  // a, b, g all have entry defs.
  EXPECT_EQ(B.Ssa->entryDefs().size(), 3u);
  for (auto [Sym, Id] : B.Ssa->entryDefs())
    EXPECT_EQ(B.Ssa->def(Id).Kind, SsaDefKind::Entry);
}

TEST(Ssa, StraightLineHasNoPhis) {
  SsaBundle B = buildSsa(
      "proc main()\n  integer x\n  x = 1\n  x = x + 1\nend\n", "main");
  EXPECT_EQ(B.Ssa->numPhis(), 0u);
}

TEST(Ssa, DiamondRedefinitionPlacesOnePhi) {
  SsaBundle B = buildSsa(R"(proc main()
  integer x, c
  c = 0
  x = 1
  if (c) then
    x = 2
  end if
  print x
end
)",
                         "main");
  // x needs a phi at the join; c does not (single def).
  unsigned PhisForX = 0, OtherPhis = 0;
  const Function &F = B.A.function("main");
  SymbolId X = B.A.symbolIn("main", "x");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk)
    for (const Phi &P : B.Ssa->phis(Blk))
      (P.Sym == X ? PhisForX : OtherPhis) += 1;
  EXPECT_EQ(PhisForX, 1u);
  EXPECT_EQ(OtherPhis, 0u);
}

TEST(Ssa, LoopVariableGetsHeaderPhi) {
  SsaBundle B = buildSsa(R"(proc main()
  integer i, s
  s = 0
  do i = 1, 10
    s = s + i
  end do
  print s
end
)",
                         "main");
  SymbolId I = B.A.symbolIn("main", "i");
  SymbolId S = B.A.symbolIn("main", "s");
  const Function &F = B.A.function("main");
  bool PhiForI = false, PhiForS = false;
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk)
    for (const Phi &P : B.Ssa->phis(Blk)) {
      PhiForI |= P.Sym == I;
      PhiForS |= P.Sym == S;
      // Incoming slots are fully populated.
      EXPECT_EQ(P.Incoming.size(), F.block(Blk).Preds.size());
      for (SsaId In : P.Incoming)
        EXPECT_NE(In, InvalidSsa);
    }
  EXPECT_TRUE(PhiForI);
  EXPECT_TRUE(PhiForS);
}

TEST(Ssa, CallKillsCreateDefsWithMod) {
  SsaBundle B = buildSsa(R"(global g
proc main()
  integer x
  g = 1
  x = 2
  call touch(x)
  print g + x
end
proc touch(p)
  p = 99
end
)",
                         "main");
  const Function &F = B.A.function("main");
  SymbolId X = B.A.symbolIn("main", "x");
  bool FoundKill = false;
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk)
    for (uint32_t I = 0; I != F.block(Blk).Instrs.size(); ++I) {
      if (F.block(Blk).Instrs[I].Op != Opcode::Call)
        continue;
      const auto &Info = B.Ssa->instrInfo(Blk, I);
      // touch modifies its formal, so x is killed; g is not modified.
      ASSERT_EQ(Info.Kills.size(), 1u);
      EXPECT_EQ(Info.Kills[0].Sym, X);
      EXPECT_EQ(B.Ssa->def(Info.Kills[0].Def).Kind,
                SsaDefKind::CallKill);
      FoundKill = true;
    }
  EXPECT_TRUE(FoundKill);
}

TEST(Ssa, WorstCaseKillsEverythingByRefAndGlobal) {
  SsaBundle B = buildSsa(R"(global g
proc main()
  integer x
  g = 1
  x = 2
  call noop(x)
  print g + x
end
proc noop(p)
end
)",
                         "main", /*WithMod=*/false);
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk)
    for (uint32_t I = 0; I != F.block(Blk).Instrs.size(); ++I)
      if (F.block(Blk).Instrs[I].Op == Opcode::Call)
        EXPECT_EQ(B.Ssa->instrInfo(Blk, I).Kills.size(), 2u); // x and g
}

TEST(Ssa, CallRecordsGlobalEnvironment) {
  SsaBundle B = buildSsa(R"(global g1, g2
proc main()
  g1 = 5
  call f()
end
proc f()
  print g1
end
)",
                         "main");
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk)
    for (uint32_t I = 0; I != F.block(Blk).Instrs.size(); ++I)
      if (F.block(Blk).Instrs[I].Op == Opcode::Call)
        EXPECT_EQ(B.Ssa->instrInfo(Blk, I).GlobalEnv.size(), 2u);
}

TEST(Ssa, ExitEnvironmentCoversFormalsAndGlobals) {
  SsaBundle B = buildSsa(R"(global g
proc main()
  call f(1, 2)
end
proc f(a, b)
  a = b + 1
end
)",
                         "f");
  ASSERT_TRUE(B.Ssa->hasExitEnv());
  // Exit symbols: a, b, g.
  EXPECT_EQ(B.Ssa->exitSymbols().size(), 3u);
  EXPECT_EQ(B.Ssa->exitEnv().size(), 3u);
}

TEST(Ssa, WhileTrueLoopStillHasStaticExitEnv) {
  // Every MiniFort loop has a static exit edge, so the exit block is
  // always CFG-reachable even when the condition is constant-true; only
  // SCCP discovers the dynamic unreachability.
  SsaBundle B = buildSsa(R"(proc main()
  integer x
  x = 1
  while (1 > 0)
    x = x + 1
  end while
  print x
end
)",
                         "main");
  EXPECT_TRUE(B.Ssa->hasExitEnv());
}

TEST(Ssa, UseListsAreConsistent) {
  SsaBundle B = buildSsa(R"(proc main()
  integer x, y
  x = 1
  y = x + x
  print y
end
)",
                         "main");
  // Every use recorded in a use list must point back at the value.
  for (SsaId Id = 0; Id != B.Ssa->numValues(); ++Id) {
    for (const SsaUse &Use : B.Ssa->usesOf(Id)) {
      if (Use.Kind == SsaUse::InstrUse) {
        const auto &Info = B.Ssa->instrInfo(Use.Block, Use.Index);
        EXPECT_EQ(Info.UseSsa.at(Use.Slot), Id);
      } else {
        const Phi &P = B.Ssa->phis(Use.Block).at(Use.Index);
        EXPECT_EQ(P.Incoming.at(Use.Slot), Id);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Property checks over the suite: defs dominate uses, every function.
//===----------------------------------------------------------------------===//

class SsaSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SsaSuiteTest, DefsDominateUses) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  FullAnalysis A = analyze(W.Source);
  for (const auto &FPtr : A.M.Functions) {
    const Function &F = *FPtr;
    DominatorTree DT(F);
    SsaForm Ssa(F, A.Symbols, DT, makeKillOracle(A.Symbols, A.MRI.get()));

    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!DT.isReachable(B))
        continue;
      const auto &Instrs = F.block(B).Instrs;
      for (uint32_t I = 0; I != Instrs.size(); ++I) {
        for (SsaId Use : Ssa.instrInfo(B, I).UseSsa) {
          if (Use == InvalidSsa)
            continue;
          const SsaDef &D = Ssa.def(Use);
          ASSERT_TRUE(DT.isReachable(D.Block));
          EXPECT_TRUE(DT.dominates(D.Block, B))
              << F.name() << " bb" << B << " uses value defined in bb"
              << D.Block;
        }
      }
      // Phi incoming values must be defined in blocks dominating the
      // corresponding predecessor.
      for (const Phi &P : Ssa.phis(B)) {
        for (uint32_t S = 0; S != P.Incoming.size(); ++S) {
          BlockId Pred = F.block(B).Preds[S];
          if (!DT.isReachable(Pred))
            continue;
          const SsaDef &D = Ssa.def(P.Incoming[S]);
          EXPECT_TRUE(DT.dominates(D.Block, Pred));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SsaSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });
